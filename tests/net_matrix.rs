//! Transport-identity matrix: the live executor over real loopback TCP
//! must be byte-identical to the deterministic in-memory backend.
//!
//! This is the same scheduler × ring-size × reducer × combiner grid as
//! `live_matrix.rs`, run twice per cell — once over [`MemTransport`]
//! (the oracle: every frame still passes through the real codec) and
//! once over [`TcpTransport`] on 127.0.0.1 with its connection pool,
//! correlation ids, timeouts, and retries in the loop. Any divergence
//! means the wire protocol, not the executor, changed the answer.

use eclipse_apps::WordCount;
use eclipse_core::{LiveCluster, LiveConfig, MapReduce, ReusePolicy, SchedulerKind, TransportKind};

/// Combiner-free WordCount (as in `live_matrix.rs`): one record per
/// occurrence crosses the wire, maximising shuffle traffic per input
/// byte — the harshest cell for the transport.
struct WordCountNoCombiner;

impl MapReduce for WordCountNoCombiner {
    fn map(&self, block: &[u8], emit: &mut dyn FnMut(String, String)) {
        WordCount.map(block, emit);
    }
    fn reduce(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
        WordCount.reduce(key, values, emit);
    }
}

/// Deterministic corpus, smaller than live_matrix's (each TCP cell pays
/// real connection setup): heavy repetition plus per-line unique tokens.
fn corpus() -> String {
    let vocab = ["the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog"];
    let mut out = String::new();
    let mut state = 0x9e3779b97f4a7c15u64;
    for line in 0..150 {
        for _ in 0..6 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let w = vocab[(state >> 59) as usize % vocab.len()];
            out.push_str(w);
            out.push(' ');
        }
        out.push_str(&format!("tok{line:04}\n"));
    }
    out
}

fn render(out: &[(String, String)]) -> String {
    let mut s = String::new();
    for (k, v) in out {
        s.push_str(k);
        s.push('\t');
        s.push_str(v);
        s.push('\n');
    }
    s
}

fn run(
    app: &dyn MapReduce,
    transport: TransportKind,
    sched: SchedulerKind,
    nodes: usize,
    reducers: usize,
    data: &str,
) -> String {
    let c = LiveCluster::new(
        LiveConfig::small()
            .with_nodes(nodes)
            .with_block_size(512)
            .with_scheduler(sched)
            .with_transport(transport),
    );
    c.upload("input", "netmatrix", data.as_bytes());
    let (out, stats) = c.run_job(app, "input", "netmatrix", reducers, ReusePolicy::default());
    // The transport plane must actually carry the job, whatever backend.
    assert!(stats.rpcs >= stats.map_tasks, "placement alone implies one RPC per map task");
    assert!(stats.bytes_sent > 0, "no frames crossed the transport");
    assert_eq!(stats.timeouts, 0, "clean loopback run must not time out");
    render(&out)
}

#[test]
fn tcp_loopback_identical_to_memory_across_grid() {
    let data = corpus();
    let reference = run(
        &WordCount,
        TransportKind::Memory,
        SchedulerKind::Laf(Default::default()),
        1,
        2,
        &data,
    );
    assert!(!reference.is_empty());
    assert!(reference.contains("tok0000\t1"));
    assert!(reference.contains("tok0149\t1"));

    for sched in [
        SchedulerKind::Laf(Default::default()),
        SchedulerKind::Delay(Default::default()),
    ] {
        for nodes in [1usize, 3, 8] {
            for reducers in [2usize, 5] {
                for transport in [TransportKind::Memory, TransportKind::Tcp] {
                    let with =
                        run(&WordCount, transport, sched.clone(), nodes, reducers, &data);
                    assert_eq!(
                        with, reference,
                        "combiner on, {transport:?}, {sched:?}, {nodes} nodes, {reducers} reducers"
                    );
                }
                // The combiner-off cell ships the most shuffle records;
                // one TCP run per grid point keeps the suite fast.
                let without = run(
                    &WordCountNoCombiner,
                    TransportKind::Tcp,
                    sched.clone(),
                    nodes,
                    reducers,
                    &data,
                );
                assert_eq!(
                    without, reference,
                    "combiner off, Tcp, {sched:?}, {nodes} nodes, {reducers} reducers"
                );
            }
        }
    }
}

/// The headline acceptance cell on its own, so a grid failure elsewhere
/// doesn't mask it: 8 nodes, loopback TCP, both schedulers.
#[test]
fn eight_node_tcp_wordcount_matches_memory() {
    let data = corpus();
    for sched in [
        SchedulerKind::Laf(Default::default()),
        SchedulerKind::Delay(Default::default()),
    ] {
        let mem = run(&WordCount, TransportKind::Memory, sched.clone(), 8, 3, &data);
        let tcp = run(&WordCount, TransportKind::Tcp, sched.clone(), 8, 3, &data);
        assert_eq!(tcp, mem, "{sched:?}: TCP diverged from the in-memory oracle");
    }
}

/// Warm reruns stay identical over TCP too — cache RPCs (CacheGet /
/// CachePut) must not corrupt payloads in flight.
#[test]
fn warm_rerun_identical_over_tcp() {
    let data = corpus();
    let c = LiveCluster::new(
        LiveConfig::small()
            .with_nodes(4)
            .with_block_size(512)
            .with_transport(TransportKind::Tcp),
    );
    c.upload("input", "netmatrix", data.as_bytes());
    let (cold, s1) = c.run_job(&WordCount, "input", "netmatrix", 3, ReusePolicy::default());
    let (warm, s2) = c.run_job(&WordCount, "input", "netmatrix", 3, ReusePolicy::default());
    assert_eq!(render(&cold), render(&warm));
    assert!(s2.cache_hits > s1.cache_hits, "second run should hit the input cache");
}
