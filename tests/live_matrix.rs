//! Output-identity matrix for the live executor.
//!
//! The PR 1 data-plane rewrite (sharded cache locks, work-stealing map
//! workers, allocation-light shuffle with a fast partition hash, capped
//! reducer threads) must be invisible in the job output: for a fixed
//! corpus and block size, `run_job` returns byte-identical results no
//! matter which scheduler places the tasks, how many virtual nodes the
//! ring has, how many reduce partitions exist, or whether the app
//! declares a combiner.

use eclipse_apps::WordCount;
use eclipse_core::{LiveCluster, LiveConfig, MapReduce, ReusePolicy, SchedulerKind};

/// WordCount with the combiner disabled: same map and reduce, but the
/// shuffle ships one record per occurrence instead of per-spill partial
/// sums. The fold is order-insensitive (addition), so the output must
/// match the combined run exactly.
struct WordCountNoCombiner;

impl MapReduce for WordCountNoCombiner {
    fn map(&self, block: &[u8], emit: &mut dyn FnMut(String, String)) {
        WordCount.map(block, emit);
    }
    fn reduce(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
        WordCount.reduce(key, values, emit);
    }
}

/// Deterministic skewed corpus: a small vocabulary with heavy repetition
/// (so combining matters) plus a unique token per line (so every
/// partition sees singletons too).
fn corpus() -> String {
    let vocab = ["the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog"];
    let mut out = String::new();
    let mut state = 0x9e3779b97f4a7c15u64;
    for line in 0..400 {
        for _ in 0..6 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let w = vocab[(state >> 59) as usize % vocab.len()];
            out.push_str(w);
            out.push(' ');
        }
        out.push_str(&format!("tok{line:04}\n"));
    }
    out
}

fn render(out: &[(String, String)]) -> String {
    let mut s = String::new();
    for (k, v) in out {
        s.push_str(k);
        s.push('\t');
        s.push_str(v);
        s.push('\n');
    }
    s
}

fn run(app: &dyn MapReduce, sched: SchedulerKind, nodes: usize, reducers: usize, data: &str) -> String {
    let c = LiveCluster::new(
        LiveConfig::small().with_nodes(nodes).with_block_size(512).with_scheduler(sched),
    );
    c.upload("input", "matrix", data.as_bytes());
    let (out, stats) = c.run_job(app, "input", "matrix", reducers, ReusePolicy::default());
    // Work stealing must never change the per-assignment accounting.
    let assigned: u64 = stats.tasks_per_node.iter().sum();
    assert_eq!(assigned, stats.map_tasks, "accounting is by assigned node");
    render(&out)
}

#[test]
fn output_identical_across_schedulers_nodes_and_combiner() {
    let data = corpus();
    let reference = run(
        &WordCount,
        SchedulerKind::Laf(Default::default()),
        1,
        2,
        &data,
    );
    assert!(!reference.is_empty());
    // Sanity: the unique tokens all survived into the reference output.
    assert!(reference.contains("tok0000\t1"));
    assert!(reference.contains("tok0399\t1"));

    for sched in [
        SchedulerKind::Laf(Default::default()),
        SchedulerKind::Delay(Default::default()),
    ] {
        for nodes in [1usize, 3, 8] {
            for reducers in [2usize, 5] {
                let with = run(&WordCount, sched.clone(), nodes, reducers, &data);
                assert_eq!(
                    with, reference,
                    "combiner on, {sched:?}, {nodes} nodes, {reducers} reducers"
                );
                let without = run(&WordCountNoCombiner, sched.clone(), nodes, reducers, &data);
                assert_eq!(
                    without, reference,
                    "combiner off, {sched:?}, {nodes} nodes, {reducers} reducers"
                );
            }
        }
    }
}

#[test]
fn warm_rerun_is_identical() {
    // Cache hits on the second run must not leak into the output.
    let data = corpus();
    let c = LiveCluster::new(LiveConfig::small().with_block_size(512));
    c.upload("input", "matrix", data.as_bytes());
    let (cold, s1) = c.run_job(&WordCount, "input", "matrix", 3, ReusePolicy::default());
    let (warm, s2) = c.run_job(&WordCount, "input", "matrix", 3, ReusePolicy::default());
    assert_eq!(render(&cold), render(&warm));
    assert!(s2.cache_hits > s1.cache_hits, "second run should hit the input cache");
}
