//! Whole-system simulator scenarios: conservation laws and cross-
//! component invariants that must hold through uploads, jobs, failures
//! and iterative drivers on the paper-scale simulated cluster.

use eclipse_core::{EclipseConfig, EclipseSim, JobSpec, SchedulerKind};
use eclipse_sched::{DelayConfig, LafConfig};
use eclipse_util::GB;
use eclipse_workloads::AppKind;

fn sim(kind: SchedulerKind, nodes: usize) -> EclipseSim {
    EclipseSim::new(EclipseConfig::paper_defaults(kind).with_nodes(nodes))
}

#[test]
fn bytes_read_equal_input_bytes() {
    // Conservation: every byte of input is read from exactly one source
    // per map pass, regardless of scheduler or cache state.
    for kind in [
        SchedulerKind::Laf(LafConfig::default()),
        SchedulerKind::Delay(DelayConfig::default()),
    ] {
        let mut s = sim(kind, 12);
        s.upload("data", 10 * GB);
        for pass in 0..3 {
            let r = s.run_job(&JobSpec::batch(AppKind::Grep, "data"));
            let total: u64 = r.read_bytes.values().sum();
            assert_eq!(total, 10 * GB, "pass {pass}");
            assert_eq!(r.map_tasks, 80);
            assert_eq!(r.tasks_per_node.iter().sum::<u64>(), 80);
        }
    }
}

#[test]
fn cache_sources_shift_from_disk_to_memory() {
    let mut s = sim(SchedulerKind::Laf(LafConfig::default()), 12);
    s.upload("data", 8 * GB); // fits in 12 GB of cluster cache
    let cold = s.run_job(&JobSpec::batch(AppKind::Grep, "data"));
    let warm = s.run_job(&JobSpec::batch(AppKind::Grep, "data"));
    let disk = |r: &eclipse_core::JobReport| {
        r.read_bytes.get("local_disk").copied().unwrap_or(0)
            + r.read_bytes.get("remote_disk").copied().unwrap_or(0)
    };
    assert_eq!(disk(&cold), 8 * GB, "cold run is all disk");
    assert!(
        disk(&warm) < GB,
        "warm run should be nearly disk-free: {:?}",
        warm.read_bytes
    );
    assert!(warm.elapsed <= cold.elapsed);
}

#[test]
fn makespan_monotone_in_cluster_size() {
    let mut last = f64::INFINITY;
    for nodes in [10, 20, 40] {
        let mut s = sim(SchedulerKind::Laf(LafConfig::default()), nodes);
        s.upload("data", 50 * GB);
        let r = s.run_job(&JobSpec::batch(AppKind::WordCount, "data"));
        assert!(
            r.elapsed < last,
            "{nodes} nodes not faster: {} vs {last}",
            r.elapsed
        );
        last = r.elapsed;
    }
}

#[test]
fn failure_mid_workload_keeps_invariants() {
    let mut s = sim(SchedulerKind::Laf(LafConfig::default()), 16);
    s.upload("data", 20 * GB);
    s.run_job(&JobSpec::batch(AppKind::Grep, "data"));
    let t_before = s.now();
    let victim = s.ring().node_ids()[5];
    let recovery = s.fail_node(victim);
    assert!(recovery > 0.0);
    assert!(s.now() >= t_before);
    assert_eq!(s.ring().len(), 15);
    // Post-failure job: full conservation on 15 nodes, none on the dead
    // one.
    let r = s.run_job(&JobSpec::batch(AppKind::Grep, "data"));
    assert_eq!(r.read_bytes.values().sum::<u64>(), 20 * GB);
    assert_eq!(r.tasks_per_node[victim.index()], 0);
    // The scheduler's ranges still tile the full ring.
    let covered: u128 = s.cache().ranges().iter().map(|(_, kr)| kr.len()).sum();
    assert_eq!(covered, 1u128 << 64);
}

#[test]
fn iterative_driver_accumulates_iterations() {
    let mut s = sim(SchedulerKind::Laf(LafConfig::default()), 12);
    s.upload("graph", 6 * GB);
    let spec = JobSpec::iterative(AppKind::PageRank, "graph", 4).with_reducers(24);
    let r = s.run_job(&spec);
    assert_eq!(r.iteration_times.len(), 4);
    assert!((r.iteration_times.iter().sum::<f64>() - r.elapsed).abs() < 1e-6);
    assert_eq!(r.map_tasks, 4 * 48, "48 blocks × 4 iterations");
    assert_eq!(r.reduce_tasks, 4 * 24);
    // Clock advanced exactly by the job.
    assert!((s.now() - r.elapsed).abs() < 1e-6);
}

#[test]
fn concurrent_batch_reports_are_complete() {
    let mut s = sim(SchedulerKind::Laf(LafConfig::default()), 12);
    s.upload("a", 4 * GB);
    s.upload("b", 4 * GB);
    let reports = s.run_concurrent(&[
        JobSpec::batch(AppKind::Grep, "a"),
        JobSpec::batch(AppKind::WordCount, "b"),
        JobSpec::iterative(AppKind::KMeans, "a", 2),
    ]);
    assert_eq!(reports.len(), 3);
    assert_eq!(reports[0].map_tasks, 32);
    assert_eq!(reports[1].map_tasks, 32);
    assert_eq!(reports[2].map_tasks, 64, "two passes");
    for r in &reports {
        assert!(r.elapsed > 0.0);
        assert!(r.map_elapsed <= r.elapsed);
    }
    // Batch clock = slowest job.
    let makespan = reports.iter().map(|r| r.elapsed).fold(0.0, f64::max);
    assert!((s.now() - makespan).abs() < 1e-6);
}

#[test]
fn trace_and_job_paths_share_cache_state() {
    // run_trace and run_job drive the same distributed cache: a trace
    // that touches the file's block keys warms the job that follows.
    use eclipse_workloads::CostModel;
    let mut s = sim(SchedulerKind::Laf(LafConfig::default()), 12);
    s.upload("data", 4 * GB);
    let keys: Vec<_> = s.fs().stat("data").unwrap().blocks.iter().map(|b| b.key).collect();
    s.run_trace(&keys, 128 * 1024 * 1024, &CostModel::eclipse(AppKind::Grep));
    let warm = s.run_job(&JobSpec::batch(AppKind::Grep, "data"));
    assert!(
        warm.cache_hits > warm.map_tasks / 2,
        "trace should have warmed the cache: {} hits of {}",
        warm.cache_hits,
        warm.map_tasks
    );
}
