//! Randomized end-to-end properties of the live executor: for arbitrary
//! data, the distributed results must equal single-machine references.

use eclipse_apps::{run_equijoin, run_terasort, EquiJoin, WordCount};
use eclipse_core::{FaultPlan, LiveCluster, LiveConfig, ReusePolicy};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Distributed word count equals the block-wise reference count for
    /// arbitrary word streams.
    #[test]
    fn wordcount_equals_reference(
        words in prop::collection::vec("[a-d]{1,3}", 10..300),
        block_pow in 7u32..10,
    ) {
        let data = words.join(" ") + "\n";
        let block = 1usize << block_pow;
        let c = LiveCluster::new(LiveConfig::small().with_block_size(block as u64));
        c.upload("in", "p", data.as_bytes());
        let (out, _) = c.run_job(&WordCount, "in", "p", 3, ReusePolicy::default());
        let mut reference: HashMap<String, u64> = HashMap::new();
        for chunk in data.as_bytes().chunks(block) {
            for w in String::from_utf8_lossy(chunk).split_whitespace() {
                *reference.entry(w.to_string()).or_insert(0) += 1;
            }
        }
        prop_assert_eq!(out.len(), reference.len());
        for (w, count) in &out {
            prop_assert_eq!(count.parse::<u64>().unwrap(), reference[w]);
        }
    }

    /// TeraSort produces globally sorted output for arbitrary records.
    #[test]
    fn terasort_sorts_anything(
        nums in prop::collection::vec(0u32..1_000_000, 20..400),
        reducers in 1usize..6,
    ) {
        let data: String = nums.iter().map(|n| format!("{n:07}\n")).collect();
        let c = LiveCluster::new(LiveConfig::small().with_block_size(2048));
        c.upload("in", "p", data.as_bytes());
        let result = run_terasort(&c, "in", "p", reducers, 5);
        prop_assert!(result.records.windows(2).all(|w| w[0] <= w[1]));
        // Line-aligned blocks (8-byte records, 2048-byte blocks): nothing
        // may be lost or invented.
        prop_assert_eq!(result.records.len(), nums.len());
        let mut expected: Vec<String> = nums.iter().map(|n| format!("{n:07}")).collect();
        expected.sort();
        prop_assert_eq!(result.records, expected);
    }

    /// The distributed equi-join equals the nested-loop reference.
    #[test]
    fn join_equals_reference(
        left in prop::collection::vec((0u8..20, "[a-z]{1,4}"), 1..60),
        right in prop::collection::vec((0u8..20, "[a-z]{1,4}"), 1..60),
    ) {
        let render = |rows: &[(u8, String)]| -> String {
            rows.iter().map(|(k, v)| format!("k{k:02}\t{v}\n")).collect()
        };
        let c = LiveCluster::new(LiveConfig::small().with_block_size(4096));
        c.upload("l", "p", render(&left).as_bytes());
        c.upload("r", "p", render(&right).as_bytes());
        let got: BTreeSet<(String, String)> =
            run_equijoin(&c, "l", "r", "p", 3).into_iter().collect();
        let mut expected = BTreeSet::new();
        for (lk, lv) in &left {
            for (rk, rv) in &right {
                if lk == rk {
                    expected.insert((format!("k{lk:02}"), format!("{lv}\t{rv}")));
                }
            }
        }
        prop_assert_eq!(got, expected);
    }

    /// Results are identical regardless of reducer count (the partition
    /// layout is an implementation detail, never a correctness factor).
    #[test]
    fn reducer_count_is_transparent(
        words in prop::collection::vec("[a-c]{1,2}", 10..120),
        r1 in 1usize..5,
        r2 in 5usize..9,
    ) {
        let data = words.join(" ") + "\n";
        let c = LiveCluster::new(LiveConfig::small().with_block_size(4096));
        c.upload("in", "p", data.as_bytes());
        let (a, _) = c.run_job(&WordCount, "in", "p", r1, ReusePolicy::default());
        let (b, _) = c.run_job(&WordCount, "in", "p", r2, ReusePolicy::default());
        prop_assert_eq!(a, b);
    }

    /// Between-jobs recovery: for random upload sets and any single
    /// victim, `fail_node` re-replicates exactly the blocks the victim
    /// held, and every block stays readable through the replica chain
    /// (the re-run output is byte-identical).
    #[test]
    fn single_crash_recovers_every_block(
        words in prop::collection::vec("[a-e]{1,4}", 20..200),
        victim_ix in 0usize..8,
        files in 1usize..4,
    ) {
        let c = LiveCluster::new(LiveConfig::small().with_block_size(512));
        let data = words.join(" ") + "\n";
        let names: Vec<String> = (0..files).map(|i| format!("f{i}")).collect();
        for n in &names {
            c.upload(n, "p", data.as_bytes());
        }
        let inputs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let (before, _) =
            c.run_job_inputs(&WordCount, &inputs, "p", 2, ReusePolicy::default());
        let victim = c.ring().node_ids()[victim_ix % c.ring().len()];
        let held = c.store().blocks_on(victim).len() as u64;
        let report = c.fail_node(victim).expect("one crash is within the fault model");
        prop_assert_eq!(report.recovered_blocks, held);
        let (after, _) =
            c.run_job_inputs(&WordCount, &inputs, "p", 2, ReusePolicy::default());
        prop_assert_eq!(after, before);
    }

    /// Mid-job recovery: a crash while the job is running re-replicates
    /// the victim's holdings (surfaced in `LiveStats`) and the job's
    /// output is byte-identical to the fault-free run.
    #[test]
    fn mid_job_crash_recovers_victims_blocks(
        words in prop::collection::vec("[a-e]{1,4}", 40..250),
        victim_ix in 0usize..8,
        after_maps in 1u64..6,
    ) {
        let c = LiveCluster::new(LiveConfig::small().with_block_size(512));
        let data = words.join(" ") + "\n";
        c.upload("in", "p", data.as_bytes());
        let (before, base_stats) = c.run_job(&WordCount, "in", "p", 2, ReusePolicy::default());
        let victim = c.ring().node_ids()[victim_ix % c.ring().len()];
        let held = c.store().blocks_on(victim).len() as u64;
        // Clamp the trigger into the job's actual map count so the
        // crash always fires (tiny random inputs may have few blocks).
        let trigger = 1 + (after_maps - 1) % base_stats.map_tasks.max(1);
        c.inject_faults(FaultPlan::new().crash_after_maps(victim, trigger));
        let (after, stats) = c
            .try_run_job(&WordCount, "in", "p", 2, ReusePolicy::default())
            .expect("one crash is within the fault model");
        prop_assert_eq!(after, before);
        prop_assert_eq!(stats.failed_nodes, 1);
        prop_assert_eq!(stats.recovered_blocks, held);
        prop_assert!(!c.ring().contains(victim));
    }

    /// Speculation under a random straggler: output equals the
    /// fault-free run, and attempt accounting stays exact — every
    /// attempt is a task's primary, a failure-driven retry, or a
    /// backup, so `speculative_wins + retries ≤ attempts - map_tasks`.
    #[test]
    fn speculation_accounting_holds(
        words in prop::collection::vec("[a-e]{1,4}", 60..300),
        straggler_ix in 0usize..8,
        slow_micros in 500u64..4_000,
    ) {
        use eclipse_core::SpeculationConfig;
        let data = words.join(" ") + "\n";
        let plain = LiveCluster::new(LiveConfig::small().with_block_size(512));
        plain.upload("in", "p", data.as_bytes());
        let (before, _) = plain.run_job(&WordCount, "in", "p", 2, ReusePolicy::default());
        let c = LiveCluster::new(
            LiveConfig::small()
                .with_block_size(512)
                .with_map_slots(8)
                .with_speculation(SpeculationConfig {
                    slowdown: 2.0,
                    min_completed: 3,
                    poll_micros: 200,
                }),
        );
        c.upload("in", "p", data.as_bytes());
        let straggler = c.ring().node_ids()[straggler_ix % c.ring().len()];
        c.inject_faults(FaultPlan::new().slow_node(straggler, slow_micros));
        let (after, stats) = c
            .try_run_job(&WordCount, "in", "p", 2, ReusePolicy::default())
            .expect("a straggler is never fatal");
        prop_assert_eq!(after, before);
        prop_assert!(stats.speculative_wins <= stats.speculative_attempts);
        prop_assert!(
            stats.speculative_wins + stats.retries <= stats.attempts - stats.map_tasks,
            "wins={} retries={} attempts={} map_tasks={}",
            stats.speculative_wins, stats.retries, stats.attempts, stats.map_tasks
        );
    }

    /// Elastic membership: for any schedule of one join and one
    /// graceful leave at random map milestones (in either order),
    /// output equals the fault-free run and the ring invariants hold —
    /// every block keeps at least `min(replicas + 1, nodes)` physical
    /// copies, the cache ranges partition the key space exactly (every
    /// probe key has exactly one home, and that home is a live
    /// member), and the attempt ledger stays exact with drained claims
    /// counted as retries or outraced on the commit board.
    #[test]
    fn elastic_schedules_hold_ring_invariants(
        words in prop::collection::vec("[a-e]{1,4}", 40..250),
        join_at in 1u64..6,
        leaver_ix in 0usize..8,
        leave_at in 1u64..6,
    ) {
        use eclipse_util::HashKey;
        let data = words.join(" ") + "\n";
        let c = LiveCluster::new(LiveConfig::small().with_block_size(512));
        c.upload("in", "p", data.as_bytes());
        let (before, base) = c.run_job(&WordCount, "in", "p", 2, ReusePolicy::default());
        let n0 = c.ring().len();
        let leaver = c.ring().node_ids()[leaver_ix % n0];
        // Clamp both triggers into the job's actual map count so they
        // always fire (tiny random inputs may have few blocks).
        let maps = base.map_tasks.max(1);
        c.inject_faults(
            FaultPlan::new()
                .join_at_maps(1 + (join_at - 1) % maps)
                .leave_at_maps(leaver, 1 + (leave_at - 1) % maps),
        );
        let (after, stats) = c
            .try_run_job(&WordCount, "in", "p", 2, ReusePolicy::default())
            .expect("a join and a graceful leave are within the fault model");
        prop_assert_eq!(after, before);
        prop_assert_eq!(stats.joins, 1);
        prop_assert_eq!(stats.leaves, 1);
        prop_assert_eq!(stats.failed_nodes, 0, "elastic events are not crashes");
        prop_assert_eq!(c.ring().len(), n0, "one in, one out");
        prop_assert!(!c.ring().contains(leaver));
        prop_assert_eq!(
            stats.attempts,
            stats.map_tasks + stats.retries + stats.speculative_attempts,
            "attempt ledger broke: {:?}", stats
        );
        // Replica floor: every block anyone still holds has at least
        // min(replicas + 1, nodes) physical copies after the handoffs.
        let ring = c.ring();
        let mut copies = HashMap::new();
        for n in ring.node_ids() {
            for b in c.store().blocks_on(n) {
                *copies.entry(b).or_insert(0usize) += 1;
            }
        }
        let floor = 3usize.min(ring.len());
        prop_assert!(!copies.is_empty(), "the reshaped cluster holds no blocks");
        for (b, k) in &copies {
            prop_assert!(*k >= floor, "block {:?} has {} copies, floor {}", b, k, floor);
        }
        // Cache ranges partition the key space exactly, and every home
        // is a live member.
        let ranges = c.cache_ranges();
        for (n, _) in &ranges {
            prop_assert!(ring.contains(*n), "range homed on departed node {:?}", n);
        }
        for i in 0..200u64 {
            let k = HashKey::of_name(&format!("probe-{i}"));
            let homes = ranges.iter().filter(|(_, r)| r.contains(k)).count();
            prop_assert_eq!(homes, 1, "probe key {} has {} homes", i, homes);
        }
    }

    /// A multi-input job over the same file twice doubles every count —
    /// multi-input bookkeeping must not drop or duplicate blocks.
    #[test]
    fn multi_input_counts_add(words in prop::collection::vec("[a-c]{1,2}", 5..80)) {
        let data = words.join(" ") + "\n";
        let c = LiveCluster::new(LiveConfig::small().with_block_size(4096));
        c.upload("x", "p", data.as_bytes());
        c.upload("y", "p", data.as_bytes());
        let (single, _) = c.run_job(&WordCount, "x", "p", 2, ReusePolicy::default());
        let (double, _) =
            c.run_job_inputs(&WordCount, &["x", "y"], "p", 2, ReusePolicy::default());
        prop_assert_eq!(single.len(), double.len());
        for ((w1, c1), (w2, c2)) in single.iter().zip(&double) {
            prop_assert_eq!(w1, w2);
            prop_assert_eq!(c1.parse::<u64>().unwrap() * 2, c2.parse::<u64>().unwrap());
        }
        // EquiJoin's single-input fallback treats everything as left side.
        let (solo, _) = c.run_job(&EquiJoin, "x", "p", 2, ReusePolicy::default());
        prop_assert!(solo.is_empty(), "no right side, no matches");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// DST `calm` schedules — randomized sub-budget drops, seeded link
    /// delays, slow nodes, and injected task failures over randomized
    /// workloads — never change a byte of output, and every
    /// [`LiveStats`] accounting invariant holds (`attempts =
    /// map_tasks + retries + speculative_attempts`, per-node counts
    /// summing to `map_tasks`, no phantom recovery without a crash).
    /// The oracle inside `run_seed` checks all of it; a calm verdict
    /// other than `Match` is a real bug in the executor or harness.
    #[test]
    fn calm_schedules_hold_livestats_invariants(seed in 0u64..10_000) {
        use eclipse_core::dst::{run_seed, DstPreset, Verdict};
        let r = run_seed(seed, DstPreset::Calm);
        prop_assert!(
            matches!(r.verdict, Verdict::Match),
            "calm seed {} (workload {:?}, schedule {:?}) ended {:?}",
            seed, r.workload, r.schedule, r.verdict
        );
        prop_assert!(r.oracle_checks > 1, "stats invariants were never checked");
    }
}
