//! Randomized end-to-end properties of the live executor: for arbitrary
//! data, the distributed results must equal single-machine references.

use eclipse_apps::{run_equijoin, run_terasort, EquiJoin, WordCount};
use eclipse_core::{LiveCluster, LiveConfig, ReusePolicy};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Distributed word count equals the block-wise reference count for
    /// arbitrary word streams.
    #[test]
    fn wordcount_equals_reference(
        words in prop::collection::vec("[a-d]{1,3}", 10..300),
        block_pow in 7u32..10,
    ) {
        let data = words.join(" ") + "\n";
        let block = 1usize << block_pow;
        let c = LiveCluster::new(LiveConfig::small().with_block_size(block as u64));
        c.upload("in", "p", data.as_bytes());
        let (out, _) = c.run_job(&WordCount, "in", "p", 3, ReusePolicy::default());
        let mut reference: HashMap<String, u64> = HashMap::new();
        for chunk in data.as_bytes().chunks(block) {
            for w in String::from_utf8_lossy(chunk).split_whitespace() {
                *reference.entry(w.to_string()).or_insert(0) += 1;
            }
        }
        prop_assert_eq!(out.len(), reference.len());
        for (w, count) in &out {
            prop_assert_eq!(count.parse::<u64>().unwrap(), reference[w]);
        }
    }

    /// TeraSort produces globally sorted output for arbitrary records.
    #[test]
    fn terasort_sorts_anything(
        nums in prop::collection::vec(0u32..1_000_000, 20..400),
        reducers in 1usize..6,
    ) {
        let data: String = nums.iter().map(|n| format!("{n:07}\n")).collect();
        let c = LiveCluster::new(LiveConfig::small().with_block_size(2048));
        c.upload("in", "p", data.as_bytes());
        let result = run_terasort(&c, "in", "p", reducers, 5);
        prop_assert!(result.records.windows(2).all(|w| w[0] <= w[1]));
        // Line-aligned blocks (8-byte records, 2048-byte blocks): nothing
        // may be lost or invented.
        prop_assert_eq!(result.records.len(), nums.len());
        let mut expected: Vec<String> = nums.iter().map(|n| format!("{n:07}")).collect();
        expected.sort();
        prop_assert_eq!(result.records, expected);
    }

    /// The distributed equi-join equals the nested-loop reference.
    #[test]
    fn join_equals_reference(
        left in prop::collection::vec((0u8..20, "[a-z]{1,4}"), 1..60),
        right in prop::collection::vec((0u8..20, "[a-z]{1,4}"), 1..60),
    ) {
        let render = |rows: &[(u8, String)]| -> String {
            rows.iter().map(|(k, v)| format!("k{k:02}\t{v}\n")).collect()
        };
        let c = LiveCluster::new(LiveConfig::small().with_block_size(4096));
        c.upload("l", "p", render(&left).as_bytes());
        c.upload("r", "p", render(&right).as_bytes());
        let got: BTreeSet<(String, String)> =
            run_equijoin(&c, "l", "r", "p", 3).into_iter().collect();
        let mut expected = BTreeSet::new();
        for (lk, lv) in &left {
            for (rk, rv) in &right {
                if lk == rk {
                    expected.insert((format!("k{lk:02}"), format!("{lv}\t{rv}")));
                }
            }
        }
        prop_assert_eq!(got, expected);
    }

    /// Results are identical regardless of reducer count (the partition
    /// layout is an implementation detail, never a correctness factor).
    #[test]
    fn reducer_count_is_transparent(
        words in prop::collection::vec("[a-c]{1,2}", 10..120),
        r1 in 1usize..5,
        r2 in 5usize..9,
    ) {
        let data = words.join(" ") + "\n";
        let c = LiveCluster::new(LiveConfig::small().with_block_size(4096));
        c.upload("in", "p", data.as_bytes());
        let (a, _) = c.run_job(&WordCount, "in", "p", r1, ReusePolicy::default());
        let (b, _) = c.run_job(&WordCount, "in", "p", r2, ReusePolicy::default());
        prop_assert_eq!(a, b);
    }

    /// A multi-input job over the same file twice doubles every count —
    /// multi-input bookkeeping must not drop or duplicate blocks.
    #[test]
    fn multi_input_counts_add(words in prop::collection::vec("[a-c]{1,2}", 5..80)) {
        let data = words.join(" ") + "\n";
        let c = LiveCluster::new(LiveConfig::small().with_block_size(4096));
        c.upload("x", "p", data.as_bytes());
        c.upload("y", "p", data.as_bytes());
        let (single, _) = c.run_job(&WordCount, "x", "p", 2, ReusePolicy::default());
        let (double, _) =
            c.run_job_inputs(&WordCount, &["x", "y"], "p", 2, ReusePolicy::default());
        prop_assert_eq!(single.len(), double.len());
        for ((w1, c1), (w2, c2)) in single.iter().zip(&double) {
            prop_assert_eq!(w1, w2);
            prop_assert_eq!(c1.parse::<u64>().unwrap() * 2, c2.parse::<u64>().unwrap());
        }
        // EquiJoin's single-input fallback treats everything as left side.
        let (solo, _) = c.run_job(&EquiJoin, "x", "p", 2, ReusePolicy::default());
        prop_assert!(solo.is_empty(), "no right side, no matches");
    }
}
