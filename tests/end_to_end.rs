//! End-to-end correctness: the live EclipseMR stack must produce the
//! same answers as straightforward reference implementations, for every
//! application, under both schedulers, and across node failures.

use eclipse_apps::{run_kmeans, run_logreg, run_pagerank, Grep, InvertedIndex, WordCount};
use eclipse_core::{LiveCluster, LiveConfig, ReusePolicy, SchedulerKind};
use eclipse_workloads::{labeled_points, points_to_csv, ClusterGen, TextGen, WebGraph};
use std::collections::HashMap;

fn text_cluster(kind: SchedulerKind, text: &str) -> LiveCluster {
    let c = LiveCluster::new(
        LiveConfig::small().with_block_size(1024).with_scheduler(kind),
    );
    c.upload("input", "it", text.as_bytes());
    c
}

/// Reference word count over the exact block decomposition the cluster
/// sees (block boundaries may split words, so count block-wise).
fn reference_wordcount(data: &[u8], block: usize) -> HashMap<String, u64> {
    let mut counts = HashMap::new();
    for chunk in data.chunks(block) {
        for w in String::from_utf8_lossy(chunk).split_whitespace() {
            *counts.entry(w.to_string()).or_insert(0) += 1;
        }
    }
    counts
}

#[test]
fn wordcount_matches_reference_under_both_schedulers() {
    let text = TextGen::new(200, 1.0, 6).generate(3, 64 * 1024);
    let reference = reference_wordcount(text.as_bytes(), 1024);
    for kind in [
        SchedulerKind::Laf(Default::default()),
        SchedulerKind::Delay(Default::default()),
    ] {
        let c = text_cluster(kind, &text);
        let (out, stats) = c.run_job(&WordCount, "input", "it", 4, ReusePolicy::default());
        assert_eq!(out.len(), reference.len());
        for (w, count) in &out {
            assert_eq!(
                count.parse::<u64>().unwrap(),
                reference[w],
                "count mismatch for {w:?}"
            );
        }
        assert_eq!(stats.map_tasks as usize, text.len().div_ceil(1024));
    }
}

#[test]
fn grep_agrees_with_reference_blockwise() {
    let text = TextGen::new(100, 1.0, 4).generate(9, 32 * 1024);
    let c = text_cluster(SchedulerKind::Laf(Default::default()), &text);
    let (out, _) = c.run_job(&Grep::new("w00000"), "input", "it", 3, ReusePolicy::default());
    // Every returned line contains the pattern, and the match count per
    // block-wise reference agrees.
    let reference: usize = text
        .as_bytes()
        .chunks(1024)
        .map(|b| {
            String::from_utf8_lossy(b)
                .lines()
                .filter(|l| l.contains("w00000"))
                .count()
        })
        .sum();
    let total: u64 = out.iter().map(|(_, v)| v.parse::<u64>().unwrap()).sum();
    assert_eq!(total as usize, reference);
    assert!(out.iter().all(|(k, _)| k.contains("w00000")));
}

#[test]
fn inverted_index_round_trips() {
    let mut data = String::new();
    for d in 0..50 {
        data.push_str(&format!("doc{d:03}\tterm{} shared term{}\n", d % 7, (d + 1) % 7));
    }
    let c = LiveCluster::new(LiveConfig::small().with_block_size(256));
    c.upload("docs", "it", data.as_bytes());
    let (out, _) = c.run_job(&InvertedIndex, "docs", "it", 4, ReusePolicy::default());
    let shared = out.iter().find(|(k, _)| k == "shared").expect("'shared' indexed");
    // Lines are 28 bytes; 256-byte blocks may split ~1 in 9 lines, so
    // most doc ids must appear.
    let docs: Vec<&str> = shared.1.split(',').collect();
    assert!(docs.len() >= 45, "only {} docs indexed", docs.len());
    // Posting lists are sorted and unique.
    let mut sorted = docs.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted, docs);
}

#[test]
fn kmeans_pagerank_logreg_converge_end_to_end() {
    // k-means.
    let gen = ClusterGen::new(3, 0.4, 21);
    let pts = gen.generate(600, 4);
    let c = LiveCluster::new(LiveConfig::small().with_block_size(4096));
    c.upload("pts", "it", points_to_csv(&pts).as_bytes());
    let km = run_kmeans(&c, "pts", "it", gen.centers.clone(), 4, 4);
    assert!(km.movement.last().unwrap() < &0.5, "{:?}", km.movement);

    // page rank.
    let g = WebGraph::generate(150, 3, 6);
    let c2 = LiveCluster::new(LiveConfig::small().with_block_size(1024));
    c2.upload("edges", "it", g.to_edge_lines().as_bytes());
    let pr = run_pagerank(&c2, "edges", "it", 150, 4, 3);
    let mass: f64 = pr.ranks.values().sum();
    assert!((mass - 1.0).abs() < 0.05, "mass {mass}");

    // logistic regression.
    let examples = labeled_points(800, 0.0, 13);
    let c3 = LiveCluster::new(LiveConfig::small().with_block_size(8192));
    c3.upload("train", "it", eclipse_apps::examples_to_csv(&examples).as_bytes());
    let lr = run_logreg(&c3, "train", "it", 1.0, 8, 3);
    let acc = eclipse_apps::accuracy(&lr.weights, &examples);
    assert!(acc > 0.9, "accuracy {acc}");
}

#[test]
fn results_survive_cascading_failures() {
    let text = TextGen::new(150, 1.0, 6).generate(5, 48 * 1024);
    let c = LiveCluster::new(
        LiveConfig::small().with_nodes(10).with_block_size(2048),
    );
    c.upload("input", "it", text.as_bytes());
    let (baseline, _) = c.run_job(&WordCount, "input", "it", 4, ReusePolicy::default());
    for _ in 0..3 {
        let victim = c.ring().node_ids()[0];
        c.fail_node(victim).expect("survivors hold every replica");
        let (after, stats) = c.run_job(&WordCount, "input", "it", 4, ReusePolicy::default());
        assert_eq!(baseline, after, "output changed after failing {victim}");
        assert_eq!(stats.tasks_per_node[victim.index()], 0);
    }
    assert_eq!(c.ring().len(), 7);
}

#[test]
fn permission_checks_enforced_end_to_end() {
    let c = LiveCluster::new(LiveConfig::small());
    c.upload("secret", "alice", b"classified");
    // The metadata owner rejects the wrong user — surfaced as a panic
    // from the job driver (open fails).
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        c.run_job(&WordCount, "secret", "mallory", 1, ReusePolicy::default())
    }));
    assert!(result.is_err(), "mallory read alice's file");
}
