//! Edge cases and degenerate configurations: tiny clusters, empty
//! inputs, single blocks, extreme reducer counts, and zero-capacity
//! caches must all behave sensibly rather than panic or hang.

use eclipse_apps::WordCount;
use eclipse_core::{
    EclipseConfig, EclipseSim, JobSpec, LiveCluster, LiveConfig, ReusePolicy, SchedulerKind,
};
use eclipse_sched::{DelayConfig, LafConfig};
use eclipse_util::{GB, MB};
use eclipse_workloads::AppKind;

fn sim(nodes: usize) -> EclipseSim {
    EclipseSim::new(
        EclipseConfig::paper_defaults(SchedulerKind::Laf(LafConfig::default()))
            .with_nodes(nodes),
    )
}

#[test]
fn empty_file_job_completes_instantly_enough() {
    let mut s = sim(4);
    s.upload("empty", 0);
    let r = s.run_job(&JobSpec::batch(AppKind::Grep, "empty"));
    assert_eq!(r.map_tasks, 0);
    assert!(r.read_bytes.is_empty());
    // Reducers still run (zero-byte shares) but the job ends promptly.
    assert!(r.elapsed < 5.0, "empty job took {}", r.elapsed);
}

#[test]
fn single_node_cluster_runs_everything_locally() {
    let mut s = sim(1);
    s.upload("d", GB);
    let r = s.run_job(&JobSpec::batch(AppKind::WordCount, "d").with_reducers(4));
    assert_eq!(r.map_tasks, 8);
    assert_eq!(r.tasks_per_node, vec![8]);
    assert_eq!(r.read_bytes.get("remote_disk").copied().unwrap_or(0), 0);
}

#[test]
fn two_node_cluster_survives_one_failure() {
    let mut s = sim(2);
    s.upload("d", GB);
    let victim = s.ring().node_ids()[1];
    s.fail_node(victim);
    let r = s.run_job(&JobSpec::batch(AppKind::Grep, "d"));
    assert_eq!(r.map_tasks, 8);
    assert_eq!(r.tasks_per_node[victim.index()], 0);
}

#[test]
fn more_reducers_than_cluster_slots() {
    let mut s = sim(2); // 16 reduce slots total
    s.upload("d", GB);
    let r = s.run_job(&JobSpec::batch(AppKind::Sort, "d").with_reducers(100));
    assert_eq!(r.reduce_tasks, 100);
    assert!(r.elapsed > 0.0);
}

#[test]
fn one_reducer_funnels_everything() {
    let mut s = sim(8);
    s.upload("d", GB);
    let r = s.run_job(&JobSpec::batch(AppKind::Sort, "d").with_reducers(1));
    assert_eq!(r.reduce_tasks, 1);
    assert_eq!(r.shuffle_bytes, GB);
}

#[test]
fn iterative_with_one_iteration_equals_batch() {
    let mut a = sim(6);
    a.upload("d", 2 * GB);
    let batch = a.run_job(&JobSpec::batch(AppKind::KMeans, "d"));
    let mut b = sim(6);
    b.upload("d", 2 * GB);
    let single_iter = b.run_job(&JobSpec::iterative(AppKind::KMeans, "d", 1));
    // One iteration via the iterative driver = the plain batch path; the
    // only difference is the reuse policy (oCache on), which is idle on
    // round one.
    assert_eq!(batch.map_tasks, single_iter.map_tasks);
    assert!((batch.elapsed - single_iter.elapsed).abs() / batch.elapsed < 0.05);
}

#[test]
fn live_cluster_empty_and_tiny_inputs() {
    let c = LiveCluster::new(LiveConfig::small());
    c.upload("empty", "u", b"");
    let (out, stats) = c.run_job(&WordCount, "empty", "u", 2, ReusePolicy::default());
    assert!(out.is_empty());
    assert_eq!(stats.map_tasks, 0);

    c.upload("one-word", "u", b"solo");
    let (out, stats) = c.run_job(&WordCount, "one-word", "u", 2, ReusePolicy::default());
    assert_eq!(out, vec![("solo".to_string(), "1".to_string())]);
    assert_eq!(stats.map_tasks, 1);
}

#[test]
fn live_two_node_minimum() {
    let c = LiveCluster::new(LiveConfig::small().with_nodes(2).with_block_size(128));
    let data = "tiny cluster still works\n".repeat(40);
    c.upload("d", "u", data.as_bytes());
    let (out, _) = c.run_job(&WordCount, "d", "u", 1, ReusePolicy::default());
    assert!(!out.is_empty());
}

#[test]
fn zero_cache_delay_scheduler_combination() {
    let mut s = EclipseSim::new(
        EclipseConfig::paper_defaults(SchedulerKind::Delay(DelayConfig::default()))
            .with_nodes(4)
            .with_cache(0),
    );
    s.upload("d", GB);
    let a = s.run_job(&JobSpec::batch(AppKind::Grep, "d"));
    let b = s.run_job(&JobSpec::batch(AppKind::Grep, "d"));
    assert_eq!(a.cache_hits + b.cache_hits, 0, "nothing can be cached");
    assert_eq!(b.read_bytes.values().sum::<u64>(), GB);
}

#[test]
fn tiny_blocks_many_tasks() {
    let s = EclipseSim::new(
        EclipseConfig::paper_defaults(SchedulerKind::Laf(LafConfig::default())).with_nodes(4),
    );
    // Shrink blocks: 1 MB blocks over 64 MB = 64 tasks on 4 nodes.
    let mut cfg = EclipseConfig::paper_defaults(SchedulerKind::Laf(LafConfig::default()))
        .with_nodes(4);
    cfg.block_size = MB;
    let mut s2 = EclipseSim::new(cfg);
    s2.upload("d", 64 * MB);
    let r = s2.run_job(&JobSpec::batch(AppKind::Grep, "d"));
    assert_eq!(r.map_tasks, 64);
    let _ = s.now();
}

#[test]
fn trace_with_single_key_and_single_entry() {
    use eclipse_workloads::CostModel;
    let mut s = sim(4);
    let key = eclipse_util::HashKey::of_name("only");
    let r = s.run_trace(&[key], 8 * MB, &CostModel::eclipse(AppKind::Grep));
    assert_eq!(r.map_tasks, 1);
    let r2 = s.run_trace(&[], 8 * MB, &CostModel::eclipse(AppKind::Grep));
    assert_eq!(r2.map_tasks, 0);
    assert_eq!(r2.elapsed, 0.0);
}

#[test]
fn concurrent_batch_of_one_equals_solo() {
    let mut a = sim(6);
    a.upload("d", 2 * GB);
    let solo = a.run_job(&JobSpec::batch(AppKind::WordCount, "d"));
    let mut b = sim(6);
    b.upload("d", 2 * GB);
    let batch = b.run_concurrent(&[JobSpec::batch(AppKind::WordCount, "d")]);
    assert_eq!(batch.len(), 1);
    assert_eq!(batch[0].map_tasks, solo.map_tasks);
}
