//! Multi-tenant job server: output identity, crash-under-storm, and
//! cache-quota isolation.
//!
//! The PR's tentpole claim is that concurrency is invisible in the
//! results: J jobs admitted through the persistent [`JobServer`] pool
//! produce byte-identical output to the same jobs run one at a time on
//! the scoped executor, across schedulers and transports. The crash
//! test pins the recovery story when no single job owns the fault, and
//! the quota test pins the isolation story: an antagonist scan must not
//! be able to evict a victim tenant's warm working set.

use std::sync::Arc;
use std::time::{Duration, Instant};

use eclipse_apps::WordCount;
use eclipse_core::{
    JobServer, JobServerConfig, LiveCluster, LiveConfig, PoolJobSpec, ReusePolicy, SchedulerKind,
    TransportKind,
};

/// Deterministic per-tenant corpus: a shared skewed vocabulary plus a
/// tenant-tagged unique token per line, so every job's output is
/// distinguishable from every other's.
fn corpus(tag: &str, lines: usize) -> String {
    let vocab = ["the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog"];
    let mut out = String::new();
    let mut state = 0x9e3779b97f4a7c15u64 ^ tag.len() as u64;
    for b in tag.bytes() {
        state = state.wrapping_mul(31).wrapping_add(b as u64);
    }
    for line in 0..lines {
        for _ in 0..6 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            out.push_str(vocab[(state >> 59) as usize % vocab.len()]);
            out.push(' ');
        }
        out.push_str(&format!("{tag}{line:04}\n"));
    }
    out
}

fn render(out: &[(String, String)]) -> String {
    let mut s = String::new();
    for (k, v) in out {
        s.push_str(k);
        s.push('\t');
        s.push_str(v);
        s.push('\n');
    }
    s
}

fn tenancy_config(sched: SchedulerKind, transport: TransportKind) -> LiveConfig {
    LiveConfig::small()
        .with_nodes(4)
        .with_block_size(512)
        .with_scheduler(sched)
        .with_transport(transport)
}

/// Upload each tenant's dataset under its own user (per-file
/// permissions: a tenant can only open what it owns).
fn upload_tenants(c: &LiveCluster, data: &[(String, String)]) {
    for (user, text) in data {
        c.upload(&format!("in-{user}"), user, text.as_bytes());
    }
}

/// J∈{2,4} jobs through the pool, across {laf,delay} × {memory,tcp}:
/// every job's output is byte-identical to the same job run serially on
/// the scoped executor of an identically-configured fresh cluster.
#[test]
fn pool_concurrent_matches_serial_matrix() {
    for transport in [TransportKind::Memory, TransportKind::Tcp] {
        for sched in [
            SchedulerKind::Laf(Default::default()),
            SchedulerKind::Delay(Default::default()),
        ] {
            for jobs in [2usize, 4] {
                let data: Vec<(String, String)> = (0..jobs)
                    .map(|j| (format!("t{j}"), corpus(&format!("t{j}-"), 120 + 40 * j)))
                    .collect();

                // Serial reference: scoped executor, one job at a time.
                let serial = LiveCluster::new(tenancy_config(sched.clone(), transport));
                upload_tenants(&serial, &data);
                let reference: Vec<String> = data
                    .iter()
                    .map(|(user, _)| {
                        let (out, _) = serial.run_job(
                            &WordCount,
                            &format!("in-{user}"),
                            user,
                            3,
                            ReusePolicy::default(),
                        );
                        render(&out)
                    })
                    .collect();

                // Pool run: all J jobs admitted at once, J drivers.
                let pooled = Arc::new(LiveCluster::new(tenancy_config(sched.clone(), transport)));
                upload_tenants(&pooled, &data);
                let server = JobServer::new(
                    pooled.clone(),
                    JobServerConfig { concurrency: jobs, ..Default::default() },
                );
                let handles: Vec<_> = data
                    .iter()
                    .map(|(user, _)| {
                        server.submit(PoolJobSpec {
                            app: Arc::new(WordCount),
                            inputs: vec![format!("in-{user}")],
                            user: user.clone(),
                            reducers: 3,
                            reuse: ReusePolicy::default(),
                            weight: 1,
                        })
                    })
                    .collect();
                for (j, h) in handles.into_iter().enumerate() {
                    let (out, stats) = h.wait().unwrap_or_else(|e| {
                        panic!("job {j} failed under {sched:?}/{transport:?}: {e:?}")
                    });
                    assert_eq!(
                        render(&out),
                        reference[j],
                        "job {j} diverged from serial: J={jobs}, {sched:?}, {transport:?}"
                    );
                    assert!(stats.map_tasks > 0 && stats.reduce_tasks == 3);
                }
                server.shutdown();
                assert_eq!(pooled.active_jobs(), 0, "registry must drain after shutdown");
            }
        }
    }
}

/// Crash one node while several scoped jobs are in flight. No single
/// job owns the fault (`crash_node` picks an arbitrary live run to
/// carry recovery), yet with replication 2 every job must still commit
/// byte-identical output.
#[test]
fn crash_mid_storm_all_jobs_recover() {
    let jobs = 3usize;
    let data: Vec<(String, String)> =
        (0..jobs).map(|j| (format!("t{j}"), corpus(&format!("t{j}-"), 900))).collect();

    let reference: Vec<String> = {
        let calm = LiveCluster::new(LiveConfig::small().with_block_size(512));
        upload_tenants(&calm, &data);
        data.iter()
            .map(|(user, _)| {
                let (out, _) = calm.run_job(
                    &WordCount,
                    &format!("in-{user}"),
                    user,
                    3,
                    ReusePolicy::default(),
                );
                render(&out)
            })
            .collect()
    };

    let c = Arc::new(LiveCluster::new(LiveConfig::small().with_block_size(512)));
    upload_tenants(&c, &data);
    let victim = c.ring().node_ids()[2];
    std::thread::scope(|s| {
        let workers: Vec<_> = data
            .iter()
            .map(|(user, _)| {
                let c = c.clone();
                s.spawn(move || {
                    c.try_run_job(&WordCount, &format!("in-{user}"), user, 3, ReusePolicy::default())
                })
            })
            .collect();
        // Land the crash mid-storm: wait for at least one registered
        // run, but crash regardless once the grace period lapses (the
        // between-jobs degradation to `fail_node` is also legal).
        let t0 = Instant::now();
        while c.active_jobs() == 0 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_micros(200));
        }
        c.crash_node(victim).expect("one crash is within the fault model");
        for (j, w) in workers.into_iter().enumerate() {
            let (out, stats) = w
                .join()
                .expect("job thread must not panic")
                .unwrap_or_else(|e| panic!("job {j} did not survive the crash: {e:?}"));
            assert_eq!(render(&out), reference[j], "job {j} output corrupted by crash");
            assert!(stats.map_tasks > 0);
        }
    });
    assert!(!c.ring().contains(victim), "victim must be out of the ring");
    assert_eq!(c.active_jobs(), 0);
}

/// Warm-run cache hit ratio for one user.
fn warm_ratio(c: &LiveCluster, user: &str) -> f64 {
    let (_, s) = c.run_job(&WordCount, &format!("in-{user}"), user, 2, ReusePolicy::default());
    s.cache_hits as f64 / (s.cache_hits + s.cache_misses).max(1) as f64
}

/// Quota isolation: an antagonist scanning a dataset much larger than
/// the cache evicts the victim's warm set when quotas are off, and
/// cannot when its tenant is capped — the victim's hit ratio under
/// attack must not drop below its solo baseline.
#[test]
fn quota_confines_antagonist_scan() {
    // Delay scheduling so placement is purely data-local on an idle
    // cluster: warm-run hit ratios then measure cache residency alone,
    // not LAF fairness-counter drift from the antagonist's task surge.
    let small_cache = || {
        let mut cfg = LiveConfig::small()
            .with_nodes(4)
            .with_block_size(512)
            .with_cache_shards(1)
            .with_scheduler(SchedulerKind::Delay(Default::default()));
        cfg.cache_per_node = 64 * 1024;
        cfg
    };
    let victim_text = corpus("vic-", 400); // ~18 KB, fits the cache
    let scan_text = corpus("scan", 24_000); // ~1.1 MB, floods it

    // Solo baseline: the victim alone, cold then warm.
    let solo = LiveCluster::new(small_cache());
    solo.upload("in-victim", "victim", victim_text.as_bytes());
    warm_ratio(&solo, "victim");
    let baseline = warm_ratio(&solo, "victim");
    assert!(baseline > 0.9, "solo warm run should hit the cache: {baseline}");

    // Quotas off: the scan evicts the victim's warm set (this is the
    // interference the quota exists to prevent — without it the test
    // below would be vacuous).
    let open = LiveCluster::new(small_cache());
    open.upload("in-victim", "victim", victim_text.as_bytes());
    open.upload("in-scan", "scan", scan_text.as_bytes());
    warm_ratio(&open, "victim");
    warm_ratio(&open, "scan");
    let evicted = warm_ratio(&open, "victim");
    assert!(
        evicted < baseline * 0.5,
        "without quotas the scan should flush the victim: {evicted} vs {baseline}"
    );

    // Quota on: cap the antagonist tenant well under the cache budget.
    let fair = LiveCluster::new(small_cache());
    fair.upload("in-victim", "victim", victim_text.as_bytes());
    fair.upload("in-scan", "scan", scan_text.as_bytes());
    fair.set_tenant_quota("scan", 24 * 1024);
    warm_ratio(&fair, "victim");
    warm_ratio(&fair, "scan");
    let defended = warm_ratio(&fair, "victim");
    assert!(
        defended >= baseline - 1e-9,
        "quota failed to protect the victim: {defended} vs solo {baseline}"
    );
    assert!(
        fair.tenant_cache_used("scan") <= 4 * 24 * 1024,
        "scan tenant exceeded its per-node quota in aggregate"
    );
}
