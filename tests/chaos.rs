//! Deterministic chaos suite: kill every node at every job phase and
//! prove the output never changes.
//!
//! Everything here is reproducible by construction: the input text is a
//! fixed function of nothing, the crash points are expressed in the
//! job's own progress units (map commits, shuffle batches, reduce
//! start), and [`FaultPlan`] consumes them deterministically. A failure
//! in this suite replays identically on every run.

use eclipse_apps::WordCount;
use eclipse_core::net::{NetError, Rpc, RpcKind, Transport};
use eclipse_core::{FaultPlan, JobError, LiveCluster, LiveConfig, ReusePolicy, SchedulerKind};
use eclipse_dhtfs::FsError;
use std::time::{Duration, Instant};

const NODES: usize = 6;
const REDUCERS: usize = 3;
const USER: &str = "chaos";

/// Fixed input: ~20 KB of text, ~40 blocks at 512 bytes.
fn seeded_text() -> String {
    "alpha beta gamma delta epsilon zeta\n".repeat(600)
}

fn sched_of(name: &str) -> SchedulerKind {
    match name {
        "laf" => SchedulerKind::Laf(Default::default()),
        "delay" => SchedulerKind::Delay(Default::default()),
        other => panic!("unknown scheduler {other}"),
    }
}

fn cluster(sched: &str) -> LiveCluster {
    let c = LiveCluster::new(
        LiveConfig::small()
            .with_nodes(NODES)
            .with_block_size(512)
            .with_scheduler(sched_of(sched)),
    );
    c.upload("input", USER, seeded_text().as_bytes());
    c
}

fn baseline(sched: &str) -> Vec<(String, String)> {
    cluster(sched)
        .run_job(&WordCount, "input", USER, REDUCERS, ReusePolicy::default())
        .0
}

/// The acceptance-criteria matrix: for every (victim, phase, scheduler)
/// combination, one crash mid-job still yields output byte-identical to
/// the fault-free run, the victim leaves the ring, and recovery is
/// visible in the stats.
#[test]
fn crash_matrix_every_victim_every_phase() {
    for sched in ["laf", "delay"] {
        let expect = baseline(sched);
        for vi in 0..NODES {
            for phase in ["map", "shuffle", "reduce"] {
                let c = cluster(sched);
                let victim = c.ring().node_ids()[vi];
                let plan = match phase {
                    // Thresholds vary by victim index (still fixed per
                    // combination) so the crash lands at different
                    // points in the map stream across the matrix.
                    "map" => FaultPlan::new().crash_after_maps(victim, 1 + (vi as u64 % 5)),
                    "shuffle" => {
                        FaultPlan::new().crash_after_spills(victim, 1 + (vi as u64 % 3))
                    }
                    "reduce" => FaultPlan::new().crash_in_reduce(victim),
                    _ => unreachable!(),
                };
                c.inject_faults(plan);
                let (out, stats) = c
                    .try_run_job(&WordCount, "input", USER, REDUCERS, ReusePolicy::default())
                    .unwrap_or_else(|e| {
                        panic!("[{sched}] victim {vi} phase {phase}: job failed: {e}")
                    });
                assert_eq!(
                    out, expect,
                    "[{sched}] victim {vi} phase {phase}: output diverged"
                );
                assert_eq!(
                    stats.failed_nodes, 1,
                    "[{sched}] victim {vi} phase {phase}: crash not recorded"
                );
                assert!(
                    !c.ring().contains(victim),
                    "[{sched}] victim {vi} phase {phase}: victim still in ring"
                );
                assert!(
                    stats.recovered_blocks > 0,
                    "[{sched}] victim {vi} phase {phase}: nothing re-replicated"
                );
                assert!(
                    stats.stabilize_rounds > 0,
                    "[{sched}] victim {vi} phase {phase}: ring never re-stabilized"
                );
            }
        }
    }
}

/// A crash that destroys every copy of a block must end in
/// `JobError::DataLoss` — never a wrong or partial result, never a
/// hang. With zero extra replicas each block has exactly one copy, so
/// any data-holding victim qualifies.
#[test]
fn total_replica_loss_is_terminal_not_wrong() {
    let c = LiveCluster::new(
        LiveConfig::small().with_nodes(4).with_block_size(512).with_replicas(0),
    );
    c.upload("input", USER, seeded_text().as_bytes());
    let victim = c
        .ring()
        .node_ids()
        .into_iter()
        .find(|&n| !c.store().blocks_on(n).is_empty())
        .expect("some node holds blocks");
    c.inject_faults(FaultPlan::new().crash_after_maps(victim, 1));
    let err = c
        .try_run_job(&WordCount, "input", USER, 2, ReusePolicy::default())
        .expect_err("single-copy data cannot survive its holder");
    assert!(matches!(err, JobError::DataLoss(_)), "unexpected error: {err:?}");
}

/// Regression for the double-failure path in `fail_node`: when the
/// designated source replica is itself gone, recovery must return
/// `FsError::DataLoss` instead of panicking (it used to `assert!`).
#[test]
fn double_failure_returns_recovery_error() {
    let c = LiveCluster::new(LiveConfig::small().with_nodes(NODES).with_block_size(512));
    c.upload("input", USER, seeded_text().as_bytes());
    let victim = c
        .ring()
        .node_ids()
        .into_iter()
        .find(|&n| !c.store().blocks_on(n).is_empty())
        .expect("some node holds blocks");
    // Destroy every OTHER shard behind the metadata layer's back — the
    // "simultaneous" second failure. Every source the recovery plan
    // picks for the victim's blocks is now gone.
    for n in c.ring().node_ids() {
        if n != victim {
            c.store().wipe_node(n);
        }
    }
    let err = c.fail_node(victim).expect_err("sources are gone");
    assert!(matches!(err, FsError::DataLoss(_)), "unexpected error: {err:?}");
}

/// An injected straggler slows the job down but never changes output or
/// trips failure detection.
#[test]
fn slow_node_changes_nothing_but_time() {
    let expect = baseline("laf");
    let c = cluster("laf");
    let straggler = c.ring().node_ids()[2];
    c.inject_faults(FaultPlan::new().slow_node(straggler, 50));
    let (out, stats) = c
        .try_run_job(&WordCount, "input", USER, REDUCERS, ReusePolicy::default())
        .expect("a slow node is not a failure");
    assert_eq!(out, expect);
    assert_eq!(stats.failed_nodes, 0);
    assert!(c.ring().contains(straggler));
}

/// The speculation matrix: a hard straggler under every (scheduler,
/// transport) combination, speculation off vs on. Output must be
/// byte-identical to the fault-free baseline in every cell — backups
/// race primaries on the commit board and the loser's cancellation
/// must never suppress a committed attempt's sends (a violation shows
/// up here as missing or doubled counts).
#[test]
fn speculation_matrix_slow_node_byte_identical() {
    use eclipse_core::{SpeculationConfig, TransportKind};
    for sched in ["laf", "delay"] {
        let expect = baseline(sched);
        for transport in [TransportKind::Memory, TransportKind::Tcp] {
            for speculate in [false, true] {
                let mut cfg = LiveConfig::small()
                    .with_nodes(NODES)
                    .with_block_size(512)
                    // One worker thread per node even on single-core CI
                    // hosts, so the straggler really claims map tasks.
                    .with_map_slots(NODES)
                    .with_scheduler(sched_of(sched))
                    .with_transport(transport);
                if speculate {
                    cfg = cfg.with_speculation(SpeculationConfig {
                        slowdown: 2.0,
                        min_completed: 3,
                        poll_micros: 200,
                    });
                }
                let c = LiveCluster::new(cfg);
                c.upload("input", USER, seeded_text().as_bytes());
                let straggler = c.ring().node_ids()[REDUCERS];
                c.inject_faults(FaultPlan::new().slow_node(straggler, 3_000));
                let (out, stats) = c
                    .try_run_job(&WordCount, "input", USER, REDUCERS, ReusePolicy::default())
                    .expect("a slow node is not a failure");
                assert_eq!(
                    out, expect,
                    "output diverged: sched={sched} transport={transport:?} spec={speculate}"
                );
                assert_eq!(stats.failed_nodes, 0, "straggler must not be expelled");
                assert!(c.ring().contains(straggler));
                if !speculate {
                    assert_eq!(stats.speculative_attempts, 0);
                    assert_eq!(stats.cancelled_attempts, 0);
                }
                // Attempt accounting: every attempt is a primary, a
                // retry, or a backup; wins can't exceed backups.
                assert!(stats.speculative_wins <= stats.speculative_attempts);
                assert!(
                    stats.speculative_wins + stats.retries
                        <= stats.attempts - stats.map_tasks,
                    "sched={sched} transport={transport:?} spec={speculate}: {stats:?}"
                );
            }
        }
    }
}

/// Replicated map-out under a straggler *and* speculation at once: the
/// two tentpole modes compose without changing output.
#[test]
fn replicated_map_out_composes_with_speculation() {
    use eclipse_core::SpeculationConfig;
    let expect = baseline("laf");
    for r in [2usize, 3] {
        let c = LiveCluster::new(
            LiveConfig::small()
                .with_nodes(NODES)
                .with_block_size(512)
                .with_map_slots(NODES)
                .with_map_replication(r)
                .with_speculation(SpeculationConfig {
                    slowdown: 2.0,
                    min_completed: 3,
                    poll_micros: 200,
                }),
        );
        c.upload("input", USER, seeded_text().as_bytes());
        let straggler = c.ring().node_ids()[REDUCERS];
        c.inject_faults(FaultPlan::new().slow_node(straggler, 2_000));
        let (out, stats) = c
            .try_run_job(&WordCount, "input", USER, REDUCERS, ReusePolicy::default())
            .expect("replication + speculation is fault-free");
        assert_eq!(out, expect, "r={r} diverged under straggler + speculation");
        assert!(stats.local_shuffle_records > 0, "r={r} produced no local shuffle");
    }
}

/// Faults and a crash composed in one plan: task 0's first attempts
/// die, then a node crashes mid-map — retries and crash recovery must
/// compose without double-counting.
#[test]
fn composed_faults_still_byte_identical() {
    let expect = baseline("laf");
    let c = cluster("laf");
    let victim = c.ring().node_ids()[3];
    c.inject_faults(
        FaultPlan::new().fail_task(0, 2).crash_after_maps(victim, 4),
    );
    let (out, stats) = c
        .try_run_job(&WordCount, "input", USER, REDUCERS, ReusePolicy::default())
        .expect("retries + one crash are within the fault model");
    assert_eq!(out, expect, "composed faults diverged the output");
    assert_eq!(stats.failed_nodes, 1);
    assert!(stats.retries >= 2, "injected task faults were not retried");
    assert_eq!(stats.attempts, stats.map_tasks + stats.retries);
}

/// Two successive crashes in one job (replication factor 2 tolerates
/// them when they are not simultaneous: the first recovery restores
/// the factor before the second crash fires).
#[test]
fn two_staggered_crashes_survive() {
    let expect = baseline("laf");
    let c = cluster("laf");
    let ids = c.ring().node_ids();
    let (a, b) = (ids[1], ids[4]);
    c.inject_faults(
        FaultPlan::new().crash_after_maps(a, 2).crash_after_maps(b, 10),
    );
    let (out, stats) = c
        .try_run_job(&WordCount, "input", USER, REDUCERS, ReusePolicy::default())
        .expect("staggered crashes are within the fault model");
    assert_eq!(out, expect);
    assert_eq!(stats.failed_nodes, 2);
    assert_eq!(c.ring().len(), NODES - 2);
}

// ---- network faults (PR 3: injected at the transport layer) ---------
//
// These compose with the crash chaos above but attack a different
// layer: the frames themselves. The in-memory backend's fault API cuts
// links, drops frames, and delays delivery underneath an unmodified
// executor — the job must absorb all of it without changing a byte of
// output.

/// A one-way partition between the executing worker and a shuffle home:
/// batches shipped into the cut time out, the partition re-homes to the
/// sender, and the faulted attempt retries — output identical.
#[test]
fn one_way_partition_rehomes_shuffle_without_changing_output() {
    let expect = baseline("laf");
    let c = cluster("laf");
    let ids = c.ring().node_ids();
    // Map threads execute under ids[0]'s identity (capped at hardware
    // parallelism, stealing covers the rest); reducer partitions are
    // homed round-robin from ids[0], so ids[1] hosts partition 1 and
    // this cut eats real shuffle traffic.
    let net = c.mem_net().expect("default transport is the mem backend");
    net.cut_one_way(ids[0], ids[1]);
    let (out, stats) = c
        .try_run_job(&WordCount, "input", USER, REDUCERS, ReusePolicy::default())
        .expect("a one-way partition is not fatal");
    assert_eq!(out, expect, "partition changed the output");
    assert!(stats.timeouts > 0, "the cut link never timed anything out");
    assert!(stats.rpc_retries > 0, "timeouts must have been retried");
    assert_eq!(stats.failed_nodes, 0, "a network cut is not a node crash");
    assert_eq!(c.ring().len(), NODES, "no node may be expelled for a cut link");
}

/// Dropped shuffle frames are retried transparently and never
/// double-counted: the per-attempt sequence numbers plus the commit
/// board keep exactly one copy of every record.
#[test]
fn dropped_shuffle_batches_are_retried_not_double_counted() {
    let expect = baseline("laf");
    let c = cluster("laf");
    let net = c.mem_net().expect("default transport is the mem backend");
    net.drop_rpcs(RpcKind::ShuffleBatch, 2);
    let (out, stats) = c
        .try_run_job(&WordCount, "input", USER, REDUCERS, ReusePolicy::default())
        .expect("dropped frames are absorbed by retry");
    assert_eq!(out, expect, "a retried batch was lost or double-counted");
    assert!(stats.timeouts >= 2, "both drop tokens should cost a timeout");
    assert!(stats.rpc_retries >= 2, "dropped frames must be resent");
}

/// The windowed one-way lane under frame loss *and* reordering: with a
/// tiny spill-coalescing target every map task ships a stream of
/// sequence numbers, and a dropped batch is only retransmitted at
/// flush time — after every later batch of the attempt has already
/// landed. The receiver's reorder-tolerant dedup must deliver the
/// straggler exactly once, out of order, without double-counting any
/// record.
#[test]
fn dropped_windowed_batch_lands_out_of_order_exactly_once() {
    let expect = baseline("laf");
    let c = LiveCluster::new(
        LiveConfig::small()
            .with_nodes(NODES)
            .with_block_size(512)
            // Spill every ~128 bytes: each task ships several windowed
            // batches, so a retransmission necessarily arrives behind
            // higher sequence numbers.
            .with_shuffle_batch_bytes(128),
    );
    c.upload("input", USER, seeded_text().as_bytes());
    let net = c.mem_net().expect("default transport is the mem backend");
    net.drop_rpcs(RpcKind::ShuffleBatch, 3);
    let (out, stats) = c
        .try_run_job(&WordCount, "input", USER, REDUCERS, ReusePolicy::default())
        .expect("dropped windowed batches are absorbed by flush-time retry");
    assert_eq!(out, expect, "a reordered retransmission was lost or double-counted");
    assert!(stats.timeouts >= 3, "each drop token should cost a timeout");
    assert!(stats.rpc_retries >= 3, "dropped windowed batches must be resent");
    assert_eq!(stats.failed_nodes, 0, "frame loss is not a node crash");
}

/// A dropped `ReplicaSync` frame during crash recovery: the retry loop
/// re-issues it and recovery still completes with full output.
#[test]
fn rpc_timeout_during_rereplication_is_absorbed() {
    let expect = baseline("laf");
    let c = cluster("laf");
    let victim = c.ring().node_ids()[2];
    c.inject_faults(FaultPlan::new().crash_after_maps(victim, 2));
    let net = c.mem_net().expect("default transport is the mem backend");
    net.drop_rpcs(RpcKind::ReplicaSync, 1);
    let (out, stats) = c
        .try_run_job(&WordCount, "input", USER, REDUCERS, ReusePolicy::default())
        .expect("one lost recovery frame is within the retry budget");
    assert_eq!(out, expect, "recovery under frame loss diverged the output");
    assert_eq!(stats.failed_nodes, 1);
    assert!(stats.recovered_blocks > 0, "re-replication never happened");
    assert!(stats.timeouts >= 1, "the dropped ReplicaSync should time out once");
    assert!(stats.rpc_retries >= 1, "the dropped ReplicaSync was not retried");
}

/// Regression (PR 3 tentpole fix): `fail_node` must poison the victim's
/// transport endpoint so peers blocked on in-flight RPCs get a
/// connection error immediately — before this fix they waited out the
/// full delivery delay (or forever, over TCP, until heartbeat expiry).
#[test]
fn fail_node_poisons_in_flight_rpcs() {
    let c = LiveCluster::new(LiveConfig::small().with_nodes(4).with_block_size(512));
    c.upload("input", USER, seeded_text().as_bytes());
    let ids = c.ring().node_ids();
    let (caller, victim) = (ids[0], ids[2]);
    let block = c.store().blocks_on(victim)[0];
    let net = c.mem_net().expect("default transport is the mem backend").clone();
    // Hold the victim-bound frame in flight far longer than the test
    // is willing to wait: only endpoint poisoning can unblock it.
    net.delay_link(caller, victim, Duration::from_secs(30));
    let started = Instant::now();
    let blocked = std::thread::spawn({
        let net = net.clone();
        move || net.call(caller, victim, Rpc::GetBlock { block })
    });
    // Let the call reach its in-flight wait, then kill the node.
    std::thread::sleep(Duration::from_millis(50));
    let report = c.fail_node(victim).expect("replicas survive on 3 nodes");
    assert!(report.recovered_blocks > 0, "the victim held data");
    let err = blocked.join().unwrap().expect_err("poisoned endpoint must error");
    assert_eq!(err, NetError::ConnectionClosed { to: victim });
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "blocked RPC waited out the delay instead of failing fast"
    );
    assert!(!net.endpoint_open(victim), "endpoint must stay closed after fail_node");
    assert!(!c.ring().contains(victim));
}

// --- DST-promoted composed scenarios -----------------------------------
//
// These three regressions pin composed failure modes the DST harness
// (eclipse_core::dst) is built to explore: each stages its network
// fault at a point on the job's *logical clock* via a ChaosObserver,
// exactly as a sampled schedule would, and demands byte-identical
// output. A failing DST seed that shrinks to one of these shapes
// belongs here as the next named entry.

/// Crash-during-stabilize: a node dies mid-map and the very first
/// stabilization probes of the recovery path are eaten by drop tokens
/// armed at the same progress point. Probes consume drop/cut tokens
/// like any frame (a dropped probe reads as transient unreachability),
/// so stabilization must simply run more rounds — never expel a
/// survivor, never lose a block, never change a byte.
#[test]
fn crash_during_stabilize_with_dropped_probes() {
    use eclipse_core::dst::{ChaosObserver, NetOp, Point};
    use std::sync::Arc;
    let expect = baseline("laf");
    let c = cluster("laf");
    let victim = c.ring().node_ids()[2];
    let net = c.mem_net().expect("default transport is the mem backend").clone();
    // Armed at the crash trigger's own milestone: the observer fires
    // before the crash hook at the same map count, so the probes that
    // stabilize the post-crash ring find the tokens already installed.
    let obs = Arc::new(ChaosObserver::new(
        net,
        vec![(Point::Maps(2), NetOp::DropKind { kind: RpcKind::Heartbeat, n: 2 })],
    ));
    c.set_observer(Some(obs.clone()));
    c.inject_faults(FaultPlan::new().crash_after_maps(victim, 2));
    let (out, stats) = c
        .try_run_job(&WordCount, "input", USER, REDUCERS, ReusePolicy::default())
        .expect("dropped probes during stabilization are absorbed");
    c.set_observer(None);
    assert_eq!(out, expect, "crash + dropped probes diverged the output");
    assert_eq!(obs.fired(), 1, "the armed drop never fired");
    assert_eq!(stats.failed_nodes, 1, "exactly the scheduled victim fails");
    assert!(stats.stabilize_rounds >= 1, "recovery never re-stabilized the ring");
    assert!(stats.recovered_blocks > 0, "the victim's blocks were not re-replicated");
    assert!(!c.ring().contains(victim));
    assert_eq!(c.ring().len(), NODES - 1, "a survivor was expelled over lost probes");
}

/// Partition-while-speculative-backup-races: a straggler provokes a
/// backup attempt, then a one-way cut severs the straggler's shuffle
/// path to a reducer home while original and backup race the commit
/// board. Whichever attempt wins — and whichever route its batches
/// take after the re-home — the reducer-side (task, attempt) dedup
/// must keep exactly one copy of every record.
#[test]
fn partition_while_speculative_backup_races() {
    use eclipse_core::dst::{ChaosObserver, NetOp, Point};
    use eclipse_core::SpeculationConfig;
    use std::sync::Arc;
    let expect = baseline("laf");
    let c = LiveCluster::new(
        LiveConfig::small()
            .with_nodes(NODES)
            .with_block_size(512)
            .with_map_slots(NODES)
            .with_scheduler(sched_of("laf"))
            .with_speculation(SpeculationConfig {
                slowdown: 2.0,
                min_completed: 3,
                poll_micros: 200,
            }),
    );
    c.upload("input", USER, seeded_text().as_bytes());
    let ids = c.ring().node_ids();
    let straggler = ids[REDUCERS];
    let net = c.mem_net().expect("default transport is the mem backend").clone();
    // Cut the straggler's path to partition 1's home once a few
    // batches are out (the monitor needs committed tasks before it
    // speculates), heal it a few batches later.
    let obs = Arc::new(ChaosObserver::new(
        net,
        vec![
            (Point::Spills(2), NetOp::Cut { from: straggler, to: ids[1] }),
            (Point::Spills(8), NetOp::Heal { from: straggler, to: ids[1] }),
        ],
    ));
    c.set_observer(Some(obs.clone()));
    c.inject_faults(FaultPlan::new().slow_node(straggler, 3_000));
    let (out, stats) = c
        .try_run_job(&WordCount, "input", USER, REDUCERS, ReusePolicy::default())
        .expect("a partitioned straggler with a racing backup is not fatal");
    c.set_observer(None);
    assert_eq!(out, expect, "speculative race under partition diverged the output");
    assert!(obs.fired() >= 1, "the armed cut never fired");
    assert_eq!(stats.failed_nodes, 0, "neither straggler nor cut is a crash");
    assert!(c.ring().contains(straggler), "the straggler must not be expelled");
    assert!(
        stats.speculative_wins + stats.retries <= stats.attempts - stats.map_tasks,
        "attempt accounting broke under the race: {stats:?}"
    );
}

/// Drop-on-retransmitted-window-slot: drop tokens armed mid-stream eat
/// windowed shuffle frames *after* earlier slots of the same attempt
/// have shipped and acked — so the losses land on slots whose
/// retransmissions arrive behind higher sequence numbers, and a token
/// can eat a flush-time retransmission itself. The window must keep
/// re-flushing until every slot acks, and the reorder-tolerant dedup
/// must deliver each exactly once.
#[test]
fn midstream_drop_hits_retransmitted_window_slot() {
    use eclipse_core::dst::{ChaosObserver, NetOp, Point};
    use std::sync::Arc;
    let expect = baseline("laf");
    let c = LiveCluster::new(
        LiveConfig::small()
            .with_nodes(NODES)
            .with_block_size(512)
            .with_scheduler(sched_of("laf"))
            // Spill every ~128 bytes so each attempt ships a stream of
            // window slots and mid-stream loss forces reordered
            // retransmissions.
            .with_shuffle_batch_bytes(128),
    );
    c.upload("input", USER, seeded_text().as_bytes());
    let net = c.mem_net().expect("default transport is the mem backend").clone();
    let obs = Arc::new(ChaosObserver::new(
        net.clone(),
        vec![(Point::Spills(3), NetOp::DropKind { kind: RpcKind::ShuffleBatch, n: 2 })],
    ));
    c.set_observer(Some(obs.clone()));
    let (out, stats) = c
        .try_run_job(&WordCount, "input", USER, REDUCERS, ReusePolicy::default())
        .expect("mid-stream window loss is absorbed by flush retries");
    c.set_observer(None);
    assert_eq!(out, expect, "a retransmitted slot was lost or double-counted");
    assert_eq!(obs.fired(), 1, "the armed drop never fired");
    assert!(stats.timeouts >= 2, "both drop tokens should cost a timeout");
    assert!(stats.rpc_retries >= 2, "dropped slots must be retransmitted");
    assert!(
        net.stats().kind_retrans(RpcKind::ShuffleBatch) > 0,
        "no shuffle bytes were ever retransmitted"
    );
    assert_eq!(stats.failed_nodes, 0, "frame loss is not a node crash");
}

// --- elastic membership (PR 8: runtime join and graceful leave) --------
//
// Shrunk DST schedules promoted to named regressions: each pins a
// composed elastic failure mode the sampler explores — a join or a
// graceful leave on the job's logical clock, racing the crash, network
// and speculation machinery above. The oracle is always the same:
// byte-identical output.

/// Join racing a crash of its successor: the joiner splits the range of
/// the node that hands its blocks over, and one map later that very
/// node dies. Crash recovery must already count the joiner as a
/// first-class replica holder — and the join's pulled copies must
/// survive the donor's death.
#[test]
fn join_races_crash_of_its_successor() {
    use eclipse_util::HashKey;
    let expect = baseline("laf");
    let c = cluster("laf");
    // A scheduled join generates the name "join-0"; its ring position
    // is the hash of that name, so the successor whose range it splits
    // is known before the job starts.
    let ring = c.ring();
    let successor = ring.owner_of(HashKey::of_name("join-0")).unwrap().id;
    c.inject_faults(FaultPlan::new().join_at_maps(2).crash_after_maps(successor, 4));
    let (out, stats) = c
        .try_run_job(&WordCount, "input", USER, REDUCERS, ReusePolicy::default())
        .expect("a join racing its successor's crash is within the fault model");
    assert_eq!(out, expect, "join + successor crash diverged the output");
    assert_eq!(stats.joins, 1, "the scheduled join never fired");
    assert_eq!(stats.failed_nodes, 1, "the scheduled crash never fired");
    assert!(stats.recovered_blocks > 0, "the dead successor held nothing");
    assert_eq!(c.ring().len(), NODES, "one in, one out");
    assert!(!c.ring().contains(successor));
    assert_eq!(
        stats.attempts,
        stats.map_tasks + stats.retries + stats.speculative_attempts,
        "attempt ledger broke under join + crash: {stats:?}"
    );
}

/// Graceful leave while the leaver is a slowed straggler with a
/// speculative backup racing its claimed task: the leave drains the
/// uncommitted claim back to the scheduler, and whichever attempt wins
/// the commit board — the drained retry, the backup, or the leaver's
/// own parked pre-poison batches — the reducer dedup keeps exactly one
/// copy of every record.
#[test]
fn leave_while_speculative_backup_of_drained_task_runs() {
    use eclipse_core::SpeculationConfig;
    let expect = baseline("laf");
    let c = LiveCluster::new(
        LiveConfig::small()
            .with_nodes(NODES)
            .with_block_size(512)
            .with_map_slots(NODES)
            .with_scheduler(sched_of("laf"))
            .with_speculation(SpeculationConfig {
                slowdown: 2.0,
                min_completed: 3,
                poll_micros: 200,
            }),
    );
    c.upload("input", USER, seeded_text().as_bytes());
    let straggler = c.ring().node_ids()[REDUCERS];
    c.inject_faults(
        FaultPlan::new().slow_node(straggler, 3_000).leave_at_maps(straggler, 4),
    );
    let (out, stats) = c
        .try_run_job(&WordCount, "input", USER, REDUCERS, ReusePolicy::default())
        .expect("a graceful leave of a straggler is never fatal");
    assert_eq!(out, expect, "leave + speculative race diverged the output");
    assert_eq!(stats.leaves, 1, "the scheduled leave never fired");
    assert_eq!(stats.failed_nodes, 0, "a graceful leave is not a crash");
    assert!(!c.ring().contains(straggler), "the leaver stayed in the ring");
    // The race has two legal outcomes: the leaver still held its
    // uncommitted claim (drained back to the scheduler), or a
    // speculative backup already won it on the commit board before the
    // leave fired. Either way somebody must have contested the claim.
    assert!(
        stats.drained_tasks >= 1 || stats.speculative_attempts >= 1,
        "neither a drained claim nor a racing backup materialized: {stats:?}"
    );
    assert!(stats.speculative_wins <= stats.speculative_attempts);
    assert_eq!(
        stats.attempts,
        stats.map_tasks + stats.retries + stats.speculative_attempts,
        "attempt ledger broke under leave + speculation: {stats:?}"
    );
}

/// Join under a one-way partition from the joiner to its block donor:
/// every handoff pull the joiner issues into the cut dies. The pulls
/// are benign by design — a block that cannot be pulled keeps its
/// pre-join holders and stays readable — so the join completes, nobody
/// is expelled, and output is unchanged.
#[test]
fn join_under_one_way_partition_to_joiner() {
    use eclipse_ring::NodeId;
    use eclipse_util::HashKey;
    let expect = baseline("laf");
    let c = cluster("laf");
    let ring = c.ring();
    let donor = ring.owner_of(HashKey::of_name("join-0")).unwrap().id;
    // Node ids are dense, so the joiner's id — and therefore the cut —
    // can be armed before its endpoint even exists.
    let joiner = NodeId(NODES as u32);
    let net = c.mem_net().expect("default transport is the mem backend");
    net.cut_one_way(joiner, donor);
    c.inject_faults(FaultPlan::new().join_at_maps(2));
    let (out, stats) = c
        .try_run_job(&WordCount, "input", USER, REDUCERS, ReusePolicy::default())
        .expect("a partitioned handoff pull is benign, not fatal");
    assert_eq!(out, expect, "join under partition diverged the output");
    assert_eq!(stats.joins, 1, "the scheduled join never fired");
    assert_eq!(stats.failed_nodes, 0, "a dead handoff pull is not a crash");
    assert_eq!(c.ring().len(), NODES + 1, "the joiner must still be admitted");
    assert!(c.ring().contains(joiner));
    assert_eq!(
        stats.attempts,
        stats.map_tasks + stats.retries + stats.speculative_attempts,
        "attempt ledger broke under join + partition: {stats:?}"
    );
}

/// Regression for a deadlock the 1,000-seed chaos sweep found (seed
/// 5001): with two joins scheduled, the first joiner's latent worker
/// lane popped its node id via `match rt.joined.lock().pop()` — and the
/// match-scrutinee guard kept the `joined` mutex locked across the
/// joiner's *entire* worker loop. If that lane then committed the map
/// that triggered join #2, `admit_and_handoff`'s `joined.push` blocked
/// on the mutex its own thread held, hanging the job forever (the
/// second latent lane and the reducers parked behind it). The fix binds
/// the popped id before matching so the guard drops first. The hang was
/// interleaving-dependent (~40% of runs), so loop a few times.
#[test]
fn two_joins_second_may_fire_from_first_joiners_lane() {
    let expect = baseline("laf");
    for round in 0..5 {
        let c = cluster("laf");
        c.inject_faults(FaultPlan::new().join_at_maps(2).join_at_maps(4));
        let (out, stats) = c
            .try_run_job(&WordCount, "input", USER, REDUCERS, ReusePolicy::default())
            .unwrap_or_else(|e| panic!("round {round}: double join failed: {e}"));
        assert_eq!(out, expect, "round {round}: double join diverged the output");
        assert_eq!(stats.joins, 2, "round {round}: a scheduled join never fired");
        assert_eq!(stats.failed_nodes, 0);
        assert_eq!(c.ring().len(), NODES + 2, "round {round}: both joiners admitted");
        assert_eq!(
            stats.attempts,
            stats.map_tasks + stats.retries + stats.speculative_attempts,
            "round {round}: attempt ledger broke under double join: {stats:?}"
        );
    }
}

/// The elastic acceptance matrix: one join and one graceful leave
/// mid-job, across both schedulers and both transports. Output must be
/// byte-identical to the fault-free baseline in every cell.
#[test]
fn elastic_matrix_join_and_leave_byte_identical() {
    use eclipse_core::TransportKind;
    for sched in ["laf", "delay"] {
        let expect = baseline(sched);
        for transport in [TransportKind::Memory, TransportKind::Tcp] {
            let c = LiveCluster::new(
                LiveConfig::small()
                    .with_nodes(NODES)
                    .with_block_size(512)
                    .with_scheduler(sched_of(sched))
                    .with_transport(transport),
            );
            c.upload("input", USER, seeded_text().as_bytes());
            let leaver = c.ring().node_ids()[2];
            c.inject_faults(FaultPlan::new().join_at_maps(2).leave_at_maps(leaver, 5));
            let (out, stats) = c
                .try_run_job(&WordCount, "input", USER, REDUCERS, ReusePolicy::default())
                .unwrap_or_else(|e| {
                    panic!("[{sched}/{transport:?}] elastic job failed: {e}")
                });
            assert_eq!(out, expect, "[{sched}/{transport:?}] output diverged");
            assert_eq!(stats.joins, 1, "[{sched}/{transport:?}] join never fired");
            assert_eq!(stats.leaves, 1, "[{sched}/{transport:?}] leave never fired");
            assert_eq!(stats.failed_nodes, 0, "[{sched}/{transport:?}] phantom crash");
            assert_eq!(c.ring().len(), NODES, "[{sched}/{transport:?}] one in, one out");
            assert!(!c.ring().contains(leaver));
        }
    }
}

/// Regression for stale placement snapshots (the latent bug this PR
/// fixes): shuffle homes and cache ranges used to be captured once at
/// job start, so a membership change mid-job left partitions homed on
/// departed nodes and fetches aimed past the joiner. After a mid-job
/// join + leave, a follow-up job must route nothing to the departed
/// node and its output must still match.
#[test]
fn placement_is_epoch_aware_after_elastic_events() {
    let expect = baseline("laf");
    let c = cluster("laf");
    let leaver = c.ring().node_ids()[1];
    let epoch0 = c.epoch();
    c.inject_faults(FaultPlan::new().join_at_maps(2).leave_at_maps(leaver, 5));
    let (out, _) = c
        .try_run_job(&WordCount, "input", USER, REDUCERS, ReusePolicy::default())
        .expect("join + leave are within the fault model");
    assert_eq!(out, expect);
    assert_eq!(c.epoch(), epoch0 + 2, "join and leave must each bump the epoch");
    // Cache ranges must have re-homed: no range may still belong to the
    // departed node.
    assert!(
        c.cache_ranges().iter().all(|(n, _)| *n != leaver),
        "a cache range is still homed on the departed node"
    );
    // A second, fault-free job on the reshaped cluster: byte-identical
    // output, and not a single task lands on the departed node.
    let (again, stats) = c
        .try_run_job(&WordCount, "input", USER, REDUCERS, ReusePolicy::default())
        .expect("the reshaped cluster is healthy");
    assert_eq!(again, expect, "the reshaped cluster diverged the output");
    assert_eq!(
        stats.tasks_per_node[leaver.index()],
        0,
        "a task was scheduled on the departed node"
    );
}
