//! Property suite for the transport plane's wire codec (satellite of
//! the PR 3 transport tentpole).
//!
//! Two families of properties:
//!
//! 1. **Round trip**: any sequence of RPC messages, encoded to frames,
//!    concatenated, and re-split at arbitrary byte boundaries, decodes
//!    through [`FrameDecoder`] to exactly the original messages with
//!    their correlation ids intact — TCP gives no message framing, so
//!    the streaming decoder must be boundary-blind.
//! 2. **Totality**: truncated, bit-flipped, or outright random input
//!    produces a typed [`CodecError`] (or a valid message, for lucky
//!    flips in payload bytes) — never a panic, never an out-of-range
//!    read, never an unbounded allocation from a corrupt length field.

use bytes::Bytes;
use eclipse_cache::{CacheKey, OutputTag};
use eclipse_core::net::wire::{self, CodecError, Dir, FrameDecoder, HEADER_LEN, MAX_BODY};
use eclipse_core::net::{Demux, Rpc, RpcReply};
use eclipse_dhtfs::BlockId;
use eclipse_ring::NodeId;
use eclipse_util::HashKey;
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// A message of either direction, so one stream mixes requests and
/// responses the way a real duplex connection does.
#[derive(Clone, Debug, PartialEq)]
enum Msg {
    Req(Rpc),
    Reply(RpcReply),
}

impl Msg {
    fn encode(&self, corr: u64) -> Vec<u8> {
        match self {
            Msg::Req(r) => r.encode(corr),
            Msg::Reply(r) => r.encode(corr),
        }
    }
}

/// Arbitrary string including multi-byte UTF-8 (the shim's pattern
/// strategies are ASCII-only, so build from raw code points).
fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..0x11_0000, 0..12)
        .prop_map(|cs| cs.into_iter().filter_map(char::from_u32).collect())
}

fn arb_block() -> impl Strategy<Value = BlockId> {
    (0u64..=u64::MAX, 0u64..4096)
        .prop_map(|(f, i)| BlockId { file: HashKey(f), index: i })
}

fn arb_bytes() -> impl Strategy<Value = Bytes> {
    prop::collection::vec(0u8..=255, 0..200).prop_map(Bytes::from)
}

fn arb_cache_key() -> impl Strategy<Value = CacheKey> {
    prop_oneof![
        (0u64..=u64::MAX).prop_map(|h| CacheKey::Input(HashKey(h))),
        ("[a-z]{0,8}", "[a-z0-9]{0,8}")
            .prop_map(|(app, tag)| CacheKey::Output(OutputTag::new(app, tag))),
    ]
}

fn arb_rpc() -> impl Strategy<Value = Rpc> {
    prop_oneof![
        arb_block().prop_map(|block| Rpc::GetBlock { block }),
        (arb_block(), arb_bytes()).prop_map(|(block, data)| Rpc::PutBlock { block, data }),
        (arb_block(), 0u32..64)
            .prop_map(|(block, to)| Rpc::ReplicaSync { block, to: NodeId(to) }),
        arb_cache_key().prop_map(|key| Rpc::CacheGet { key }),
        (arb_cache_key(), arb_bytes(), prop_oneof![
            Just(None),
            (0.0f64..1e6).prop_map(Some),
        ], 0u16..=u16::MAX, any::<bool>())
        .prop_map(|(key, data, ttl, tenant, pin)| Rpc::CachePut { key, data, ttl, tenant, pin }),
        (
            (0u32..=u32::MAX, 0u32..8, 0u32..1000),
            (0u32..16, 0u32..32),
            prop::collection::vec((arb_string(), arb_string()), 0..10),
        )
            .prop_map(|((task, attempt, seq), (epoch, partition), records)| {
                Rpc::ShuffleBatch { task, attempt, seq, epoch, partition, records }
            }),
        (0u32..=u32::MAX, 0u64..=u64::MAX, 0u32..=u32::MAX, 0u32..=1000u32).prop_map(
            |(from, clock, task, progress)| Rpc::Heartbeat {
                from: NodeId(from),
                clock,
                task,
                progress,
            },
        ),
        (0u32..=u32::MAX, arb_block()).prop_map(|(task, block)| Rpc::TaskAssign { task, block }),
    ]
}

fn arb_reply() -> impl Strategy<Value = RpcReply> {
    prop_oneof![
        Just(RpcReply::Ack),
        Just(RpcReply::Missing),
        Just(RpcReply::Block(None)),
        arb_bytes().prop_map(|b| RpcReply::Block(Some(b))),
        Just(RpcReply::CacheValue(None)),
        arb_bytes().prop_map(|b| RpcReply::CacheValue(Some(b))),
        (0u64..=u64::MAX).prop_map(|bytes| RpcReply::Synced { bytes }),
        arb_string().prop_map(RpcReply::Error),
    ]
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![arb_rpc().prop_map(Msg::Req), arb_reply().prop_map(Msg::Reply)]
}

/// Decode one frame back into a [`Msg`] by direction.
fn decode_msg(frame: &wire::Frame) -> Result<Msg, CodecError> {
    match frame.dir {
        Dir::Request => Rpc::decode(frame).map(Msg::Req),
        Dir::Response => RpcReply::decode(frame).map(Msg::Reply),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any message stream survives encode → concatenate → arbitrary
    /// re-chunking → streaming decode, bit-for-bit, ids and all.
    #[test]
    fn stream_roundtrips_across_arbitrary_boundaries(
        msgs in prop::collection::vec((arb_msg(), 0u64..=u64::MAX), 1..8),
        chunks in prop::collection::vec(1usize..23, 1..40),
    ) {
        let mut stream = Vec::new();
        for (msg, corr) in &msgs {
            stream.extend_from_slice(&msg.encode(*corr));
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut at = 0usize;
        let mut ci = 0usize;
        while at < stream.len() {
            let n = chunks[ci % chunks.len()].min(stream.len() - at);
            ci += 1;
            dec.feed(&stream[at..at + n]);
            at += n;
            while let Some(frame) = dec.next_frame().unwrap() {
                got.push((decode_msg(&frame).unwrap(), frame.corr));
            }
        }
        prop_assert_eq!(got, msgs);
        prop_assert_eq!(dec.pending(), 0, "no bytes may linger after the last frame");
    }

    /// Every strict prefix of a valid frame is `Truncated` under strict
    /// decode — for every cut point, not just lucky ones.
    #[test]
    fn every_truncation_is_typed(msg in arb_msg(), corr in 0u64..=u64::MAX) {
        let raw = msg.encode(corr);
        for cut in 0..raw.len() {
            prop_assert_eq!(
                wire::decode_frame(&raw[..cut]).unwrap_err(),
                CodecError::Truncated,
                "cut at {} of {}", cut, raw.len()
            );
        }
    }

    /// Flipping any single byte never panics: the result is either a
    /// typed error or a (different) well-formed message. Header flips
    /// get sharper assertions.
    #[test]
    fn single_byte_corruption_never_panics(
        msg in arb_msg(),
        corr in 0u64..=u64::MAX,
        pos_seed in 0usize..=usize::MAX,
        flip in 1u8..=255,
    ) {
        let mut raw = msg.encode(corr);
        let pos = pos_seed % raw.len();
        raw[pos] ^= flip;
        match wire::decode_frame(&raw) {
            Err(_) => {} // typed error: fine
            Ok(frame) => {
                // Frame header survived; body decode must still be total.
                let _ = decode_msg(&frame);
            }
        }
        // Sharper checks where the meaning of the byte is fixed:
        if pos < 2 {
            prop_assert!(
                matches!(wire::decode_frame(&raw), Err(CodecError::BadMagic(_))),
                "magic flip must be BadMagic"
            );
        }
        if pos == 2 && raw[2] > 1 {
            prop_assert!(
                matches!(wire::decode_frame(&raw), Err(CodecError::BadDir(_))),
                "direction byte {} must be BadDir", raw[2]
            );
        }
    }

    /// Random byte soup through the streaming decoder: never a panic,
    /// and after the first error the caller drops the connection (we
    /// just stop feeding).
    #[test]
    fn random_bytes_never_panic_the_streaming_decoder(
        soup in prop::collection::vec(0u8..=255, 0..400),
        chunks in prop::collection::vec(1usize..17, 1..20),
    ) {
        let mut dec = FrameDecoder::new();
        let mut at = 0usize;
        let mut ci = 0usize;
        'outer: while at < soup.len() {
            let n = chunks[ci % chunks.len()].min(soup.len() - at);
            ci += 1;
            dec.feed(&soup[at..at + n]);
            at += n;
            loop {
                match dec.next_frame() {
                    Ok(Some(frame)) => { let _ = decode_msg(&frame); }
                    Ok(None) => break,
                    Err(_) => break 'outer, // typed; connection would drop here
                }
            }
        }
    }

    /// Pipelined-wire-path property: one reader thread settles replies
    /// in arbitrary order across correlation ids, and every caller must
    /// receive exactly the reply bearing its own corr — no swap, no
    /// loss, no leftover slot.
    #[test]
    fn demux_routes_interleaved_replies_by_correlation_id(
        n in 1usize..16,
        seed in prop::collection::vec(0u64..=u64::MAX, 16),
    ) {
        let d = Demux::new();
        let corrs: Vec<u64> = (0..n).map(|i| 0x1000 + i as u64).collect();
        for &c in &corrs {
            d.register(c);
        }
        // Settle in a seed-derived permutation — the reorderings many
        // concurrent in-flight requests on one connection can produce.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (seed[i], i));
        for &i in &order {
            prop_assert!(
                d.settle(corrs[i], Ok(RpcReply::Synced { bytes: corrs[i] })),
                "a registered corr must claim its reply"
            );
        }
        // A reply for an unregistered corr is stale: dropped, never
        // misrouted to some other waiter.
        prop_assert!(!d.settle(0xdead_beef, Ok(RpcReply::Ack)));
        for &c in &corrs {
            let got = d.wait(c, Instant::now() + Duration::from_secs(1));
            prop_assert_eq!(got, Some(Ok(RpcReply::Synced { bytes: c })));
        }
        prop_assert_eq!(d.pending(), 0, "every slot must be redeemed");
    }

    /// A corrupt length prefix beyond [`MAX_BODY`] is rejected up front —
    /// the decoder must not buffer toward a bogus multi-gigabyte frame.
    #[test]
    fn oversize_length_rejected_before_buffering(
        msg in arb_msg(),
        over in (MAX_BODY as u64 + 1)..=(u32::MAX as u64),
    ) {
        let mut raw = msg.encode(1);
        raw[12..16].copy_from_slice(&(over as u32).to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&raw[..HEADER_LEN]);
        prop_assert_eq!(dec.next_frame().unwrap_err(), CodecError::Oversize(over));
    }
}

// ---- deterministic corruption probes (fixed malformed bodies) --------

/// Re-frame `body` as a request of `kind` so body-level corruption can
/// be aimed precisely.
fn frame_request(kind: u8, body: &[u8]) -> wire::Frame {
    let raw = wire::encode_frame(Dir::Request, kind, 7, body);
    wire::decode_frame(&raw).unwrap()
}

#[test]
fn corrupt_shuffle_record_count_is_overrun_not_oom() {
    let rpc = Rpc::ShuffleBatch {
        task: 1,
        attempt: 0,
        seq: 0,
        epoch: 0,
        partition: 0,
        records: vec![("k".into(), "v".into())],
    };
    let raw = rpc.encode(7);
    let frame = wire::decode_frame(&raw).unwrap();
    let mut body = frame.body.clone();
    // The record count sits after task/attempt/seq/epoch/partition
    // (5 × u32).
    body[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
    let bad = frame_request(frame.kind, &body);
    assert_eq!(Rpc::decode(&bad).unwrap_err(), CodecError::FieldOverrun);
}

#[test]
fn non_utf8_string_field_is_typed() {
    let rpc = Rpc::CacheGet { key: CacheKey::Output(OutputTag::new("app", "tag")) };
    let raw = rpc.encode(7);
    let frame = wire::decode_frame(&raw).unwrap();
    let mut body = frame.body.clone();
    // Body: tag byte (1) + len("app") prefix (4) + "app"; smash the 'a'
    // with a lone continuation byte.
    body[5] = 0xFF;
    let bad = frame_request(frame.kind, &body);
    assert_eq!(Rpc::decode(&bad).unwrap_err(), CodecError::BadUtf8);
}

#[test]
fn unknown_option_tag_is_typed() {
    let rpc = Rpc::CachePut {
        key: CacheKey::Input(HashKey(9)),
        data: Bytes::from_static(b"x"),
        ttl: None,
        tenant: 0,
        pin: false,
    };
    let raw = rpc.encode(7);
    let frame = wire::decode_frame(&raw).unwrap();
    let mut body = frame.body.clone();
    // The ttl option tag sits just before the trailing 4-byte tenant
    // field and 1-byte pin flag: only 0 and 1 mean anything.
    let tag_at = body.len() - 6;
    body[tag_at] = 9;
    let bad = frame_request(frame.kind, &body);
    assert_eq!(Rpc::decode(&bad).unwrap_err(), CodecError::BadTag(9));
}

#[test]
fn cache_put_tenant_overflow_is_typed() {
    // A tenant field above u16::MAX cannot come from our encoder; the
    // decoder rejects it rather than silently truncating.
    let rpc = Rpc::CachePut {
        key: CacheKey::Input(HashKey(9)),
        data: Bytes::from_static(b"x"),
        ttl: None,
        tenant: 0,
        pin: false,
    };
    let raw = rpc.encode(7);
    let frame = wire::decode_frame(&raw).unwrap();
    let mut body = frame.body.clone();
    // High byte of the little-endian tenant u32 (the pin flag is the
    // final byte).
    let hi = body.len() - 2;
    body[hi] = 0xFF;
    let bad = frame_request(frame.kind, &body);
    assert_eq!(Rpc::decode(&bad).unwrap_err(), CodecError::FieldOverrun);
}

#[test]
fn cache_put_pin_flag_tag_is_typed() {
    // The trailing pin flag is a 0/1 tag like ttl's: anything else is
    // a typed decode error, not a silent truthy cast.
    let rpc = Rpc::CachePut {
        key: CacheKey::Input(HashKey(9)),
        data: Bytes::from_static(b"x"),
        ttl: None,
        tenant: 0,
        pin: true,
    };
    let raw = rpc.encode(7);
    let frame = wire::decode_frame(&raw).unwrap();
    let mut body = frame.body.clone();
    let last = body.len() - 1;
    body[last] = 7;
    let bad = frame_request(frame.kind, &body);
    assert_eq!(Rpc::decode(&bad).unwrap_err(), CodecError::BadTag(7));
}

#[test]
fn unknown_kind_byte_is_typed_both_directions() {
    let f = frame_request(200, b"");
    assert!(matches!(Rpc::decode(&f), Err(CodecError::BadKind { .. })));
    let raw = wire::encode_frame(Dir::Response, 200, 7, b"");
    let f = wire::decode_frame(&raw).unwrap();
    assert!(matches!(RpcReply::decode(&f), Err(CodecError::BadKind { .. })));
}
