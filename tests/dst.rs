//! DST smoke tests: fixed seed lists through the seeded chaos harness.
//!
//! The full randomized sweep lives behind `dst_bench --runs N`; what
//! runs here is small and fixed so `cargo test` stays fast and
//! deterministic. `replay_env_seed` is the repro entry point printed
//! by a failing sweep:
//!
//! ```text
//! DST_SEED=1234 DST_PRESET=chaos cargo test -p eclipse-integration-tests \
//!     --test dst replay_env_seed -- --nocapture
//! ```

use eclipse_core::dst::{run_seed, sweep, DstPreset, Verdict};

/// Calm schedules are benign by construction, so every calm seed must
/// end byte-identical — an allowed error here is a harness bug, a
/// failed oracle an executor bug.
#[test]
fn calm_fixed_seeds_are_byte_identical() {
    for seed in [0u64, 3, 7, 11, 19, 23] {
        let r = run_seed(seed, DstPreset::Calm);
        assert_eq!(
            r.verdict,
            Verdict::Match,
            "calm seed {seed} diverged (schedule {:?})",
            r.schedule
        );
    }
}

/// A bounded moderate sweep over a fixed seed range: crashes,
/// partitions, and drop bursts compose with randomized workloads, and
/// every run satisfies the oracle.
#[test]
fn moderate_fixed_seed_sweep_passes_oracle() {
    let s = sweep(1, 25, DstPreset::Moderate);
    assert_eq!(s.runs, 25);
    assert!(
        s.failures.is_empty(),
        "moderate sweep failed seeds: {:?}",
        s.failures
    );
    assert!(s.faults_injected > 0, "the sweep never injected a fault");
    assert!(s.oracle_checks >= s.runs, "every run checks the oracle at least once");
}

/// A few chaos-preset seeds, including ones that end in allowed typed
/// errors — the error must come from the allowed set, never a wrong
/// result.
#[test]
fn chaos_fixed_seeds_pass_oracle() {
    for seed in [2u64, 5, 13, 17] {
        let r = run_seed(seed, DstPreset::Chaos);
        assert!(
            r.passed(),
            "chaos seed {seed} violated the oracle: {:?}",
            r.verdict
        );
    }
}

/// Replay entry point for repro lines printed by failing sweeps. A
/// no-op unless `DST_SEED` is set; `DST_PRESET` defaults to `chaos`.
#[test]
fn replay_env_seed() {
    let seed: u64 = match std::env::var("DST_SEED") {
        Ok(s) => s.parse().expect("DST_SEED must be a u64"),
        Err(_) => return,
    };
    let preset: DstPreset = std::env::var("DST_PRESET")
        .unwrap_or_else(|_| "chaos".into())
        .parse()
        .expect("DST_PRESET must be calm|moderate|chaos");
    let r = run_seed(seed, preset);
    println!(
        "seed={seed} preset={preset}\n  workload: {:?}\n  schedule: {:?}\n  \
         faults_injected={} oracle_checks={}\n  verdict: {:?}",
        r.workload, r.schedule, r.faults_injected, r.oracle_checks, r.verdict
    );
    assert!(r.passed(), "seed {seed} preset {preset} fails: {:?}", r.verdict);
}
