//! Property tests spanning crates: the ring, file system, cache and
//! schedulers must agree on ownership; placement decisions must be
//! deterministic; and both executors must embody the same control plane.

use eclipse_cache::{CacheKey, DistributedCache};
use eclipse_dhtfs::{DhtFs, DhtFsConfig};
use eclipse_ring::{NodeId, Ring};
use eclipse_sched::{DelayConfig, DelayScheduler, LafConfig, LafScheduler};
use eclipse_util::{HashKey, GB, MB};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The delay scheduler's static ranges, the cache's initial ranges
    /// and the file-system ring all assign every key to the same server.
    #[test]
    fn ownership_agreement(nodes in 2usize..30, keys in prop::collection::vec(any::<u64>(), 1..50)) {
        let ring = Ring::with_servers_evenly_spaced(nodes, "n");
        let fs = DhtFs::new(ring.clone(), DhtFsConfig::default());
        let cache = DistributedCache::new(&ring, MB);
        let delay = DelayScheduler::new(&ring, DelayConfig::default());
        let laf = LafScheduler::new(&ring, LafConfig::default());
        for k in keys {
            let key = HashKey(k);
            let ring_owner = ring.owner_of(key).unwrap().id;
            prop_assert_eq!(cache.home_of(key), ring_owner);
            prop_assert_eq!(delay.preferred(key), ring_owner);
            prop_assert_eq!(laf.owner_of(key), ring_owner);
            prop_assert_eq!(fs.ring().owner_of(key).unwrap().id, ring_owner);
        }
    }

    /// LAF is deterministic: two schedulers fed the same key sequence
    /// produce identical range tables and assignments.
    #[test]
    fn laf_determinism(
        nodes in 2usize..20,
        keys in prop::collection::vec(any::<u64>(), 1..400),
    ) {
        let ring = Ring::with_servers_evenly_spaced(nodes, "n");
        let cfg = LafConfig { window: 64, ..Default::default() };
        let mut a = LafScheduler::new(&ring, cfg);
        let mut b = LafScheduler::new(&ring, cfg);
        for &k in &keys {
            prop_assert_eq!(a.assign(HashKey(k)), b.assign(HashKey(k)));
        }
        prop_assert_eq!(a.ranges(), b.ranges());
        prop_assert_eq!(a.repartitions(), b.repartitions());
    }

    /// Every block of every uploaded file is owned by a live server and
    /// replicated on distinct servers whose ranges neighbor the owner's.
    #[test]
    fn fs_placement_invariants(
        nodes in 3usize..25,
        size_mb in 1u64..500,
    ) {
        let ring = Ring::with_servers_evenly_spaced(nodes, "n");
        let mut fs = DhtFs::new(ring.clone(), DhtFsConfig { block_size: 32 * MB, replicas: 2 });
        let meta = fs.upload("f", "u", size_mb * MB).unwrap().clone();
        for b in &meta.blocks {
            let holders = fs.block_holders(b.id).unwrap().to_vec();
            prop_assert_eq!(holders[0], ring.owner_of(b.key).unwrap().id);
            let mut uniq = holders.clone();
            uniq.sort();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), holders.len());
            prop_assert_eq!(holders.len(), 3.min(nodes));
        }
    }

    /// After any single failure, replication is restored and ownership
    /// agreement still holds for the survivors.
    #[test]
    fn failure_keeps_agreement(
        nodes in 4usize..16,
        victim_sel: prop::sample::Index,
        probes in prop::collection::vec(any::<u64>(), 1..30),
    ) {
        let ring = Ring::with_servers_evenly_spaced(nodes, "n");
        let mut fs = DhtFs::new(ring, DhtFsConfig { block_size: 64 * MB, replicas: 2 });
        let meta = fs.upload("f", "u", GB).unwrap().clone();
        let ids = fs.ring().node_ids();
        let victim = ids[victim_sel.index(ids.len())];
        fs.fail_node(victim).unwrap();
        for b in &meta.blocks {
            let holders = fs.block_holders(b.id).unwrap();
            prop_assert!(!holders.contains(&victim));
            prop_assert_eq!(holders.len(), 3.min(nodes - 1));
        }
        // Survivor ranges still tile the ring and exclude the victim.
        let ranges = fs.ring().ranges();
        let total: u128 = ranges.iter().map(|(_, r)| r.len()).sum();
        prop_assert_eq!(total, 1u128 << 64);
        for p in probes {
            let owner = fs.ring().owner_of(HashKey(p)).unwrap().id;
            prop_assert!(owner != victim);
        }
    }

    /// LAF ranges partition-of-unity: at any point during any workload,
    /// the scheduler's ranges tile the ring and every node id is a ring
    /// member.
    #[test]
    fn laf_ranges_always_valid(
        nodes in 2usize..20,
        keys in prop::collection::vec(any::<u64>(), 1..500),
    ) {
        let ring = Ring::with_servers_evenly_spaced(nodes, "n");
        let mut laf = LafScheduler::new(&ring, LafConfig { window: 50, ..Default::default() });
        let members = ring.node_ids();
        for (i, &k) in keys.iter().enumerate() {
            laf.assign(HashKey(k));
            if i % 97 == 0 {
                let total: u128 = laf.ranges().iter().map(|(_, r)| r.len()).sum();
                prop_assert_eq!(total, 1u128 << 64);
                for (n, _) in laf.ranges() {
                    prop_assert!(members.contains(n));
                }
            }
        }
    }
}

/// Deterministic (non-proptest) cross-crate check: cache range updates
/// driven by the scheduler keep lookups working for every key.
#[test]
fn cache_follows_scheduler_ranges() {
    let ring = Ring::with_servers_evenly_spaced(8, "n");
    let mut laf = LafScheduler::new(&ring, LafConfig { window: 32, ..Default::default() });
    let cache = DistributedCache::new(&ring, MB);
    for i in 0..500u64 {
        let key = HashKey::of_name(&format!("k{}", i % 13));
        laf.assign(key);
        cache.set_ranges(laf.ranges().to_vec());
        let home = cache.home_of(key);
        assert_eq!(home, laf.owner_of(key));
        cache.put_at_home(CacheKey::Input(key), 100, i as f64, None);
        assert!(cache.get_at_home(&CacheKey::Input(key), i as f64 + 0.5).is_some());
    }
    assert!(cache.hit_ratio() > 0.0);
}

/// The evenly-spaced ring used by the executors has the documented
/// geometry: equal arcs, node i at position i/n of the ring.
#[test]
fn evenly_spaced_ring_geometry() {
    let ring = Ring::with_servers_evenly_spaced(40, "worker");
    let ranges = ring.ranges();
    assert_eq!(ranges.len(), 40);
    for (i, (node, range)) in ranges.iter().enumerate() {
        assert_eq!(*node, NodeId(i as u32));
        let frac = range.fraction();
        assert!((frac - 1.0 / 40.0).abs() < 1e-9, "arc {i} has fraction {frac}");
    }
}
