//! Epoch determinism matrix: incremental epochs vs the one-shot batch.
//!
//! The continuous-job contract is that *how* the input arrived is
//! invisible in the result — N epochs folded incrementally produce a
//! materialized snapshot byte-identical to one batch job over the
//! concatenation of every delta, for every scheduler, transport, and
//! epoch count. Deltas use fixed-width lines with a block size that is
//! a multiple, so block boundaries never split a word in either the
//! per-epoch files or the concatenated oracle file.

use eclipse_core::{
    EpochDriver, LiveCluster, LiveConfig, MapReduce, ReusePolicy, SchedulerKind, StreamSpec,
    TransportKind,
};
use std::sync::Arc;

struct WordCount;
impl MapReduce for WordCount {
    fn map(&self, block: &[u8], emit: &mut dyn FnMut(String, String)) {
        for w in String::from_utf8_lossy(block).split_whitespace() {
            emit(w.to_string(), "1".to_string());
        }
    }
    fn reduce(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
        emit(key.to_string(), values.len().to_string());
    }
}

/// Line length every delta is built from; the block size is a multiple.
const LINE: usize = 19;

/// Deterministic delta for epoch `e`: 19-byte lines, vocabulary
/// overlapping across epochs (so folds actually merge) plus an
/// epoch-unique token (so every epoch visibly lands).
fn delta(e: usize) -> String {
    let shared = ["apple banana cherry", "banana cherry dates", "cherry dates elders"];
    let mut out = String::new();
    for i in 0..24 {
        let line = if i % 3 == 0 {
            // 19 visible bytes: two 9-char epoch-stamped tokens.
            format!("epoch{e:04} epoch{e:04}\n")
        } else {
            format!("{}\n", shared[(e + i) % shared.len()])
        };
        debug_assert_eq!(line.len(), LINE + 1, "{line:?}");
        out.push_str(&line);
    }
    out
}

fn run_matrix_cell(sched: SchedulerKind, transport: TransportKind, epochs: usize) {
    let cfg = LiveConfig::small()
        .with_block_size((LINE as u64 + 1) * 4)
        .with_scheduler(sched)
        .with_transport(transport);
    let c = Arc::new(LiveCluster::new(cfg));
    let d = EpochDriver::new(
        Arc::clone(&c),
        StreamSpec {
            app: Arc::new(WordCount),
            name: format!("stream-{epochs}"),
            user: "tester".to_string(),
            reducers: 4,
        },
    );
    let mut concat = String::new();
    for e in 1..=epochs {
        let delta = delta(e);
        concat.push_str(&delta);
        let rep = d.commit_epoch(delta.as_bytes()).expect("epoch commits");
        assert_eq!(rep.epoch as usize, e);
        assert_eq!(d.published() as usize, e, "read-your-epoch after commit");
    }
    c.upload("oracle", "tester", concat.as_bytes());
    let (oracle, _) =
        c.run_job_partitioned(&WordCount, "oracle", "tester", 4, ReusePolicy::default());
    let snap = d.snapshot(epochs as u32).expect("published epoch readable");
    assert_eq!(
        *snap, oracle,
        "epochs={epochs}: materialized snapshot != one-shot batch oracle"
    );
    d.close();
}

#[test]
fn epochs_match_batch_laf_memory() {
    for epochs in [1usize, 4, 16] {
        run_matrix_cell(SchedulerKind::Laf(Default::default()), TransportKind::Memory, epochs);
    }
}

#[test]
fn epochs_match_batch_delay_memory() {
    for epochs in [1usize, 4, 16] {
        run_matrix_cell(SchedulerKind::Delay(Default::default()), TransportKind::Memory, epochs);
    }
}

#[test]
fn epochs_match_batch_laf_tcp() {
    for epochs in [1usize, 4, 16] {
        run_matrix_cell(SchedulerKind::Laf(Default::default()), TransportKind::Tcp, epochs);
    }
}

#[test]
fn epochs_match_batch_delay_tcp() {
    for epochs in [1usize, 4, 16] {
        run_matrix_cell(SchedulerKind::Delay(Default::default()), TransportKind::Tcp, epochs);
    }
}
