//! Integration tests live in the sibling *.rs files (see Cargo.toml).
