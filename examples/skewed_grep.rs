//! The Fig. 7 experiment in miniature: a skewed grep workload on the
//! simulated 40-node cluster, comparing the LAF scheduler against the
//! delay scheduler on execution time, cache hit ratio and load balance.
//!
//! ```text
//! cargo run -p eclipse-examples --bin skewed_grep
//! ```

use eclipse_core::{EclipseConfig, EclipseSim, SchedulerKind};
use eclipse_sched::{DelayConfig, LafConfig};
use eclipse_util::{HashKey, GB, MB};
use eclipse_workloads::{AppKind, CostModel, KeyDist, KeySampler};

fn main() {
    // A bimodal key population: two hot regions on the ring, exactly the
    // paper's merged-normals workload.
    let mut blocks: Vec<HashKey> =
        (0..2048).map(|i| HashKey::of_name(&format!("blk{i}"))).collect();
    blocks.sort();
    let mut sampler = KeySampler::new(
        KeyDist::Bimodal { center_a: 0.3, center_b: 0.7, stddev: 0.03 },
        1,
    );
    let trace: Vec<HashKey> = (0..2000)
        .map(|_| {
            let want = sampler.sample();
            match blocks.binary_search(&want) {
                Ok(i) => blocks[i],
                Err(i) => blocks[i % blocks.len()],
            }
        })
        .collect();

    let cost = CostModel::eclipse(AppKind::Grep);
    println!("{:>12} | {:>9} {:>7} {:>14}", "policy", "exec s", "hit", "stdev tasks/slot");
    for (name, kind) in [
        ("LAF", SchedulerKind::Laf(LafConfig::default())),
        ("Delay", SchedulerKind::Delay(DelayConfig::default())),
    ] {
        let mut sim =
            EclipseSim::new(EclipseConfig::paper_defaults(kind).with_cache(GB));
        // Eight job submissions over the same key population: later jobs
        // reuse what earlier ones cached.
        let mut total = 0.0;
        for chunk in trace.chunks(250) {
            sim.drop_page_caches();
            let report = sim.run_trace(chunk, 14 * MB, &cost);
            total += report.elapsed;
        }
        println!(
            "{:>12} | {:>9.1} {:>7.3} {:>14.2}",
            name,
            total,
            sim.cache_hit_ratio(),
            sim.tasks_per_slot_stdev()
        );
    }
    println!("\nLAF re-partitions its hash ranges to the observed access density;");
    println!("delay scheduling sticks to the file-system ranges and waits out its");
    println!("locality timers — slower, but a touch more cache-friendly.");
}
