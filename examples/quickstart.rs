//! Quickstart: stand up a live EclipseMR cluster in-process, upload real
//! data into the DHT file system, and run a word-count MapReduce job
//! scheduled by the LAF scheduler.
//!
//! ```text
//! cargo run -p eclipse-examples --bin quickstart
//! ```

use eclipse_apps::WordCount;
use eclipse_core::{LiveCluster, LiveConfig, ReusePolicy};
use eclipse_workloads::TextGen;

fn main() {
    // An 8-node virtual cluster: threads as servers, 64 KB blocks,
    // 16 MB of distributed in-memory cache per node.
    let cluster = LiveCluster::new(LiveConfig::small());
    println!("cluster up: {} nodes on the ring", cluster.nodes());
    for s in cluster.ring().members().take(3) {
        println!("  {} at ring position {}", s.name, s.key);
    }
    println!("  ...");

    // Generate ~256 KB of Zipf text and upload it: the DHT file system
    // splits it into blocks, places each by its hash key, and replicates
    // to the ring predecessor and successor.
    let text = TextGen::new(500, 1.0, 10).generate(42, 256 * 1024);
    cluster.upload("corpus.txt", "quickstart", text.as_bytes());
    println!("\nuploaded corpus.txt ({} bytes)", text.len());

    // First run: cold caches — every block comes off the DHT FS.
    let (counts, stats) =
        cluster.run_job(&WordCount, "corpus.txt", "quickstart", 4, ReusePolicy::default());
    println!(
        "\nword count: {} distinct words via {} map + {} reduce tasks",
        counts.len(),
        stats.map_tasks,
        stats.reduce_tasks
    );
    println!("cold run: {} iCache hits, {} misses", stats.cache_hits, stats.cache_misses);

    let mut top: Vec<_> = counts
        .iter()
        .map(|(w, c)| (c.parse::<u64>().unwrap_or(0), w.clone()))
        .collect();
    top.sort_by(|a, b| b.cmp(a));
    println!("\ntop words:");
    for (c, w) in top.iter().take(5) {
        println!("  {w:<8} {c}");
    }

    // Second run: the input blocks are now resident in the distributed
    // in-memory cache (iCache), found purely by consistent hashing.
    let (_, stats2) =
        cluster.run_job(&WordCount, "corpus.txt", "quickstart", 4, ReusePolicy::default());
    println!(
        "\nwarm run: {} iCache hits, {} misses (hit ratio {:.0}%)",
        stats2.cache_hits,
        stats2.cache_misses,
        100.0 * stats2.cache_hits as f64 / (stats2.cache_hits + stats2.cache_misses).max(1) as f64
    );
    println!(
        "tasks per node: {:?} (LAF keeps these balanced)",
        stats2.tasks_per_node
    );
}
