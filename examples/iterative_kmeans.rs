//! Iterative k-means with oCache reuse (paper §II-C): each iteration's
//! centroids are tagged and cached in the distributed in-memory store;
//! a restarted driver resumes from the last cached iteration instead of
//! recomputing.
//!
//! ```text
//! cargo run -p eclipse-examples --bin iterative_kmeans
//! ```

use eclipse_apps::run_kmeans;
use eclipse_core::{LiveCluster, LiveConfig};
use eclipse_workloads::{points_to_csv, ClusterGen, Point};

fn main() {
    let cluster = LiveCluster::new(LiveConfig::small().with_block_size(8192));

    // Three well-separated Gaussian blobs, 1 500 points.
    let gen = ClusterGen::new(3, 0.8, 7);
    let points = gen.generate(1500, 11);
    cluster.upload("points.csv", "demo", points_to_csv(&points).as_bytes());
    println!("uploaded {} points in {} blobs", points.len(), gen.centers.len());

    // Deliberately bad initial centroids.
    let initial: Vec<Point> = gen
        .centers
        .iter()
        .map(|c| {
            let mut p = *c;
            p[0] += 5.0;
            p[5] -= 5.0;
            p
        })
        .collect();

    let result = run_kmeans(&cluster, "points.csv", "demo", initial.clone(), 6, 4);
    println!("\nconvergence (total centroid movement per iteration):");
    for (i, m) in result.movement.iter().enumerate() {
        let bar = "#".repeat((m * 2.0).min(60.0) as usize);
        println!("  iter {i}: {m:>8.3} {bar}");
    }

    println!("\nfinal centroids vs true centers:");
    for (i, c) in result.centroids.iter().enumerate() {
        let nearest = gen
            .centers
            .iter()
            .map(|t| {
                c.iter().zip(t).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
            })
            .fold(f64::INFINITY, f64::min);
        println!("  centroid {i}: off-by {nearest:.3}");
    }

    // The oCache now holds every iteration's output. A rerun resumes
    // from the cache — zero MapReduce rounds executed.
    println!("\niteration outputs in oCache:");
    for i in 0..6 {
        let tag = format!("iter{i}");
        println!("  kmeans/{tag}: {}", if cluster.ocache_get("kmeans", &tag).is_some() { "cached" } else { "-" });
    }
    let resumed = run_kmeans(&cluster, "points.csv", "demo", initial, 6, 4);
    let drift: f64 = resumed
        .centroids
        .iter()
        .zip(&result.centroids)
        .map(|(a, b)| a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>())
        .sum();
    println!("\nresumed run reused cached iterations (centroid drift {drift:.1e})");
}
