//! Fault tolerance end-to-end: kill a live node mid-workload, let the
//! DHT file system re-replicate from the predecessor/successor copies,
//! and show that results are bit-identical afterwards (paper §II-A).
//!
//! ```text
//! cargo run -p eclipse-examples --bin fault_tolerance
//! ```

use eclipse_apps::{Grep, WordCount};
use eclipse_core::{LiveCluster, LiveConfig, ReusePolicy};
use eclipse_workloads::TextGen;

fn main() {
    let cluster = LiveCluster::new(LiveConfig::small().with_nodes(10));
    let text = TextGen::new(300, 1.0, 8).generate(5, 128 * 1024);
    cluster.upload("logs.txt", "ops", text.as_bytes());

    let (before, _) =
        cluster.run_job(&WordCount, "logs.txt", "ops", 4, ReusePolicy::default());
    println!("baseline: {} distinct words", before.len());

    // Kill three nodes, one at a time. Each failure triggers take-over:
    // surviving replicas re-copy the lost blocks to restore the
    // replication factor, and the schedulers re-cut their ranges.
    for round in 0..3 {
        let victim = cluster.ring().node_ids()[1];
        let report = cluster.fail_node(victim).expect("replication factor holds");
        println!(
            "\nround {}: killed {}, re-replicated {} blocks, ring now has {} nodes",
            round + 1,
            victim,
            report.recovered_blocks,
            cluster.ring().len()
        );

        let (after, stats) =
            cluster.run_job(&WordCount, "logs.txt", "ops", 4, ReusePolicy::default());
        assert_eq!(before, after, "results must survive the failure");
        assert_eq!(stats.tasks_per_node[victim.index()], 0);
        println!(
            "  word count identical; {} map tasks ran on {} survivors",
            stats.map_tasks,
            cluster.ring().len()
        );
    }

    // A different application over the degraded cluster still works.
    let (hits, _) = cluster.run_job(
        &Grep::new("w0001"),
        "logs.txt",
        "ops",
        2,
        ReusePolicy::default(),
    );
    println!("\ngrep over the degraded cluster: {} matching lines", hits.len());
    println!("survived 3 of 10 nodes failing — replication factor 2 held.");
}
