//! Page rank over a synthetic web graph: the paper's heavyweight
//! iterative application, with per-iteration rank vectors persisted to
//! oCache (large iteration outputs — the case where the paper admits
//! Spark wins on steady-state iterations but EclipseMR survives crashes).
//!
//! ```text
//! cargo run -p eclipse-examples --bin pagerank_web
//! ```

use eclipse_apps::run_pagerank;
use eclipse_core::{LiveCluster, LiveConfig};
use eclipse_workloads::WebGraph;

fn main() {
    const VERTICES: u32 = 2000;
    let graph = WebGraph::generate(VERTICES, 4, 3);
    println!(
        "web graph: {} pages, {} links (preferential attachment)",
        graph.nodes,
        graph.num_edges()
    );

    let cluster = LiveCluster::new(LiveConfig::small().with_block_size(4096));
    cluster.upload("web-edges", "crawler", graph.to_edge_lines().as_bytes());

    let result = run_pagerank(&cluster, "web-edges", "crawler", VERTICES, 8, 4);
    let total: f64 = result.ranks.values().sum();
    println!("\nran {} iterations; rank mass {:.4}", result.iterations, total);

    let degrees = graph.in_degrees();
    let mut ranked: Vec<(f64, u32)> =
        result.ranks.iter().map(|(&v, &r)| (r, v)).collect();
    ranked.sort_by(|a, b| b.partial_cmp(a).unwrap());
    println!("\ntop pages (rank vs in-degree):");
    println!("{:>8} {:>12} {:>10}", "page", "rank", "in-degree");
    for (r, v) in ranked.iter().take(10) {
        println!("{v:>8} {r:>12.6} {:>10}", degrees[*v as usize]);
    }

    // The per-iteration rank vectors live in oCache; a crashed driver
    // restarts from the last one rather than from scratch.
    let cached = (0..8)
        .filter(|i| cluster.ocache_get("pagerank", &format!("iter{i}")).is_some())
        .count();
    println!("\n{cached}/8 iteration outputs cached for restart (plus the degree map).");
}
