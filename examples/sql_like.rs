//! SQL-ish workloads over EclipseMR: a distributed TeraSort (sampled
//! range partitioning — ORDER BY) followed by a reduce-side equi-join
//! (JOIN), with the second join riding the iCache the first one warmed —
//! the "sub-expression commonality across multiple queries" story from
//! the paper's introduction.
//!
//! ```text
//! cargo run -p eclipse-examples --bin sql_like
//! ```

use eclipse_apps::{run_equijoin, run_terasort, EquiJoin};
use eclipse_core::{LiveCluster, LiveConfig, ReusePolicy};

fn main() {
    let cluster = LiveCluster::new(LiveConfig::small().with_block_size(2048));

    // -- ORDER BY: sort 3 000 random order ids -------------------------
    let mut orders = String::new();
    for i in 0..3000u64 {
        orders.push_str(&format!("{:08}\n", (i * 48271) % 10_000_000));
    }
    cluster.upload("order-ids", "analyst", orders.as_bytes());
    let sorted = run_terasort(&cluster, "order-ids", "analyst", 6, 10);
    println!(
        "ORDER BY: {} records range-partitioned into {:?} — globally sorted: {}",
        sorted.records.len(),
        sorted.partition_sizes,
        sorted.records.windows(2).all(|w| w[0] <= w[1]),
    );

    // -- JOIN: customers ⋈ orders ---------------------------------------
    let customers: String =
        (0..200).map(|c| format!("c{c:04}\tCustomer {c}\n")).collect();
    let fact: String = (0..1200)
        .map(|o| format!("c{:04}\torder-{o}\n", o % 250)) // 50 dangling keys
        .collect();
    cluster.upload("customers", "analyst", customers.as_bytes());
    cluster.upload("orders", "analyst", fact.as_bytes());

    let joined = run_equijoin(&cluster, "customers", "orders", "analyst", 4);
    println!(
        "\nJOIN customers⋈orders: {} matched rows (orders for unknown customers dropped)",
        joined.len()
    );
    for (k, row) in joined.iter().take(3) {
        println!("  {k}: {row}");
    }

    // -- Same join again: the tables are hot in iCache now --------------
    let (again, stats) = cluster.run_job_inputs(
        &EquiJoin,
        &["customers", "orders"],
        "analyst",
        4,
        ReusePolicy::default(),
    );
    assert_eq!(again, joined);
    println!(
        "\nrepeat JOIN: identical result, {} of {} block reads served from iCache",
        stats.cache_hits,
        stats.cache_hits + stats.cache_misses
    );
}
