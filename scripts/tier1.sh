#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, the chaos and transport
# suites under --release, a bounded DST smoke sweep, and quick
# live-executor snapshots. Leaves results/BENCH_live.json,
# results/BENCH_chaos.json, results/BENCH_net.json,
# results/BENCH_cache.json, results/BENCH_straggler.json,
# results/BENCH_elastic.json, results/BENCH_tenancy.json,
# results/BENCH_epoch.json, and
# results/BENCH_dst.json behind so every pass records comparable
# throughput, recovery-time, wire-overhead, cache-plane,
# straggler-mitigation, elastic-membership, multi-tenancy,
# incremental-epoch, and chaos-coverage numbers
# (see DESIGN.md §8c–§8l). The full randomized DST sweep stays behind
# `dst_bench --runs N --preset chaos` (docs/DST.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: cargo build --workspace --release"
cargo build --workspace --release

echo "== tier1: cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== tier1: cargo test -q --workspace"
cargo test -q --workspace

echo "== tier1: chaos suite (release)"
cargo test -q --release -p eclipse-integration-tests --test chaos

echo "== tier1: wire-codec property suite (release)"
cargo test -q --release -p eclipse-integration-tests --test net_codec

echo "== tier1: transport-identity matrix, loopback TCP (release)"
cargo test -q --release -p eclipse-integration-tests --test net_matrix

echo "== tier1: live throughput (quick)"
cargo run -q --release -p eclipse-bench --bin live_bench -- --quick --out results/BENCH_live.json

echo "== tier1: fault-path recovery cost (quick)"
cargo run -q --release -p eclipse-bench --bin chaos_bench -- --quick --out results/BENCH_chaos.json

echo "== tier1: transport overhead, TCP vs in-memory (quick)"
cargo run -q --release -p eclipse-bench --bin net_bench -- --quick --out results/BENCH_net.json

echo "== tier1: cache-plane micro + warm-run (quick)"
cargo run -q --release -p eclipse-bench --bin cache_bench -- --quick --out results/BENCH_cache.json

echo "== tier1: straggler mitigation, speculation + replicated map-out (quick)"
cargo run -q --release -p eclipse-bench --bin straggler_bench -- --quick --out results/BENCH_straggler.json

echo "== tier1: elastic membership, runtime join + graceful leave (quick)"
cargo run -q --release -p eclipse-bench --bin elastic_bench -- --quick --out results/BENCH_elastic.json

echo "== tier1: multi-tenant job server, pool vs serial + cache quotas (quick)"
cargo run -q --release -p eclipse-bench --bin tenancy_bench -- --quick --out results/BENCH_tenancy.json

echo "== tier1: incremental epochs, 1% delta commit vs batch re-run (quick)"
cargo run -q --release -p eclipse-bench --bin epoch_bench -- --quick --out results/BENCH_epoch.json

echo "== tier1: DST smoke sweep (50 fixed seeds, moderate preset)"
cargo run -q --release -p eclipse-bench --bin dst_bench -- --runs 50 --seed0 1 --preset moderate --out results/BENCH_dst.json

echo "== tier1: OK"
