#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and a quick live-executor
# throughput snapshot. Leaves results/BENCH_live.json behind so every
# pass records a comparable records/sec number (see DESIGN.md §8c).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: cargo build --workspace --release"
cargo build --workspace --release

echo "== tier1: cargo test -q --workspace"
cargo test -q --workspace

echo "== tier1: live throughput (quick)"
cargo run -q --release -p eclipse-bench --bin live_bench -- --quick --out results/BENCH_live.json

echo "== tier1: OK"
