#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, the chaos suite under
# --release, and quick live-executor snapshots. Leaves
# results/BENCH_live.json and results/BENCH_chaos.json behind so every
# pass records comparable throughput and recovery-time numbers (see
# DESIGN.md §8c–§8d).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: cargo build --workspace --release"
cargo build --workspace --release

echo "== tier1: cargo test -q --workspace"
cargo test -q --workspace

echo "== tier1: chaos suite (release)"
cargo test -q --release -p eclipse-integration-tests --test chaos

echo "== tier1: live throughput (quick)"
cargo run -q --release -p eclipse-bench --bin live_bench -- --quick --out results/BENCH_live.json

echo "== tier1: fault-path recovery cost (quick)"
cargo run -q --release -p eclipse-bench --bin chaos_bench -- --quick --out results/BENCH_chaos.json

echo "== tier1: OK"
