//! Offline stand-in for `serde`.
//!
//! The workspace annotates data types with `#[derive(Serialize,
//! Deserialize)]` but never drives an actual serializer (no
//! `serde_json` or similar exists in the tree). The traits are
//! therefore markers; the derive macros emit marker impls. If a future
//! PR needs real serialization, hand-rolled writers (see
//! `scripts/tier1.sh`'s JSON snapshot) are the pattern until a real
//! serde can be vendored.

// Lets the derive-emitted `impl serde::Serialize for ...` resolve even
// when the deriving type lives inside this crate (mirrors real serde).
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(test)]
mod tests {
    #[test]
    fn derives_compile_on_plain_types() {
        #[derive(crate::Serialize, crate::Deserialize)]
        struct Point {
            _x: f64,
            _y: f64,
        }
        #[derive(crate::Serialize, crate::Deserialize)]
        enum Kind {
            _A,
            _B(u32),
        }
        fn assert_marker<T: crate::Serialize>() {}
        assert_marker::<Point>();
        assert_marker::<Kind>();
    }
}
