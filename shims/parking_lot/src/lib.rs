//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s panic-free API:
//! `lock()`/`read()`/`write()` return guards directly instead of
//! `Result`s. Poisoning is deliberately ignored (a poisoned lock simply
//! hands out the inner data), matching `parking_lot` semantics where
//! locks are never poisoned.

use std::sync;

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion primitive. Never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock. Never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 4);
        assert_eq!(m.into_inner(), 4);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2]);
        let (a, b) = (l.read(), l.read());
        assert_eq!(a.len() + b.len(), 4);
        drop((a, b));
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
