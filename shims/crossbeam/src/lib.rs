//! Offline stand-in for `crossbeam`.
//!
//! Provides the `channel` module surface the workspace uses
//! (`unbounded`, `Sender`, `Receiver`), backed by `std::sync::mpsc`.
//! Semantics match what the live executor relies on: senders are
//! cloneable and `recv()` returns `Err` once every sender is dropped
//! and the queue has drained.

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    /// Create an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn fan_in_then_hang_up() {
        let (tx, rx) = unbounded();
        let mut handles = Vec::new();
        for t in 0..4 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10 {
                    tx.send(t * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        assert_eq!(got.len(), 40);
    }
}
