//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on plain data types
//! but nothing actually serializes them (there is no `serde_json` in the
//! tree), so the shim's traits are markers and the derives emit a marker
//! impl for the deriving type. Only syntactically simple types — no
//! generic parameters — are supported, which covers every derive in the
//! workspace.

use proc_macro::{TokenStream, TokenTree};

/// Extract the name of the struct/enum a derive is attached to.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde shim derive: could not find type name");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::Serialize for {name} {{}}").parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}").parse().unwrap()
}
