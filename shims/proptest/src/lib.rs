//! Offline stand-in for `proptest`.
//!
//! Re-implements the slice of the proptest API this workspace's
//! property tests use: the [`proptest!`] macro (both `name in strategy`
//! and `name: Type` argument forms, plus `#![proptest_config]`),
//! range/tuple/string-pattern/collection strategies, `any`,
//! `prop_oneof!`, `prop_map`, `Just`, `prop::sample::Index`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case panics with the assertion message;
//!   seeding is deterministic (per test source location), so failures
//!   reproduce exactly on re-run.
//! - **Fewer default cases** (48 vs 256) to keep debug-mode CI fast.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    /// Real proptest exposes the crate under the `prop` alias via its
    /// prelude (`prop::collection::vec`, `prop::sample::Index`, ...).
    pub use crate as prop;
}

/// Top-level entry: a block of property tests, optionally headed by
/// `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::for_test(file!(), line!(), stringify!($name));
            for __case in 0..__config.cases {
                // Closure so `prop_assume!` can skip a case by returning.
                #[allow(clippy::redundant_closure_call)]
                (|| { $crate::__proptest_bind!(__rng $body ; $($params)*); })();
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $body:block ;) => { $body };
    ($rng:ident $body:block ; mut $name:ident in $strat:expr, $($rest:tt)*) => {{
        let __strat = $strat;
        let mut $name = $crate::strategy::Strategy::generate(&__strat, &mut $rng);
        $crate::__proptest_bind!($rng $body ; $($rest)*)
    }};
    ($rng:ident $body:block ; mut $name:ident in $strat:expr) => {
        $crate::__proptest_bind!($rng $body ; mut $name in $strat,)
    };
    ($rng:ident $body:block ; mut $name:ident : $ty:ty, $($rest:tt)*) => {{
        let mut $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng $body ; $($rest)*)
    }};
    ($rng:ident $body:block ; mut $name:ident : $ty:ty) => {
        $crate::__proptest_bind!($rng $body ; mut $name : $ty,)
    };
    ($rng:ident $body:block ; $name:ident in $strat:expr, $($rest:tt)*) => {{
        let __strat = $strat;
        let $name = $crate::strategy::Strategy::generate(&__strat, &mut $rng);
        $crate::__proptest_bind!($rng $body ; $($rest)*)
    }};
    ($rng:ident $body:block ; $name:ident in $strat:expr) => {
        $crate::__proptest_bind!($rng $body ; $name in $strat,)
    };
    ($rng:ident $body:block ; $name:ident : $ty:ty, $($rest:tt)*) => {{
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng $body ; $($rest)*)
    }};
    ($rng:ident $body:block ; $name:ident : $ty:ty) => {
        $crate::__proptest_bind!($rng $body ; $name : $ty,)
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let __options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::Union::new(__options)
    }};
}

/// Assert within a property test (no shrinking, so this is `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// Expands to an early return from the per-case closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn typed_args_generate(a: u64, flag: bool) {
            let _ = flag;
            prop_assert_eq!(a.wrapping_add(0), a);
        }

        #[test]
        fn strategy_args_and_assume(
            n in 1usize..50,
            keys in prop::collection::vec(any::<u64>(), 0..20),
        ) {
            prop_assume!(n > 1);
            prop_assert!(n < 50);
            prop_assert!(keys.len() < 20);
        }

        #[test]
        fn string_patterns_match_shape(tags in prop::collection::vec("[a-z]{1,6}", 1..10)) {
            for t in &tags {
                prop_assert!((1..=6).contains(&t.len()), "bad tag {:?}", t);
                prop_assert!(t.chars().all(|c| c.is_ascii_lowercase()));
            }
        }

        #[test]
        fn oneof_tuples_and_map(
            v in prop_oneof![
                (0u32..10).prop_map(|x| x as u64),
                (10u64..20, Just(1u64)).prop_map(|(a, b)| a + b),
            ],
            sel: prop::sample::Index,
        ) {
            prop_assert!(v < 21);
            prop_assert!(sel.index(7) < 7);
        }

        #[test]
        fn btree_map_sizes(m in prop::collection::btree_map(any::<u64>(), Just(()), 1..32)) {
            prop_assert!(!m.is_empty() && m.len() < 32);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_header_accepted(x in 0u8..10) {
            prop_assert!(x < 10);
        }
    }
}
