//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;

/// Accepted collection-size specs: an exact length or a `lo..hi` range
/// (half-open, like real proptest).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi, "empty size range");
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>`. Aims for a size drawn from `size`;
/// key collisions may produce a slightly smaller map (bounded retries),
/// matching real proptest's behavior of treating size as a target.
pub fn btree_map<K, V>(
    keys: K,
    values: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy { keys, values, size: size.into() }
}

#[derive(Clone, Debug)]
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut map = BTreeMap::new();
        let mut attempts = 0;
        while map.len() < target && attempts < target * 10 + 16 {
            attempts += 1;
            map.insert(self.keys.generate(rng), self.values.generate(rng));
        }
        map
    }
}
