//! Deterministic RNG and per-test configuration.

/// Per-`proptest!` block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest defaults to 256; 48 keeps the debug-mode suite
        // fast while still exploring a meaningful input space. Tests
        // that need more set `ProptestConfig::with_cases` explicitly.
        ProptestConfig { cases: 48 }
    }
}

/// SplitMix64: deterministic per test, stable across runs (no shrinking,
/// so reproducibility comes from fixed seeding rather than persisted
/// failure seeds).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test's source location and name.
    pub fn for_test(file: &str, line: u32, name: &str) -> TestRng {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for b in file.bytes().chain(name.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h ^ ((line as u64) << 32) }
    }

    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample an empty range");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n || lo >= (u64::MAX - n + 1) % n {
                return (m >> 64) as u64;
            }
        }
    }
}
