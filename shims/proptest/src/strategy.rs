//! The [`Strategy`] trait and core combinators.
//!
//! A strategy knows how to generate a random value of its `Value` type.
//! Unlike real proptest there is no value tree and no shrinking — a
//! failing case panics with the assertion message and the (fixed,
//! deterministic) seed makes the run reproducible.

use crate::test_runner::TestRng;

/// Generates random values of an associated type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ---- Numeric range strategies --------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

impl Strategy for std::ops::RangeInclusive<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (rng.next_f64() as f32) * (hi - lo)
    }
}

// ---- Tuple strategies ----------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

// ---- String pattern strategies -------------------------------------

/// A `&str` is interpreted as a simple regex-like pattern: a sequence of
/// atoms (literal characters or `[a-z0-9_]`-style classes), each with an
/// optional `{n}` / `{m,n}` repeat. This covers the patterns used across
/// the workspace's property tests (e.g. `"[a-z]{1,6}"`).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = if atom.min == atom.max {
                atom.min
            } else {
                atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize
            };
            for _ in 0..count {
                let i = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated character class in {pattern:?}"),
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().unwrap();
                            let hi = chars.next().unwrap();
                            // `lo` was already pushed as a single char;
                            // extend with the rest of the range.
                            for u in (lo as u32 + 1)..=(hi as u32) {
                                set.push(char::from_u32(u).unwrap());
                            }
                        }
                        Some(ch) => {
                            set.push(ch);
                            prev = Some(ch);
                        }
                    }
                }
                set
            }
            lit => vec![lit],
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for ch in chars.by_ref() {
                if ch == '}' {
                    break;
                }
                spec.push(ch);
            }
            match spec.split_once(',') {
                Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
                None => {
                    let n: usize = spec.trim().parse().unwrap();
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!set.is_empty() && min <= max, "bad pattern {pattern:?}");
        atoms.push(PatternAtom { chars: set, min, max });
    }
    atoms
}
