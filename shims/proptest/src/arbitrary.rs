//! `any::<T>()` — strategies derived from a type's canonical
//! distribution.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range distribution.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, scale-spread values (no NaN/inf: the
        // workspace's properties assume arithmetic inputs).
        let mag = rng.next_f64();
        let exp = rng.below(64) as i32 - 32;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * mag * (2.0f64).powi(exp)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated keys readable in failures.
        char::from_u32(0x20 + rng.below(95) as u32).unwrap()
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
        crate::sample::Index::new(rng.next_u64())
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);

/// Strategy wrapper returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}
