//! Sampling helpers: [`Index`], an abstract index into a
//! runtime-sized collection.

/// A random index resolved against a collection length at use time.
#[derive(Clone, Copy, Debug)]
pub struct Index(u64);

impl Index {
    pub(crate) fn new(raw: u64) -> Index {
        Index(raw)
    }

    /// Resolve against a collection of `len` elements.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.0 % len as u64) as usize
    }
}
