//! Offline stand-in for `rand`.
//!
//! Implements the slice of the `rand` 0.10 API this workspace uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], the base [`Rng`]
//! trait, and the [`RngExt`] extension methods `random`,
//! `random_range` and `random_bool`. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic for a given seed, which is
//! all the workloads (and their statistical tests) require. Sequences
//! differ from upstream `rand`; nothing in the workspace asserts exact
//! draws.

/// A source of random 64-bit values.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be drawn uniformly from an RNG ("standard"
/// distribution): floats in `[0, 1)`, integers over their full range,
/// fair-coin bools.
pub trait Random: Sized {
    fn random<G: Rng + ?Sized>(rng: &mut G) -> Self;
}

impl Random for f64 {
    fn random<G: Rng + ?Sized>(rng: &mut G) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<G: Rng + ?Sized>(rng: &mut G) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for bool {
    fn random<G: Rng + ?Sized>(rng: &mut G) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<G: Rng + ?Sized>(rng: &mut G) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<G: Rng + ?Sized>(rng: &mut G) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    type Output;
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> Self::Output;
}

/// Unbiased integer sampling in `[0, n)` via Lemire's multiply-shift
/// with rejection.
fn uniform_below<G: Rng + ?Sized>(rng: &mut G, n: u64) -> u64 {
    assert!(n > 0, "cannot sample an empty range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let lo = m as u64;
        if lo >= n || lo >= (u64::MAX - n + 1) % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<f32> {
    type Output = f32;
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + f32::random(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform draw of `T`'s standard distribution.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// A uniform draw from `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::random(self) < p
    }
}

impl<G: Rng + ?Sized> RngExt for G {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                *slot = z ^ (z >> 31);
            }
            if s == [0; 4] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_cover_and_stay_inside() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let f = rng.random_range(-100.0..100.0);
            assert!((-100.0..100.0).contains(&f));
        }
        let signed = rng.random_range(-5i64..5);
        assert!((-5..5).contains(&signed));
    }

    #[test]
    fn generic_rng_bound_works() {
        fn draw<R: Rng>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 1.0);
    }
}
