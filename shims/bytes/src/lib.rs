//! Offline stand-in for the `bytes` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of external dependencies are vendored as minimal local
//! re-implementations covering exactly the API surface the workspace
//! uses. `Bytes` here is an immutable, cheaply cloneable byte buffer
//! backed by `Arc<[u8]>` — clones are reference-count bumps, which is
//! the property the live executor relies on for zero-copy block reads.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data) }
    }

    /// Wrap a static slice. (The real crate avoids the copy; semantics
    /// are identical either way and the call sites pass tiny literals.)
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes { data: Arc::from(data) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A view of the whole buffer as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// A new buffer holding `self[range]` (copies; the live executor
    /// only slices small metadata).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes { data: Arc::from(&self.data[range]) }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes { data: Arc::from(s.into_bytes()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "...")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let b = Bytes::copy_from_slice(b"hello");
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..], b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(Arc::strong_count(&b.data), 2);
    }

    #[test]
    fn conversions() {
        assert_eq!(Bytes::from(vec![1u8, 2]), Bytes::copy_from_slice(&[1, 2]));
        assert_eq!(Bytes::from(String::from("ab")), Bytes::from_static(b"ab"));
        assert_eq!(Bytes::from_static(b"xyz").slice(1..3), Bytes::from_static(b"yz"));
    }
}
