//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmark harness with criterion's macro and
//! builder surface (`criterion_group!`, `criterion_main!`,
//! `benchmark_group`, `bench_function`, `Throughput`). Each benchmark
//! is timed over auto-calibrated batches; the median batch time is
//! reported in ns/iter along with derived throughput. Statistical
//! analysis, plots and baselines are out of scope — the numbers are
//! for trend-tracking in CI logs and the `scripts/tier1.sh` snapshot.
//!
//! CLI: a positional argument filters benchmarks by substring;
//! `--quick` cuts target sample time ~10×; other flags (e.g. the
//! `--bench` cargo passes) are ignored.

use std::time::{Duration, Instant};

/// Units for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Harness entry point, one per bench binary.
pub struct Criterion {
    filter: Option<String>,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut filter = None;
        let mut quick = false;
        for arg in std::env::args().skip(1) {
            if arg == "--quick" {
                quick = true;
            } else if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        if std::env::var("CRITERION_QUICK").is_ok() {
            quick = true;
        }
        Criterion { filter, quick }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            harness: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut g = self.benchmark_group(String::new());
        g.bench_function(id, f);
        g.finish();
        self
    }

    fn runs(&self, full: &str) -> bool {
        match &self.filter {
            Some(f) => full.contains(f.as_str()),
            None => true,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    harness: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = if self.name.is_empty() {
            id.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        if !self.harness.runs(&full) {
            return self;
        }
        let target = if self.harness.quick {
            Duration::from_millis(5)
        } else {
            Duration::from_millis(50)
        };
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };

        // Calibrate: grow the batch until one batch takes ≥ target/4.
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed * 4 >= target || b.iters >= u64::MAX / 2 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16
            } else {
                (target.as_nanos() / b.elapsed.as_nanos().max(1) / 2).clamp(2, 16) as u64
            };
            b.iters = b.iters.saturating_mul(grow);
        }

        // Sample.
        let samples = if self.harness.quick { 3.max(self.sample_size / 3) } else { self.sample_size };
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            per_iter.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);

        let mut line = format!(
            "{full:<40} time: [{} {} {}]",
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi)
        );
        if let Some(t) = self.throughput {
            let per_sec = |n: u64| n as f64 * 1e9 / median;
            match t {
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  thrpt: {}/s", fmt_bytes(per_sec(n))));
                }
                Throughput::Elements(n) => {
                    line.push_str(&format!("  thrpt: {} elem/s", fmt_count(per_sec(n))));
                }
            }
        }
        println!("{line}");
        self
    }

    pub fn finish(&mut self) {}
}

/// Passed to every benchmark closure; times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn fmt_bytes(b: f64) -> String {
    if b < 1024.0 {
        format!("{b:.1} B")
    } else if b < 1024.0 * 1024.0 {
        format!("{:.1} KiB", b / 1024.0)
    } else if b < 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} MiB", b / (1024.0 * 1024.0))
    } else {
        format!("{:.2} GiB", b / (1024.0 * 1024.0 * 1024.0))
    }
}

fn fmt_count(c: f64) -> String {
    if c < 1e3 {
        format!("{c:.1}")
    } else if c < 1e6 {
        format!("{:.1}K", c / 1e3)
    } else if c < 1e9 {
        format!("{:.2}M", c / 1e6)
    } else {
        format!("{:.2}B", c / 1e9)
    }
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emit `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_harness() -> Criterion {
        Criterion { filter: Some("__nothing_matches__".into()), quick: true }
    }

    #[test]
    fn filtered_out_benches_do_not_run() {
        let mut c = quiet_harness();
        let mut ran = false;
        let mut g = c.benchmark_group("g");
        g.bench_function("skipped", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        g.finish();
        assert!(!ran);
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { filter: None, quick: true };
        let mut g = c.benchmark_group("t");
        g.sample_size(3).throughput(Throughput::Elements(10));
        g.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.finish();
    }
}
