//! # eclipse-util
//!
//! Foundation crate for the EclipseMR reproduction: the SHA-1 hash used by
//! both consistent-hash rings, 64-bit ring coordinates and wrapping key
//! ranges, the histogram/KDE/CDF machinery behind the LAF scheduler, and
//! small statistics and byte-size helpers.
//!
//! Everything here is pure and deterministic; no I/O, no threads.

pub mod hist;
pub mod key;
pub mod sha1;
pub mod size;
pub mod stats;

pub use hist::{Cdf, KeyHistogram, LatencyHist};
pub use key::{HashKey, KeyRange};
pub use sha1::{sha1, Digest, Sha1};
pub use size::{fmt_bytes, num_blocks, DEFAULT_BLOCK_SIZE, DEFAULT_SPILL_BUFFER, GB, KB, MB, TB};
pub use stats::OnlineStats;
