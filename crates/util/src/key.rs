//! Ring coordinates: 64-bit hash keys and half-open wrapping key ranges.
//!
//! Both of EclipseMR's rings (the DHT file system and the distributed
//! in-memory cache) live in the same circular key space. We project SHA-1
//! digests onto `u64` (see [`crate::sha1::Digest::prefix_u64`]); all range
//! arithmetic wraps modulo 2^64.

use crate::sha1::sha1;
use serde::{Deserialize, Serialize};

/// A position on the consistent-hash ring.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct HashKey(pub u64);

impl HashKey {
    /// Minimum key (0).
    pub const MIN: HashKey = HashKey(0);
    /// Maximum key (2^64 - 1).
    pub const MAX: HashKey = HashKey(u64::MAX);

    /// Hash arbitrary bytes onto the ring with SHA-1.
    pub fn of_bytes(data: &[u8]) -> HashKey {
        HashKey(sha1(data).prefix_u64())
    }

    /// Hash a name (file name, cache tag, server id) onto the ring.
    pub fn of_name(name: &str) -> HashKey {
        Self::of_bytes(name.as_bytes())
    }

    /// Hash the `index`-th block of the named file onto the ring.
    ///
    /// The paper spreads a file's blocks over the ring by hashing each
    /// block individually (§II-A: "the partitioned file blocks are
    /// distributed across servers based on their hash keys").
    pub fn of_block(file: &str, index: u64) -> HashKey {
        let mut buf = Vec::with_capacity(file.len() + 9);
        buf.extend_from_slice(file.as_bytes());
        buf.push(b'#');
        buf.extend_from_slice(&index.to_be_bytes());
        Self::of_bytes(&buf)
    }

    /// Clockwise distance from `self` to `other` (wrapping).
    #[inline]
    pub fn distance_to(self, other: HashKey) -> u64 {
        other.0.wrapping_sub(self.0)
    }

    /// The key `offset` steps clockwise from `self` (wrapping).
    #[inline]
    pub fn offset(self, offset: u64) -> HashKey {
        HashKey(self.0.wrapping_add(offset))
    }

    /// Chord finger target: `self + 2^i` (wrapping).
    #[inline]
    pub fn finger(self, i: u32) -> HashKey {
        debug_assert!(i < 64);
        HashKey(self.0.wrapping_add(1u64 << i))
    }

    /// Fraction of the full ring represented by this key, in `[0, 1)`.
    /// Useful for histograms over the key space.
    #[inline]
    pub fn as_unit(self) -> f64 {
        self.0 as f64 / 2f64.powi(64)
    }

    /// The key at `frac` (in `[0,1)`) of the way around the ring.
    #[inline]
    pub fn from_unit(frac: f64) -> HashKey {
        let clamped = frac.clamp(0.0, 1.0);
        if clamped >= 1.0 {
            HashKey::MAX
        } else {
            HashKey((clamped * 2f64.powi(64)) as u64)
        }
    }
}

impl std::fmt::Debug for HashKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HK({:#018x})", self.0)
    }
}

impl std::fmt::Display for HashKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

impl From<u64> for HashKey {
    fn from(v: u64) -> Self {
        HashKey(v)
    }
}

/// A half-open arc `[start, end)` on the ring, possibly wrapping through 0.
///
/// Degenerate cases follow the paper's semantics:
/// * `start == end` denotes the **empty** range by default — the LAF
///   scheduler produces empty ranges for servers squeezed out by hot keys
///   ("divide the hash key space into [0,40), [40,40), [40,40), [40,140)",
///   §II-E). Use [`KeyRange::full`] for the whole-ring range.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct KeyRange {
    start: HashKey,
    end: HashKey,
    /// Distinguishes the empty range from the full ring (both have
    /// `start == end`).
    full: bool,
}

impl KeyRange {
    /// The half-open arc `[start, end)`. If `start == end` this is empty.
    pub fn new(start: HashKey, end: HashKey) -> KeyRange {
        KeyRange { start, end, full: false }
    }

    /// The whole ring, anchored at `start`.
    pub fn full(start: HashKey) -> KeyRange {
        KeyRange { start, end: start, full: true }
    }

    /// The empty range anchored at `at`.
    pub fn empty(at: HashKey) -> KeyRange {
        KeyRange { start: at, end: at, full: false }
    }

    #[inline]
    pub fn start(&self) -> HashKey {
        self.start
    }

    #[inline]
    pub fn end(&self) -> HashKey {
        self.end
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end && !self.full
    }

    #[inline]
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Number of keys contained (as u128 since the full ring holds 2^64).
    pub fn len(&self) -> u128 {
        if self.full {
            1u128 << 64
        } else {
            self.start.distance_to(self.end) as u128
        }
    }

    /// Does the arc contain `key`?
    #[inline]
    pub fn contains(&self, key: HashKey) -> bool {
        if self.full {
            return true;
        }
        if self.start == self.end {
            return false;
        }
        // Wrapping containment: key is inside iff its clockwise distance
        // from start is smaller than the arc length.
        self.start.distance_to(key) < self.start.distance_to(self.end)
    }

    /// Fraction of the ring covered, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.len() as f64 / 2f64.powi(64)
    }
}

impl std::fmt::Display for KeyRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.full {
            write!(f, "[{}..full..{})", self.start, self.end)
        } else {
            write!(f, "[{}, {})", self.start, self.end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_non_wrapping() {
        let r = KeyRange::new(HashKey(10), HashKey(20));
        assert!(!r.contains(HashKey(9)));
        assert!(r.contains(HashKey(10)));
        assert!(r.contains(HashKey(19)));
        assert!(!r.contains(HashKey(20)));
        assert_eq!(r.len(), 10);
    }

    #[test]
    fn contains_wrapping() {
        let r = KeyRange::new(HashKey(u64::MAX - 5), HashKey(5));
        assert!(r.contains(HashKey(u64::MAX - 5)));
        assert!(r.contains(HashKey(u64::MAX)));
        assert!(r.contains(HashKey(0)));
        assert!(r.contains(HashKey(4)));
        assert!(!r.contains(HashKey(5)));
        assert!(!r.contains(HashKey(100)));
        assert_eq!(r.len(), 11);
    }

    #[test]
    fn empty_and_full() {
        let e = KeyRange::empty(HashKey(7));
        assert!(e.is_empty());
        assert!(!e.contains(HashKey(7)));
        assert_eq!(e.len(), 0);

        let f = KeyRange::full(HashKey(7));
        assert!(f.is_full());
        assert!(f.contains(HashKey(7)));
        assert!(f.contains(HashKey(0)));
        assert_eq!(f.len(), 1u128 << 64);
        assert_eq!(f.fraction(), 1.0);
    }

    #[test]
    fn block_keys_spread() {
        // Adjacent blocks of the same file should land far apart: that is
        // the paper's fix for input-block skew.
        let a = HashKey::of_block("input.txt", 0);
        let b = HashKey::of_block("input.txt", 1);
        assert_ne!(a, b);
        // Not adjacent (overwhelmingly likely for a good hash).
        assert!(a.distance_to(b) > 1_000_000 && b.distance_to(a) > 1_000_000);
    }

    #[test]
    fn unit_roundtrip() {
        for v in [0u64, 1, 42, u64::MAX / 2, u64::MAX - 1] {
            let k = HashKey(v);
            let back = HashKey::from_unit(k.as_unit());
            // f64 has 53 bits of mantissa: allow coarse error.
            let err = back.0.abs_diff(k.0);
            assert!(err < (1u64 << 12), "v={v} err={err}");
        }
        assert_eq!(HashKey::from_unit(1.0), HashKey::MAX);
        assert_eq!(HashKey::from_unit(0.0), HashKey(0));
    }

    #[test]
    fn finger_wraps() {
        let k = HashKey(u64::MAX);
        assert_eq!(k.finger(0), HashKey(0));
        assert_eq!(k.finger(1), HashKey(1));
        assert_eq!(HashKey(0).finger(63), HashKey(1 << 63));
    }

    #[test]
    fn of_name_is_deterministic() {
        assert_eq!(HashKey::of_name("foo"), HashKey::of_name("foo"));
        assert_ne!(HashKey::of_name("foo"), HashKey::of_name("bar"));
    }
}
