//! A from-scratch SHA-1 implementation.
//!
//! EclipseMR uses SHA-1 as the hash function for both rings ("Filesystem
//! Hash = SHA1", paper Fig. 2). No SHA-1 crate is in the approved offline
//! dependency set, so we implement the function here. The implementation
//! follows FIPS 180-4 and is validated against the standard test vectors.
//!
//! SHA-1 is used purely for key distribution, not for security; collision
//! weaknesses are irrelevant for consistent hashing.

/// Length of a SHA-1 digest in bytes.
pub const DIGEST_LEN: usize = 20;

/// A 160-bit SHA-1 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// The first 8 bytes of the digest interpreted as a big-endian u64.
    ///
    /// This is how EclipseMR-rs projects the 160-bit SHA-1 space onto the
    /// 64-bit ring coordinate space. Truncating a cryptographic hash
    /// preserves uniformity.
    #[inline]
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("digest has 20 bytes"))
    }

    /// Hex-encode the digest (lowercase), e.g. for display and debugging.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(DIGEST_LEN * 2);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
            s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
        }
        s
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

/// Incremental SHA-1 hasher.
///
/// ```
/// use eclipse_util::sha1::Sha1;
/// let mut h = Sha1::new();
/// h.update(b"abc");
/// assert_eq!(h.finalize().to_hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
/// ```
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Create a hasher in the standard initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        // Fill a partially-full block first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().expect("split_at(64)"));
            data = rest;
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish the hash and return the digest. Consumes the hasher.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, then 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // `update` would re-count the length bytes; bypass it.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("chunks_exact(4)"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
pub fn sha1(data: &[u8]) -> Digest {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / RFC 3174 test vectors.
    #[test]
    fn empty_string() {
        assert_eq!(sha1(b"").to_hex(), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn abc() {
        assert_eq!(sha1(b"abc").to_hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(h.finalize().to_hex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn quick_brown_fox() {
        assert_eq!(
            sha1(b"The quick brown fox jumps over the lazy dog").to_hex(),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        // Feed in awkward chunk sizes crossing block boundaries.
        for chunk_size in [1, 3, 63, 64, 65, 127, 1000] {
            let mut h = Sha1::new();
            for c in data.chunks(chunk_size) {
                h.update(c);
            }
            assert_eq!(h.finalize().0, sha1(&data).0, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn prefix_u64_is_big_endian_prefix() {
        let d = sha1(b"abc");
        // a9993e364706816a are the first 8 bytes of the abc digest.
        assert_eq!(d.prefix_u64(), 0xa9993e364706816a);
    }

    #[test]
    fn exact_block_boundary_lengths() {
        // Lengths around the padding edge cases: 55, 56, 63, 64, 119, 120.
        for len in [0usize, 1, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0x5au8; len];
            let d1 = sha1(&data);
            let mut h = Sha1::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize().0, d1.0, "len {len}");
        }
    }
}
