//! Byte-size constants and formatting. The simulator meters data in bytes
//! without materializing it, so sizes appear everywhere in the codebase.

/// One kibibyte.
pub const KB: u64 = 1 << 10;
/// One mebibyte.
pub const MB: u64 = 1 << 20;
/// One gibibyte.
pub const GB: u64 = 1 << 30;
/// One tebibyte.
pub const TB: u64 = 1 << 40;

/// The paper's HDFS/DHT-FS block size (128 MB).
pub const DEFAULT_BLOCK_SIZE: u64 = 128 * MB;

/// The paper's proactive-shuffle spill buffer size (32 MB, §III-B).
pub const DEFAULT_SPILL_BUFFER: u64 = 32 * MB;

/// Render a byte count with a binary-unit suffix, e.g. `1.5 GB`.
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if bytes >= TB {
        format!("{:.2} TB", b / TB as f64)
    } else if bytes >= GB {
        format!("{:.2} GB", b / GB as f64)
    } else if bytes >= MB {
        format!("{:.2} MB", b / MB as f64)
    } else if bytes >= KB {
        format!("{:.2} KB", b / KB as f64)
    } else {
        format!("{bytes} B")
    }
}

/// Number of fixed-size blocks needed to hold `total` bytes (ceiling
/// division; zero bytes yields zero blocks).
pub fn num_blocks(total: u64, block_size: u64) -> u64 {
    assert!(block_size > 0, "block size must be positive");
    total.div_ceil(block_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(1536), "1.50 KB");
        assert_eq!(fmt_bytes(250 * GB), "250.00 GB");
        assert_eq!(fmt_bytes(2 * TB), "2.00 TB");
    }

    #[test]
    fn block_math() {
        assert_eq!(num_blocks(0, DEFAULT_BLOCK_SIZE), 0);
        assert_eq!(num_blocks(1, DEFAULT_BLOCK_SIZE), 1);
        assert_eq!(num_blocks(DEFAULT_BLOCK_SIZE, DEFAULT_BLOCK_SIZE), 1);
        assert_eq!(num_blocks(DEFAULT_BLOCK_SIZE + 1, DEFAULT_BLOCK_SIZE), 2);
        // The paper's 250 GB / 128 MB = 2000 blocks.
        assert_eq!(num_blocks(250 * GB, DEFAULT_BLOCK_SIZE), 2000);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_panics() {
        num_blocks(10, 0);
    }
}
