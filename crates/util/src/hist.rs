//! Hash-key access histograms, box-kernel density estimation, and CDF
//! partitioning — the statistical machinery behind the LAF scheduler
//! (paper Algorithm 1 and §II-E).
//!
//! The job scheduler partitions the hash key space into a large number of
//! fine-grained bins. Each input-block access bumps `k` adjacent bins by
//! `1/k` (box kernel density estimation with bandwidth `k`). Periodically
//! the recent histogram is folded into a long-run estimate with an
//! exponential moving average, a CDF is built, and the key space is cut
//! into equally-probable per-server ranges.

use crate::key::{HashKey, KeyRange};

/// A histogram over the full 64-bit ring key space.
#[derive(Clone, Debug)]
pub struct KeyHistogram {
    bins: Vec<f64>,
    /// Number of `add` calls since the last reset (Algorithm 1's
    /// `distr.size`).
    samples: u64,
}

impl KeyHistogram {
    /// A zeroed histogram with `num_bins` equal-width bins over the ring.
    ///
    /// # Panics
    /// Panics if `num_bins == 0`.
    pub fn new(num_bins: usize) -> KeyHistogram {
        assert!(num_bins > 0, "histogram needs at least one bin");
        KeyHistogram { bins: vec![0.0; num_bins], samples: 0 }
    }

    #[inline]
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Number of samples recorded since construction or the last
    /// [`reset`](Self::reset).
    #[inline]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Bin index owning `key`.
    #[inline]
    pub fn bin_of(&self, key: HashKey) -> usize {
        // Multiply in u128 to avoid overflow: bin = key * n / 2^64.
        ((key.0 as u128 * self.bins.len() as u128) >> 64) as usize
    }

    /// Record one access to `key` with a box kernel of bandwidth
    /// `k` bins: the `k` bins centred on the key's bin each gain `1/k`.
    /// Bandwidth wraps around the ring. `k` is clamped to
    /// `[1, num_bins]`.
    pub fn add(&mut self, key: HashKey, bandwidth: usize) {
        let n = self.bins.len();
        let k = bandwidth.clamp(1, n);
        let center = self.bin_of(key);
        let weight = 1.0 / k as f64;
        // Spread k bins centred on `center` (bias left for even k).
        let start = center as i64 - ((k as i64 - 1) / 2);
        for off in 0..k as i64 {
            let idx = (start + off).rem_euclid(n as i64) as usize;
            self.bins[idx] += weight;
        }
        self.samples += 1;
    }

    /// Total mass (≈ number of samples, exactly if no reset in between).
    pub fn total(&self) -> f64 {
        self.bins.iter().sum()
    }

    /// Raw bin weights.
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Fold `recent` into `self` with an exponential moving average:
    /// `self[b] = alpha * recent[b] + (1 - alpha) * self[b]`
    /// (Algorithm 1 line 15).
    ///
    /// # Panics
    /// Panics if the bin counts differ.
    pub fn merge_moving_average(&mut self, recent: &KeyHistogram, alpha: f64) {
        assert_eq!(
            self.bins.len(),
            recent.bins.len(),
            "moving average requires equal bin counts"
        );
        let alpha = alpha.clamp(0.0, 1.0);
        for (ma, r) in self.bins.iter_mut().zip(&recent.bins) {
            *ma = alpha * r + (1.0 - alpha) * *ma;
        }
    }

    /// Zero all bins and the sample counter (Algorithm 1 lines 22–23).
    pub fn reset(&mut self) {
        self.bins.fill(0.0);
        self.samples = 0;
    }

    /// Build the cumulative distribution over bins (Algorithm 1 line 17).
    /// A histogram with zero total mass yields the uniform CDF, so that an
    /// idle scheduler partitions the ring evenly.
    pub fn to_cdf(&self) -> Cdf {
        let total = self.total();
        let n = self.bins.len();
        let mut cum = Vec::with_capacity(n);
        if total <= 0.0 {
            for i in 0..n {
                cum.push((i + 1) as f64 / n as f64);
            }
        } else {
            let mut acc = 0.0;
            for &b in &self.bins {
                acc += b;
                cum.push(acc / total);
            }
            // Guard against float drift: the last entry must be exactly 1.
            *cum.last_mut().expect("n > 0") = 1.0;
        }
        Cdf { cum }
    }
}

/// Sub-buckets per power of two in a [`LatencyHist`]. 64 sub-buckets
/// bound the relative quantile error at 1/64 ≈ 1.6%.
const LAT_SUB_BITS: u32 = 6;
const LAT_SUB: u64 = 1 << LAT_SUB_BITS;

/// Number of buckets: values below `LAT_SUB` get one bucket each;
/// above that, each power of two up to 2^63 is split into `LAT_SUB`
/// log-linear sub-buckets.
const LAT_BUCKETS: usize = (LAT_SUB + (64 - LAT_SUB_BITS as u64) * LAT_SUB) as usize;

/// A log-bucketed latency histogram (HDR-histogram shape): O(1)
/// `record`, fixed memory, quantiles with bounded *relative* error
/// (≤ 1/64), merge for shard/thread aggregation.
///
/// [`KeyHistogram`] is a key-*space* histogram for the LAF scheduler
/// and cannot report a p999 over an unbounded duration domain; this
/// type is the job-latency side of the story (BENCH_tenancy's
/// p50/p99/p999 columns).
///
/// Values are in nanoseconds by convention, but any non-negative u64
/// works — buckets are value-scale-free.
#[derive(Clone, Debug)]
pub struct LatencyHist {
    counts: Vec<u64>,
    total: u64,
    max: u64,
}

impl Default for LatencyHist {
    fn default() -> LatencyHist {
        LatencyHist::new()
    }
}

impl LatencyHist {
    pub fn new() -> LatencyHist {
        LatencyHist { counts: vec![0; LAT_BUCKETS], total: 0, max: 0 }
    }

    /// Bucket index for `v`: identity below `LAT_SUB`, then
    /// `(octave, top LAT_SUB_BITS mantissa bits)` log-linear above.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        if v < LAT_SUB {
            return v as usize;
        }
        // Highest set bit position; v >= LAT_SUB so msb >= LAT_SUB_BITS.
        let msb = 63 - v.leading_zeros();
        let octave = (msb - LAT_SUB_BITS) as u64;
        let sub = (v >> (msb - LAT_SUB_BITS)) - LAT_SUB; // 0..LAT_SUB
        (LAT_SUB + octave * LAT_SUB + sub) as usize
    }

    /// Representative value reported for a bucket: its inclusive upper
    /// bound, so quantiles never under-report.
    #[inline]
    fn bucket_high(i: usize) -> u64 {
        let i = i as u64;
        if i < LAT_SUB {
            return i;
        }
        let octave = (i - LAT_SUB) / LAT_SUB;
        let sub = (i - LAT_SUB) % LAT_SUB;
        // Bucket covers [(LAT_SUB+sub) << octave, (LAT_SUB+sub+1) << octave).
        // The top octave's bound exceeds u64; widen and clamp.
        let hi = ((LAT_SUB + sub + 1) as u128) << octave;
        (hi - 1).min(u64::MAX as u128) as u64
    }

    /// Record one observation (saturating counter).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` ∈ [0, 1]: the smallest bucket upper
    /// bound such that at least `ceil(q * count)` observations fall at
    /// or below it (within one bucket's relative error, and clamped to
    /// the true max so `quantile(1.0) == max()`). Returns 0 on an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Fold `other` into `self` (thread/shard aggregation).
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }
}

/// Cumulative distribution function over the ring key space.
///
/// `cum[i]` is the probability mass in bins `0..=i`; `cum[n-1] == 1`.
#[derive(Clone, Debug)]
pub struct Cdf {
    cum: Vec<f64>,
}

impl Cdf {
    /// Number of bins backing this CDF.
    pub fn num_bins(&self) -> usize {
        self.cum.len()
    }

    /// Cumulative probability at the *end* of bin `i`.
    pub fn at(&self, i: usize) -> f64 {
        self.cum[i]
    }

    /// The ring key below which a fraction `q` of the observed accesses
    /// fall. Linear interpolation within the bin that crosses `q`.
    pub fn quantile(&self, q: f64) -> HashKey {
        let n = self.cum.len();
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return HashKey(0);
        }
        if q >= 1.0 {
            return HashKey::MAX;
        }
        // First bin whose cumulative value reaches q.
        let idx = self.cum.partition_point(|&c| c < q);
        let prev = if idx == 0 { 0.0 } else { self.cum[idx - 1] };
        let mass = self.cum[idx] - prev;
        let within = if mass > 0.0 { (q - prev) / mass } else { 0.0 };
        let bin_frac = (idx as f64 + within) / n as f64;
        HashKey::from_unit(bin_frac)
    }

    /// Cut the ring into `num_parts` equally-probable half-open ranges
    /// (Algorithm 1's `partitionCDF`). Part `i` gets
    /// `[quantile(i/n), quantile((i+1)/n))`; part `n-1` wraps back to
    /// `quantile(0) = 0`, so the parts tile the entire ring.
    ///
    /// Hot single keys collapse interior ranges to empty, exactly as in the
    /// paper's extreme example (§II-E).
    pub fn partition(&self, num_parts: usize) -> Vec<KeyRange> {
        assert!(num_parts > 0, "cannot partition into zero parts");
        if num_parts == 1 {
            return vec![KeyRange::full(HashKey(0))];
        }
        let mut bounds = Vec::with_capacity(num_parts + 1);
        bounds.push(HashKey(0));
        for i in 1..num_parts {
            let q = i as f64 / num_parts as f64;
            let mut b = self.quantile(q);
            // Boundaries must be monotone even under float plateaux.
            let prev = *bounds.last().expect("non-empty");
            if b < prev {
                b = prev;
            }
            bounds.push(b);
        }
        let mut out = Vec::with_capacity(num_parts);
        for i in 0..num_parts {
            let lo = bounds[i];
            if i + 1 < num_parts {
                out.push(KeyRange::new(lo, bounds[i + 1]));
            } else {
                // Final arc wraps to bound 0; if the first boundary is 0
                // and lo is 0 too the last part owns the full ring.
                let hi = bounds[0];
                if lo == hi {
                    out.push(KeyRange::full(lo));
                } else {
                    out.push(KeyRange::new(lo, hi));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_histogram_partitions_evenly() {
        let h = KeyHistogram::new(1000);
        let parts = h.to_cdf().partition(5);
        assert_eq!(parts.len(), 5);
        for p in &parts {
            let frac = p.fraction();
            assert!((frac - 0.2).abs() < 0.01, "fraction {frac}");
        }
        // The parts must tile the ring.
        let total: f64 = parts.iter().map(|p| p.fraction()).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn box_kernel_spreads_mass() {
        let mut h = KeyHistogram::new(100);
        h.add(HashKey::from_unit(0.5), 5);
        assert!((h.total() - 1.0).abs() < 1e-12);
        let nonzero = h.bins().iter().filter(|&&b| b > 0.0).count();
        assert_eq!(nonzero, 5);
        for &b in h.bins().iter().filter(|&&b| b > 0.0) {
            assert!((b - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn box_kernel_wraps_at_ring_edges() {
        let mut h = KeyHistogram::new(100);
        h.add(HashKey(0), 5); // center bin 0, spreads to bins 98,99,0,1,2
        let hot: Vec<usize> = (0..100).filter(|&i| h.bins()[i] > 0.0).collect();
        assert_eq!(hot, vec![0, 1, 2, 98, 99]);
    }

    #[test]
    fn skewed_histogram_narrows_hot_ranges() {
        // Two hot spots, mirroring the paper's Fig. 3 example.
        let mut h = KeyHistogram::new(1000);
        for _ in 0..450 {
            h.add(HashKey::from_unit(0.29), 11);
            h.add(HashKey::from_unit(0.64), 11);
        }
        for i in 0..100 {
            h.add(HashKey::from_unit(i as f64 / 100.0), 11);
        }
        let parts = h.to_cdf().partition(5);
        // Ranges covering the hot keys must be the narrow ones.
        let hot1 = HashKey::from_unit(0.29);
        let hot2 = HashKey::from_unit(0.64);
        let width_hot1 = parts.iter().find(|p| p.contains(hot1)).unwrap().fraction();
        let width_hot2 = parts.iter().find(|p| p.contains(hot2)).unwrap().fraction();
        let max_width = parts.iter().map(|p| p.fraction()).fold(0.0, f64::max);
        assert!(width_hot1 < max_width / 2.0, "hot1 {width_hot1} max {max_width}");
        assert!(width_hot2 < max_width / 2.0, "hot2 {width_hot2} max {max_width}");
    }

    #[test]
    fn single_hot_key_collapses_interior_ranges() {
        // Paper §II-E: if key 40 is the only hot spot, partitions become
        // [0,40), [40,40), [40,40), [40,140).
        let mut h = KeyHistogram::new(4096);
        let hot = HashKey::from_unit(0.3);
        for _ in 0..10_000 {
            h.add(hot, 1);
        }
        let parts = h.to_cdf().partition(4);
        let empties = parts.iter().filter(|p| p.fraction() < 1e-3).count();
        assert!(empties >= 2, "expected collapsed interior ranges: {parts:?}");
        // Every key must still be owned by exactly one part.
        for probe in [0.0, 0.1, 0.2999, 0.3001, 0.5, 0.9] {
            let k = HashKey::from_unit(probe);
            let owners = parts.iter().filter(|p| p.contains(k)).count();
            assert_eq!(owners, 1, "probe {probe}");
        }
    }

    #[test]
    fn moving_average_converges_to_recent() {
        let mut ma = KeyHistogram::new(10);
        let mut recent = KeyHistogram::new(10);
        for _ in 0..100 {
            recent.add(HashKey::from_unit(0.55), 1);
        }
        // Repeated folding with alpha=0.5 converges towards `recent`.
        for _ in 0..50 {
            ma.merge_moving_average(&recent, 0.5);
        }
        let hot_bin = ma.bin_of(HashKey::from_unit(0.55));
        assert!((ma.bins()[hot_bin] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn alpha_one_forgets_history() {
        let mut ma = KeyHistogram::new(10);
        ma.add(HashKey::from_unit(0.1), 1);
        let mut recent = KeyHistogram::new(10);
        recent.add(HashKey::from_unit(0.9), 1);
        ma.merge_moving_average(&recent, 1.0);
        let old_bin = ma.bin_of(HashKey::from_unit(0.1));
        assert_eq!(ma.bins()[old_bin], 0.0);
    }

    #[test]
    fn alpha_zero_keeps_history() {
        let mut ma = KeyHistogram::new(10);
        ma.add(HashKey::from_unit(0.1), 1);
        let before = ma.bins().to_vec();
        let mut recent = KeyHistogram::new(10);
        recent.add(HashKey::from_unit(0.9), 1);
        ma.merge_moving_average(&recent, 0.0);
        assert_eq!(ma.bins(), &before[..]);
    }

    #[test]
    fn quantile_monotone() {
        let mut h = KeyHistogram::new(64);
        for i in 0..500 {
            h.add(HashKey::from_unit((i % 97) as f64 / 97.0), 3);
        }
        let cdf = h.to_cdf();
        let mut prev = HashKey(0);
        for i in 0..=20 {
            let q = cdf.quantile(i as f64 / 20.0);
            assert!(q >= prev, "quantile not monotone at {i}");
            prev = q;
        }
    }

    /// Reference quantile over a sorted vec: same rank convention as
    /// [`LatencyHist::quantile`] (smallest value with ceil(q*n)
    /// observations at or below it).
    fn ref_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    #[test]
    fn latency_hist_small_values_exact() {
        // Values below 64 get one bucket each: quantiles are exact.
        let mut h = LatencyHist::new();
        let mut vals: Vec<u64> = (0..64).flat_map(|v| std::iter::repeat_n(v, 3)).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), ref_quantile(&vals, q), "q={q}");
        }
        assert_eq!(h.count(), 192);
        assert_eq!(h.max(), 63);
    }

    #[test]
    fn latency_hist_quantiles_within_relative_error() {
        // A deterministic heavy-tailed stream spanning ns..minutes;
        // every quantile must land within one sub-bucket (1/64 relative)
        // of the sorted-vec reference.
        let mut h = LatencyHist::new();
        let mut vals = Vec::new();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Skew: mostly microseconds, a tail into tens of seconds.
            let v = 1_000 + (x % 1_000_000) + if x.is_multiple_of(97) { x % 50_000_000_000 } else { 0 };
            vals.push(v);
            h.record(v);
        }
        vals.sort_unstable();
        for q in [0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 0.9999, 1.0] {
            let got = h.quantile(q) as f64;
            let want = ref_quantile(&vals, q) as f64;
            let rel = (got - want).abs() / want;
            assert!(rel <= 1.0 / 64.0 + 1e-12, "q={q}: got {got}, want {want}, rel {rel}");
            // Upper-bound convention: never under-report (beyond exactness).
            assert!(got >= want || (want - got) / want < 1e-12, "q={q} under-reports");
        }
    }

    #[test]
    fn latency_hist_merge_equals_combined_stream() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        let mut whole = LatencyHist::new();
        for i in 0..5_000u64 {
            let v = i * i % 777_777;
            if i.is_multiple_of(2) {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        for q in [0.1, 0.5, 0.99, 0.999] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn latency_hist_empty_and_extremes() {
        let mut h = LatencyHist::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.count(), 0);
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn latency_bucket_bounds_cover_and_order() {
        // bucket_of and bucket_high agree: every value maps to a bucket
        // whose high bound is >= it, and bounds are monotone.
        let mut prev = 0u64;
        for i in 0..LAT_BUCKETS {
            let hi = LatencyHist::bucket_high(i);
            assert!(i == 0 || hi > prev, "bucket {i} bound not monotone");
            assert_eq!(LatencyHist::bucket_of(hi), i, "high bound of bucket {i} maps back");
            prev = hi;
        }
        for v in [0, 1, 63, 64, 65, 127, 128, 1_000_000, u64::MAX] {
            let b = LatencyHist::bucket_of(v);
            assert!(LatencyHist::bucket_high(b) >= v, "v={v}");
        }
    }

    #[test]
    fn reset_zeroes() {
        let mut h = KeyHistogram::new(8);
        h.add(HashKey(1), 1);
        assert_eq!(h.samples(), 1);
        h.reset();
        assert_eq!(h.samples(), 0);
        assert_eq!(h.total(), 0.0);
    }
}
