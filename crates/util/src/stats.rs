//! Small statistics helpers used across the workspace: online mean/stdev
//! (Welford), summaries for benchmark reporting, and load-imbalance
//! metrics (the paper reports the standard deviation of tasks per slot,
//! §III-C).

/// Online mean / variance accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> OnlineStats {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stdev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Coefficient of variation (stdev / mean); 0 for a zero mean.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stdev() / m
        }
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of a slice.
pub fn stdev(xs: &[f64]) -> f64 {
    let mut s = OnlineStats::new();
    for &x in xs {
        s.push(x);
    }
    s.stdev()
}

/// Load-imbalance metric: max load divided by mean load (1.0 = perfect).
pub fn imbalance(loads: &[f64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let m = mean(loads);
    if m == 0.0 {
        return 1.0;
    }
    loads.iter().cloned().fold(f64::NEG_INFINITY, f64::max) / m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stdev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stdev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn imbalance_perfect_and_skewed() {
        assert!((imbalance(&[3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((imbalance(&[0.0, 0.0, 6.0]) - 3.0).abs() < 1e-12);
        assert_eq!(imbalance(&[]), 1.0);
        assert_eq!(imbalance(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn slice_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((stdev(&[1.0, 1.0, 1.0]) - 0.0).abs() < 1e-12);
    }
}
