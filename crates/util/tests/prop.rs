//! Property-based tests for the util crate's invariants.

use eclipse_util::{Cdf, HashKey, KeyHistogram, KeyRange};
use proptest::prelude::*;

proptest! {
    /// Key ranges never both contain and not-contain under wrap: a key is
    /// in [a,b) iff its clockwise distance from a is below the arc length.
    #[test]
    fn range_containment_matches_distance(a: u64, b: u64, k: u64) {
        let r = KeyRange::new(HashKey(a), HashKey(b));
        let expected = if a == b {
            false
        } else {
            HashKey(a).distance_to(HashKey(k)) < HashKey(a).distance_to(HashKey(b))
        };
        prop_assert_eq!(r.contains(HashKey(k)), expected);
    }

    /// A range and its complement partition the ring (for a != b).
    #[test]
    fn range_and_complement_tile_ring(a: u64, b: u64, k: u64) {
        prop_assume!(a != b);
        let r = KeyRange::new(HashKey(a), HashKey(b));
        let c = KeyRange::new(HashKey(b), HashKey(a));
        prop_assert!(r.contains(HashKey(k)) ^ c.contains(HashKey(k)));
        prop_assert_eq!(r.len() + c.len(), 1u128 << 64);
    }

    /// CDF partitioning tiles the ring: every key owned by exactly one part.
    #[test]
    fn partition_tiles_ring(
        keys in prop::collection::vec(any::<u64>(), 0..200),
        parts in 1usize..40,
        bins in 16usize..512,
        bandwidth in 1usize..32,
        probes in prop::collection::vec(any::<u64>(), 1..50),
    ) {
        let mut h = KeyHistogram::new(bins);
        for k in keys {
            h.add(HashKey(k), bandwidth);
        }
        let ranges = h.to_cdf().partition(parts);
        prop_assert_eq!(ranges.len(), parts);
        let covered: u128 = ranges.iter().map(|r| r.len()).sum();
        prop_assert_eq!(covered, 1u128 << 64);
        for p in probes {
            let owners = ranges.iter().filter(|r| r.contains(HashKey(p))).count();
            prop_assert_eq!(owners, 1, "probe {} owned by {} ranges", p, owners);
        }
    }

    /// Histogram mass equals the number of samples regardless of bandwidth.
    #[test]
    fn histogram_mass_conserved(
        keys in prop::collection::vec(any::<u64>(), 0..300),
        bins in 1usize..256,
        bandwidth in 1usize..300,
    ) {
        let mut h = KeyHistogram::new(bins);
        for &k in &keys {
            h.add(HashKey(k), bandwidth);
        }
        prop_assert!((h.total() - keys.len() as f64).abs() < 1e-6 * (keys.len() as f64 + 1.0));
        prop_assert_eq!(h.samples(), keys.len() as u64);
    }

    /// CDF quantiles are monotone in q.
    #[test]
    fn quantiles_monotone(
        keys in prop::collection::vec(any::<u64>(), 1..100),
        bins in 4usize..128,
    ) {
        let mut h = KeyHistogram::new(bins);
        for k in keys {
            h.add(HashKey(k), 3);
        }
        let cdf: Cdf = h.to_cdf();
        let mut prev = HashKey(0);
        for i in 0..=32 {
            let q = cdf.quantile(i as f64 / 32.0);
            prop_assert!(q >= prev);
            prev = q;
        }
    }

    /// SHA-1 one-shot equals arbitrary-chunked incremental hashing.
    #[test]
    fn sha1_chunking_invariant(
        data in prop::collection::vec(any::<u8>(), 0..2000),
        cuts in prop::collection::vec(1usize..100, 0..20),
    ) {
        let oneshot = eclipse_util::sha1(&data);
        let mut h = eclipse_util::Sha1::new();
        let mut rest = &data[..];
        for c in cuts {
            if rest.is_empty() { break; }
            let take = c.min(rest.len());
            h.update(&rest[..take]);
            rest = &rest[take..];
        }
        h.update(rest);
        prop_assert_eq!(h.finalize().0, oneshot.0);
    }

    /// Moving average with alpha in [0,1] keeps every bin within the hull
    /// of the two inputs.
    #[test]
    fn moving_average_convexity(
        a in prop::collection::vec(0.0f64..100.0, 8),
        b in prop::collection::vec(0.0f64..100.0, 8),
        alpha in 0.0f64..=1.0,
    ) {
        let mut ma = KeyHistogram::new(8);
        let recent = KeyHistogram::new(8);
        // Install raw bin values via add() is awkward; emulate via direct
        // convex check on the formula instead.
        for (i, (&x, &y)) in a.iter().zip(&b).enumerate() {
            let folded = alpha * y + (1.0 - alpha) * x;
            let lo = x.min(y) - 1e-9;
            let hi = x.max(y) + 1e-9;
            prop_assert!(folded >= lo && folded <= hi, "bin {i}");
        }
        // Also exercise the real API once for shape errors.
        ma.merge_moving_average(&recent, alpha);
        let _ = recent.total();
    }
}
