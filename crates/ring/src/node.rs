//! Node identities.

use eclipse_util::HashKey;
use serde::{Deserialize, Serialize};

/// Dense numeric identifier of a cluster server. These are assigned by the
/// resource manager at join time and used as indices throughout the
/// workspace (slot tables, disk models, cache shards).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A server's identity on the ring: its id, human-readable name, and the
/// ring coordinate derived from the name (SHA-1, like file keys).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerInfo {
    pub id: NodeId,
    pub name: String,
    pub key: HashKey,
}

impl ServerInfo {
    /// A server whose ring position is the hash of its name — the normal
    /// production path.
    pub fn from_name(id: NodeId, name: impl Into<String>) -> ServerInfo {
        let name = name.into();
        let key = HashKey::of_name(&name);
        ServerInfo { id, name, key }
    }

    /// A server pinned to an explicit ring position — used by tests and by
    /// figures that reproduce the paper's worked examples (keys 5, 15, 26,
    /// 39, 47, 57 in Fig. 1).
    pub fn at_key(id: NodeId, name: impl Into<String>, key: HashKey) -> ServerInfo {
        ServerInfo { id, name: name.into(), key }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_determines_key() {
        let a = ServerInfo::from_name(NodeId(0), "server-A");
        let b = ServerInfo::from_name(NodeId(1), "server-A");
        assert_eq!(a.key, b.key);
        let c = ServerInfo::from_name(NodeId(2), "server-C");
        assert_ne!(a.key, c.key);
    }

    #[test]
    fn pinned_key_is_respected() {
        let s = ServerInfo::at_key(NodeId(9), "x", HashKey(42));
        assert_eq!(s.key, HashKey(42));
        assert_eq!(s.id.index(), 9);
    }
}
