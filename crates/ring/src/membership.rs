//! Cluster membership: join/leave/failure events, neighbor heartbeats,
//! and the distributed election that picks the job scheduler and resource
//! manager ("the job scheduler and the resource manager are selected by a
//! distributed election algorithm", paper §II).

use crate::node::{NodeId, ServerInfo};
use crate::ring::{Ring, RingError};
use std::collections::BTreeMap;

/// A membership change.
#[derive(Clone, Debug, PartialEq)]
pub enum MembershipEvent {
    Join(ServerInfo),
    /// Graceful leave.
    Leave(NodeId),
    /// Crash detected by heartbeat timeout.
    Fail(NodeId),
}

/// Coordinator roles assigned by election.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Coordinators {
    pub scheduler: NodeId,
    pub resource_manager: NodeId,
}

/// Chang–Roberts style ring election. The token circulates clockwise
/// carrying the largest ring key seen; the node whose own key returns to
/// it wins. Returns the winner and the number of messages exchanged
/// (useful for the election-cost test).
///
/// Deterministic: the winner is always the member with the greatest ring
/// position, regardless of initiator.
pub fn ring_election(ring: &Ring, initiator: NodeId) -> Result<(NodeId, usize), RingError> {
    if !ring.contains(initiator) {
        return Err(RingError::UnknownNode(initiator));
    }
    let n = ring.len();
    if n == 1 {
        return Ok((initiator, 0));
    }
    let mut messages = 0usize;
    let mut at = initiator;
    let mut candidate = initiator;
    let mut candidate_key = ring.key_of(initiator)?;
    // The token needs at most 2n hops: n to find the max, n to confirm.
    for _ in 0..(2 * n + 1) {
        let next = ring.successor(at)?.id;
        messages += 1;
        if next == candidate {
            // Token returned to the candidate: elected.
            return Ok((candidate, messages));
        }
        let next_key = ring.key_of(next)?;
        if next_key > candidate_key {
            candidate = next;
            candidate_key = next_key;
        }
        at = next;
    }
    unreachable!("election failed to terminate");
}

/// Live view of the cluster: the ring plus elected coordinators and an
/// epoch bumped on every membership change. The epoch lets downstream
/// components (finger tables, scheduler ranges) notice staleness cheaply.
#[derive(Clone, Debug)]
pub struct ClusterView {
    ring: Ring,
    epoch: u64,
    coordinators: Option<Coordinators>,
}

impl ClusterView {
    pub fn new(ring: Ring) -> ClusterView {
        let mut view = ClusterView { ring, epoch: 0, coordinators: None };
        view.reelect();
        view
    }

    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn coordinators(&self) -> Option<Coordinators> {
        self.coordinators
    }

    /// Apply a membership event; bumps the epoch and re-elects if a
    /// coordinator was lost (or on first join).
    pub fn apply(&mut self, event: MembershipEvent) -> Result<(), RingError> {
        match event {
            MembershipEvent::Join(info) => {
                self.ring.insert(info)?;
            }
            MembershipEvent::Leave(id) | MembershipEvent::Fail(id) => {
                self.ring.remove(id)?;
            }
        }
        self.epoch += 1;
        let lost_coordinator = match self.coordinators {
            Some(c) => !self.ring.contains(c.scheduler) || !self.ring.contains(c.resource_manager),
            None => true,
        };
        if lost_coordinator {
            self.reelect();
        }
        Ok(())
    }

    /// Run the election: the winner becomes scheduler, its successor the
    /// resource manager (any worker can hold either role, §II).
    pub fn reelect(&mut self) {
        self.coordinators = None;
        if self.ring.is_empty() {
            return;
        }
        let initiator = self.ring.node_ids()[0];
        let (winner, _) = ring_election(&self.ring, initiator).expect("member initiator");
        let rm = if self.ring.len() > 1 {
            self.ring.successor(winner).expect("member").id
        } else {
            winner
        };
        self.coordinators = Some(Coordinators { scheduler: winner, resource_manager: rm });
    }
}

/// Neighbor heartbeat failure detector. Servers exchange heartbeats with
/// their direct ring neighbors (§II-A); a node silent for longer than the
/// timeout is declared failed.
#[derive(Clone, Debug)]
pub struct HeartbeatMonitor {
    last_heard: BTreeMap<NodeId, f64>,
    timeout: f64,
}

impl HeartbeatMonitor {
    /// `timeout` is in seconds of (simulated or wall) time.
    pub fn new(timeout: f64) -> HeartbeatMonitor {
        assert!(timeout > 0.0);
        HeartbeatMonitor { last_heard: BTreeMap::new(), timeout }
    }

    /// Register (or refresh) a node at time `now`.
    pub fn heartbeat(&mut self, node: NodeId, now: f64) {
        self.last_heard.insert(node, now);
    }

    /// Remove a node from monitoring (leave/known failure).
    pub fn forget(&mut self, node: NodeId) {
        self.last_heard.remove(&node);
    }

    /// Nodes whose last heartbeat is older than the timeout at `now`.
    /// Detected nodes are removed from the monitor so each failure is
    /// reported once.
    pub fn expired(&mut self, now: f64) -> Vec<NodeId> {
        let dead: Vec<NodeId> = self
            .last_heard
            .iter()
            .filter(|(_, &t)| now - t > self.timeout)
            .map(|(&id, _)| id)
            .collect();
        for id in &dead {
            self.last_heard.remove(id);
        }
        dead
    }

    pub fn tracked(&self) -> usize {
        self.last_heard.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclipse_util::HashKey;

    fn ring_n(n: usize) -> Ring {
        Ring::with_servers(n, "m")
    }

    #[test]
    fn election_winner_is_max_key_regardless_of_initiator() {
        let ring = ring_n(12);
        let max_key_node =
            ring.members().max_by_key(|s| s.key).map(|s| s.id).unwrap();
        for init in ring.node_ids() {
            let (winner, msgs) = ring_election(&ring, init).unwrap();
            assert_eq!(winner, max_key_node, "initiator {init}");
            assert!(msgs <= 2 * ring.len(), "messages {msgs}");
        }
    }

    #[test]
    fn election_single_node() {
        let mut ring = Ring::new();
        ring.insert(ServerInfo::at_key(NodeId(0), "solo", HashKey(1))).unwrap();
        let (w, m) = ring_election(&ring, NodeId(0)).unwrap();
        assert_eq!(w, NodeId(0));
        assert_eq!(m, 0);
    }

    #[test]
    fn view_reelects_on_coordinator_failure() {
        let mut view = ClusterView::new(ring_n(8));
        let before = view.coordinators().unwrap();
        view.apply(MembershipEvent::Fail(before.scheduler)).unwrap();
        let after = view.coordinators().unwrap();
        assert_ne!(after.scheduler, before.scheduler);
        assert!(view.ring().contains(after.scheduler));
        assert!(view.ring().contains(after.resource_manager));
        assert_eq!(view.epoch(), 1);
    }

    #[test]
    fn view_keeps_coordinators_on_worker_failure() {
        let mut view = ClusterView::new(ring_n(8));
        let coords = view.coordinators().unwrap();
        // Fail a node that is neither coordinator.
        let victim = view
            .ring()
            .node_ids()
            .into_iter()
            .find(|&id| id != coords.scheduler && id != coords.resource_manager)
            .unwrap();
        view.apply(MembershipEvent::Fail(victim)).unwrap();
        assert_eq!(view.coordinators().unwrap(), coords);
    }

    #[test]
    fn view_join_bumps_epoch() {
        let mut view = ClusterView::new(ring_n(3));
        let e0 = view.epoch();
        view.apply(MembershipEvent::Join(ServerInfo::from_name(NodeId(99), "joiner")))
            .unwrap();
        assert_eq!(view.epoch(), e0 + 1);
        assert_eq!(view.ring().len(), 4);
    }

    #[test]
    fn heartbeat_detects_silence() {
        let mut hb = HeartbeatMonitor::new(3.0);
        hb.heartbeat(NodeId(0), 0.0);
        hb.heartbeat(NodeId(1), 0.0);
        assert!(hb.expired(2.0).is_empty());
        hb.heartbeat(NodeId(1), 2.0);
        let dead = hb.expired(4.0);
        assert_eq!(dead, vec![NodeId(0)]);
        // Reported once only.
        assert!(hb.expired(10.0).contains(&NodeId(1)));
        assert!(hb.expired(100.0).is_empty());
    }

    #[test]
    fn heartbeat_forget() {
        let mut hb = HeartbeatMonitor::new(1.0);
        hb.heartbeat(NodeId(5), 0.0);
        hb.forget(NodeId(5));
        assert_eq!(hb.tracked(), 0);
        assert!(hb.expired(100.0).is_empty());
    }
}
