//! Chord finger tables and DHT routing.
//!
//! The paper (§II-A) keeps a *complete* routing table on every server —
//! `m` chosen so that `2^m - 1 > S` and, for clusters below a couple of
//! thousand servers, `m = S` enabling **one-hop routing** (citing Gupta's
//! one-hop lookups). We implement both regimes:
//!
//! * [`RoutingMode::OneHop`] — the table holds every member; lookups
//!   resolve in a single hop (zero forwarding).
//! * [`RoutingMode::Chord`] — classic Chord fingers `succ(n + 2^i)`;
//!   lookups forward through the closest preceding finger in
//!   `O(log S)` hops. Used by the finger-routing ablation bench.

use crate::node::NodeId;
use crate::ring::{Ring, RingError};
use eclipse_util::HashKey;

/// Which routing table layout a server keeps.
///
/// The paper (§II-A): "each server manages its own routing table, called
/// finger table, containing m peer servers' information. m can be
/// determined by system administrators but it should be chosen so that
/// 2^m − 1 > S … we set m to the total number of servers to enable the
/// one hop DHT routing. When m is smaller, file IO requests can be
/// redirected and the IO performance can be degraded."
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingMode {
    /// Complete membership on each node: every lookup is one hop (the
    /// paper's deployment choice, m = S).
    OneHop,
    /// Logarithmic finger table: lookups may forward.
    Chord,
    /// A subsampled finger table of `m` entries (the administrator's
    /// size knob): strides are spread over the full 64-bit span, always
    /// including the immediate successor so lookups stay correct. Fewer
    /// fingers ⇒ coarser strides ⇒ more redirections — the paper's
    /// "when m is smaller, file IO requests can be redirected and the IO
    /// performance can be degraded".
    Partial(u32),
}

/// A single server's routing table.
#[derive(Clone, Debug)]
pub struct FingerTable {
    /// Owner of this table.
    pub node: NodeId,
    /// Ring position of the owner.
    pub key: HashKey,
    mode: RoutingMode,
    /// For `Chord`: (finger target key, resolved node, node's ring key)
    /// for i in 0..64. For `OneHop`: the full membership sorted by key.
    entries: Vec<(HashKey, NodeId)>,
}

impl FingerTable {
    /// Build the table for `node` from the current ring membership.
    pub fn build(ring: &Ring, node: NodeId, mode: RoutingMode) -> Result<FingerTable, RingError> {
        let key = ring.key_of(node)?;
        let entries = match mode {
            RoutingMode::OneHop => {
                ring.members().map(|s| (s.key, s.id)).collect()
            }
            RoutingMode::Chord | RoutingMode::Partial(_) => {
                // Finger indices: all 64 for Chord; for Partial(m), m
                // indices evenly subsampled with index 0 (the successor)
                // always present.
                let indices: Vec<u32> = match mode {
                    RoutingMode::Partial(m) => {
                        assert!((1..=64).contains(&m), "m out of range");
                        (0..m).map(|j| j * 64 / m).collect()
                    }
                    _ => (0..64).collect(),
                };
                let mut v = Vec::with_capacity(indices.len());
                for i in indices {
                    let target = key.finger(i);
                    // Chord finger = successor(target): first node at or
                    // after the target. Our owner_of is predecessor-or-
                    // equal, so the finger is owner's successor unless the
                    // owner sits exactly on the target.
                    let owner = ring.owner_of(target)?;
                    let finger = if owner.key == target {
                        owner
                    } else {
                        ring.successor(owner.id)?
                    };
                    v.push((finger.key, finger.id));
                }
                v
            }
        };
        Ok(FingerTable { node, key, mode, entries })
    }

    pub fn mode(&self) -> RoutingMode {
        self.mode
    }

    /// Number of stored entries (m in the paper's terms).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Next hop toward the owner of `key`, or `None` if this node can
    /// resolve the key itself (one-hop mode resolves everything locally).
    ///
    /// For Chord mode this is the *closest preceding finger*: the finger
    /// whose key is the latest strictly between this node and the target.
    pub fn next_hop(&self, key: HashKey, ring: &Ring) -> Result<Option<NodeId>, RingError> {
        let owner = ring.owner_of(key)?.id;
        if owner == self.node {
            return Ok(None);
        }
        match self.mode {
            RoutingMode::OneHop => Ok(Some(owner)),
            RoutingMode::Chord | RoutingMode::Partial(_) => {
                // Greatest finger key in the open arc (self.key, key).
                let span = self.key.distance_to(key);
                let mut best: Option<(u64, NodeId)> = None;
                for &(fk, fid) in &self.entries {
                    if fid == self.node {
                        continue;
                    }
                    let d = self.key.distance_to(fk);
                    if d > 0 && d < span {
                        match best {
                            Some((bd, _)) if bd >= d => {}
                            _ => best = Some((d, fid)),
                        }
                    }
                }
                // No finger precedes the target: the direct successor is
                // the owner.
                Ok(Some(best.map(|(_, id)| id).unwrap_or(owner)))
            }
        }
    }
}

/// Routing fabric: one finger table per member, plus lookup-path tracing
/// for the routing ablation.
#[derive(Clone, Debug)]
pub struct Router {
    tables: Vec<FingerTable>,
    mode: RoutingMode,
}

impl Router {
    /// Build tables for every current member.
    pub fn build(ring: &Ring, mode: RoutingMode) -> Result<Router, RingError> {
        let mut tables = Vec::with_capacity(ring.len());
        for s in ring.members() {
            tables.push(FingerTable::build(ring, s.id, mode)?);
        }
        Ok(Router { tables, mode })
    }

    pub fn mode(&self) -> RoutingMode {
        self.mode
    }

    fn table_of(&self, node: NodeId) -> Option<&FingerTable> {
        self.tables.iter().find(|t| t.node == node)
    }

    /// Resolve `key` starting at `from`; returns the hop path **excluding**
    /// the starting node and **ending at the owner**. One-hop mode yields
    /// at most one element.
    pub fn route(&self, ring: &Ring, from: NodeId, key: HashKey) -> Result<Vec<NodeId>, RingError> {
        let mut path = Vec::new();
        let mut at = from;
        // Bound iterations defensively: Chord terminates in O(log n);
        // sparse partial tables may walk successor chains.
        for _ in 0..(64 + 2 * ring.positions()) {
            let table = self.table_of(at).ok_or(RingError::UnknownNode(at))?;
            match table.next_hop(key, ring)? {
                None => return Ok(path),
                Some(next) => {
                    path.push(next);
                    at = next;
                    if ring.owner_of(key)?.id == next {
                        return Ok(path);
                    }
                }
            }
        }
        unreachable!("routing failed to converge — finger tables inconsistent");
    }

    /// Number of forwarding hops for a lookup (0 = local hit).
    pub fn hops(&self, ring: &Ring, from: NodeId, key: HashKey) -> Result<usize, RingError> {
        Ok(self.route(ring, from, key)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ServerInfo;

    fn ring_n(n: usize) -> Ring {
        Ring::with_servers(n, "srv")
    }

    #[test]
    fn one_hop_resolves_in_at_most_one_hop() {
        let ring = ring_n(16);
        let router = Router::build(&ring, RoutingMode::OneHop).unwrap();
        let ids = ring.node_ids();
        for probe in 0..200u64 {
            let key = HashKey::of_name(&format!("probe-{probe}"));
            let from = ids[probe as usize % ids.len()];
            let hops = router.hops(&ring, from, key).unwrap();
            assert!(hops <= 1, "one-hop exceeded: {hops}");
            // Path must end at the true owner (or be empty if local).
            let path = router.route(&ring, from, key).unwrap();
            let owner = ring.owner_of(key).unwrap().id;
            match path.last() {
                Some(&last) => assert_eq!(last, owner),
                None => assert_eq!(from, owner),
            }
        }
    }

    #[test]
    fn chord_routing_reaches_owner_in_log_hops() {
        let ring = ring_n(64);
        let router = Router::build(&ring, RoutingMode::Chord).unwrap();
        let ids = ring.node_ids();
        let mut max_hops = 0;
        for probe in 0..300u64 {
            let key = HashKey::of_name(&format!("k{probe}"));
            let from = ids[(probe as usize * 7) % ids.len()];
            let path = router.route(&ring, from, key).unwrap();
            let owner = ring.owner_of(key).unwrap().id;
            match path.last() {
                Some(&last) => assert_eq!(last, owner, "probe {probe}"),
                None => assert_eq!(from, owner, "probe {probe}"),
            }
            max_hops = max_hops.max(path.len());
        }
        // Chord bound: O(log2 64) = 6, allow slack.
        assert!(max_hops <= 10, "chord hops too high: {max_hops}");
        assert!(max_hops >= 2, "chord should need forwarding on 64 nodes");
    }

    #[test]
    fn chord_finger_targets_are_successors() {
        let mut ring = Ring::new();
        for (i, k) in [10u64, 100, 1000, 10000].iter().enumerate() {
            ring.insert(ServerInfo::at_key(NodeId(i as u32), format!("s{i}"), HashKey(*k)))
                .unwrap();
        }
        let t = FingerTable::build(&ring, NodeId(0), RoutingMode::Chord).unwrap();
        assert_eq!(t.len(), 64);
        // finger(0) targets key 11 -> successor is the node at 100.
        assert_eq!(t.entries[0].1, NodeId(1));
        // A huge finger (2^63) wraps: target 10 + 2^63, successor wraps to
        // the first node (key 10).
        assert_eq!(t.entries[63].1, NodeId(0));
    }

    #[test]
    fn one_hop_table_holds_full_membership() {
        let ring = ring_n(24);
        let t = FingerTable::build(&ring, ring.node_ids()[0], RoutingMode::OneHop).unwrap();
        assert_eq!(t.len(), 24);
    }

    #[test]
    fn partial_tables_route_correctly_but_slower() {
        let ring = ring_n(48);
        let full = Router::build(&ring, RoutingMode::Chord).unwrap();
        // 2^6 - 1 = 63 > 48: the smallest legal m for this cluster.
        let partial = Router::build(&ring, RoutingMode::Partial(6)).unwrap();
        let tiny = Router::build(&ring, RoutingMode::Partial(3)).unwrap();
        let ids = ring.node_ids();
        let mut hops = [0usize; 3];
        for probe in 0..200u64 {
            let key = HashKey::of_name(&format!("p{probe}"));
            let from = ids[(probe as usize * 11) % ids.len()];
            let owner = ring.owner_of(key).unwrap().id;
            for (h, router) in hops.iter_mut().zip([&full, &partial, &tiny]) {
                let path = router.route(&ring, from, key).unwrap();
                match path.last() {
                    Some(&last) => assert_eq!(last, owner),
                    None => assert_eq!(from, owner),
                }
                *h += path.len();
            }
        }
        // Fewer fingers ⇒ more redirections (the paper's m trade-off).
        assert!(hops[0] <= hops[1], "full {} partial {}", hops[0], hops[1]);
        assert!(hops[1] < hops[2], "partial {} tiny {}", hops[1], hops[2]);
    }

    #[test]
    fn local_key_needs_no_hop() {
        let ring = ring_n(8);
        let router = Router::build(&ring, RoutingMode::Chord).unwrap();
        for s in ring.members() {
            // Probe the node's own ring position: always local.
            let path = router.route(&ring, s.id, s.key).unwrap();
            assert!(path.is_empty());
        }
    }
}
