//! The consistent-hash ring: sorted membership, ownership ranges,
//! predecessor/successor queries, and minimal-disruption join/leave.
//!
//! Ownership convention follows the paper's Fig. 1: the server positioned
//! at ring key `h` owns the half-open arc `[h, next_server_key)`. The
//! owner of an arbitrary key `k` is therefore the server with the greatest
//! ring position `<= k` (wrapping) — `predecessor-or-equal`.

use crate::node::{NodeId, ServerInfo};
use eclipse_util::{HashKey, KeyRange};
use std::collections::BTreeMap;

/// Error type for ring mutations.
#[derive(Debug, PartialEq, Eq)]
pub enum RingError {
    /// Two servers may not share one ring coordinate.
    DuplicateKey(HashKey),
    /// A node id was inserted twice.
    DuplicateNode(NodeId),
    /// The node is not a member.
    UnknownNode(NodeId),
    /// Operation requires a non-empty ring.
    EmptyRing,
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::DuplicateKey(k) => write!(f, "ring position {k} already occupied"),
            RingError::DuplicateNode(n) => write!(f, "node {n} already a member"),
            RingError::UnknownNode(n) => write!(f, "node {n} is not a member"),
            RingError::EmptyRing => write!(f, "ring is empty"),
        }
    }
}

impl std::error::Error for RingError {}

/// Sorted ring membership.
///
/// ```
/// use eclipse_ring::Ring;
/// use eclipse_util::HashKey;
///
/// let ring = Ring::with_servers_evenly_spaced(4, "node");
/// let key = HashKey::of_name("some-file");
/// let owner = ring.owner_of(key).unwrap().id;
/// // The owner plus its successor and predecessor hold the replicas.
/// let replicas = ring.replica_set(key, 2).unwrap();
/// assert_eq!(replicas.len(), 3);
/// assert_eq!(replicas[0], owner);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Ring {
    /// Ring position -> server. BTreeMap keeps clockwise order.
    by_key: BTreeMap<HashKey, ServerInfo>,
    /// Node id -> ring positions (primary first; extra entries are
    /// virtual nodes), for O(log n) reverse lookups.
    by_node: BTreeMap<NodeId, Vec<HashKey>>,
}

impl Ring {
    pub fn new() -> Ring {
        Ring::default()
    }

    /// Build a ring of `n` servers named `prefix-<i>`, positions hashed
    /// from the names. Node ids are `0..n`.
    pub fn with_servers(n: usize, prefix: &str) -> Ring {
        let mut ring = Ring::new();
        for i in 0..n {
            let mut name = format!("{prefix}-{i}");
            let mut info = ServerInfo::from_name(NodeId(i as u32), name.clone());
            // Astronomically unlikely, but keep the invariant airtight:
            // re-salt on a position collision.
            let mut salt = 0u32;
            while ring.by_key.contains_key(&info.key) {
                salt += 1;
                name = format!("{prefix}-{i}+{salt}");
                info = ServerInfo::from_name(NodeId(i as u32), name.clone());
            }
            ring.insert(info).expect("fresh node id and key");
        }
        ring
    }

    /// Build a ring of `n` servers at evenly spaced positions
    /// (server `i` at `i * 2^64 / n`) — how small stationary clusters
    /// assign DHT ids in practice (the paper's Fig. 1 shows roughly
    /// equidistant server keys). Even spacing makes block placement
    /// balanced and keeps the LAF scheduler's equal-probability ranges
    /// aligned with the file-system arcs under uniform access.
    pub fn with_servers_evenly_spaced(n: usize, prefix: &str) -> Ring {
        assert!(n > 0);
        let mut ring = Ring::new();
        for i in 0..n {
            let key = HashKey((((i as u128) << 64) / n as u128) as u64);
            ring.insert(ServerInfo::at_key(NodeId(i as u32), format!("{prefix}-{i}"), key))
                .expect("fresh node id and key");
        }
        ring
    }

    /// Build a ring of `n` servers, each occupying `vnodes` positions
    /// ("virtual nodes"). Virtual nodes even out the arc-length variance
    /// of raw consistent hashing (max/mean arc ~ ln n for one position
    /// per server), which is what gives the DHT file system its even
    /// block distribution.
    pub fn with_servers_vnodes(n: usize, prefix: &str, vnodes: usize) -> Ring {
        assert!(vnodes >= 1);
        let mut ring = Ring::new();
        for i in 0..n {
            ring.insert(ServerInfo::from_name(NodeId(i as u32), format!("{prefix}-{i}")))
                .expect("fresh node id");
            for v in 1..vnodes {
                let mut salt = 0u32;
                loop {
                    let name = if salt == 0 {
                        format!("{prefix}-{i}#v{v}")
                    } else {
                        format!("{prefix}-{i}#v{v}+{salt}")
                    };
                    let info = ServerInfo::from_name(NodeId(i as u32), name);
                    match ring.insert_vnode(info) {
                        Ok(()) => break,
                        Err(_) => salt += 1,
                    }
                }
            }
        }
        ring
    }

    /// Number of ring positions (vnode entries), not physical servers.
    pub fn len(&self) -> usize {
        self.by_node.len()
    }

    /// Number of ring positions including virtual nodes.
    pub fn positions(&self) -> usize {
        self.by_key.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Add a server at its primary position. Fails on duplicate node id
    /// or ring position.
    pub fn insert(&mut self, info: ServerInfo) -> Result<(), RingError> {
        if self.by_node.contains_key(&info.id) {
            return Err(RingError::DuplicateNode(info.id));
        }
        if self.by_key.contains_key(&info.key) {
            return Err(RingError::DuplicateKey(info.key));
        }
        self.by_node.insert(info.id, vec![info.key]);
        self.by_key.insert(info.key, info);
        Ok(())
    }

    /// Add an extra (virtual) position for an existing member.
    pub fn insert_vnode(&mut self, info: ServerInfo) -> Result<(), RingError> {
        let positions = self.by_node.get_mut(&info.id).ok_or(RingError::UnknownNode(info.id))?;
        if self.by_key.contains_key(&info.key) {
            return Err(RingError::DuplicateKey(info.key));
        }
        positions.push(info.key);
        self.by_key.insert(info.key, info);
        Ok(())
    }

    /// Remove a server and all of its virtual positions (leave or
    /// failure). Returns the primary-position info.
    pub fn remove(&mut self, id: NodeId) -> Result<ServerInfo, RingError> {
        let keys = self.by_node.remove(&id).ok_or(RingError::UnknownNode(id))?;
        let mut primary = None;
        for (i, key) in keys.into_iter().enumerate() {
            let info = self.by_key.remove(&key).expect("maps kept in sync");
            if i == 0 {
                primary = Some(info);
            }
        }
        Ok(primary.expect("at least the primary position"))
    }

    /// Primary ring position of a member.
    pub fn key_of(&self, id: NodeId) -> Result<HashKey, RingError> {
        self.by_node.get(&id).map(|v| v[0]).ok_or(RingError::UnknownNode(id))
    }

    /// All ring positions (primary + virtual) of a member.
    pub fn keys_of(&self, id: NodeId) -> Result<&[HashKey], RingError> {
        self.by_node.get(&id).map(|v| v.as_slice()).ok_or(RingError::UnknownNode(id))
    }

    pub fn contains(&self, id: NodeId) -> bool {
        self.by_node.contains_key(&id)
    }

    /// Ring positions in clockwise (ascending key) order. With virtual
    /// nodes a physical server appears once per position.
    pub fn members(&self) -> impl Iterator<Item = &ServerInfo> {
        self.by_key.values()
    }

    /// Distinct physical node ids, ordered by first (clockwise)
    /// appearance on the ring.
    pub fn node_ids(&self) -> Vec<NodeId> {
        let mut seen = Vec::new();
        for s in self.by_key.values() {
            if !seen.contains(&s.id) {
                seen.push(s.id);
            }
        }
        seen
    }

    /// The server owning `key`: greatest ring position `<= key`, wrapping
    /// to the last server if `key` precedes every position.
    pub fn owner_of(&self, key: HashKey) -> Result<&ServerInfo, RingError> {
        if self.by_key.is_empty() {
            return Err(RingError::EmptyRing);
        }
        let found = self
            .by_key
            .range(..=key)
            .next_back()
            .or_else(|| self.by_key.iter().next_back())
            .map(|(_, v)| v)
            .expect("non-empty ring");
        Ok(found)
    }

    /// Clockwise successor *node* of the member `id` from its primary
    /// position, skipping the member's own virtual positions (wraps; the
    /// single member of a 1-ring is its own successor).
    pub fn successor(&self, id: NodeId) -> Result<&ServerInfo, RingError> {
        use std::ops::Bound::{Excluded, Unbounded};
        let mut key = self.key_of(id)?;
        for _ in 0..self.by_key.len() {
            let next = self
                .by_key
                .range((Excluded(key), Unbounded))
                .next()
                .or_else(|| self.by_key.iter().next())
                .map(|(_, v)| v)
                .expect("member exists");
            if next.id != id {
                return Ok(next);
            }
            key = next.key;
        }
        // Every position belongs to `id`: it is its own successor.
        Ok(self.by_key.values().next().expect("member exists"))
    }

    /// Counter-clockwise predecessor *node* of the member `id` from its
    /// primary position, skipping its own virtual positions (wraps).
    pub fn predecessor(&self, id: NodeId) -> Result<&ServerInfo, RingError> {
        let mut key = self.key_of(id)?;
        for _ in 0..self.by_key.len() {
            let prev = self
                .by_key
                .range(..key)
                .next_back()
                .or_else(|| self.by_key.iter().next_back())
                .map(|(_, v)| v)
                .expect("member exists");
            if prev.id != id {
                return Ok(prev);
            }
            key = prev.key;
        }
        Ok(self.by_key.values().next_back().expect("member exists"))
    }

    /// The arc owned by member `id`: `[own_key, successor_key)`, or the
    /// full ring for a single member.
    pub fn range_of(&self, id: NodeId) -> Result<KeyRange, RingError> {
        let key = self.key_of(id)?;
        let succ = self.successor(id)?;
        if succ.key == key {
            Ok(KeyRange::full(key))
        } else {
            Ok(KeyRange::new(key, succ.key))
        }
    }

    /// All ownership arcs in clockwise position order; tiles the ring.
    /// With virtual nodes a physical server owns several arcs.
    pub fn ranges(&self) -> Vec<(NodeId, KeyRange)> {
        let positions: Vec<(&HashKey, NodeId)> =
            self.by_key.iter().map(|(k, s)| (k, s.id)).collect();
        let n = positions.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![(positions[0].1, KeyRange::full(*positions[0].0))];
        }
        (0..n)
            .map(|i| {
                let (lo, id) = positions[i];
                let (hi, _) = positions[(i + 1) % n];
                (id, KeyRange::new(*lo, *hi))
            })
            .collect()
    }

    /// Replica set for `key`: the owner followed by `replicas` distinct
    /// further servers, alternating successor/predecessor as in the paper
    /// ("replicating the file metadata as well as file blocks in
    /// predecessors and successors", §II-A). With `replicas = 2` this is
    /// {owner, successor, predecessor}. Returns fewer entries when the
    /// ring is smaller than the requested set.
    pub fn replica_set(&self, key: HashKey, replicas: usize) -> Result<Vec<NodeId>, RingError> {
        use std::ops::Bound::{Excluded, Unbounded};
        let owner_info = self.owner_of(key)?;
        let owner = owner_info.id;
        let owner_pos = owner_info.key;
        let distinct = self.len();
        let mut out = vec![owner];
        // Walk positions clockwise (successor side) and counter-clockwise
        // (predecessor side) alternately, collecting distinct physical
        // nodes — with one position per server this is exactly
        // {owner, successor, predecessor, ...}.
        let mut succ_pos = owner_pos;
        let mut pred_pos = owner_pos;
        while out.len() < replicas + 1 && out.len() < distinct {
            succ_pos = self
                .by_key
                .range((Excluded(succ_pos), Unbounded))
                .next()
                .or_else(|| self.by_key.iter().next())
                .map(|(k, _)| *k)
                .expect("non-empty");
            let id = self.by_key[&succ_pos].id;
            if !out.contains(&id) {
                out.push(id);
            }
            if out.len() > replicas || out.len() >= distinct {
                break;
            }
            pred_pos = self
                .by_key
                .range(..pred_pos)
                .next_back()
                .or_else(|| self.by_key.iter().next_back())
                .map(|(k, _)| *k)
                .expect("non-empty");
            let id = self.by_key[&pred_pos].id;
            if !out.contains(&id) {
                out.push(id);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 1 ring: six servers at keys 5, 15, 26, 39, 47, 57
    /// (scaled up to the u64 space by multiplying with 2^58 so arithmetic
    /// stays interesting; plain small values work too).
    fn paper_ring() -> Ring {
        let mut r = Ring::new();
        for (i, k) in [5u64, 15, 26, 39, 47, 57].iter().enumerate() {
            r.insert(ServerInfo::at_key(NodeId(i as u32), format!("s{i}"), HashKey(*k)))
                .unwrap();
        }
        r
    }

    #[test]
    fn owner_matches_paper_figure() {
        let r = paper_ring();
        // Fig. 1 inner ring: B=[5,15) owns key 11; file key 38 owned by
        // the server at 26; key 56 owned by the server at 47; key 6 owned
        // by the server at 5; key 3 wraps to the server at 57.
        assert_eq!(r.owner_of(HashKey(11)).unwrap().key, HashKey(5));
        assert_eq!(r.owner_of(HashKey(38)).unwrap().key, HashKey(26));
        assert_eq!(r.owner_of(HashKey(56)).unwrap().key, HashKey(47));
        assert_eq!(r.owner_of(HashKey(6)).unwrap().key, HashKey(5));
        assert_eq!(r.owner_of(HashKey(3)).unwrap().key, HashKey(57));
        assert_eq!(r.owner_of(HashKey(5)).unwrap().key, HashKey(5));
    }

    #[test]
    fn ranges_tile_the_ring() {
        let r = paper_ring();
        let ranges = r.ranges();
        assert_eq!(ranges.len(), 6);
        let total: u128 = ranges.iter().map(|(_, kr)| kr.len()).sum();
        assert_eq!(total, 1u128 << 64);
        // Every probe key owned exactly once.
        for k in [0u64, 5, 14, 15, 38, 46, 47, 56, 57, u64::MAX] {
            let owners = ranges.iter().filter(|(_, kr)| kr.contains(HashKey(k))).count();
            assert_eq!(owners, 1, "key {k}");
        }
    }

    #[test]
    fn successor_predecessor_wrap() {
        let r = paper_ring();
        let last = r.owner_of(HashKey(57)).unwrap().id;
        let first = r.owner_of(HashKey(5)).unwrap().id;
        assert_eq!(r.successor(last).unwrap().id, first);
        assert_eq!(r.predecessor(first).unwrap().id, last);
    }

    #[test]
    fn single_member_owns_everything() {
        let mut r = Ring::new();
        r.insert(ServerInfo::at_key(NodeId(0), "solo", HashKey(100))).unwrap();
        assert!(r.range_of(NodeId(0)).unwrap().is_full());
        assert_eq!(r.owner_of(HashKey(0)).unwrap().id, NodeId(0));
        assert_eq!(r.successor(NodeId(0)).unwrap().id, NodeId(0));
        assert_eq!(r.predecessor(NodeId(0)).unwrap().id, NodeId(0));
    }

    #[test]
    fn join_moves_minimal_keys() {
        let mut r = paper_ring();
        // Keys owned before the join.
        let owned_before: Vec<(u64, NodeId)> =
            (0..64).map(|k| (k, r.owner_of(HashKey(k)).unwrap().id)).collect();
        r.insert(ServerInfo::at_key(NodeId(6), "new", HashKey(30))).unwrap();
        for (k, old_owner) in owned_before {
            let new_owner = r.owner_of(HashKey(k)).unwrap().id;
            if (30..39).contains(&k) {
                assert_eq!(new_owner, NodeId(6), "key {k} must move to the joiner");
            } else {
                assert_eq!(new_owner, old_owner, "key {k} must not move");
            }
        }
    }

    #[test]
    fn leave_transfers_to_successor() {
        let mut r = paper_ring();
        let victim = r.owner_of(HashKey(26)).unwrap().id;
        r.remove(victim).unwrap();
        // Keys in [26, 39) now belong to the predecessor at 15 (owner =
        // predecessor-or-equal convention shifts them counter-clockwise).
        assert_eq!(r.owner_of(HashKey(30)).unwrap().key, HashKey(15));
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn replica_set_is_owner_succ_pred() {
        let r = paper_ring();
        let set = r.replica_set(HashKey(40), 2).unwrap();
        // Owner of 40 is the server at 39; successor at 47; predecessor at 26.
        let key_of = |id: NodeId| r.key_of(id).unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(key_of(set[0]), HashKey(39));
        assert_eq!(key_of(set[1]), HashKey(47));
        assert_eq!(key_of(set[2]), HashKey(26));
    }

    #[test]
    fn replica_set_clamped_by_ring_size() {
        let mut r = Ring::new();
        r.insert(ServerInfo::at_key(NodeId(0), "a", HashKey(10))).unwrap();
        r.insert(ServerInfo::at_key(NodeId(1), "b", HashKey(20))).unwrap();
        let set = r.replica_set(HashKey(12), 4).unwrap();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn errors() {
        let mut r = Ring::new();
        assert_eq!(r.owner_of(HashKey(1)).unwrap_err(), RingError::EmptyRing);
        r.insert(ServerInfo::at_key(NodeId(0), "a", HashKey(10))).unwrap();
        assert_eq!(
            r.insert(ServerInfo::at_key(NodeId(0), "b", HashKey(11))).unwrap_err(),
            RingError::DuplicateNode(NodeId(0))
        );
        assert_eq!(
            r.insert(ServerInfo::at_key(NodeId(1), "c", HashKey(10))).unwrap_err(),
            RingError::DuplicateKey(HashKey(10))
        );
        assert_eq!(r.remove(NodeId(9)).unwrap_err(), RingError::UnknownNode(NodeId(9)));
    }

    #[test]
    fn with_servers_builds_n() {
        let r = Ring::with_servers(40, "node");
        assert_eq!(r.len(), 40);
        let ids = r.node_ids();
        assert_eq!(ids.len(), 40);
    }
}

/// Default virtual nodes per server for data-placement rings. 32 brings
/// the max/mean arc ratio from ~ln(n) down to ~1.2 on paper-scale
/// clusters.
pub const DEFAULT_VNODES: usize = 32;

#[cfg(test)]
mod vnode_tests {
    use super::*;
    use eclipse_util::HashKey;

    #[test]
    fn vnodes_balance_arc_lengths() {
        let plain = Ring::with_servers(40, "s");
        let vnoded = Ring::with_servers_vnodes(40, "s", 32);
        let arc_imbalance = |r: &Ring| {
            let mut per_node = std::collections::BTreeMap::new();
            for (id, arc) in r.ranges() {
                *per_node.entry(id).or_insert(0.0) += arc.fraction();
            }
            let fracs: Vec<f64> = per_node.values().copied().collect();
            let max = fracs.iter().cloned().fold(0.0, f64::max);
            max / (1.0 / fracs.len() as f64)
        };
        let plain_imb = arc_imbalance(&plain);
        let vnode_imb = arc_imbalance(&vnoded);
        assert!(vnode_imb < plain_imb, "vnodes {vnode_imb} plain {plain_imb}");
        assert!(vnode_imb < 1.8, "vnode imbalance too high: {vnode_imb}");
    }

    #[test]
    fn vnode_ring_counts() {
        let r = Ring::with_servers_vnodes(10, "s", 8);
        assert_eq!(r.len(), 10, "physical servers");
        assert_eq!(r.positions(), 80, "ring positions");
        assert_eq!(r.node_ids().len(), 10);
        assert_eq!(r.keys_of(NodeId(3)).unwrap().len(), 8);
    }

    #[test]
    fn vnode_ranges_tile() {
        let r = Ring::with_servers_vnodes(7, "s", 16);
        let total: u128 = r.ranges().iter().map(|(_, kr)| kr.len()).sum();
        assert_eq!(total, 1u128 << 64);
        for probe in 0..100u64 {
            let k = HashKey::of_name(&format!("p{probe}"));
            let owners = r.ranges().iter().filter(|(_, kr)| kr.contains(k)).count();
            assert_eq!(owners, 1);
        }
    }

    #[test]
    fn vnode_replica_sets_distinct_physical() {
        let r = Ring::with_servers_vnodes(6, "s", 16);
        for probe in 0..50u64 {
            let k = HashKey::of_name(&format!("b{probe}"));
            let set = r.replica_set(k, 2).unwrap();
            assert_eq!(set.len(), 3);
            let mut uniq = set.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), 3, "replicas on distinct physical nodes");
            assert_eq!(set[0], r.owner_of(k).unwrap().id);
        }
    }

    #[test]
    fn vnode_remove_clears_all_positions() {
        let mut r = Ring::with_servers_vnodes(5, "s", 8);
        r.remove(NodeId(2)).unwrap();
        assert_eq!(r.len(), 4);
        assert_eq!(r.positions(), 32);
        assert!(r.ranges().iter().all(|(id, _)| *id != NodeId(2)));
    }

    #[test]
    fn vnode_successor_is_distinct_node() {
        let r = Ring::with_servers_vnodes(5, "s", 32);
        for id in r.node_ids() {
            assert_ne!(r.successor(id).unwrap().id, id);
            assert_ne!(r.predecessor(id).unwrap().id, id);
        }
    }
}
