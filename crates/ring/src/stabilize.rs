//! Chord stabilization: incremental repair of successor pointers under
//! churn.
//!
//! The paper's DHT routing tables are "stationary so that [they update]
//! neighbor information including successor and predecessor only when a
//! participating server joins, leaves, or fails" (§II-A). This module is
//! that update protocol, modeled after Chord's stabilize/notify loop
//! [Stoica et al., SIGCOMM'01] with successor lists for fault tolerance:
//!
//! * `join` — the newcomer asks any member to locate its successor;
//! * `stabilize_round` — every node asks its successor for that node's
//!   predecessor and adopts it if closer, then notifies the successor;
//! * failures leave **stale pointers** that subsequent rounds repair via
//!   the successor list.
//!
//! Tests drive random churn and assert eventual convergence to the true
//! ring — the property that lets the one-hop tables of the executors be
//! rebuilt lazily rather than atomically.

use crate::node::{NodeId, ServerInfo};
use eclipse_util::HashKey;
use std::collections::BTreeMap;

/// How many successors each node remembers (Chord's r).
pub const SUCCESSOR_LIST_LEN: usize = 3;

/// One node's local, possibly stale view of the ring.
#[derive(Clone, Debug)]
struct NodeState {
    key: HashKey,
    /// Successor candidates, nearest first. `[0]` is *the* successor.
    successors: Vec<(HashKey, NodeId)>,
    predecessor: Option<(HashKey, NodeId)>,
}

/// A network of Chord nodes running the stabilization protocol.
#[derive(Clone, Debug, Default)]
pub struct ChordNet {
    nodes: BTreeMap<NodeId, NodeState>,
}

/// Is `x` in the open arc `(a, b)` on the ring?
fn between(a: HashKey, x: HashKey, b: HashKey) -> bool {
    if a == b {
        // Full circle (single node): everything else is between.
        x != a
    } else {
        a.distance_to(x) > 0 && a.distance_to(x) < a.distance_to(b)
    }
}

impl ChordNet {
    /// Build an already-converged network from a known member set — the
    /// state a healthy cluster reaches after stabilization. The live
    /// executor uses this to mirror its ring at the instant a crash is
    /// detected, then drives [`fail`](Self::fail) +
    /// [`stabilize_until_converged`](Self::stabilize_until_converged) to
    /// model the §II-A pointer repair before re-replication starts.
    pub fn converged_from<I>(members: I) -> ChordNet
    where
        I: IntoIterator<Item = ServerInfo>,
    {
        let mut by_key: Vec<ServerInfo> = members.into_iter().collect();
        assert!(!by_key.is_empty(), "a chord net needs at least one member");
        by_key.sort_by_key(|s| s.key);
        let n = by_key.len();
        let mut nodes = BTreeMap::new();
        for (i, info) in by_key.iter().enumerate() {
            let mut successors = Vec::new();
            for step in 1..=SUCCESSOR_LIST_LEN.min(n.saturating_sub(1)).max(1) {
                let s = &by_key[(i + step) % n];
                if s.id == info.id || successors.iter().any(|&(_, id)| id == s.id) {
                    continue;
                }
                successors.push((s.key, s.id));
            }
            if successors.is_empty() {
                successors.push((info.key, info.id));
            }
            let pred = &by_key[(i + n - 1) % n];
            let predecessor =
                (pred.id != info.id).then_some((pred.key, pred.id));
            nodes.insert(
                info.id,
                NodeState { key: info.key, successors, predecessor },
            );
        }
        ChordNet { nodes }
    }

    /// A one-node network (its own successor).
    pub fn bootstrap(first: ServerInfo) -> ChordNet {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            first.id,
            NodeState {
                key: first.key,
                successors: vec![(first.key, first.id)],
                predecessor: None,
            },
        );
        ChordNet { nodes }
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A node's current successor pointer.
    pub fn successor_of(&self, id: NodeId) -> Option<NodeId> {
        self.nodes.get(&id)?.successors.first().map(|&(_, n)| n)
    }

    /// Walk successor pointers from `via` to find the live node that
    /// should own `key` (the joiner's bootstrap lookup). Bounded walk —
    /// with stale pointers the answer may be stale too; stabilization
    /// repairs it.
    pub fn find_successor(&self, via: NodeId, key: HashKey) -> Option<NodeId> {
        let mut at = via;
        for _ in 0..=self.nodes.len() {
            let state = self.nodes.get(&at)?;
            let (succ_key, succ_id) = *state.successors.first()?;
            // key in (at, successor] → successor owns it.
            if between(state.key, key, succ_key) || key == succ_key {
                return Some(succ_id);
            }
            if succ_id == at {
                return Some(at);
            }
            at = succ_id;
        }
        Some(at)
    }

    /// A newcomer joins via any existing member: it only learns its
    /// successor; everything else converges through stabilization.
    pub fn join(&mut self, info: ServerInfo, via: NodeId) {
        assert!(!self.nodes.contains_key(&info.id), "duplicate join");
        let succ_id = self.find_successor(via, info.key).expect("via is a member");
        let succ_key = self.nodes[&succ_id].key;
        self.nodes.insert(
            info.id,
            NodeState {
                key: info.key,
                successors: vec![(succ_key, succ_id)],
                predecessor: None,
            },
        );
    }

    /// A node crashes silently: peers keep stale pointers to it.
    pub fn fail(&mut self, id: NodeId) {
        self.nodes.remove(&id);
    }

    /// One stabilization round: every node (in id order, deterministic)
    /// drops dead successors, adopts its successor's predecessor if that
    /// node sits between them, notifies the successor, and refreshes its
    /// successor list.
    pub fn stabilize_round(&mut self) {
        self.stabilize_round_probed(&mut |_, _| true);
    }

    /// [`stabilize_round`](Self::stabilize_round), but every pointer a
    /// node would follow is first checked with `probe(from, to)` — the
    /// live executor passes the transport's reachability probe here, so
    /// a peer behind a closed endpoint or partition is treated exactly
    /// like a dead one for the round. Probes are directional: a one-way
    /// partition makes a node unreachable only for the nodes it cut.
    pub fn stabilize_round_probed(&mut self, probe: &mut dyn FnMut(NodeId, NodeId) -> bool) {
        let ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        for id in ids {
            // The node may have failed mid-round.
            let Some(state) = self.nodes.get(&id) else { continue };
            let my_key = state.key;
            // Drop dead or unreachable successor candidates.
            let mut successors: Vec<(HashKey, NodeId)> = state
                .successors
                .iter()
                .copied()
                .filter(|(_, n)| self.nodes.contains_key(n) && probe(id, *n))
                .collect();
            if successors.is_empty() {
                // Lost the whole list: fall back to any live node
                // (re-bootstrap through the globally nearest key — in a
                // real deployment, a cached peer).
                let fallback = self
                    .nodes
                    .iter()
                    .filter(|(n, _)| **n != id && probe(id, **n))
                    .min_by_key(|(_, s)| my_key.distance_to(s.key))
                    .map(|(n, s)| (s.key, *n))
                    .unwrap_or((my_key, id));
                successors.push(fallback);
            }
            let (succ_key, succ_id) = successors[0];

            // stabilize(): adopt successor.predecessor if closer.
            let adopted = self
                .nodes
                .get(&succ_id)
                .and_then(|s| s.predecessor)
                .filter(|(pk, pn)| {
                    *pn != id
                        && self.nodes.contains_key(pn)
                        && probe(id, *pn)
                        && between(my_key, *pk, succ_key)
                });
            let (new_succ_key, new_succ_id) = adopted.unwrap_or((succ_key, succ_id));
            let mut new_list = vec![(new_succ_key, new_succ_id)];
            // Extend the list with the successor's list.
            if let Some(s) = self.nodes.get(&new_succ_id) {
                for &(k, n) in &s.successors {
                    if n != id
                        && new_list.iter().all(|&(_, m)| m != n)
                        && new_list.len() < SUCCESSOR_LIST_LEN
                    {
                        new_list.push((k, n));
                    }
                }
            }
            self.nodes.get_mut(&id).expect("checked live").successors = new_list;

            // notify(successor): "I might be your predecessor."
            if new_succ_id != id {
                let succ = self.nodes.get_mut(&new_succ_id).expect("live successor");
                let succ_key = succ.key;
                let replace = match succ.predecessor {
                    None => true,
                    Some((pk, pn)) => {
                        !self.nodes.contains_key(&pn) || between(pk, my_key, succ_key)
                    }
                };
                // Re-borrow mutably after the containment check.
                if replace {
                    self.nodes.get_mut(&new_succ_id).expect("live").predecessor =
                        Some((my_key, id));
                }
            }
        }
    }

    /// Does every node's successor pointer match the true ring?
    pub fn converged(&self) -> bool {
        if self.nodes.len() <= 1 {
            return true;
        }
        // True ring order by key.
        let mut by_key: Vec<(HashKey, NodeId)> =
            self.nodes.iter().map(|(id, s)| (s.key, *id)).collect();
        by_key.sort();
        for (i, &(_, id)) in by_key.iter().enumerate() {
            let true_succ = by_key[(i + 1) % by_key.len()].1;
            if self.successor_of(id) != Some(true_succ) {
                return false;
            }
        }
        true
    }

    /// Stabilize until convergence (or the round budget runs out);
    /// returns the rounds used.
    pub fn stabilize_until_converged(&mut self, max_rounds: usize) -> Option<usize> {
        self.stabilize_until_converged_probed(max_rounds, &mut |_, _| true)
    }

    /// [`stabilize_until_converged`](Self::stabilize_until_converged)
    /// with a reachability probe (see
    /// [`stabilize_round_probed`](Self::stabilize_round_probed)).
    pub fn stabilize_until_converged_probed(
        &mut self,
        max_rounds: usize,
        probe: &mut dyn FnMut(NodeId, NodeId) -> bool,
    ) -> Option<usize> {
        for round in 0..max_rounds {
            if self.converged() {
                return Some(round);
            }
            self.stabilize_round_probed(probe);
        }
        self.converged().then_some(max_rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(i: u32, key: u64) -> ServerInfo {
        ServerInfo::at_key(NodeId(i), format!("c{i}"), HashKey(key))
    }

    #[test]
    fn sequential_joins_converge() {
        let mut net = ChordNet::bootstrap(info(0, 0));
        for i in 1..10u32 {
            net.join(info(i, (i as u64) << 60), NodeId(0));
            let rounds = net.stabilize_until_converged(50).expect("must converge");
            assert!(rounds <= 20, "join {i} took {rounds} rounds");
        }
        assert_eq!(net.len(), 10);
    }

    #[test]
    fn concurrent_joins_converge() {
        let mut net = ChordNet::bootstrap(info(0, 0));
        // Everyone joins before any stabilization happens.
        for i in 1..12u32 {
            net.join(info(i, (i as u64).wrapping_mul(0x9E3779B97F4A7C15)), NodeId(0));
        }
        assert!(net.stabilize_until_converged(100).is_some(), "mass join diverged");
    }

    #[test]
    fn failures_heal_via_successor_lists() {
        let mut net = ChordNet::bootstrap(info(0, 0));
        for i in 1..10u32 {
            net.join(info(i, (i as u64) << 60), NodeId(0));
        }
        net.stabilize_until_converged(100).unwrap();
        // Kill two non-adjacent nodes silently.
        net.fail(NodeId(3));
        net.fail(NodeId(7));
        assert!(!net.converged(), "stale pointers expected right after failures");
        let rounds = net.stabilize_until_converged(100).expect("failure healing");
        assert!(rounds > 0);
        assert_eq!(net.len(), 8);
    }

    #[test]
    fn adjacent_failures_heal() {
        let mut net = ChordNet::bootstrap(info(0, 0));
        for i in 1..8u32 {
            net.join(info(i, (i as u64) << 61), NodeId(0));
        }
        net.stabilize_until_converged(100).unwrap();
        // Two ring-adjacent nodes die at once — the successor list is
        // exactly what survives this.
        net.fail(NodeId(4));
        net.fail(NodeId(5));
        assert!(net.stabilize_until_converged(100).is_some(), "adjacent failures");
    }

    #[test]
    fn churn_storm_converges() {
        let mut net = ChordNet::bootstrap(info(0, 0));
        let mut next_id = 1u32;
        for wave in 0..5 {
            // Join three, fail one, stabilize a little (not fully).
            for _ in 0..3 {
                let key = (next_id as u64).wrapping_mul(0xD1B54A32D192ED03);
                net.join(info(next_id, key), NodeId(0));
                next_id += 1;
            }
            if wave > 0 {
                let victim = *net.nodes.keys().nth(1).unwrap();
                if victim != NodeId(0) {
                    net.fail(victim);
                }
            }
            net.stabilize_round();
        }
        assert!(net.stabilize_until_converged(200).is_some(), "churn storm diverged");
    }

    #[test]
    fn converged_from_is_converged_and_heals() {
        let members: Vec<ServerInfo> =
            (0..9u32).map(|i| info(i, (i as u64).wrapping_mul(0x9E3779B97F4A7C15))).collect();
        let mut net = ChordNet::converged_from(members);
        assert!(net.converged(), "constructor must produce a converged net");
        assert_eq!(net.stabilize_until_converged(10), Some(0), "no repair needed");
        // A failure leaves stale pointers that the successor lists heal.
        net.fail(NodeId(4));
        assert!(!net.converged());
        let rounds = net.stabilize_until_converged(100).expect("heals");
        assert!(rounds >= 1);
        assert_eq!(net.len(), 8);
    }

    #[test]
    fn converged_from_single_node() {
        let net = ChordNet::converged_from([info(0, 7)]);
        assert!(net.converged());
        assert_eq!(net.successor_of(NodeId(0)), Some(NodeId(0)));
    }

    #[test]
    fn lookups_correct_after_convergence() {
        let mut net = ChordNet::bootstrap(info(0, 0));
        for i in 1..8u32 {
            net.join(info(i, (i as u64) << 61), NodeId(0));
        }
        net.stabilize_until_converged(100).unwrap();
        // The owner of key k (successor semantics) found via pointer
        // walks must match the sorted-ring computation.
        let mut by_key: Vec<(HashKey, NodeId)> =
            net.nodes.iter().map(|(id, s)| (s.key, *id)).collect();
        by_key.sort();
        for probe in [1u64, 1 << 60, (1 << 61) + 5, u64::MAX] {
            let key = HashKey(probe);
            let expected = by_key
                .iter()
                .find(|(k, _)| key <= *k)
                .map(|&(_, n)| n)
                .unwrap_or(by_key[0].1);
            assert_eq!(net.find_successor(NodeId(0), key), Some(expected), "probe {probe}");
        }
    }
}
