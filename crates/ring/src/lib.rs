//! # eclipse-ring
//!
//! The consistent-hash ring substrate shared by EclipseMR's two ring
//! layers (the DHT file system and the distributed in-memory cache):
//! sorted membership with ownership arcs, Chord finger tables with both
//! one-hop and logarithmic routing, replica placement, heartbeats, and the
//! coordinator election.

pub mod finger;
pub mod membership;
pub mod node;
pub mod ring;
pub mod stabilize;

pub use finger::{FingerTable, Router, RoutingMode};
pub use membership::{ring_election, ClusterView, Coordinators, HeartbeatMonitor, MembershipEvent};
pub use node::{NodeId, ServerInfo};
pub use ring::{Ring, RingError};
pub use stabilize::{ChordNet, SUCCESSOR_LIST_LEN};
