//! Property tests for consistent-hashing invariants.

use eclipse_ring::{NodeId, Ring, Router, RoutingMode, ServerInfo};
use eclipse_util::HashKey;
use proptest::prelude::*;

/// Build a ring from distinct (id, key) pairs.
fn ring_from(pairs: &[(u32, u64)]) -> Ring {
    let mut r = Ring::new();
    for &(id, key) in pairs {
        // Skip duplicates instead of failing: the strategy below already
        // dedups, this is belt-and-braces.
        let _ = r.insert(ServerInfo::at_key(NodeId(id), format!("n{id}"), HashKey(key)));
    }
    r
}

/// Strategy: 1..32 members with unique ids and unique keys.
fn members() -> impl Strategy<Value = Vec<(u32, u64)>> {
    prop::collection::btree_map(any::<u64>(), Just(()), 1..32).prop_map(|m| {
        m.into_keys().enumerate().map(|(i, k)| (i as u32, k)).collect()
    })
}

proptest! {
    /// Ownership ranges tile the ring for any membership.
    #[test]
    fn ranges_tile(pairs in members(), probes in prop::collection::vec(any::<u64>(), 1..64)) {
        let ring = ring_from(&pairs);
        let ranges = ring.ranges();
        let total: u128 = ranges.iter().map(|(_, r)| r.len()).sum();
        prop_assert_eq!(total, 1u128 << 64);
        for p in probes {
            let owners = ranges.iter().filter(|(_, r)| r.contains(HashKey(p))).count();
            prop_assert_eq!(owners, 1);
            // owner_of agrees with the range map.
            let owner = ring.owner_of(HashKey(p)).unwrap().id;
            let via_ranges = ranges.iter().find(|(_, r)| r.contains(HashKey(p))).unwrap().0;
            prop_assert_eq!(owner, via_ranges);
        }
    }

    /// Consistent hashing moves only the joiner's keys: after a join,
    /// every key either keeps its owner or moves to the new node.
    #[test]
    fn join_is_minimal_disruption(
        pairs in members(),
        new_key: u64,
        probes in prop::collection::vec(any::<u64>(), 1..64),
    ) {
        let mut ring = ring_from(&pairs);
        prop_assume!(ring.members().all(|s| s.key != HashKey(new_key)));
        let before: Vec<(u64, NodeId)> =
            probes.iter().map(|&p| (p, ring.owner_of(HashKey(p)).unwrap().id)).collect();
        let new_id = NodeId(10_000);
        ring.insert(ServerInfo::at_key(new_id, "joiner", HashKey(new_key))).unwrap();
        for (p, old) in before {
            let now = ring.owner_of(HashKey(p)).unwrap().id;
            prop_assert!(now == old || now == new_id, "key {} moved {} -> {}", p, old, now);
        }
    }

    /// After a leave, only keys owned by the departed node change owner.
    #[test]
    fn leave_is_minimal_disruption(
        pairs in members(),
        probes in prop::collection::vec(any::<u64>(), 1..64),
        victim_sel: prop::sample::Index,
    ) {
        let mut ring = ring_from(&pairs);
        prop_assume!(ring.len() >= 2);
        let ids = ring.node_ids();
        let victim = ids[victim_sel.index(ids.len())];
        let before: Vec<(u64, NodeId)> =
            probes.iter().map(|&p| (p, ring.owner_of(HashKey(p)).unwrap().id)).collect();
        ring.remove(victim).unwrap();
        for (p, old) in before {
            let now = ring.owner_of(HashKey(p)).unwrap().id;
            if old == victim {
                prop_assert!(now != victim);
            } else {
                prop_assert_eq!(now, old, "non-victim key {} moved", p);
            }
        }
    }

    /// Replica sets contain no duplicates and always start with the owner.
    #[test]
    fn replica_sets_distinct(pairs in members(), key: u64, replicas in 0usize..6) {
        let ring = ring_from(&pairs);
        let set = ring.replica_set(HashKey(key), replicas).unwrap();
        prop_assert_eq!(set[0], ring.owner_of(HashKey(key)).unwrap().id);
        let mut dedup = set.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), set.len(), "duplicates in replica set");
        prop_assert!(set.len() <= ring.len());
        prop_assert!(set.len() <= replicas + 1);
    }

    /// Both routing modes always terminate at the true owner.
    #[test]
    fn routing_reaches_owner(pairs in members(), key: u64, start_sel: prop::sample::Index) {
        let ring = ring_from(&pairs);
        let ids = ring.node_ids();
        let start = ids[start_sel.index(ids.len())];
        let owner = ring.owner_of(HashKey(key)).unwrap().id;
        for mode in [RoutingMode::OneHop, RoutingMode::Chord] {
            let router = Router::build(&ring, mode).unwrap();
            let path = router.route(&ring, start, HashKey(key)).unwrap();
            match path.last() {
                Some(&last) => prop_assert_eq!(last, owner),
                None => prop_assert_eq!(start, owner),
            }
            if mode == RoutingMode::OneHop {
                prop_assert!(path.len() <= 1);
            }
        }
    }
}
