//! The paper's four non-iterative applications: word count, grep,
//! inverted index and sort (§III: "We use HiBench to generate 250 GB
//! text input datasets for the word count, inverted index, grep, and
//! sort applications").
//!
//! Each is a real [`MapReduce`] implementation the live executor runs
//! over real blocks.

use eclipse_core::MapReduce;

/// Classic word count: `word -> occurrence count`.
pub struct WordCount;

impl MapReduce for WordCount {
    fn map(&self, block: &[u8], emit: &mut dyn FnMut(String, String)) {
        for w in String::from_utf8_lossy(block).split_whitespace() {
            emit(w.to_string(), "1".to_string());
        }
    }

    fn reduce(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
        let total: u64 = values.iter().map(|v| v.parse::<u64>().unwrap_or(1)).sum();
        emit(key.to_string(), total.to_string());
    }

    /// Counting is associative: pre-sum each spill map-side so the
    /// shuffle carries one partial count per word instead of one record
    /// per occurrence.
    fn combine(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
        self.reduce(key, values, emit);
    }

    fn has_combiner(&self) -> bool {
        true
    }
}

/// Grep: emit every line containing the pattern, keyed by the line
/// itself (the reduce phase deduplicates and counts occurrences).
pub struct Grep {
    pub pattern: String,
}

impl Grep {
    pub fn new(pattern: impl Into<String>) -> Grep {
        Grep { pattern: pattern.into() }
    }
}

impl MapReduce for Grep {
    fn map(&self, block: &[u8], emit: &mut dyn FnMut(String, String)) {
        for line in String::from_utf8_lossy(block).lines() {
            if line.contains(&self.pattern) {
                emit(line.to_string(), "1".to_string());
            }
        }
    }

    fn reduce(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
        emit(key.to_string(), values.len().to_string());
    }
}

/// Inverted index over documents. Input lines are `doc_id<TAB>text`;
/// output is `word -> sorted, deduplicated posting list of doc ids`.
pub struct InvertedIndex;

impl MapReduce for InvertedIndex {
    fn map(&self, block: &[u8], emit: &mut dyn FnMut(String, String)) {
        for line in String::from_utf8_lossy(block).lines() {
            let Some((doc, text)) = line.split_once('\t') else { continue };
            for w in text.split_whitespace() {
                emit(w.to_string(), doc.to_string());
            }
        }
    }

    fn reduce(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
        let mut docs: Vec<&str> = values.iter().map(|s| s.as_str()).collect();
        docs.sort_unstable();
        docs.dedup();
        emit(key.to_string(), docs.join(","));
    }
}

/// Sort: identity map keyed by the record; the engine's per-partition
/// key grouping plus the final merge yields globally sorted output.
/// (The partitioner is hash-based, so the total order is established at
/// the final merge — the data volume through the shuffle matches a real
/// sort, which is what the evaluation exercises.)
pub struct Sort;

impl MapReduce for Sort {
    fn map(&self, block: &[u8], emit: &mut dyn FnMut(String, String)) {
        for line in String::from_utf8_lossy(block).lines() {
            if !line.is_empty() {
                emit(line.to_string(), String::new());
            }
        }
    }

    fn reduce(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
        // Emit one record per input occurrence (stable for duplicates).
        for _ in values {
            emit(key.to_string(), String::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclipse_core::{LiveCluster, LiveConfig, ReusePolicy};

    fn cluster_with(data: &str) -> LiveCluster {
        let c = LiveCluster::new(LiveConfig::small().with_block_size(512));
        c.upload("in", "u", data.as_bytes());
        c
    }

    #[test]
    fn grep_finds_only_matches() {
        let mut data = String::new();
        for i in 0..200 {
            if i % 10 == 0 {
                data.push_str(&format!("needle line {i}\n"));
            } else {
                data.push_str(&format!("plain line {i}\n"));
            }
        }
        let c = cluster_with(&data);
        let (out, _) = c.run_job(&Grep::new("needle"), "in", "u", 4, ReusePolicy::default());
        assert_eq!(out.len(), 20);
        assert!(out.iter().all(|(k, _)| k.contains("needle")));
    }

    #[test]
    fn inverted_index_builds_postings() {
        let data = "\
doc1\tapple banana
doc2\tbanana cherry
doc3\tapple cherry banana
";
        let c = LiveCluster::new(LiveConfig::small().with_block_size(4096));
        c.upload("in", "u", data.as_bytes());
        let (out, _) = c.run_job(&InvertedIndex, "in", "u", 2, ReusePolicy::default());
        let get = |w: &str| out.iter().find(|(k, _)| k == w).map(|(_, v)| v.clone());
        assert_eq!(get("apple").unwrap(), "doc1,doc3");
        assert_eq!(get("banana").unwrap(), "doc1,doc2,doc3");
        assert_eq!(get("cherry").unwrap(), "doc2,doc3");
    }

    #[test]
    fn sort_orders_records() {
        let mut lines: Vec<String> = (0..300).map(|i| format!("{:08}", (i * 7919) % 100000)).collect();
        let data = lines.join("\n") + "\n";
        let c = cluster_with(&data);
        let (out, _) = c.run_job(&Sort, "in", "u", 4, ReusePolicy::default());
        let sorted: Vec<String> = out.iter().map(|(k, _)| k.clone()).collect();
        lines.sort();
        // Block boundaries may split a line in two; the overwhelming
        // majority must survive intact and in order.
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "output not sorted");
        let intact = sorted.iter().filter(|s| lines.binary_search(s).is_ok()).count();
        assert!(intact >= 290, "only {intact} of 300 records intact");
    }

    #[test]
    fn combiner_preserves_counts() {
        // With the combiner, shuffle records collapse to one partial sum
        // per (word, spill); the final counts are unchanged.
        let data = "x y x z x y\n".repeat(500);
        let c = LiveCluster::new(LiveConfig::small().with_block_size(1024));
        c.upload("in", "u", data.as_bytes());
        let (out, _) = c.run_job(&WordCount, "in", "u", 3, ReusePolicy::default());
        let get = |w: &str| -> u64 {
            out.iter().find(|(k, _)| k == w).map(|(_, v)| v.parse().unwrap()).unwrap_or(0)
        };
        // Block splits may cut a handful of words.
        assert!(get("x") >= 1480 && get("x") <= 1500, "x={}", get("x"));
        assert!(get("y") >= 980 && get("y") <= 1000);
        assert!(get("z") >= 480 && get("z") <= 500);
    }

    #[test]
    fn word_count_aggregates() {
        let c = LiveCluster::new(LiveConfig::small().with_block_size(1 << 20));
        c.upload("in", "u", b"a b a\nb a\n");
        let (out, _) = c.run_job(&WordCount, "in", "u", 2, ReusePolicy::default());
        assert_eq!(out, vec![("a".into(), "3".into()), ("b".into(), "2".into())]);
    }
}
