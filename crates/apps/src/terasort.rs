//! TeraSort-style distributed sort: a sampling pass picks range
//! boundaries, then the sort job range-partitions records so that
//! partition order **is** global sort order — no final merge needed.
//!
//! This is the classic refinement of the paper's `sort` benchmark; the
//! engine hook it exercises (`MapReduce::partition`) is the same one any
//! range-partitioned application would use.

use eclipse_core::{LiveCluster, MapReduce, ReusePolicy};

/// Sampling round: every `rate`-th record is emitted under one key, and
/// the reducer picks `parts - 1` evenly spaced quantile boundaries.
struct SampleKeys {
    rate: usize,
    parts: usize,
}

impl MapReduce for SampleKeys {
    fn map(&self, block: &[u8], emit: &mut dyn FnMut(String, String)) {
        for (i, line) in String::from_utf8_lossy(block).lines().enumerate() {
            if i % self.rate == 0 && !line.is_empty() {
                emit("sample".to_string(), line.to_string());
            }
        }
    }

    fn reduce(&self, _key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
        let mut sample: Vec<&String> = values.iter().collect();
        sample.sort();
        for b in 1..self.parts {
            let idx = b * sample.len() / self.parts;
            if idx < sample.len() {
                emit(format!("{b:04}"), sample[idx].clone());
            }
        }
    }
}

/// The sort round: identity map, range partitioner from the sampled
/// boundaries.
struct RangeSort {
    /// `parts - 1` ascending boundaries; partition = # boundaries ≤ key.
    boundaries: Vec<String>,
}

impl MapReduce for RangeSort {
    fn map(&self, block: &[u8], emit: &mut dyn FnMut(String, String)) {
        for line in String::from_utf8_lossy(block).lines() {
            if !line.is_empty() {
                emit(line.to_string(), String::new());
            }
        }
    }

    fn reduce(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
        for _ in values {
            emit(key.to_string(), String::new());
        }
    }

    fn partition(&self, key: &str, partitions: usize) -> Option<usize> {
        let p = self.boundaries.partition_point(|b| b.as_str() <= key);
        Some(p.min(partitions - 1))
    }
}

/// Result of a TeraSort run.
#[derive(Clone, Debug)]
pub struct TeraSortResult {
    /// Records in global sorted order (partition concatenation — no
    /// final merge was performed).
    pub records: Vec<String>,
    /// Records per partition (the balance the sampler achieved).
    pub partition_sizes: Vec<usize>,
}

/// Sort the newline-separated records of `input` with `reducers`-way
/// range partitioning, sampling every `sample_rate`-th record.
pub fn run_terasort(
    cluster: &LiveCluster,
    input: &str,
    user: &str,
    reducers: usize,
    sample_rate: usize,
) -> TeraSortResult {
    assert!(reducers > 0);
    // Phase 1: sample the key distribution.
    let sampler = SampleKeys { rate: sample_rate.max(1), parts: reducers };
    let (sample_out, _) = cluster.run_job(&sampler, input, user, 1, ReusePolicy::default());
    let mut boundaries: Vec<(String, String)> = sample_out;
    boundaries.sort();
    let boundaries: Vec<String> = boundaries.into_iter().map(|(_, v)| v).collect();

    // Phase 2: range-partitioned sort. Partition p's reducer output is
    // already key-sorted; concatenation is the global order.
    let sorter = RangeSort { boundaries };
    let (parts, _) =
        cluster.run_job_partitioned(&sorter, input, user, reducers, ReusePolicy::default());
    let partition_sizes: Vec<usize> =
        parts.iter().map(|p| p.iter().map(|(_, _)| 1).sum()).collect();
    let records: Vec<String> =
        parts.into_iter().flatten().map(|(k, _)| k).collect();
    TeraSortResult { records, partition_sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclipse_core::LiveConfig;
    use rand::{RngExt, SeedableRng};

    fn random_records(n: usize, seed: u64) -> String {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut s = String::new();
        for _ in 0..n {
            s.push_str(&format!("{:010}\n", rng.random_range(0u64..10_000_000)));
        }
        s
    }

    #[test]
    fn concatenated_partitions_are_globally_sorted() {
        let data = random_records(2000, 5);
        let c = LiveCluster::new(LiveConfig::small().with_block_size(4096));
        c.upload("records", "t", data.as_bytes());
        let result = run_terasort(&c, "records", "t", 6, 10);
        // Global order without any final merge.
        assert!(
            result.records.windows(2).all(|w| w[0] <= w[1]),
            "concatenation not sorted"
        );
        // Nothing lost beyond block-boundary splits.
        assert!(result.records.len() >= 1990, "{} records", result.records.len());
    }

    #[test]
    fn sampling_balances_partitions() {
        let data = random_records(3000, 9);
        let c = LiveCluster::new(LiveConfig::small().with_block_size(8192));
        c.upload("records", "t", data.as_bytes());
        let result = run_terasort(&c, "records", "t", 5, 7);
        let total: usize = result.partition_sizes.iter().sum();
        let mean = total / 5;
        for (i, &size) in result.partition_sizes.iter().enumerate() {
            assert!(
                size > mean / 3 && size < mean * 3,
                "partition {i} holds {size} of {total}"
            );
        }
    }

    #[test]
    fn handles_skewed_keys() {
        // Heavy duplication: half the records share one key.
        let mut data = String::new();
        for i in 0..1000 {
            if i % 2 == 0 {
                data.push_str("5000000000\n");
            } else {
                data.push_str(&format!("{:010}\n", i * 977));
            }
        }
        let c = LiveCluster::new(LiveConfig::small().with_block_size(4096));
        c.upload("records", "t", data.as_bytes());
        let result = run_terasort(&c, "records", "t", 4, 5);
        assert!(result.records.windows(2).all(|w| w[0] <= w[1]));
        let dups = result.records.iter().filter(|r| *r == "5000000000").count();
        assert!(dups >= 495, "duplicates lost: {dups}");
    }

    #[test]
    fn single_partition_degenerates_gracefully() {
        let data = random_records(200, 1);
        let c = LiveCluster::new(LiveConfig::small().with_block_size(8192));
        c.upload("records", "t", data.as_bytes());
        let result = run_terasort(&c, "records", "t", 1, 3);
        assert!(result.records.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(result.partition_sizes.len(), 1);
    }
}
