//! Reduce-side equi-join — the classic two-input MapReduce pattern, and
//! the kind of "sub-expression commonality across multiple queries" the
//! paper's introduction motivates caching for: joining the same tables
//! repeatedly reuses their cached blocks.
//!
//! Inputs are tab-separated `key\tvalue` tables; the mapper tags each
//! record with its side, the reducer cross-products matching keys.

use eclipse_core::{LiveCluster, MapReduce, ReusePolicy};

/// Two-table equi-join.
pub struct EquiJoin;

impl MapReduce for EquiJoin {
    fn map(&self, block: &[u8], emit: &mut dyn FnMut(String, String)) {
        // Single-input fallback: treat everything as the left side.
        self.map_tagged(0, block, emit);
    }

    fn map_tagged(&self, source: usize, block: &[u8], emit: &mut dyn FnMut(String, String)) {
        let side = if source == 0 { 'L' } else { 'R' };
        for line in String::from_utf8_lossy(block).lines() {
            if let Some((k, v)) = line.split_once('\t') {
                emit(k.to_string(), format!("{side}:{v}"));
            }
        }
    }

    fn reduce(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
        let mut left = Vec::new();
        let mut right = Vec::new();
        for v in values {
            match v.split_once(':') {
                Some(("L", val)) => left.push(val),
                Some(("R", val)) => right.push(val),
                _ => {}
            }
        }
        for l in &left {
            for r in &right {
                emit(key.to_string(), format!("{l}\t{r}"));
            }
        }
    }
}

/// Join two uploaded tables on their first column; returns
/// `(key, "left_value\tright_value")` rows for every matching pair.
pub fn run_equijoin(
    cluster: &LiveCluster,
    left: &str,
    right: &str,
    user: &str,
    reducers: usize,
) -> Vec<(String, String)> {
    let (out, _) =
        cluster.run_job_inputs(&EquiJoin, &[left, right], user, reducers, ReusePolicy::default());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclipse_core::LiveConfig;
    use std::collections::BTreeSet;

    fn table(rows: &[(&str, &str)]) -> String {
        rows.iter().map(|(k, v)| format!("{k}\t{v}\n")).collect()
    }

    #[test]
    fn join_matches_nested_loop_reference() {
        let left: Vec<(String, String)> =
            (0..120).map(|i| (format!("k{:03}", i % 40), format!("l{i}"))).collect();
        let right: Vec<(String, String)> =
            (0..80).map(|i| (format!("k{:03}", i % 50), format!("r{i}"))).collect();
        let left_rows: Vec<(&str, &str)> =
            left.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let right_rows: Vec<(&str, &str)> =
            right.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();

        let c = LiveCluster::new(LiveConfig::small().with_block_size(8192));
        c.upload("left", "t", table(&left_rows).as_bytes());
        c.upload("right", "t", table(&right_rows).as_bytes());
        let joined = run_equijoin(&c, "left", "right", "t", 4);

        // Reference nested-loop join.
        let mut expected = BTreeSet::new();
        for (lk, lv) in &left {
            for (rk, rv) in &right {
                if lk == rk {
                    expected.insert((lk.clone(), format!("{lv}\t{rv}")));
                }
            }
        }
        let got: BTreeSet<(String, String)> = joined.into_iter().collect();
        assert_eq!(got, expected);
        assert!(!got.is_empty());
    }

    #[test]
    fn disjoint_keys_join_empty() {
        let c = LiveCluster::new(LiveConfig::small().with_block_size(8192));
        c.upload("left", "t", table(&[("a", "1"), ("b", "2")]).as_bytes());
        c.upload("right", "t", table(&[("x", "9"), ("y", "8")]).as_bytes());
        assert!(run_equijoin(&c, "left", "right", "t", 2).is_empty());
    }

    #[test]
    fn repeat_join_hits_cached_tables() {
        let rows: Vec<(String, String)> =
            (0..200).map(|i| (format!("k{i}"), format!("v{i}"))).collect();
        let row_refs: Vec<(&str, &str)> =
            rows.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let c = LiveCluster::new(LiveConfig::small().with_block_size(512));
        c.upload("dim", "t", table(&row_refs).as_bytes());
        c.upload("fact", "t", table(&row_refs).as_bytes());
        let (first, s1) = c.run_job_inputs(
            &EquiJoin,
            &["dim", "fact"],
            "t",
            3,
            ReusePolicy::default(),
        );
        let (second, s2) = c.run_job_inputs(
            &EquiJoin,
            &["dim", "fact"],
            "t",
            3,
            ReusePolicy::default(),
        );
        assert_eq!(first, second);
        assert_eq!(s1.cache_hits, 0);
        assert!(
            s2.cache_hits > s2.cache_misses,
            "repeat join should ride the iCache: {} hits {} misses",
            s2.cache_hits,
            s2.cache_misses
        );
    }
}
