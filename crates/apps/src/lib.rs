//! # eclipse-apps
//!
//! The paper's seven benchmark applications as real MapReduce programs
//! for the live executor: word count, grep, inverted index and sort
//! (batch), plus iterative drivers for k-means, page rank and logistic
//! regression that cache per-iteration outputs in oCache exactly as
//! §II-C describes.

pub mod batch;
pub mod join;
pub mod kmeans;
pub mod logreg;
pub mod pagerank;
pub mod terasort;

pub use batch::{Grep, InvertedIndex, Sort, WordCount};
pub use join::{run_equijoin, EquiJoin};
pub use kmeans::{run_kmeans, KMeansResult, KMeansRound};
pub use logreg::{accuracy, examples_to_csv, run_logreg, LogRegResult};
pub use pagerank::{run_pagerank, PageRankResult, DAMPING};
pub use terasort::{run_terasort, TeraSortResult};
