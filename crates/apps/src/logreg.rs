//! Iterative logistic regression (batch gradient descent) on the live
//! executor — the paper's third iterative application (10 iterations in
//! §III-E).
//!
//! Map computes per-block partial gradients against the current weights;
//! reduce sums them; the driver applies the update and stores each
//! iteration's weights in oCache tagged `logreg/iter<i>`.

use bytes::Bytes;
use eclipse_core::{LiveCluster, MapReduce, ReusePolicy};
use eclipse_util::HashKey;
use eclipse_workloads::{Labeled, DIM};

/// One gradient round with fixed weights.
struct GradientRound {
    weights: [f64; DIM],
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Parse a labeled example line: `label,f0,...,f7`.
fn parse_example(line: &str) -> Option<Labeled> {
    let mut toks = line.split(',');
    let label: f64 = toks.next()?.trim().parse().ok()?;
    let mut features = [0.0f64; DIM];
    for f in features.iter_mut() {
        *f = toks.next()?.trim().parse().ok()?;
    }
    Some(Labeled { features, label })
}

/// Serialize labeled examples as `label,f0,...,f7` lines.
pub fn examples_to_csv(examples: &[Labeled]) -> String {
    let mut s = String::with_capacity(examples.len() * DIM * 8);
    for e in examples {
        s.push_str(&format!("{}", e.label));
        for f in &e.features {
            s.push_str(&format!(",{f:.5}"));
        }
        s.push('\n');
    }
    s
}

impl MapReduce for GradientRound {
    fn map(&self, block: &[u8], emit: &mut dyn FnMut(String, String)) {
        let mut grad = [0.0f64; DIM];
        let mut count = 0u64;
        for line in String::from_utf8_lossy(block).lines() {
            let Some(ex) = parse_example(line) else { continue };
            // y in {-1,+1}: gradient of log-loss.
            let z: f64 = ex.features.iter().zip(&self.weights).map(|(x, w)| x * w).sum();
            let coeff = ex.label * (sigmoid(ex.label * z) - 1.0);
            for (g, x) in grad.iter_mut().zip(&ex.features) {
                *g += coeff * x;
            }
            count += 1;
        }
        if count > 0 {
            let coords: Vec<String> = grad.iter().map(|g| format!("{g:.9}")).collect();
            emit("grad".to_string(), format!("{count}|{}", coords.join(",")));
        }
    }

    fn reduce(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
        let mut total = [0.0f64; DIM];
        let mut n = 0u64;
        for v in values {
            let Some((count, coords)) = v.split_once('|') else { continue };
            let Ok(c) = count.parse::<u64>() else { continue };
            let parts: Vec<f64> = coords.split(',').filter_map(|t| t.parse().ok()).collect();
            if parts.len() == DIM {
                for d in 0..DIM {
                    total[d] += parts[d];
                }
                n += c;
            }
        }
        if n > 0 {
            let coords: Vec<String> = total.iter().map(|g| format!("{:.9}", g / n as f64)).collect();
            emit(key.to_string(), coords.join(","));
        }
    }
}

/// Result of a logistic-regression run.
#[derive(Clone, Debug)]
pub struct LogRegResult {
    pub weights: [f64; DIM],
    /// Gradient L2 norm per iteration (convergence trace).
    pub grad_norms: Vec<f64>,
}

/// Train for `iterations` rounds with learning rate `lr` over the CSV
/// example file `input`. Iteration weights are cached in oCache.
pub fn run_logreg(
    cluster: &LiveCluster,
    input: &str,
    user: &str,
    lr: f64,
    iterations: u32,
    reducers: usize,
) -> LogRegResult {
    let mut weights = [0.0f64; DIM];
    let mut grad_norms = Vec::with_capacity(iterations as usize);
    for iter in 0..iterations {
        if let Some(cached) = cluster.ocache_get("logreg", &format!("iter{iter}")) {
            let parsed: Vec<f64> = String::from_utf8_lossy(&cached)
                .trim()
                .split(',')
                .filter_map(|t| t.parse().ok())
                .collect();
            assert_eq!(parsed.len(), DIM, "cached weights malformed");
            weights.copy_from_slice(&parsed);
            grad_norms.push(f64::NAN); // unknown for resumed iterations
            continue;
        }
        let round = GradientRound { weights };
        let (out, _) = cluster.run_job(&round, input, user, reducers, ReusePolicy::full());
        let grad_str = out
            .iter()
            .find(|(k, _)| k == "grad")
            .map(|(_, v)| v.clone())
            .expect("gradient emitted");
        let grad: Vec<f64> = grad_str.split(',').filter_map(|t| t.parse().ok()).collect();
        assert_eq!(grad.len(), DIM);
        let norm: f64 = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        grad_norms.push(norm);
        for d in 0..DIM {
            weights[d] -= lr * grad[d];
        }
        let ser: Vec<String> = weights.iter().map(|w| format!("{w:.9}")).collect();
        cluster.ocache_put("logreg", &format!("iter{iter}"), Bytes::from(ser.join(",")), None);
    }
    LogRegResult { weights, grad_norms }
}

/// Classification accuracy of `weights` on `examples`.
pub fn accuracy(weights: &[f64; DIM], examples: &[Labeled]) -> f64 {
    if examples.is_empty() {
        return 0.0;
    }
    let correct = examples
        .iter()
        .filter(|e| {
            let z: f64 = e.features.iter().zip(weights).map(|(x, w)| x * w).sum();
            (z >= 0.0) == (e.label > 0.0)
        })
        .count();
    correct as f64 / examples.len() as f64
}

/// A helper shared by examples: hash key for a labeled-example file name
/// (demonstrates how application data maps onto the ring).
pub fn input_key(name: &str) -> HashKey {
    HashKey::of_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclipse_core::LiveConfig;
    use eclipse_workloads::labeled_points;

    #[test]
    fn learns_separable_data() {
        let examples = labeled_points(2000, 0.0, 3);
        let csv = examples_to_csv(&examples);
        let c = LiveCluster::new(LiveConfig::small().with_block_size(8192));
        c.upload("train", "u", csv.as_bytes());
        let result = run_logreg(&c, "train", "u", 1.0, 10, 4);
        let acc = accuracy(&result.weights, &examples);
        assert!(acc > 0.95, "accuracy {acc}");
        // Gradient norms should trend downward.
        let first = result.grad_norms[0];
        let last = *result.grad_norms.last().unwrap();
        assert!(last < first, "{:?}", result.grad_norms);
    }

    #[test]
    fn weights_cached_per_iteration() {
        let examples = labeled_points(500, 0.1, 4);
        let csv = examples_to_csv(&examples);
        let c = LiveCluster::new(LiveConfig::small().with_block_size(8192));
        c.upload("train", "u", csv.as_bytes());
        let r1 = run_logreg(&c, "train", "u", 0.5, 3, 2);
        assert!(c.ocache_get("logreg", "iter2").is_some());
        let r2 = run_logreg(&c, "train", "u", 0.5, 3, 2);
        for d in 0..DIM {
            assert!((r1.weights[d] - r2.weights[d]).abs() < 1e-9, "resume mismatch");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_example("not,numbers,a,b,c,d,e,f,g").is_none());
        assert!(parse_example("1.0,1,2,3,4,5,6,7,8").is_some());
        assert!(parse_example("1.0,1,2,3").is_none(), "too few features");
    }

    #[test]
    fn accuracy_bounds() {
        let examples = labeled_points(100, 0.0, 9);
        let zero = [0.0f64; DIM];
        let acc = accuracy(&zero, &examples);
        assert!((0.0..=1.0).contains(&acc));
        assert_eq!(accuracy(&zero, &[]), 0.0);
    }
}
