//! Iterative page rank on the live executor.
//!
//! Input blocks hold edge lines `src\tdst`. The driver first runs a
//! degree-count round, then rank-propagation rounds. Unlike k-means,
//! page rank's per-iteration output (the full rank vector) is large —
//! the paper's §III-E point about EclipseMR persisting big iteration
//! outputs. Ranks are stored in oCache tagged `pagerank/iter<i>`.

use bytes::Bytes;
use eclipse_core::{LiveCluster, MapReduce, ReusePolicy};
use std::collections::HashMap;
use std::sync::Arc;

/// Damping factor (standard 0.85).
pub const DAMPING: f64 = 0.85;

/// Degree-count round: `vertex -> out_degree`.
struct DegreeCount;

impl MapReduce for DegreeCount {
    fn map(&self, block: &[u8], emit: &mut dyn FnMut(String, String)) {
        for line in String::from_utf8_lossy(block).lines() {
            if let Some((src, _)) = line.split_once('\t') {
                emit(src.to_string(), "1".to_string());
            }
        }
    }

    fn reduce(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
        emit(key.to_string(), values.len().to_string());
    }
}

/// One rank-propagation round: each edge forwards `rank(src)/deg(src)`;
/// the reducer applies damping.
struct RankRound {
    ranks: Arc<HashMap<u32, f64>>,
    degrees: Arc<HashMap<u32, u32>>,
    num_vertices: f64,
}

impl MapReduce for RankRound {
    fn map(&self, block: &[u8], emit: &mut dyn FnMut(String, String)) {
        for line in String::from_utf8_lossy(block).lines() {
            let Some((src, dst)) = line.split_once('\t') else { continue };
            let Ok(s) = src.parse::<u32>() else { continue };
            let rank = self.ranks.get(&s).copied().unwrap_or(1.0 / self.num_vertices);
            let deg = self.degrees.get(&s).copied().unwrap_or(1).max(1);
            emit(dst.to_string(), format!("{:.9}", rank / deg as f64));
        }
    }

    fn reduce(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
        let incoming: f64 = values.iter().filter_map(|v| v.parse::<f64>().ok()).sum();
        let rank = (1.0 - DAMPING) / self.num_vertices + DAMPING * incoming;
        emit(key.to_string(), format!("{rank:.9}"));
    }
}

/// Result of a page rank run.
#[derive(Clone, Debug)]
pub struct PageRankResult {
    /// vertex -> final rank.
    pub ranks: HashMap<u32, f64>,
    pub iterations: u32,
}

fn serialize_ranks(ranks: &HashMap<u32, f64>) -> String {
    let mut entries: Vec<(u32, f64)> = ranks.iter().map(|(&k, &v)| (k, v)).collect();
    entries.sort_unstable_by_key(|e| e.0);
    let mut s = String::with_capacity(entries.len() * 16);
    for (v, r) in entries {
        s.push_str(&format!("{v}\t{r:.9}\n"));
    }
    s
}

fn parse_ranks(data: &[u8]) -> HashMap<u32, f64> {
    String::from_utf8_lossy(data)
        .lines()
        .filter_map(|l| {
            let (v, r) = l.split_once('\t')?;
            Some((v.parse().ok()?, r.parse().ok()?))
        })
        .collect()
}

/// Run `iterations` of page rank over the edge file `input` with
/// `num_vertices` vertices. Iteration outputs go to oCache; a restarted
/// driver resumes from the last cached iteration.
pub fn run_pagerank(
    cluster: &LiveCluster,
    input: &str,
    user: &str,
    num_vertices: u32,
    iterations: u32,
    reducers: usize,
) -> PageRankResult {
    // Degree pre-pass (cached across runs under a well-known tag).
    let degrees: Arc<HashMap<u32, u32>> = match cluster.ocache_get("pagerank", "degrees") {
        Some(cached) => Arc::new(
            String::from_utf8_lossy(&cached)
                .lines()
                .filter_map(|l| {
                    let (v, d) = l.split_once('\t')?;
                    Some((v.parse().ok()?, d.parse().ok()?))
                })
                .collect(),
        ),
        None => {
            let (out, _) = cluster.run_job(&DegreeCount, input, user, reducers, ReusePolicy::full());
            let map: HashMap<u32, u32> = out
                .iter()
                .filter_map(|(k, v)| Some((k.parse().ok()?, v.parse().ok()?)))
                .collect();
            let ser: String =
                map.iter().map(|(v, d)| format!("{v}\t{d}\n")).collect();
            cluster.ocache_put("pagerank", "degrees", Bytes::from(ser), None);
            Arc::new(map)
        }
    };

    let n = num_vertices as f64;
    let mut ranks: Arc<HashMap<u32, f64>> =
        Arc::new((0..num_vertices).map(|v| (v, 1.0 / n)).collect());

    for iter in 0..iterations {
        if let Some(cached) = cluster.ocache_get("pagerank", &format!("iter{iter}")) {
            ranks = Arc::new(parse_ranks(&cached));
            continue;
        }
        let round = RankRound {
            ranks: Arc::clone(&ranks),
            degrees: Arc::clone(&degrees),
            num_vertices: n,
        };
        let (out, _) = cluster.run_job(&round, input, user, reducers, ReusePolicy::full());
        let mut next: HashMap<u32, f64> = out
            .iter()
            .filter_map(|(k, v)| Some((k.parse().ok()?, v.parse().ok()?)))
            .collect();
        // Vertices with no in-links keep the teleport mass.
        for v in 0..num_vertices {
            next.entry(v).or_insert((1.0 - DAMPING) / n);
        }
        // Dangling vertices (no out-links) cannot forward their rank
        // through the shuffle; redistribute that mass uniformly so the
        // rank vector stays a probability distribution.
        let dangling: f64 = ranks
            .iter()
            .filter(|(v, _)| degrees.get(v).copied().unwrap_or(0) == 0)
            .map(|(_, r)| r)
            .sum();
        if dangling > 0.0 {
            let share = DAMPING * dangling / n;
            for r in next.values_mut() {
                *r += share;
            }
        }
        cluster.ocache_put(
            "pagerank",
            &format!("iter{iter}"),
            Bytes::from(serialize_ranks(&next)),
            None,
        );
        ranks = Arc::new(next);
    }
    PageRankResult { ranks: Arc::try_unwrap(ranks).unwrap_or_else(|a| (*a).clone()), iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclipse_core::LiveConfig;
    use eclipse_workloads::WebGraph;

    fn graph_cluster(nodes: u32) -> (LiveCluster, WebGraph) {
        let g = WebGraph::generate(nodes, 3, 5);
        let c = LiveCluster::new(LiveConfig::small().with_block_size(2048));
        c.upload("edges", "u", g.to_edge_lines().as_bytes());
        (c, g)
    }

    #[test]
    fn ranks_sum_to_one() {
        let (c, _) = graph_cluster(200);
        let r = run_pagerank(&c, "edges", "u", 200, 5, 4);
        let total: f64 = r.ranks.values().sum();
        assert!((total - 1.0).abs() < 0.05, "rank mass {total}");
        assert_eq!(r.ranks.len(), 200);
        assert!(r.ranks.values().all(|&v| v > 0.0));
    }

    #[test]
    fn high_in_degree_vertices_rank_higher() {
        let (c, g) = graph_cluster(300);
        let r = run_pagerank(&c, "edges", "u", 300, 6, 4);
        let degrees = g.in_degrees();
        let (top_vertex, _) =
            degrees.iter().enumerate().max_by_key(|(_, &d)| d).unwrap();
        let (bottom_vertex, _) =
            degrees.iter().enumerate().skip(1).find(|(_, &d)| d == 0).unwrap_or((299, &0));
        let top = r.ranks[&(top_vertex as u32)];
        let bottom = r.ranks[&(bottom_vertex as u32)];
        assert!(top > 3.0 * bottom, "top {top} vs bottom {bottom}");
    }

    #[test]
    fn iteration_outputs_cached() {
        let (c, _) = graph_cluster(100);
        run_pagerank(&c, "edges", "u", 100, 3, 4);
        assert!(c.ocache_get("pagerank", "iter0").is_some());
        assert!(c.ocache_get("pagerank", "iter2").is_some());
        assert!(c.ocache_get("pagerank", "degrees").is_some());
        // Resume from cache: same result.
        let again = run_pagerank(&c, "edges", "u", 100, 3, 4);
        let total: f64 = again.ranks.values().sum();
        assert!((total - 1.0).abs() < 0.05);
    }
}
