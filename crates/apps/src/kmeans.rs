//! Iterative k-means on the live executor.
//!
//! Each iteration is one MapReduce round: map assigns every point to its
//! nearest centroid and emits partial sums; reduce averages them into new
//! centroids. The driver stores each iteration's centroids in **oCache**
//! tagged `kmeans/iter<i>` — exactly the paper's §II-C pattern ("there
//! exist certain applications such as k-means ... they need the results
//! of reduce tasks from each iteration").

use bytes::Bytes;
use eclipse_core::{LiveCluster, MapReduce, ReusePolicy};
use eclipse_workloads::{points_from_csv, Point, DIM};

/// One k-means round with fixed centroids.
pub struct KMeansRound {
    pub centroids: Vec<Point>,
}

fn dist2(a: &Point, b: &Point) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl MapReduce for KMeansRound {
    fn map(&self, block: &[u8], emit: &mut dyn FnMut(String, String)) {
        for p in points_from_csv(&String::from_utf8_lossy(block)) {
            let nearest = self
                .centroids
                .iter()
                .enumerate()
                .min_by(|a, b| dist2(a.1, &p).partial_cmp(&dist2(b.1, &p)).unwrap())
                .map(|(i, _)| i)
                .expect("at least one centroid");
            // Partial sum record: "x0,..,x7" with an implicit count of 1;
            // the reducer accumulates.
            let coords: Vec<String> = p.iter().map(|x| format!("{x:.6}")).collect();
            emit(format!("c{nearest:04}"), coords.join(","));
        }
    }

    fn reduce(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
        let mut sum = [0.0f64; DIM];
        let mut count = 0usize;
        for v in values {
            let mut ok = true;
            let mut p = [0.0f64; DIM];
            for (i, tok) in v.split(',').enumerate() {
                if i >= DIM {
                    ok = false;
                    break;
                }
                match tok.parse::<f64>() {
                    Ok(x) => p[i] = x,
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                for d in 0..DIM {
                    sum[d] += p[d];
                }
                count += 1;
            }
        }
        if count > 0 {
            let mean: Vec<String> =
                sum.iter().map(|s| format!("{:.6}", s / count as f64)).collect();
            emit(key.to_string(), mean.join(","));
        }
    }
}

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    pub centroids: Vec<Point>,
    /// Total centroid movement per iteration (convergence trace).
    pub movement: Vec<f64>,
}

/// Drive `iterations` k-means rounds over `input` (CSV points in the
/// DHT FS), starting from `initial` centroids. Iteration outputs are
/// cached in oCache and reloaded at the start of each round, so a
/// restarted driver resumes from the last completed iteration.
pub fn run_kmeans(
    cluster: &LiveCluster,
    input: &str,
    user: &str,
    initial: Vec<Point>,
    iterations: u32,
    reducers: usize,
) -> KMeansResult {
    assert!(!initial.is_empty());
    let mut centroids = initial;
    let mut movement = Vec::with_capacity(iterations as usize);
    for iter in 0..iterations {
        // Resume support: a completed iteration's centroids may already
        // be in oCache (e.g. the driver restarted after a failure).
        if let Some(cached) = cluster.ocache_get("kmeans", &format!("iter{iter}")) {
            let parsed = parse_centroids(&cached, centroids.len());
            movement.push(total_movement(&centroids, &parsed));
            centroids = parsed;
            continue;
        }
        let round = KMeansRound { centroids: centroids.clone() };
        let (out, _) = cluster.run_job(&round, input, user, reducers, ReusePolicy::full());
        let mut next = centroids.clone();
        for (key, coords) in &out {
            let idx: usize = key.trim_start_matches('c').parse().expect("c#### key");
            let p = points_from_csv(&format!("{coords}\n"));
            if let Some(p) = p.first() {
                next[idx] = *p;
            }
        }
        movement.push(total_movement(&centroids, &next));
        // Persist this iteration's output for reuse (oCache, §II-C).
        cluster.ocache_put(
            "kmeans",
            &format!("iter{iter}"),
            Bytes::from(serialize_centroids(&next)),
            None,
        );
        centroids = next;
    }
    KMeansResult { centroids, movement }
}

fn serialize_centroids(cs: &[Point]) -> String {
    let mut s = String::new();
    for c in cs {
        let coords: Vec<String> = c.iter().map(|x| format!("{x:.6}")).collect();
        s.push_str(&coords.join(","));
        s.push('\n');
    }
    s
}

fn parse_centroids(data: &[u8], expected: usize) -> Vec<Point> {
    let parsed = points_from_csv(&String::from_utf8_lossy(data));
    assert_eq!(parsed.len(), expected, "cached centroid set malformed");
    parsed
}

fn total_movement(a: &[Point], b: &[Point]) -> f64 {
    a.iter().zip(b).map(|(x, y)| dist2(x, y).sqrt()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclipse_core::LiveConfig;
    use eclipse_workloads::{points_to_csv, ClusterGen};

    fn kmeans_cluster() -> (LiveCluster, ClusterGen) {
        let gen = ClusterGen::new(3, 0.5, 42);
        let pts = gen.generate(600, 7);
        let csv = points_to_csv(&pts);
        let c = LiveCluster::new(LiveConfig::small().with_block_size(4096));
        c.upload("points", "u", csv.as_bytes());
        (c, gen)
    }

    #[test]
    fn converges_to_true_centers() {
        let (c, gen) = kmeans_cluster();
        // Start from perturbed true centers (k-means is init-sensitive;
        // the engine behaviour, not the heuristic, is under test).
        let initial: Vec<Point> = gen
            .centers
            .iter()
            .map(|c| {
                let mut p = *c;
                p[0] += 3.0;
                p[3] -= 3.0;
                p
            })
            .collect();
        let result = run_kmeans(&c, "points", "u", initial, 5, 4);
        // Each found centroid is near a true center.
        for found in &result.centroids {
            let nearest = gen
                .centers
                .iter()
                .map(|t| dist2(found, t).sqrt())
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 1.0, "centroid {found:?} off by {nearest}");
        }
        // Movement shrinks as iterations converge.
        let first = result.movement[0];
        let last = *result.movement.last().unwrap();
        assert!(last < first, "no convergence: {:?}", result.movement);
    }

    #[test]
    fn iteration_outputs_cached_and_resumable() {
        let (c, gen) = kmeans_cluster();
        let initial: Vec<Point> = gen.centers.clone();
        let r1 = run_kmeans(&c, "points", "u", initial.clone(), 3, 4);
        assert!(c.ocache_get("kmeans", "iter0").is_some());
        assert!(c.ocache_get("kmeans", "iter2").is_some());
        // A rerun resumes from oCache: results identical.
        let r2 = run_kmeans(&c, "points", "u", initial, 3, 4);
        for (a, b) in r1.centroids.iter().zip(&r2.centroids) {
            assert!(dist2(a, b) < 1e-9);
        }
    }
}
