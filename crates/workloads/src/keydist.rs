//! Hash-key access distributions for simulator-scale workloads.
//!
//! Fig. 7's skewed grep experiment "synthetically merge\[s\] two normal
//! distributions that have different average hash keys" over the blocks
//! of the input; this module draws *which block* each simulated task
//! reads, as a position on the ring.

use eclipse_util::HashKey;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// How simulated tasks pick input keys over the unit ring `[0,1)`.
#[derive(Clone, Debug)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Mixture of two wrapped normals (the Fig. 7 workload).
    Bimodal {
        center_a: f64,
        center_b: f64,
        stddev: f64,
    },
    /// One wrapped normal hotspot.
    Hotspot { center: f64, stddev: f64 },
    /// A single exact key (the §II-E extreme case).
    Point(f64),
    /// Zipf-weighted choice over a fixed set of positions.
    ZipfOver { positions: Vec<f64>, exponent: f64 },
}

/// Deterministic sampler of ring keys.
#[derive(Debug)]
pub struct KeySampler {
    dist: KeyDist,
    rng: StdRng,
    /// Precomputed CDF for `ZipfOver`.
    zipf_cdf: Vec<f64>,
}

fn wrap_unit(x: f64) -> f64 {
    x.rem_euclid(1.0)
}

impl KeySampler {
    pub fn new(dist: KeyDist, seed: u64) -> KeySampler {
        let zipf_cdf = match &dist {
            KeyDist::ZipfOver { positions, exponent } => {
                assert!(!positions.is_empty());
                let mut acc = 0.0;
                let mut cdf = Vec::with_capacity(positions.len());
                for k in 1..=positions.len() {
                    acc += 1.0 / (k as f64).powf(*exponent);
                    cdf.push(acc);
                }
                for c in &mut cdf {
                    *c /= acc;
                }
                cdf
            }
            _ => Vec::new(),
        };
        KeySampler { dist, rng: StdRng::seed_from_u64(seed), zipf_cdf }
    }

    fn normal(&mut self) -> f64 {
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Draw the next access key.
    pub fn sample(&mut self) -> HashKey {
        let unit = match &self.dist {
            KeyDist::Uniform => self.rng.random::<f64>(),
            KeyDist::Bimodal { center_a, center_b, stddev } => {
                let (c, s) = (*if self.rng.random::<bool>() { center_a } else { center_b }, *stddev);
                wrap_unit(c + s * self.normal())
            }
            KeyDist::Hotspot { center, stddev } => {
                let (c, s) = (*center, *stddev);
                wrap_unit(c + s * self.normal())
            }
            KeyDist::Point(p) => *p,
            KeyDist::ZipfOver { positions, .. } => {
                let u: f64 = self.rng.random();
                let idx = self.zipf_cdf.partition_point(|&c| c < u).min(positions.len() - 1);
                positions[idx]
            }
        };
        HashKey::from_unit(wrap_unit(unit))
    }

    /// Draw `n` keys.
    pub fn sample_n(&mut self, n: usize) -> Vec<HashKey> {
        (0..n).map(|_| self.sample()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_ring() {
        let mut s = KeySampler::new(KeyDist::Uniform, 1);
        let keys = s.sample_n(10_000);
        let low = keys.iter().filter(|k| k.as_unit() < 0.25).count();
        assert!(low > 2200 && low < 2800, "low quartile {low}");
    }

    #[test]
    fn bimodal_concentrates_near_centers() {
        let mut s = KeySampler::new(
            KeyDist::Bimodal { center_a: 0.25, center_b: 0.75, stddev: 0.03 },
            7,
        );
        let keys = s.sample_n(5000);
        let near = keys
            .iter()
            .filter(|k| {
                let u = k.as_unit();
                (u - 0.25).abs() < 0.1 || (u - 0.75).abs() < 0.1
            })
            .count();
        assert!(near > 4800, "near={near}");
    }

    #[test]
    fn point_is_constant() {
        let mut s = KeySampler::new(KeyDist::Point(0.4), 2);
        let keys = s.sample_n(10);
        assert!(keys.iter().all(|&k| k == keys[0]));
    }

    #[test]
    fn hotspot_wraps_around_zero() {
        let mut s = KeySampler::new(KeyDist::Hotspot { center: 0.0, stddev: 0.02 }, 3);
        let keys = s.sample_n(2000);
        // Mass splits across both sides of the wrap point.
        let high = keys.iter().filter(|k| k.as_unit() > 0.9).count();
        let low = keys.iter().filter(|k| k.as_unit() < 0.1).count();
        assert!(high > 300 && low > 300, "high={high} low={low}");
        assert_eq!(high + low, 2000);
    }

    #[test]
    fn zipf_over_prefers_first_positions() {
        let positions: Vec<f64> = (0..20).map(|i| i as f64 / 20.0).collect();
        let mut s = KeySampler::new(KeyDist::ZipfOver { positions, exponent: 1.2 }, 4);
        let keys = s.sample_n(5000);
        let first = keys.iter().filter(|k| k.as_unit() < 0.024).count();
        let last = keys.iter().filter(|k| (k.as_unit() - 0.95).abs() < 0.024).count();
        assert!(first > 5 * (last + 1), "first={first} last={last}");
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = KeySampler::new(KeyDist::Uniform, 9);
        let mut b = KeySampler::new(KeyDist::Uniform, 9);
        assert_eq!(a.sample_n(100), b.sample_n(100));
    }
}
