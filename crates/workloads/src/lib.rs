//! # eclipse-workloads
//!
//! HiBench-style workload generation for the EclipseMR reproduction:
//! Zipf text (word count / grep / inverted index / sort), power-law web
//! graphs (page rank), Gaussian mixtures (k-means) and labeled points
//! (logistic regression) for the live executor, plus ring-key access
//! distributions and per-application cost models for the simulator.

pub mod arrivals;
pub mod cost;
pub mod graph;
pub mod keydist;
pub mod points;
pub mod text;

pub use arrivals::{
    arrivals, tenant_arrivals, ArrivalConfig, JobArrival, SizeClass, TenantSpec, TracePoint,
};
pub use cost::{AppKind, CostModel};
pub use graph::WebGraph;
pub use keydist::{KeyDist, KeySampler};
pub use points::{labeled_points, points_from_csv, points_to_csv, ClusterGen, Labeled, Point, DIM};
pub use text::{TextGen, Zipf};
