//! Numeric datasets: Gaussian-mixture point clouds for k-means and
//! linearly separable labeled points for logistic regression — stand-ins
//! for the HiBench 250 GB k-means input ("synthetically generated with
//! varying distributions", §III) and the LR training data.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Dimensionality of generated points.
pub const DIM: usize = 8;

/// A point in `DIM`-dimensional space.
pub type Point = [f64; DIM];

/// Sample from a unit normal via Box–Muller (rand's distributions crate
/// is not in the offline set).
fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Gaussian-mixture generator for k-means.
#[derive(Clone, Debug)]
pub struct ClusterGen {
    pub centers: Vec<Point>,
    pub stddev: f64,
}

impl ClusterGen {
    /// `k` well-separated centers on a deterministic lattice, points
    /// scattered with `stddev`.
    pub fn new(k: usize, stddev: f64, seed: u64) -> ClusterGen {
        assert!(k > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut centers = Vec::with_capacity(k);
        for _ in 0..k {
            let mut c = [0.0; DIM];
            for x in &mut c {
                *x = rng.random_range(-100.0..100.0);
            }
            centers.push(c);
        }
        ClusterGen { centers, stddev }
    }

    /// Generate `n` points, cycling through the mixture components.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let c = &self.centers[i % self.centers.len()];
            let mut p = [0.0; DIM];
            for (d, x) in p.iter_mut().enumerate() {
                *x = c[d] + self.stddev * normal(&mut rng);
            }
            out.push(p);
        }
        out
    }
}

/// A labeled example for logistic regression.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Labeled {
    pub features: Point,
    /// +1.0 or -1.0.
    pub label: f64,
}

/// Generate `n` linearly separable (with margin noise) labeled points
/// against a hidden hyperplane drawn from `seed`.
pub fn labeled_points(n: usize, noise: f64, seed: u64) -> Vec<Labeled> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w: Point = [0.0; DIM];
    for x in &mut w {
        *x = normal(&mut rng);
    }
    let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
    for x in &mut w {
        *x /= norm;
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut f = [0.0; DIM];
        for x in &mut f {
            *x = normal(&mut rng);
        }
        let margin: f64 = f.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() + noise * normal(&mut rng);
        out.push(Labeled { features: f, label: if margin >= 0.0 { 1.0 } else { -1.0 } });
    }
    out
}

/// Serialize points as CSV lines (live executor block payloads).
pub fn points_to_csv(points: &[Point]) -> String {
    let mut s = String::with_capacity(points.len() * DIM * 8);
    for p in points {
        for (i, x) in p.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{x:.4}"));
        }
        s.push('\n');
    }
    s
}

/// Parse CSV lines back into points; skips malformed lines.
pub fn points_from_csv(csv: &str) -> Vec<Point> {
    csv.lines()
        .filter_map(|l| {
            let mut p = [0.0; DIM];
            let mut n = 0;
            for (i, tok) in l.split(',').enumerate() {
                if i >= DIM {
                    return None;
                }
                p[i] = tok.trim().parse().ok()?;
                n = i + 1;
            }
            (n == DIM).then_some(p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clusters_deterministic_and_separated() {
        let g = ClusterGen::new(4, 1.0, 3);
        let a = g.generate(100, 7);
        let b = g.generate(100, 7);
        assert_eq!(a, b);
        // Points sit near their assigned centers.
        for (i, p) in a.iter().enumerate() {
            let c = &g.centers[i % 4];
            let dist: f64 =
                p.iter().zip(c).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
            assert!(dist < 10.0, "point {i} too far: {dist}");
        }
    }

    #[test]
    fn labeled_points_balanced_and_separable() {
        let pts = labeled_points(2000, 0.0, 11);
        let pos = pts.iter().filter(|p| p.label > 0.0).count();
        // Roughly balanced labels.
        assert!(pos > 600 && pos < 1400, "pos={pos}");
        // With zero noise, labels are a deterministic function of
        // features (same seed -> same data).
        assert_eq!(pts, labeled_points(2000, 0.0, 11));
    }

    #[test]
    fn csv_roundtrip() {
        let g = ClusterGen::new(2, 0.5, 0);
        let pts = g.generate(50, 1);
        let csv = points_to_csv(&pts);
        let back = points_from_csv(&csv);
        assert_eq!(back.len(), 50);
        for (a, b) in pts.iter().zip(&back) {
            for d in 0..DIM {
                assert!((a[d] - b[d]).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn csv_skips_garbage() {
        let parsed = points_from_csv("not,a,point\n1,2,3,4,5,6,7,8\n1,2\n");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0][7], 8.0);
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
