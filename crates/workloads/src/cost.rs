//! Per-application cost models for the simulator.
//!
//! The simulator never executes user code at paper scale; instead each
//! application is characterized by throughput and data-volume ratios that
//! determine how long map/reduce work takes and how many bytes shuffle.
//! Rates are calibrated to land EclipseMR's absolute job times in the
//! neighborhood the paper reports (hundreds to thousands of seconds on
//! 250 GB / 40 nodes) — the reproduction targets *shapes*, but sane
//! absolutes keep crossovers honest.

use serde::{Deserialize, Serialize};

/// The paper's seven benchmark applications.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppKind {
    WordCount,
    Grep,
    InvertedIndex,
    Sort,
    KMeans,
    PageRank,
    LogisticRegression,
}

impl AppKind {
    pub const ALL: [AppKind; 7] = [
        AppKind::WordCount,
        AppKind::Grep,
        AppKind::InvertedIndex,
        AppKind::Sort,
        AppKind::KMeans,
        AppKind::PageRank,
        AppKind::LogisticRegression,
    ];

    pub fn name(self) -> &'static str {
        match self {
            AppKind::WordCount => "word_count",
            AppKind::Grep => "grep",
            AppKind::InvertedIndex => "inverted_index",
            AppKind::Sort => "sort",
            AppKind::KMeans => "k-means",
            AppKind::PageRank => "page_rank",
            AppKind::LogisticRegression => "logistic_regression",
        }
    }

    /// Is the application iterative (driver loops over MapReduce rounds)?
    pub fn is_iterative(self) -> bool {
        matches!(self, AppKind::KMeans | AppKind::PageRank | AppKind::LogisticRegression)
    }
}

/// Cost model of one application on one execution framework.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Map CPU throughput per slot, bytes/second of input.
    pub map_rate: f64,
    /// Intermediate bytes produced per input byte.
    pub map_output_ratio: f64,
    /// Reduce CPU throughput per slot, bytes/second of intermediate data.
    pub reduce_rate: f64,
    /// Final output bytes per intermediate byte.
    pub output_ratio: f64,
    /// Bytes of reusable iteration output per input byte (iterative apps
    /// only): page rank ≈ 1.0 (document-id/rank pairs comparable to the
    /// input), k-means ≈ 0 (a handful of centroids), LR ≈ 0 (one weight
    /// vector).
    pub iter_output_ratio: f64,
    /// Fixed per-task startup seconds in EclipseMR (C++ fork ≈ tens of
    /// ms; Hadoop's 7 s container overhead is modeled by the baseline,
    /// not here).
    pub task_startup: f64,
}

const MB: f64 = 1024.0 * 1024.0;

impl CostModel {
    /// Calibrated model for `app` in EclipseMR's C++ runtime.
    pub fn eclipse(app: AppKind) -> CostModel {
        match app {
            // grep: the cheapest app per byte, but still slot-bound.
            // All rates below are *effective per-slot* throughputs
            // back-derived from the paper's absolute job times (e.g.
            // Fig. 6(a) grep ≈ 400-450 s on 250 GB / 320 slots ⇒
            // ~2-6 MB/s once task forking, the DHT-FS read path and
            // pipes are paid). The CPU-bound regime (8 slots × rate <
            // disk bandwidth) is what makes scheduling quality visible,
            // exactly as on the paper's testbed.
            AppKind::Grep => CostModel {
                map_rate: 6.0 * MB,
                map_output_ratio: 0.001,
                reduce_rate: 200.0 * MB,
                output_ratio: 1.0,
                iter_output_ratio: 0.0,
                task_startup: 0.05,
            },
            // word count: tokenize + combine; small intermediate data.
            AppKind::WordCount => CostModel {
                map_rate: 3.0 * MB,
                map_output_ratio: 0.05,
                reduce_rate: 30.0 * MB,
                output_ratio: 0.5,
                iter_output_ratio: 0.0,
                task_startup: 0.05,
            },
            // inverted index: tokenize + posting lists; larger shuffle.
            AppKind::InvertedIndex => CostModel {
                map_rate: 2.0 * MB,
                map_output_ratio: 0.3,
                reduce_rate: 20.0 * MB,
                output_ratio: 0.6,
                iter_output_ratio: 0.0,
                task_startup: 0.05,
            },
            // sort: trivial CPU, full-volume shuffle and output.
            AppKind::Sort => CostModel {
                map_rate: 6.0 * MB,
                map_output_ratio: 1.0,
                reduce_rate: 4.0 * MB,
                output_ratio: 1.0,
                iter_output_ratio: 0.0,
                task_startup: 0.05,
            },
            // k-means: distance computation dominates; tiny outputs.
            AppKind::KMeans => CostModel {
                map_rate: 1.7 * MB,
                map_output_ratio: 0.0001,
                reduce_rate: 50.0 * MB,
                output_ratio: 1.0,
                iter_output_ratio: 7.0e-9, // ~1.9 KB per 250 GB (paper: 1.7 KB)
                task_startup: 0.05,
            },
            // page rank: join + rank update; iteration output ≈ input.
            AppKind::PageRank => CostModel {
                map_rate: 0.6 * MB,
                map_output_ratio: 1.0,
                reduce_rate: 3.0 * MB,
                output_ratio: 1.0,
                iter_output_ratio: 1.0, // ~15 GB per 15 GB input (paper)
                task_startup: 0.05,
            },
            // logistic regression: gradient computation; tiny outputs.
            AppKind::LogisticRegression => CostModel {
                map_rate: 2.8 * MB,
                map_output_ratio: 0.0001,
                reduce_rate: 50.0 * MB,
                output_ratio: 1.0,
                iter_output_ratio: 1.0e-9,
                task_startup: 0.05,
            },
        }
    }

    /// JVM-runtime variant (Hadoop/Spark user code): the paper credits
    /// part of its win to "our faster C++ implementations of kmeans and
    /// logistic regression" (§III-E) — model the JVM at roughly 2–3×
    /// slower CPU for those, moderately slower for the text apps, and
    /// *faster* for page rank: the paper never claims a fast C++ page
    /// rank, and its own Fig. 9/10 show Spark ~15% ahead there — Spark's
    /// optimized join pipeline beats the prototype's per-iteration
    /// implementation.
    pub fn jvm(app: AppKind) -> CostModel {
        let base = Self::eclipse(app);
        let cpu_penalty = match app {
            AppKind::KMeans | AppKind::LogisticRegression => 2.5,
            AppKind::WordCount | AppKind::InvertedIndex => 1.8,
            AppKind::Grep | AppKind::Sort => 1.2,
            AppKind::PageRank => 0.75,
        };
        CostModel {
            map_rate: base.map_rate / cpu_penalty,
            reduce_rate: base.reduce_rate / cpu_penalty,
            ..base
        }
    }

    /// Hadoop-MapReduce variant: like [`CostModel::jvm`] but with the
    /// penalties of the *naive MR formulations* — page rank in classic
    /// MapReduce re-joins the adjacency list with the rank vector through
    /// a full shuffle every iteration, an order of magnitude costlier
    /// than Spark's pipelined join (the paper's Fig. 9 shows Hadoop
    /// slowest on page rank by a wide margin).
    pub fn hadoop(app: AppKind) -> CostModel {
        let base = Self::eclipse(app);
        let cpu_penalty = match app {
            AppKind::KMeans | AppKind::LogisticRegression => 3.0,
            AppKind::WordCount | AppKind::InvertedIndex => 1.8,
            AppKind::Grep | AppKind::Sort => 1.2,
            AppKind::PageRank => 3.5,
        };
        CostModel {
            map_rate: base.map_rate / cpu_penalty,
            reduce_rate: base.reduce_rate / cpu_penalty,
            ..base
        }
    }

    /// Seconds of map CPU for `bytes` of input.
    pub fn map_cpu_secs(&self, bytes: u64) -> f64 {
        self.task_startup + bytes as f64 / self.map_rate
    }

    /// Intermediate bytes produced by mapping `bytes` of input.
    pub fn intermediate_bytes(&self, bytes: u64) -> u64 {
        (bytes as f64 * self.map_output_ratio).round() as u64
    }

    /// Seconds of reduce CPU for `bytes` of intermediate data.
    pub fn reduce_cpu_secs(&self, bytes: u64) -> f64 {
        self.task_startup + bytes as f64 / self.reduce_rate
    }

    /// Final output bytes from `bytes` of intermediate data.
    pub fn output_bytes(&self, bytes: u64) -> u64 {
        (bytes as f64 * self.output_ratio).round() as u64
    }

    /// Reusable per-iteration output for `bytes` of input.
    pub fn iter_output_bytes(&self, bytes: u64) -> u64 {
        (bytes as f64 * self.iter_output_ratio).round() as u64
    }

    /// Split `total` intermediate bytes over `partitions` reducers with
    /// Zipf(`skew`) weights — the paper's *record-level* skew (§I): even
    /// with balanced input blocks, "some map tasks may take longer …"
    /// and some reducers receive far more records than others (word
    /// count's Zipf word frequencies being the canonical case).
    /// `skew = 0` is the uniform split.
    pub fn reducer_shares(total: u64, partitions: usize, skew: f64) -> Vec<u64> {
        assert!(partitions > 0);
        if skew <= 0.0 {
            let base = total / partitions as u64;
            let mut shares = vec![base; partitions];
            shares[0] += total - base * partitions as u64;
            return shares;
        }
        let weights: Vec<f64> =
            (1..=partitions).map(|k| 1.0 / (k as f64).powf(skew)).collect();
        let sum: f64 = weights.iter().sum();
        let mut shares: Vec<u64> =
            weights.iter().map(|w| (total as f64 * w / sum) as u64).collect();
        let assigned: u64 = shares.iter().sum();
        shares[0] += total - assigned;
        shares
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclipse_util::GB;

    #[test]
    fn all_apps_have_models() {
        for app in AppKind::ALL {
            let m = CostModel::eclipse(app);
            assert!(m.map_rate > 0.0 && m.reduce_rate > 0.0, "{app:?}");
            let j = CostModel::jvm(app);
            let h = CostModel::hadoop(app);
            assert!(j.map_rate > 0.0 && h.map_rate > 0.0);
            if app == AppKind::PageRank {
                // The one case where Spark's implementation beats the
                // prototype's (§III-E never claims a fast C++ page rank).
                assert!(j.map_rate > m.map_rate, "{app:?}");
            } else {
                assert!(j.map_rate <= m.map_rate, "JVM never faster: {app:?}");
            }
            assert!(h.map_rate <= j.map_rate * 5.0, "hadoop sanity: {app:?}");
        }
    }

    #[test]
    fn iterative_flags() {
        assert!(AppKind::KMeans.is_iterative());
        assert!(AppKind::PageRank.is_iterative());
        assert!(AppKind::LogisticRegression.is_iterative());
        assert!(!AppKind::Sort.is_iterative());
        assert!(!AppKind::Grep.is_iterative());
    }

    #[test]
    fn sort_shuffles_everything_grep_almost_nothing() {
        let sort = CostModel::eclipse(AppKind::Sort);
        let grep = CostModel::eclipse(AppKind::Grep);
        assert_eq!(sort.intermediate_bytes(GB), GB);
        assert!(grep.intermediate_bytes(GB) < GB / 500);
    }

    #[test]
    fn pagerank_iteration_output_matches_input_scale() {
        let pr = CostModel::eclipse(AppKind::PageRank);
        let km = CostModel::eclipse(AppKind::KMeans);
        assert_eq!(pr.iter_output_bytes(15 * GB), 15 * GB);
        // k-means: ~1.7 KB for 250 GB.
        let km_out = km.iter_output_bytes(250 * GB);
        assert!(km_out > 1000 && km_out < 10_000, "km_out={km_out}");
    }

    #[test]
    fn compute_bound_apps_slower_per_byte() {
        let grep = CostModel::eclipse(AppKind::Grep);
        let km = CostModel::eclipse(AppKind::KMeans);
        assert!(km.map_cpu_secs(GB) > 3.0 * grep.map_cpu_secs(GB));
        // Every app is slot-bound on the paper's nodes: 8 slots × rate
        // stays below the 100 MB/s disk.
        for app in AppKind::ALL {
            let m = CostModel::eclipse(app);
            assert!(8.0 * m.map_rate < 100.0 * MB, "{app:?} would be disk-bound");
        }
    }

    #[test]
    fn reducer_shares_conserve_and_skew() {
        let uniform = CostModel::reducer_shares(1000, 8, 0.0);
        assert_eq!(uniform.iter().sum::<u64>(), 1000);
        assert!(uniform.iter().all(|&s| (125..=125 + 8).contains(&s)));

        let skewed = CostModel::reducer_shares(1000, 8, 1.0);
        assert_eq!(skewed.iter().sum::<u64>(), 1000);
        assert!(skewed[0] > 2 * skewed[7], "{skewed:?}");
        assert!(skewed[0] > uniform[0]);

        // Degenerate cases.
        assert_eq!(CostModel::reducer_shares(0, 4, 1.0).iter().sum::<u64>(), 0);
        assert_eq!(CostModel::reducer_shares(7, 1, 2.0), vec![7]);
    }

    #[test]
    fn cpu_secs_monotone_in_bytes() {
        let m = CostModel::eclipse(AppKind::WordCount);
        assert!(m.map_cpu_secs(2 * GB) > m.map_cpu_secs(GB));
        assert!(m.reduce_cpu_secs(GB) > m.reduce_cpu_secs(0));
    }
}
