//! Multi-tenant job arrival processes.
//!
//! The paper's Fig. 7/8 workloads arrive as "a large number of subsequent
//! jobs ... as in time series"; production traces (the paper cites
//! studies where over 30% of jobs repeat) are streams of job
//! submissions, not batches. This module generates deterministic
//! Poisson arrival
//! timelines over an application mix, for the streaming ablation.

use crate::cost::AppKind;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// How much input a tenant's jobs read — storms mix latency-sensitive
/// small-job tenants with an antagonist scanning a large cold set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// Latency-sensitive: a handful of blocks, p99 is the deliverable.
    Small,
    /// Batch-shaped: the bulk of a production mix.
    Medium,
    /// Antagonist scan: reads a large cold dataset end to end, the
    /// cache-interference worst case quotas exist to contain.
    Scan,
}

/// One submitted job in a stream.
#[derive(Clone, Debug, PartialEq)]
pub struct JobArrival {
    /// Submission time, seconds from stream start.
    pub at: f64,
    pub app: AppKind,
    /// Which dataset the job reads (index into the tenant's datasets —
    /// small indices repeat more, giving the production-trace skew).
    pub dataset: usize,
    /// Index of the submitting tenant (0 for single-tenant streams).
    pub tenant: usize,
    /// The tenant's weighted-fair share, stamped on every job so
    /// admission policies need no side lookup.
    pub weight: u32,
    /// The tenant's job-size class.
    pub size: SizeClass,
}

/// One point of a recorded submission trace: when, what, over which
/// dataset. Real traces are bursty and diurnal — nothing like a
/// memoryless Poisson process — so replaying them is the honest way to
/// drive continuous jobs and admission control.
#[derive(Clone, Debug, PartialEq)]
pub struct TracePoint {
    /// Submission time, seconds from stream start. Points must be
    /// non-decreasing.
    pub at: f64,
    pub app: AppKind,
    /// Dataset index (same meaning as [`JobArrival::dataset`]).
    pub dataset: usize,
}

impl TracePoint {
    pub fn new(at: f64, app: AppKind, dataset: usize) -> TracePoint {
        TracePoint { at, app, dataset }
    }
}

/// One tenant in a multi-tenant storm.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Mean jobs per second for this tenant alone (Poisson rate).
    /// Ignored when a `trace` is attached.
    pub rate: f64,
    /// Weighted-fair share stamped on the tenant's arrivals.
    pub weight: u32,
    pub size: SizeClass,
    /// Recorded submission trace to replay instead of drawing a
    /// Poisson process. `None` (the default) keeps the generator
    /// path — and keeps every pre-trace stream byte-identical.
    pub trace: Option<Vec<TracePoint>>,
}

impl TenantSpec {
    pub fn new(rate: f64, weight: u32, size: SizeClass) -> TenantSpec {
        TenantSpec { rate, weight, size, trace: None }
    }

    /// A tenant that replays `trace` verbatim (cycled if the storm
    /// needs more points than the recording holds, each lap shifted by
    /// the recording's span).
    pub fn replay(trace: Vec<TracePoint>, weight: u32, size: SizeClass) -> TenantSpec {
        assert!(!trace.is_empty(), "an empty trace submits nothing");
        assert!(
            trace.windows(2).all(|w| w[0].at <= w[1].at),
            "trace timestamps must be non-decreasing"
        );
        TenantSpec { rate: f64::NAN, weight, size, trace: Some(trace) }
    }
}

/// Arrival-process parameters.
#[derive(Clone, Debug)]
pub struct ArrivalConfig {
    /// Mean jobs per second (Poisson rate λ).
    pub rate: f64,
    /// Application mix with relative weights.
    pub mix: Vec<(AppKind, f64)>,
    /// Distinct datasets; dataset popularity is Zipf(1).
    pub datasets: usize,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        ArrivalConfig {
            rate: 0.02, // one job every ~50 s
            mix: vec![
                (AppKind::Grep, 3.0),
                (AppKind::WordCount, 2.0),
                (AppKind::InvertedIndex, 1.0),
            ],
            datasets: 6,
        }
    }
}

/// Generate the first `n` arrivals of the stream, deterministic in
/// `seed`. Single-tenant: every job carries tenant 0, weight 1 and the
/// `Medium` size class.
pub fn arrivals(cfg: &ArrivalConfig, n: usize, seed: u64) -> Vec<JobArrival> {
    let mut rng = StdRng::seed_from_u64(seed);
    stream(cfg, cfg.rate, n, &mut rng, 0, 1, SizeClass::Medium)
}

/// Generate one tenant's private stream off its own RNG.
fn stream(
    cfg: &ArrivalConfig,
    rate: f64,
    n: usize,
    rng: &mut StdRng,
    tenant: usize,
    weight: u32,
    size: SizeClass,
) -> Vec<JobArrival> {
    assert!(rate > 0.0);
    assert!(!cfg.mix.is_empty());
    assert!(cfg.datasets > 0);
    let total_weight: f64 = cfg.mix.iter().map(|(_, w)| w).sum();
    // Zipf(1) CDF over datasets.
    let mut zipf = Vec::with_capacity(cfg.datasets);
    let mut acc = 0.0;
    for k in 1..=cfg.datasets {
        acc += 1.0 / k as f64;
        zipf.push(acc);
    }
    for z in &mut zipf {
        *z /= acc;
    }

    let mut out = Vec::with_capacity(n);
    let mut t = 0.0f64;
    for _ in 0..n {
        // Exponential inter-arrival gap.
        let u: f64 = rng.random::<f64>().max(1e-12);
        t += -u.ln() / rate;
        // Weighted app choice.
        let mut pick: f64 = rng.random::<f64>() * total_weight;
        let mut app = cfg.mix[0].0;
        for (a, w) in &cfg.mix {
            if pick < *w {
                app = *a;
                break;
            }
            pick -= w;
        }
        // Zipf dataset choice.
        let u: f64 = rng.random();
        let dataset = zipf.partition_point(|&c| c < u).min(cfg.datasets - 1);
        out.push(JobArrival { at: t, app, dataset, tenant, weight, size });
    }
    out
}

/// Merge per-tenant Poisson streams into one time-ordered storm of `n`
/// jobs. Each tenant draws from its **own** RNG stream
/// (`seed`-and-tenant derived), so a tenant's sub-stream is identical
/// whether it runs solo or alongside any number of other tenants —
/// adding an antagonist to a storm never perturbs the victim's
/// arrivals, only their interleaving.
pub fn tenant_arrivals(
    cfg: &ArrivalConfig,
    tenants: &[TenantSpec],
    n: usize,
    seed: u64,
) -> Vec<JobArrival> {
    assert!(!tenants.is_empty());
    let mut merged: Vec<JobArrival> = Vec::with_capacity(n * tenants.len());
    for (i, spec) in tenants.iter().enumerate() {
        // Each tenant could in principle supply the whole prefix.
        let sub = match &spec.trace {
            Some(trace) => replay(trace, n, i, spec.weight, spec.size),
            None => {
                // Golden-ratio salt keyed by tenant index, independent
                // of the tenant list's length or the other entries.
                let salt = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1);
                let mut rng = StdRng::seed_from_u64(seed ^ salt);
                stream(cfg, spec.rate, n, &mut rng, i, spec.weight, spec.size)
            }
        };
        merged.extend(sub);
    }
    merged.sort_by(|a, b| a.at.total_cmp(&b.at).then(a.tenant.cmp(&b.tenant)));
    merged.truncate(n);
    merged
}

/// Replay a recorded trace as one tenant's sub-stream: the first `n`
/// points verbatim, cycling with a per-lap time shift of the
/// recording's span when the storm outlives the recording. No RNG
/// touches this path — a traced tenant is identical across seeds,
/// tenant counts and neighbours, by construction.
fn replay(
    trace: &[TracePoint],
    n: usize,
    tenant: usize,
    weight: u32,
    size: SizeClass,
) -> Vec<JobArrival> {
    let span = trace.last().expect("non-empty trace").at;
    (0..n)
        .map(|k| {
            let lap = (k / trace.len()) as f64;
            let p = &trace[k % trace.len()];
            JobArrival {
                at: p.at + lap * span,
                app: p.app,
                dataset: p.dataset,
                tenant,
                weight,
                size,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_time_ordered() {
        let cfg = ArrivalConfig::default();
        let a = arrivals(&cfg, 100, 7);
        let b = arrivals(&cfg, 100, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at < w[1].at));
        assert_ne!(a, arrivals(&cfg, 100, 8));
    }

    #[test]
    fn mean_gap_tracks_rate() {
        let cfg = ArrivalConfig { rate: 0.1, ..Default::default() };
        let a = arrivals(&cfg, 2000, 3);
        let mean_gap = a.last().unwrap().at / 2000.0;
        assert!((mean_gap - 10.0).abs() < 1.0, "mean gap {mean_gap}");
    }

    #[test]
    fn dataset_popularity_is_skewed() {
        let cfg = ArrivalConfig { datasets: 8, ..Default::default() };
        let a = arrivals(&cfg, 4000, 5);
        let mut counts = vec![0usize; 8];
        for j in &a {
            counts[j.dataset] += 1;
        }
        assert!(counts[0] > 3 * counts[7], "{counts:?}");
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn tenant_streams_stable_across_tenant_counts() {
        let cfg = ArrivalConfig::default();
        let victim = TenantSpec::new(0.05, 4, SizeClass::Small);
        let antagonist = TenantSpec::new(0.02, 1, SizeClass::Scan);
        let solo = tenant_arrivals(&cfg, std::slice::from_ref(&victim), 60, 11);
        let storm = tenant_arrivals(&cfg, &[victim, antagonist], 120, 11);
        // The victim's sub-stream is byte-for-byte the solo stream —
        // adding the antagonist changed the interleaving only.
        let victims: Vec<&JobArrival> =
            storm.iter().filter(|j| j.tenant == 0).collect();
        assert!(victims.len() >= 40, "victim under-represented: {}", victims.len());
        for (got, want) in victims.iter().zip(&solo) {
            assert_eq!(**got, *want);
        }
        assert!(storm.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(storm.iter().filter(|j| j.tenant == 1).all(|j| {
            j.weight == 1 && j.size == SizeClass::Scan
        }));
    }

    #[test]
    fn traced_tenant_replays_verbatim_and_merges() {
        let cfg = ArrivalConfig::default();
        let trace = vec![
            TracePoint::new(0.5, AppKind::Grep, 2),
            TracePoint::new(0.6, AppKind::Sort, 0),
            TracePoint::new(9.0, AppKind::WordCount, 1),
        ];
        let traced = TenantSpec::replay(trace.clone(), 3, SizeClass::Small);
        let poisson = TenantSpec::new(0.05, 1, SizeClass::Medium);
        let storm = tenant_arrivals(&cfg, &[traced, poisson.clone()], 40, 11);
        // The traced tenant's points are the recording, independent of
        // the seed, in order, carrying its weight/size stamps.
        let replayed: Vec<&JobArrival> =
            storm.iter().filter(|j| j.tenant == 0).collect();
        for (got, want) in replayed.iter().zip(&trace) {
            assert_eq!((got.at, got.app, got.dataset), (want.at, want.app, want.dataset));
            assert_eq!((got.weight, got.size), (3, SizeClass::Small));
        }
        let other_seed = tenant_arrivals(
            &cfg,
            &[TenantSpec::replay(trace.clone(), 3, SizeClass::Small), poisson],
            40,
            77,
        );
        let a: Vec<&JobArrival> = other_seed.iter().filter(|j| j.tenant == 0).collect();
        for (x, y) in a.iter().zip(&replayed) {
            assert_eq!(x, y, "a trace must not depend on the seed");
        }
        assert!(storm.windows(2).all(|w| w[0].at <= w[1].at), "merge stays ordered");
    }

    #[test]
    fn trace_cycles_past_recording_end() {
        let cfg = ArrivalConfig::default();
        let trace =
            vec![TracePoint::new(1.0, AppKind::Grep, 0), TracePoint::new(4.0, AppKind::Sort, 1)];
        let spec = TenantSpec::replay(trace, 1, SizeClass::Medium);
        let storm = tenant_arrivals(&cfg, &[spec], 6, 5);
        let ats: Vec<f64> = storm.iter().map(|j| j.at).collect();
        // Each lap shifts by the recording's 4 s span.
        assert_eq!(ats, vec![1.0, 4.0, 5.0, 8.0, 9.0, 12.0]);
    }

    #[test]
    fn traced_victim_stable_beside_poisson_antagonist() {
        // The pre-trace invariant, now crossing generator kinds: a
        // traced victim's sub-stream is identical solo or in a storm.
        let cfg = ArrivalConfig::default();
        let trace: Vec<TracePoint> =
            (0..30).map(|i| TracePoint::new(i as f64 * 0.7, AppKind::Grep, i % 4)).collect();
        let victim = TenantSpec::replay(trace, 2, SizeClass::Small);
        let antagonist = TenantSpec::new(1.0, 1, SizeClass::Scan);
        let solo = tenant_arrivals(&cfg, std::slice::from_ref(&victim), 30, 11);
        let storm = tenant_arrivals(&cfg, &[victim, antagonist], 60, 11);
        let victims: Vec<&JobArrival> = storm.iter().filter(|j| j.tenant == 0).collect();
        for (got, want) in victims.iter().zip(&solo) {
            assert_eq!(**got, *want);
        }
    }

    #[test]
    fn single_tenant_defaults_stamped() {
        let a = arrivals(&ArrivalConfig::default(), 10, 3);
        assert!(a.iter().all(|j| j.tenant == 0 && j.weight == 1));
        assert!(a.iter().all(|j| j.size == SizeClass::Medium));
    }

    #[test]
    fn mix_weights_respected() {
        let cfg = ArrivalConfig {
            mix: vec![(AppKind::Grep, 9.0), (AppKind::Sort, 1.0)],
            ..Default::default()
        };
        let a = arrivals(&cfg, 3000, 2);
        let greps = a.iter().filter(|j| j.app == AppKind::Grep).count();
        let ratio = greps as f64 / 3000.0;
        assert!((ratio - 0.9).abs() < 0.05, "grep fraction {ratio}");
    }
}
