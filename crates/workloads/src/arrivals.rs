//! Multi-tenant job arrival processes.
//!
//! The paper's Fig. 7/8 workloads arrive as "a large number of subsequent
//! jobs ... as in time series"; production traces (the paper cites
//! studies where over 30% of jobs repeat) are streams of job
//! submissions, not batches. This module generates deterministic
//! Poisson arrival
//! timelines over an application mix, for the streaming ablation.

use crate::cost::AppKind;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One submitted job in a stream.
#[derive(Clone, Debug, PartialEq)]
pub struct JobArrival {
    /// Submission time, seconds from stream start.
    pub at: f64,
    pub app: AppKind,
    /// Which dataset the job reads (index into the tenant's datasets —
    /// small indices repeat more, giving the production-trace skew).
    pub dataset: usize,
}

/// Arrival-process parameters.
#[derive(Clone, Debug)]
pub struct ArrivalConfig {
    /// Mean jobs per second (Poisson rate λ).
    pub rate: f64,
    /// Application mix with relative weights.
    pub mix: Vec<(AppKind, f64)>,
    /// Distinct datasets; dataset popularity is Zipf(1).
    pub datasets: usize,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        ArrivalConfig {
            rate: 0.02, // one job every ~50 s
            mix: vec![
                (AppKind::Grep, 3.0),
                (AppKind::WordCount, 2.0),
                (AppKind::InvertedIndex, 1.0),
            ],
            datasets: 6,
        }
    }
}

/// Generate the first `n` arrivals of the stream, deterministic in
/// `seed`.
pub fn arrivals(cfg: &ArrivalConfig, n: usize, seed: u64) -> Vec<JobArrival> {
    assert!(cfg.rate > 0.0);
    assert!(!cfg.mix.is_empty());
    assert!(cfg.datasets > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let total_weight: f64 = cfg.mix.iter().map(|(_, w)| w).sum();
    // Zipf(1) CDF over datasets.
    let mut zipf = Vec::with_capacity(cfg.datasets);
    let mut acc = 0.0;
    for k in 1..=cfg.datasets {
        acc += 1.0 / k as f64;
        zipf.push(acc);
    }
    for z in &mut zipf {
        *z /= acc;
    }

    let mut out = Vec::with_capacity(n);
    let mut t = 0.0f64;
    for _ in 0..n {
        // Exponential inter-arrival gap.
        let u: f64 = rng.random::<f64>().max(1e-12);
        t += -u.ln() / cfg.rate;
        // Weighted app choice.
        let mut pick: f64 = rng.random::<f64>() * total_weight;
        let mut app = cfg.mix[0].0;
        for (a, w) in &cfg.mix {
            if pick < *w {
                app = *a;
                break;
            }
            pick -= w;
        }
        // Zipf dataset choice.
        let u: f64 = rng.random();
        let dataset = zipf.partition_point(|&c| c < u).min(cfg.datasets - 1);
        out.push(JobArrival { at: t, app, dataset });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_time_ordered() {
        let cfg = ArrivalConfig::default();
        let a = arrivals(&cfg, 100, 7);
        let b = arrivals(&cfg, 100, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at < w[1].at));
        assert_ne!(a, arrivals(&cfg, 100, 8));
    }

    #[test]
    fn mean_gap_tracks_rate() {
        let cfg = ArrivalConfig { rate: 0.1, ..Default::default() };
        let a = arrivals(&cfg, 2000, 3);
        let mean_gap = a.last().unwrap().at / 2000.0;
        assert!((mean_gap - 10.0).abs() < 1.0, "mean gap {mean_gap}");
    }

    #[test]
    fn dataset_popularity_is_skewed() {
        let cfg = ArrivalConfig { datasets: 8, ..Default::default() };
        let a = arrivals(&cfg, 4000, 5);
        let mut counts = vec![0usize; 8];
        for j in &a {
            counts[j.dataset] += 1;
        }
        assert!(counts[0] > 3 * counts[7], "{counts:?}");
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn mix_weights_respected() {
        let cfg = ArrivalConfig {
            mix: vec![(AppKind::Grep, 9.0), (AppKind::Sort, 1.0)],
            ..Default::default()
        };
        let a = arrivals(&cfg, 3000, 2);
        let greps = a.iter().filter(|j| j.app == AppKind::Grep).count();
        let ratio = greps as f64 / 3000.0;
        assert!((ratio - 0.9).abs() < 0.05, "grep fraction {ratio}");
    }
}
