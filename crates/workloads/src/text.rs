//! Synthetic text generation — stands in for the HiBench text datasets
//! used by word count / grep / inverted index / sort (250 GB in the
//! paper) and the 15 GB Wikipedia sample.
//!
//! Words are drawn from a Zipf-distributed vocabulary, which is what
//! HiBench's RandomTextWriter approximates and what gives word count and
//! inverted index their realistic reducer-key skew.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Zipf sampler over ranks `1..=n` with exponent `s`, via inverse-CDF
/// lookup on a precomputed table (exact, not an approximation).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(s >= 0.0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// Sample a rank in `0..n` (0 = most frequent).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    pub fn support(&self) -> usize {
        self.cdf.len()
    }
}

/// Deterministic text generator.
#[derive(Clone, Debug)]
pub struct TextGen {
    vocab: Vec<String>,
    zipf: Zipf,
    words_per_line: usize,
}

impl TextGen {
    /// `vocab_size` distinct words, Zipf exponent `s` (≈1.0 for natural
    /// text), `words_per_line` words per record.
    pub fn new(vocab_size: usize, s: f64, words_per_line: usize) -> TextGen {
        assert!(vocab_size > 0 && words_per_line > 0);
        let vocab = (0..vocab_size).map(|i| format!("w{i:05}")).collect();
        TextGen { vocab, zipf: Zipf::new(vocab_size, s), words_per_line }
    }

    /// Generate roughly `bytes` of newline-separated text, deterministic
    /// in `seed`.
    pub fn generate(&self, seed: u64, bytes: usize) -> String {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = String::with_capacity(bytes + 64);
        while out.len() < bytes {
            for w in 0..self.words_per_line {
                if w > 0 {
                    out.push(' ');
                }
                let rank = self.zipf.sample(&mut rng);
                out.push_str(&self.vocab[rank]);
            }
            out.push('\n');
        }
        out
    }

    /// Generate roughly `bytes` of `doc_id<TAB>text` lines — the input
    /// format the inverted-index application parses.
    pub fn generate_documents(&self, seed: u64, bytes: usize) -> String {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = String::with_capacity(bytes + 64);
        let mut doc = 0u64;
        while out.len() < bytes {
            out.push_str(&format!("doc{doc:06}\t"));
            for w in 0..self.words_per_line {
                if w > 0 {
                    out.push(' ');
                }
                let rank = self.zipf.sample(&mut rng);
                out.push_str(&self.vocab[rank]);
            }
            out.push('\n');
            doc += 1;
        }
        out
    }

    pub fn vocab(&self) -> &[String] {
        &self.vocab
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_per_seed() {
        let g = TextGen::new(100, 1.0, 8);
        assert_eq!(g.generate(7, 1000), g.generate(7, 1000));
        assert_ne!(g.generate(7, 1000), g.generate(8, 1000));
    }

    #[test]
    fn size_near_target() {
        let g = TextGen::new(100, 1.0, 8);
        let t = g.generate(1, 10_000);
        assert!(t.len() >= 10_000 && t.len() < 10_200, "len {}", t.len());
        assert!(t.ends_with('\n'));
    }

    #[test]
    fn zipf_rank_frequencies_decay() {
        let g = TextGen::new(1000, 1.0, 10);
        let text = g.generate(42, 200_000);
        let mut freq: HashMap<&str, usize> = HashMap::new();
        for w in text.split_whitespace() {
            *freq.entry(w).or_default() += 1;
        }
        let f0 = freq.get("w00000").copied().unwrap_or(0);
        let f99 = freq.get("w00099").copied().unwrap_or(0);
        // Zipf(1): rank 0 about 100x more frequent than rank 99.
        assert!(f0 > f99 * 20, "f0={f0} f99={f99}");
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "{counts:?}");
    }

    #[test]
    fn documents_format() {
        let g = TextGen::new(50, 1.0, 5);
        let docs = g.generate_documents(3, 5000);
        for line in docs.lines() {
            let (id, text) = line.split_once('\t').expect("tabbed");
            assert!(id.starts_with("doc"));
            assert_eq!(text.split_whitespace().count(), 5);
        }
        assert_eq!(g.generate_documents(3, 5000), docs, "deterministic");
    }

    #[test]
    fn zipf_sample_in_range() {
        let z = Zipf::new(5, 1.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }
}
