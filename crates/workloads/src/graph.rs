//! Synthetic web-graph generation for page rank — stands in for the
//! HiBench 15 GB graph dataset.
//!
//! Preferential attachment (Barabási–Albert style) produces the power-law
//! in-degree distribution that makes page rank's per-vertex work uneven —
//! exactly the computation-skew the paper calls out ("page rank is an
//! application of this type that suffers from an uneven distribution of
//! computations", §I).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A directed graph as an edge list over vertices `0..nodes`.
#[derive(Clone, Debug)]
pub struct WebGraph {
    pub nodes: u32,
    pub edges: Vec<(u32, u32)>,
}

impl WebGraph {
    /// Generate with preferential attachment: each new vertex links to
    /// `out_degree` existing vertices chosen proportionally to their
    /// current in-degree (plus one smoothing).
    pub fn generate(nodes: u32, out_degree: usize, seed: u64) -> WebGraph {
        assert!(nodes >= 2);
        assert!(out_degree >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::with_capacity(nodes as usize * out_degree);
        // Target pool: vertices repeated once per received link (classic
        // BA trick giving degree-proportional sampling in O(1)).
        let mut pool: Vec<u32> = vec![0];
        for v in 1..nodes {
            for _ in 0..out_degree.min(v as usize) {
                let idx = rng.random_range(0..pool.len());
                let target = pool[idx];
                if target != v {
                    edges.push((v, target));
                    pool.push(target);
                }
            }
            pool.push(v);
        }
        WebGraph { nodes, edges }
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.nodes as usize];
        for &(_, to) in &self.edges {
            d[to as usize] += 1;
        }
        d
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.nodes as usize];
        for &(from, _) in &self.edges {
            d[from as usize] += 1;
        }
        d
    }

    /// Serialize as adjacency lines `src\tdst` — the on-disk format the
    /// live page rank example parses.
    pub fn to_edge_lines(&self) -> String {
        let mut s = String::with_capacity(self.edges.len() * 12);
        for &(from, to) in &self.edges {
            s.push_str(&format!("{from}\t{to}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = WebGraph::generate(500, 3, 9);
        let b = WebGraph::generate(500, 3, 9);
        assert_eq!(a.edges, b.edges);
        let c = WebGraph::generate(500, 3, 10);
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn power_law_in_degree() {
        let g = WebGraph::generate(5000, 4, 1);
        let mut d = g.in_degrees();
        d.sort_unstable_by(|a, b| b.cmp(a));
        // Heavy tail: the top vertex has far more links than the median.
        let top = d[0];
        let median = d[d.len() / 2];
        assert!(top as f64 > 20.0 * (median.max(1) as f64), "top={top} median={median}");
    }

    #[test]
    fn no_self_loops() {
        let g = WebGraph::generate(1000, 3, 2);
        assert!(g.edges.iter().all(|&(a, b)| a != b));
    }

    #[test]
    fn edge_count_bounded() {
        let g = WebGraph::generate(100, 3, 0);
        assert!(g.num_edges() <= 99 * 3);
        assert!(g.num_edges() >= 150, "got {}", g.num_edges());
    }

    #[test]
    fn edge_lines_parse_back() {
        let g = WebGraph::generate(50, 2, 5);
        let lines = g.to_edge_lines();
        let parsed: Vec<(u32, u32)> = lines
            .lines()
            .map(|l| {
                let (a, b) = l.split_once('\t').unwrap();
                (a.parse().unwrap(), b.parse().unwrap())
            })
            .collect();
        assert_eq!(parsed, g.edges);
    }
}
