//! Elastic-membership cost measurement for the live executor.
//!
//! Runs real word-count jobs through [`LiveCluster`] with runtime
//! membership changes injected mid-job (via [`FaultPlan`]) — one node
//! joining, one gracefully leaving, and both composed — and reports
//! each scenario's wall-clock next to the static fault-free time plus
//! the handoff work performed (blocks and bytes pulled across the
//! ring, uncommitted claims drained back to the scheduler, time spent
//! inside the membership path). Shared by the `elastic_bench` binary
//! that `scripts/tier1.sh` uses to snapshot
//! `results/BENCH_elastic.json`, so CI tracks the cost of scaling the
//! cluster under load alongside throughput and crash recovery. Every
//! elastic run's output is asserted byte-identical to the static
//! reference.

use eclipse_apps::WordCount;
use eclipse_core::{FaultPlan, LiveCluster, LiveConfig, ReusePolicy};
use std::time::Instant;

/// Cluster size for the elastic scenarios (matches the crash bench so
/// the two snapshots compare like for like).
pub const NODES: usize = 8;
const REDUCERS: usize = 4;

/// The membership scenarios measured against the static baseline.
pub const SCENARIOS: &[&str] = &["join", "leave", "join+leave"];

/// One elastic-scenario sample.
#[derive(Clone, Debug)]
pub struct ElasticPoint {
    /// Membership change injected mid-job.
    pub scenario: &'static str,
    /// Median wall-clock of the elastic job.
    pub secs: f64,
    /// Wall-clock of the static fault-free reference job (same data,
    /// same initial cluster shape), for overhead comparison.
    pub static_secs: f64,
    /// Median seconds spent inside the membership path itself
    /// (admission + stabilization + handoff pulls + drain).
    pub membership_secs: f64,
    pub handoff_blocks: u64,
    pub handoff_bytes: u64,
    pub drained_tasks: u64,
    pub stabilize_rounds: u64,
}

fn make(text: &[u8]) -> LiveCluster {
    let c = LiveCluster::new(
        LiveConfig::small().with_nodes(NODES).with_block_size(16 * 1024),
    );
    c.upload("input", "bench", text);
    c
}

/// Measure every membership scenario. `quick` trades samples for speed.
pub fn sweep(corpus_bytes: usize, quick: bool) -> Vec<ElasticPoint> {
    let (text, _) = crate::live_bench::corpus(corpus_bytes);
    let samples = if quick { 3 } else { 5 };

    // Static reference: correctness oracle and timing baseline.
    let (expect, static_secs) = {
        let c = make(&text);
        let t = Instant::now();
        let (out, _) =
            c.run_job(&WordCount, "input", "bench", REDUCERS, ReusePolicy::default());
        (out, t.elapsed().as_secs_f64())
    };

    SCENARIOS
        .iter()
        .map(|&scenario| {
            let mut times = Vec::with_capacity(samples);
            let mut memberships = Vec::with_capacity(samples);
            let mut handoff_blocks = 0;
            let mut handoff_bytes = 0;
            let mut drained_tasks = 0;
            let mut stabilize_rounds = 0;
            for _ in 0..samples {
                // A membership change reshapes the cluster, so every
                // sample gets a fresh one.
                let c = make(&text);
                let leaver = c.ring().node_ids()[1];
                let plan = match scenario {
                    "join" => FaultPlan::new().join_at_maps(2),
                    "leave" => FaultPlan::new().leave_at_maps(leaver, 2),
                    _ => FaultPlan::new().join_at_maps(2).leave_at_maps(leaver, 4),
                };
                c.inject_faults(plan);
                let t = Instant::now();
                let (out, stats) = c
                    .try_run_job(&WordCount, "input", "bench", REDUCERS, ReusePolicy::default())
                    .expect("elastic membership is within the fault model");
                times.push(t.elapsed().as_secs_f64());
                assert_eq!(out, expect, "elastic bench: {scenario} diverged output");
                memberships.push(stats.recovery_nanos as f64 / 1e9);
                handoff_blocks = stats.handoff_blocks;
                handoff_bytes = stats.handoff_bytes;
                drained_tasks = stats.drained_tasks;
                stabilize_rounds = stats.stabilize_rounds;
            }
            times.sort_by(|a, b| a.total_cmp(b));
            memberships.sort_by(|a, b| a.total_cmp(b));
            ElasticPoint {
                scenario,
                secs: times[times.len() / 2],
                static_secs,
                membership_secs: memberships[memberships.len() / 2],
                handoff_blocks,
                handoff_bytes,
                drained_tasks,
                stabilize_rounds,
            }
        })
        .collect()
}
