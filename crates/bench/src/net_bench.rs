//! Transport-plane overhead measurement (PR 3's proof harness).
//!
//! Runs the same 8-node word-count job over both transport backends —
//! the deterministic in-memory oracle and real loopback TCP — and
//! reports records/sec side by side, plus the RPC/byte counters so the
//! gap is attributable. Shared by the `net_bench` binary that
//! `scripts/tier1.sh` uses to snapshot `results/BENCH_net.json`.

use crate::live_bench::corpus;
use eclipse_apps::WordCount;
use eclipse_core::net::{NetSnapshot, RpcKind};
use eclipse_core::{LiveCluster, LiveConfig, ReusePolicy, TransportKind};
use std::time::Instant;

/// The node count the transport story is told at (the paper's cluster
/// scale for the live acceptance runs).
pub const NODES: usize = 8;

/// One transport throughput sample with its wire-level accounting.
#[derive(Clone, Debug)]
pub struct NetPoint {
    pub transport: &'static str,
    pub nodes: usize,
    pub records: u64,
    pub secs: f64,
    pub records_per_sec: f64,
    pub rpcs: u64,
    pub bytes_sent: u64,
    pub rpc_retries: u64,
    pub timeouts: u64,
    /// Request traffic of the timed run attributed to its plane, as
    /// `(requests, first_send_bytes, retransmitted_bytes)`: where the
    /// wire budget actually goes (shuffle batches vs DHT block moves vs
    /// cache ops vs control), with bytes that only exist because of
    /// retries split out from the payload a lossless wire would carry.
    pub shuffle: (u64, u64, u64),
    pub block: (u64, u64, u64),
    pub cache: (u64, u64, u64),
    pub control: (u64, u64, u64),
}

/// Sum the per-kind counters of `kinds` into one plane's totals,
/// splitting first-send bytes from retransmitted bytes.
fn plane(s: &NetSnapshot, kinds: &[RpcKind]) -> (u64, u64, u64) {
    kinds.iter().fold((0, 0, 0), |(r, first, re), &k| {
        let (kr, kb) = s.kind(k);
        let krb = s.kind_retrans(k);
        (r + kr, first + (kb - krb), re + krb)
    })
}

fn kind_name(kind: TransportKind) -> &'static str {
    match kind {
        TransportKind::Memory => "memory",
        TransportKind::Tcp => "tcp",
    }
}

/// One backend under measurement: a warm cluster plus its best time so
/// far and the wire accounting of its most recent timed run.
struct Probe {
    kind: TransportKind,
    cluster: LiveCluster,
    best: f64,
    stats: eclipse_core::LiveStats,
    wire: NetSnapshot,
}

impl Probe {
    fn new(kind: TransportKind, text: &[u8], reducers: usize) -> Probe {
        // Both backends run the identical config, including map-slot
        // oversubscription: slots hide wire round-trips behind other
        // workers' compute (a no-op for the in-memory oracle, which
        // never blocks on the wire).
        let cluster = LiveCluster::new(
            LiveConfig::small()
                .with_nodes(NODES)
                .with_block_size(16 * 1024)
                .with_map_slots(4)
                .with_transport(kind),
        );
        cluster.upload("input", "bench", text);
        // Warmup: populate the iCache, the DHT routing state, and (for
        // TCP) the pooled connections + their reader threads, so the
        // timed runs compare steady-state data planes.
        let (out, stats) = Probe::run(&cluster, reducers);
        assert!(!out.is_empty(), "word count produced no output");
        Probe { kind, cluster, best: f64::INFINITY, stats, wire: NetSnapshot::default() }
    }

    fn run(cluster: &LiveCluster, reducers: usize) -> (Vec<(String, String)>, eclipse_core::LiveStats) {
        cluster.run_job(&WordCount, "input", "bench", reducers, ReusePolicy::default())
    }

    fn sample(&mut self, reducers: usize) {
        let before = self.cluster.transport().stats();
        let t = Instant::now();
        let (out, stats) = Probe::run(&self.cluster, reducers);
        std::hint::black_box(&out);
        self.best = self.best.min(t.elapsed().as_secs_f64());
        self.stats = stats;
        self.wire = self.cluster.transport().stats().since(before);
    }

    fn point(&self, records: u64) -> NetPoint {
        NetPoint {
            transport: kind_name(self.kind),
            nodes: NODES,
            records,
            secs: self.best,
            records_per_sec: records as f64 / self.best,
            rpcs: self.stats.rpcs,
            bytes_sent: self.stats.bytes_sent,
            rpc_retries: self.stats.rpc_retries,
            timeouts: self.stats.timeouts,
            shuffle: plane(&self.wire, &[RpcKind::ShuffleBatch]),
            block: plane(
                &self.wire,
                &[RpcKind::GetBlock, RpcKind::PutBlock, RpcKind::ReplicaSync],
            ),
            cache: plane(&self.wire, &[RpcKind::CacheGet, RpcKind::CachePut]),
            control: plane(&self.wire, &[RpcKind::Heartbeat, RpcKind::TaskAssign]),
        }
    }
}

/// Best-of-`samples` for each backend, with the backends sampled
/// **interleaved** (memory, tcp, memory, tcp, …) rather than in two
/// sequential blocks. The reported number is a *ratio* between the
/// backends, and host load drifts on timescales comparable to a whole
/// sampling block — sequential blocks hand one backend the quiet
/// window and the other the noisy one. Interleaving exposes both to
/// the same load profile; taking each backend's minimum then cancels
/// the (strictly additive) scheduler noise from the comparison. The
/// RPC counters come from the final timed run (they are per-job and
/// stable across runs of one cluster).
pub fn sweep(corpus_bytes: usize, quick: bool) -> Vec<NetPoint> {
    let (text, records) = corpus(corpus_bytes);
    let samples = if quick { 5 } else { 9 };
    let reducers = NODES.max(2);
    let mut probes: Vec<Probe> = [TransportKind::Memory, TransportKind::Tcp]
        .into_iter()
        .map(|k| Probe::new(k, &text, reducers))
        .collect();
    for _ in 0..samples.max(1) {
        for p in probes.iter_mut() {
            p.sample(reducers);
        }
    }
    probes.iter().map(|p| p.point(records)).collect()
}
