//! Transport-plane overhead measurement (PR 3's proof harness).
//!
//! Runs the same 8-node word-count job over both transport backends —
//! the deterministic in-memory oracle and real loopback TCP — and
//! reports records/sec side by side, plus the RPC/byte counters so the
//! gap is attributable. Shared by the `net_bench` binary that
//! `scripts/tier1.sh` uses to snapshot `results/BENCH_net.json`.

use crate::live_bench::corpus;
use eclipse_apps::WordCount;
use eclipse_core::{LiveCluster, LiveConfig, ReusePolicy, TransportKind};
use std::time::Instant;

/// The node count the transport story is told at (the paper's cluster
/// scale for the live acceptance runs).
pub const NODES: usize = 8;

/// One transport throughput sample with its wire-level accounting.
#[derive(Clone, Debug)]
pub struct NetPoint {
    pub transport: &'static str,
    pub nodes: usize,
    pub records: u64,
    pub secs: f64,
    pub records_per_sec: f64,
    pub rpcs: u64,
    pub bytes_sent: u64,
    pub rpc_retries: u64,
    pub timeouts: u64,
}

fn kind_name(kind: TransportKind) -> &'static str {
    match kind {
        TransportKind::Memory => "memory",
        TransportKind::Tcp => "tcp",
    }
}

/// Median-of-`samples` throughput for one backend, after a warmup run
/// that populates the iCache. The RPC counters come from the final
/// timed run (they are per-job and stable across runs of one cluster).
pub fn measure(kind: TransportKind, text: &[u8], records: u64, samples: usize) -> NetPoint {
    let cluster = LiveCluster::new(
        LiveConfig::small()
            .with_nodes(NODES)
            .with_block_size(16 * 1024)
            .with_transport(kind),
    );
    cluster.upload("input", "bench", text);
    let reducers = NODES.max(2);
    let run = || cluster.run_job(&WordCount, "input", "bench", reducers, ReusePolicy::default());
    let warm = run();
    assert!(!warm.0.is_empty(), "word count produced no output");
    let mut stats = warm.1;
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            let (out, s) = run();
            std::hint::black_box(&out);
            stats = s;
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    let secs = times[times.len() / 2];
    NetPoint {
        transport: kind_name(kind),
        nodes: NODES,
        records,
        secs,
        records_per_sec: records as f64 / secs,
        rpcs: stats.rpcs,
        bytes_sent: stats.bytes_sent,
        rpc_retries: stats.rpc_retries,
        timeouts: stats.timeouts,
    }
}

/// Both backends over one shared corpus, in-memory first (the oracle
/// sets the baseline the TCP number is read against).
pub fn sweep(corpus_bytes: usize, quick: bool) -> Vec<NetPoint> {
    let (text, records) = corpus(corpus_bytes);
    let samples = if quick { 3 } else { 7 };
    [TransportKind::Memory, TransportKind::Tcp]
        .into_iter()
        .map(|k| measure(k, &text, records, samples))
        .collect()
}
