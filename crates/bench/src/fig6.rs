//! Fig. 6 — Job execution time with the LAF and delay schedulers.
//!
//! (a) Non-iterative jobs (inverted index, sort, word count, grep) over
//!     250 GB with cold caches: LAF beats delay everywhere, because delay
//!     waits on busy preferred servers while idle slots sit elsewhere.
//! (b) Iterative jobs (k-means 250 GB, page rank 15 GB, 5 iterations,
//!     1 GB cache/server), with and without oCache for iteration
//!     outputs: oCache does not help much because iteration outputs land
//!     in the OS page cache via the DHT FS write anyway; the LAF gap is
//!     larger for k-means than for page rank (more map tasks).

use eclipse_core::{EclipseConfig, EclipseSim, JobSpec, ReusePolicy, SchedulerKind};
use eclipse_sched::{DelayConfig, LafConfig};
use eclipse_util::GB;
use eclipse_workloads::AppKind;

/// One bar of Fig. 6(a).
#[derive(Clone, Debug)]
pub struct Fig6aRow {
    pub app: AppKind,
    pub laf_secs: f64,
    pub delay_secs: f64,
}

/// One bar group of Fig. 6(b).
#[derive(Clone, Debug)]
pub struct Fig6bRow {
    pub app: AppKind,
    pub laf_secs: f64,
    pub laf_ocache_secs: f64,
    pub delay_secs: f64,
    pub delay_ocache_secs: f64,
}

fn sim(kind: SchedulerKind) -> EclipseSim {
    EclipseSim::new(EclipseConfig::paper_defaults(kind))
}

fn run_cold(kind: SchedulerKind, spec: &JobSpec, bytes: u64) -> f64 {
    let mut s = sim(kind);
    s.upload(&spec.input, bytes);
    s.drop_caches();
    s.run_job(spec).elapsed
}

/// Fig. 6(a): the four non-iterative applications, cold caches, 250 GB
/// (× `scale`), 32 MB spill buffers.
pub fn fig6a(scale: f64) -> Vec<Fig6aRow> {
    let bytes = ((250.0 * scale).max(1.0) * GB as f64) as u64;
    [AppKind::InvertedIndex, AppKind::Sort, AppKind::WordCount, AppKind::Grep]
        .iter()
        .map(|&app| {
            let spec = JobSpec::batch(app, "hibench-text");
            Fig6aRow {
                app,
                laf_secs: run_cold(SchedulerKind::Laf(LafConfig::default()), &spec, bytes),
                delay_secs: run_cold(SchedulerKind::Delay(DelayConfig::default()), &spec, bytes),
            }
        })
        .collect()
}

/// Fig. 6(b): k-means and page rank, 5 iterations, with and without
/// oCache for iteration outputs.
pub fn fig6b(scale: f64) -> Vec<Fig6bRow> {
    let cases = [
        (AppKind::KMeans, ((250.0 * scale).max(1.0) * GB as f64) as u64, "kmeans-points"),
        (AppKind::PageRank, ((15.0 * scale).max(0.5) * GB as f64) as u64, "pagerank-graph"),
    ];
    cases
        .iter()
        .map(|&(app, bytes, input)| {
            let with_ocache = JobSpec::iterative(app, input, 5);
            let without = with_ocache.clone().with_reuse(ReusePolicy {
                cache_input: true,
                cache_outputs: false,
                ocache_ttl: None,
            });
            Fig6bRow {
                app,
                laf_secs: run_cold(SchedulerKind::Laf(LafConfig::default()), &without, bytes),
                laf_ocache_secs: run_cold(
                    SchedulerKind::Laf(LafConfig::default()),
                    &with_ocache,
                    bytes,
                ),
                delay_secs: run_cold(
                    SchedulerKind::Delay(DelayConfig::default()),
                    &without,
                    bytes,
                ),
                delay_ocache_secs: run_cold(
                    SchedulerKind::Delay(DelayConfig::default()),
                    &with_ocache,
                    bytes,
                ),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laf_beats_delay_on_all_batch_apps() {
        let rows = fig6a(1.0);
        // Per-app outcomes carry ±3% placement noise (one input layout
        // per app); each app must be at worst a near-tie …
        for row in &rows {
            assert!(
                row.laf_secs <= row.delay_secs * 1.06,
                "{:?}: laf {} delay {}",
                row.app,
                row.laf_secs,
                row.delay_secs
            );
        }
        // … and across the slot-bound apps LAF must come out ahead.
        // (Sort is excluded from the aggregate: its makespan rides the
        // 250 GB shuffle through the same switch fabric under either
        // scheduler, so the two tie within noise in this model.)
        let laf_total: f64 =
            rows.iter().filter(|r| r.app != AppKind::Sort).map(|r| r.laf_secs).sum();
        let delay_total: f64 =
            rows.iter().filter(|r| r.app != AppKind::Sort).map(|r| r.delay_secs).sum();
        assert!(laf_total < delay_total, "laf {laf_total} delay {delay_total}");
    }

    #[test]
    fn iterative_shapes() {
        let rows = fig6b(1.0);
        for row in &rows {
            // LAF ≤ delay in both variants.
            assert!(row.laf_secs <= row.delay_secs * 1.05, "{row:?}");
            // oCache within ±15% of no-oCache (the paper's "does not
            // help" finding — page cache already covers it).
            let rel = row.laf_ocache_secs / row.laf_secs;
            assert!((0.7..1.15).contains(&rel), "{row:?} rel {rel}");
        }
        // The LAF gap is larger for k-means than page rank (paper: more
        // map tasks → load balancing matters more).
        let km = &rows[0];
        let pr = &rows[1];
        let km_gap = km.delay_secs / km.laf_secs;
        let pr_gap = pr.delay_secs / pr.laf_secs;
        assert!(km_gap >= pr_gap * 0.95, "km {km_gap} pr {pr_gap}");
    }
}
