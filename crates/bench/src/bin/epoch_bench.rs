//! Snapshot the incremental-epoch story to `results/BENCH_epoch.json`.
//!
//! Usage: `epoch_bench [--quick] [--out PATH]`. A standing word-count
//! stream on 8 nodes folds a train of ~1% deltas via
//! `EpochDriver::commit_epoch`, and each arrival is also answered the
//! batch way — a one-shot job over everything so far. The report holds
//! per-epoch commit latency (p50/p99), the mean batch-re-run cost, the
//! speedup between them, and the byte-identity of every snapshot
//! against its batch oracle. `scripts/tier1.sh` runs this in quick
//! mode so every CI pass leaves a comparable number behind.

use eclipse_bench::epoch_bench::epoch_sweep;

fn main() {
    let mut quick = std::env::var("CRITERION_QUICK").is_ok();
    let mut out = String::from("results/BENCH_epoch.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown arg {other:?} (expected --quick / --out PATH)"),
        }
    }

    let r = epoch_sweep(quick);

    let mut json = String::from("{\n  \"bench\": \"epoch\",\n  \"app\": \"wordcount\",\n");
    json.push_str(&format!("  \"nodes\": {},\n  \"quick\": {},\n", r.nodes, quick));
    json.push_str(&format!(
        "  \"base_records\": {},\n  \"delta_records\": {},\n  \"delta_pct\": {:.4},\n  \"epochs\": {},\n",
        r.base_records, r.delta_records, r.delta_pct, r.epochs
    ));
    json.push_str(&format!(
        "  \"epoch_p50_ms\": {:.3},\n  \"epoch_p99_ms\": {:.3},\n  \"epoch_mean_ms\": {:.3},\n",
        r.epoch_p50_ms, r.epoch_p99_ms, r.epoch_mean_ms
    ));
    json.push_str(&format!(
        "  \"epoch_records_per_sec\": {:.1},\n  \"rerun_mean_ms\": {:.3},\n  \"rerun_records_per_sec\": {:.1},\n",
        r.epoch_records_per_sec, r.rerun_mean_ms, r.rerun_records_per_sec
    ));
    json.push_str(&format!(
        "  \"speedup\": {:.2},\n  \"identical\": {}\n}}\n",
        r.speedup, r.identical
    ));

    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, &json).expect("write BENCH_epoch.json");

    println!(
        "epoch nodes={} base_records={} delta_records={} ({:.1}%) epochs={}",
        r.nodes,
        r.base_records,
        r.delta_records,
        r.delta_pct * 100.0,
        r.epochs
    );
    println!(
        "epoch commit p50={:.2}ms p99={:.2}ms mean={:.2}ms records/s={:.0}",
        r.epoch_p50_ms, r.epoch_p99_ms, r.epoch_mean_ms, r.epoch_records_per_sec
    );
    println!(
        "batch rerun mean={:.2}ms records/s={:.0} speedup={:.1}x identical={}",
        r.rerun_mean_ms, r.rerun_records_per_sec, r.speedup, r.identical
    );
    println!("wrote {out}");
}
