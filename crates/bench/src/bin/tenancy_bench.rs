//! Snapshot the multi-tenant job-server story to
//! `results/BENCH_tenancy.json`.
//!
//! Usage: `tenancy_bench [--quick] [--out PATH]`. A deterministic
//! multi-tenant arrival storm of word-count jobs runs twice — scoped
//! executor in arrival order vs the persistent `JobServer` pool with
//! weighted-fair admission — recording per-job sojourn latency
//! (p50/p99/p999) and records/sec; then a quota sweep measures a
//! victim tenant's warm hit ratio and latency solo, under an uncapped
//! cache-flooding antagonist, and with the antagonist quota'd.
//! `scripts/tier1.sh` runs this in quick mode so every CI pass leaves
//! a comparable number behind.

use eclipse_bench::tenancy_bench::{quota_sweep, storm_sweep, LatencySummary, NODES};

fn lat_json(l: &LatencySummary) -> String {
    format!(
        "{{\"count\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \"max_ms\": {:.3}}}",
        l.count, l.p50_ms, l.p99_ms, l.p999_ms, l.max_ms
    )
}

fn main() {
    let mut quick = std::env::var("CRITERION_QUICK").is_ok();
    let mut out = String::from("results/BENCH_tenancy.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown arg {other:?} (expected --quick / --out PATH)"),
        }
    }

    let storm = storm_sweep(quick);
    let quota = quota_sweep(quick);

    let mut json = String::from("{\n  \"bench\": \"tenancy\",\n  \"app\": \"wordcount\",\n");
    json.push_str(&format!("  \"nodes\": {NODES},\n  \"quick\": {quick},\n  \"storm\": [\n"));
    for (i, p) in storm.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"jobs\": {}, \"secs\": {:.6}, \"records_per_sec\": {:.1}, \"small\": {}, \"all\": {}}}{}\n",
            p.mode,
            p.jobs,
            p.secs,
            p.records_per_sec,
            lat_json(&p.small),
            lat_json(&p.all),
            if i + 1 < storm.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"quota\": [\n");
    for (i, p) in quota.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"victim_hit_ratio\": {:.4}, \"victim\": {}, \"scan_cache_bytes\": {}}}{}\n",
            p.mode,
            p.victim_hit_ratio,
            lat_json(&p.victim),
            p.scan_cache_bytes,
            if i + 1 < quota.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, &json).expect("write BENCH_tenancy.json");

    for p in &storm {
        println!(
            "storm mode={:<6} jobs={} secs={:.3} records/s={:.0} small_p50={:.2}ms small_p99={:.2}ms small_p999={:.2}ms all_p99={:.2}ms",
            p.mode,
            p.jobs,
            p.secs,
            p.records_per_sec,
            p.small.p50_ms,
            p.small.p99_ms,
            p.small.p999_ms,
            p.all.p99_ms
        );
    }
    for p in &quota {
        println!(
            "quota mode={:<9} victim_hit_ratio={:.4} victim_p50={:.2}ms victim_p99={:.2}ms scan_cache_bytes={}",
            p.mode, p.victim_hit_ratio, p.victim.p50_ms, p.victim.p99_ms, p.scan_cache_bytes
        );
    }
    println!("wrote {out}");
}
