//! Snapshot live-executor throughput to `results/BENCH_live.json`.
//!
//! Usage: `live_bench [--quick] [--out PATH]`. Records/sec of real
//! word-count jobs at 1/4/8/16 nodes; `scripts/tier1.sh` runs this in
//! quick mode so every CI pass leaves a comparable number behind.

use eclipse_bench::live_bench::sweep;

fn main() {
    let mut quick = std::env::var("CRITERION_QUICK").is_ok();
    let mut out = String::from("results/BENCH_live.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown arg {other:?} (expected --quick / --out PATH)"),
        }
    }

    let corpus_bytes = if quick { 1024 * 1024 } else { 2 * 1024 * 1024 };
    let points = sweep(corpus_bytes, quick);

    let mut json = String::from("{\n  \"bench\": \"live_throughput\",\n  \"app\": \"wordcount\",\n");
    json.push_str(&format!("  \"corpus_bytes\": {corpus_bytes},\n  \"quick\": {quick},\n  \"points\": [\n"));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"nodes\": {}, \"records\": {}, \"secs\": {:.6}, \"records_per_sec\": {:.1}}}{}\n",
            p.nodes,
            p.records,
            p.secs,
            p.records_per_sec,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, &json).expect("write BENCH_live.json");

    for p in &points {
        println!(
            "nodes={:<3} records={} secs={:.4} records/sec={:.0}",
            p.nodes, p.records, p.secs, p.records_per_sec
        );
    }
    println!("wrote {out}");
}
