//! Snapshot transport-plane throughput to `results/BENCH_net.json`.
//!
//! Usage: `net_bench [--quick] [--out PATH]`. Records/sec of the same
//! 8-node word-count job over the in-memory backend and over loopback
//! TCP, with RPC and byte counters; `scripts/tier1.sh` runs this in
//! quick mode so every pass records the wire overhead.

use eclipse_bench::net_bench::sweep;

fn main() {
    let mut quick = std::env::var("CRITERION_QUICK").is_ok();
    let mut out = String::from("results/BENCH_net.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown arg {other:?} (expected --quick / --out PATH)"),
        }
    }

    let corpus_bytes = if quick { 1024 * 1024 } else { 2 * 1024 * 1024 };
    let points = sweep(corpus_bytes, quick);

    let mut json = String::from("{\n  \"bench\": \"net_transport\",\n  \"app\": \"wordcount\",\n");
    json.push_str(&format!(
        "  \"corpus_bytes\": {corpus_bytes},\n  \"quick\": {quick},\n  \"points\": [\n"
    ));
    let kinds = |(rpcs, first, retrans): (u64, u64, u64)| {
        format!(
            "{{\"rpcs\": {rpcs}, \"first_send_bytes\": {first}, \"retransmitted_bytes\": {retrans}}}"
        )
    };
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"transport\": \"{}\", \"nodes\": {}, \"records\": {}, \"secs\": {:.6}, \
             \"records_per_sec\": {:.1}, \"rpcs\": {}, \"bytes_sent\": {}, \
             \"rpc_retries\": {}, \"timeouts\": {},\n     \"planes\": {{\"shuffle\": {}, \
             \"block\": {}, \"cache\": {}, \"control\": {}}}}}{}\n",
            p.transport,
            p.nodes,
            p.records,
            p.secs,
            p.records_per_sec,
            p.rpcs,
            p.bytes_sent,
            p.rpc_retries,
            p.timeouts,
            kinds(p.shuffle),
            kinds(p.block),
            kinds(p.cache),
            kinds(p.control),
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, &json).expect("write BENCH_net.json");

    for p in &points {
        println!(
            "transport={:<7} nodes={} records={} secs={:.4} records/sec={:.0} rpcs={} bytes={} retries={} timeouts={}",
            p.transport, p.nodes, p.records, p.secs, p.records_per_sec, p.rpcs,
            p.bytes_sent, p.rpc_retries, p.timeouts
        );
        println!(
            "  planes: shuffle={}rpc/{}B(+{}B re) block={}rpc/{}B(+{}B re) cache={}rpc/{}B(+{}B re) control={}rpc/{}B(+{}B re)",
            p.shuffle.0, p.shuffle.1, p.shuffle.2, p.block.0, p.block.1, p.block.2,
            p.cache.0, p.cache.1, p.cache.2, p.control.0, p.control.1, p.control.2
        );
    }
    println!("wrote {out}");
}
