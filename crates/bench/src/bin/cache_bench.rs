//! Snapshot cache-plane performance to `results/BENCH_cache.json`.
//!
//! Usage: `cache_bench [--quick] [--out PATH]`. Microbenchmarks of the
//! LRU/payload hot paths plus warm-run (iCache-hit regime) live
//! throughput at 8 nodes; `scripts/tier1.sh` runs this in quick mode so
//! every CI pass leaves a comparable number behind. The seed snapshot
//! is preserved as `results/BENCH_cache_before.json`.

use eclipse_bench::cache_bench::{report, to_json};

fn main() {
    let mut quick = std::env::var("CRITERION_QUICK").is_ok();
    let mut out = String::from("results/BENCH_cache.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown arg {other:?} (expected --quick / --out PATH)"),
        }
    }

    let r = report(quick);
    let json = to_json(&r, quick);

    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, &json).expect("write BENCH_cache.json");

    let m = &r.micro;
    println!(
        "lru_hit={:.1}ns lru_insert={:.1}ns otag_hit={:.1}ns payload_hit={:.1}ns \
         payload_insert={:.1}ns contended={:.2}Mops",
        m.lru_hit_ns,
        m.lru_insert_ns,
        m.otag_hit_ns,
        m.payload_hit_ns,
        m.payload_insert_ns,
        m.contended_mops
    );
    let w = &r.warm;
    println!(
        "warm-run nodes={} cold={:.4}s warm={:.4}s warm_records/sec={:.0} hit_ratio={:.3}",
        w.nodes, w.cold_secs, w.warm_secs, w.warm_records_per_sec, w.hit_ratio
    );
    println!("wrote {out}");
}
