//! Snapshot straggler-mitigation results to `results/BENCH_straggler.json`.
//!
//! Usage: `straggler_bench [--quick] [--out PATH]`. Part A: makespan of
//! an 8-node word count under one injected straggler, speculation off
//! vs on. Part B: remote shuffle first-send bytes at map replication
//! r = 1, 2, 3. `scripts/tier1.sh` runs this in quick mode so every
//! pass records both numbers.

use eclipse_bench::straggler_bench::{makespan, replication_sweep};

fn main() {
    let mut quick = std::env::var("CRITERION_QUICK").is_ok();
    let mut out = String::from("results/BENCH_straggler.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown arg {other:?} (expected --quick / --out PATH)"),
        }
    }

    let corpus_bytes = if quick { 1024 * 1024 } else { 2 * 1024 * 1024 };
    let samples = if quick { 3 } else { 5 };

    let m = makespan(corpus_bytes, samples);
    let reps = replication_sweep(corpus_bytes);

    let mut json = String::from("{\n  \"bench\": \"straggler\",\n  \"app\": \"wordcount\",\n");
    json.push_str(&format!(
        "  \"nodes\": {},\n  \"reducers\": {},\n  \"corpus_bytes\": {corpus_bytes},\n  \"quick\": {quick},\n",
        eclipse_bench::straggler_bench::NODES,
        eclipse_bench::straggler_bench::REDUCERS,
    ));
    json.push_str(&format!(
        "  \"makespan\": {{\"slow_micros\": {}, \"secs_off\": {:.6}, \"secs_on\": {:.6}, \
         \"speedup\": {:.3}, \"speculative_attempts\": {}, \"speculative_wins\": {}, \
         \"cancelled_attempts\": {}, \"retries_on\": {}, \"identical_output\": {}}},\n",
        m.slow_micros,
        m.secs_off,
        m.secs_on,
        m.speedup,
        m.speculative_attempts,
        m.speculative_wins,
        m.cancelled_attempts,
        m.retries_on,
        m.identical_output,
    ));
    json.push_str("  \"replication\": [\n");
    for (i, p) in reps.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"r\": {}, \"map_tasks\": {}, \"shuffle_first_send_bytes\": {}, \
             \"shuffle_retransmitted_bytes\": {}, \"local_shuffle_records\": {}, \
             \"ratio_vs_r1\": {:.3}, \"identical_output\": {}}}{}\n",
            p.r,
            p.map_tasks,
            p.shuffle_first_send_bytes,
            p.shuffle_retransmitted_bytes,
            p.local_shuffle_records,
            p.ratio_vs_r1,
            p.identical_output,
            if i + 1 < reps.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, &json).expect("write BENCH_straggler.json");

    println!(
        "makespan: off={:.4}s on={:.4}s speedup={:.2}x (backups={} wins={} cancelled={} identical={})",
        m.secs_off,
        m.secs_on,
        m.speedup,
        m.speculative_attempts,
        m.speculative_wins,
        m.cancelled_attempts,
        m.identical_output
    );
    for p in &reps {
        println!(
            "replication r={}: tasks={} shuffle_first_send={}B (+{}B re) local_records={} ratio_vs_r1={:.3} identical={}",
            p.r,
            p.map_tasks,
            p.shuffle_first_send_bytes,
            p.shuffle_retransmitted_bytes,
            p.local_shuffle_records,
            p.ratio_vs_r1,
            p.identical_output
        );
    }
    println!("wrote {out}");
}
