//! Regenerate every figure of the paper's evaluation as text tables.
//!
//! ```text
//! figures [fig5|fig6|fig7|fig8|fig9|fig10|ablations|all] [--scale X]
//! ```
//!
//! `--scale` multiplies every dataset size (1.0 = the paper's 250 GB /
//! 15 GB configuration — the default; use e.g. `--scale 0.1` for a quick
//! pass). Task counts scale with the data.

use eclipse_bench::{ablations, fig10, fig5, fig6, fig7, fig8, fig9};
use std::io::Write as _;
use std::path::PathBuf;

/// Write one CSV file into the `--csv` directory, if set.
fn write_csv(dir: &Option<PathBuf>, name: &str, header: &str, rows: &[String]) {
    let Some(dir) = dir else { return };
    std::fs::create_dir_all(dir).expect("create csv dir");
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").unwrap();
    for r in rows {
        writeln!(f, "{r}").unwrap();
    }
    eprintln!("wrote {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scale = 1.0f64;
    let mut csv_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--scale needs a number"));
            }
            "--csv" => {
                csv_dir = Some(PathBuf::from(
                    it.next().expect("--csv needs a directory").clone(),
                ));
            }
            other => which = other.to_string(),
        }
    }
    CSV_DIR.with(|c| *c.borrow_mut() = csv_dir);
    let all = which == "all";
    if all || which == "fig5" {
        print_fig5(scale);
    }
    if all || which == "fig6" {
        print_fig6(scale);
    }
    if all || which == "fig7" {
        print_fig7(scale);
    }
    if all || which == "fig8" {
        print_fig8(scale);
    }
    if all || which == "fig9" {
        print_fig9(scale);
    }
    if all || which == "fig10" {
        print_fig10(scale);
    }
    if all || which == "ablations" {
        print_ablations();
    }
}

thread_local! {
    static CSV_DIR: std::cell::RefCell<Option<PathBuf>> =
        const { std::cell::RefCell::new(None) };
}

fn csv(name: &str, header: &str, rows: Vec<String>) {
    CSV_DIR.with(|c| write_csv(&c.borrow(), name, header, &rows));
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

fn print_fig5(scale: f64) {
    header("Figure 5 — IO throughput, DHT FS vs HDFS (DFSIO)");
    println!("{:>6} | {:>12} {:>12} | {:>12} {:>12}", "nodes", "DHT MB/s(a)", "HDFS MB/s(a)", "DHT MB/s(b)", "HDFS MB/s(b)");
    println!("{:-<6}-+-{:-<25}-+-{:-<25}", "", "", "");
    let rows = fig5::fig5(scale);
    for r in &rows {
        println!(
            "{:>6} | {:>12.1} {:>12.1} | {:>12.1} {:>12.1}",
            r.nodes, r.dht_per_task, r.hdfs_per_task, r.dht_per_job, r.hdfs_per_job
        );
    }
    println!("(a) bytes / map-task read time   (b) bytes / job time");
    csv(
        "fig5",
        "nodes,dht_per_task_mbps,hdfs_per_task_mbps,dht_per_job_mbps,hdfs_per_job_mbps",
        rows.iter()
            .map(|r| {
                format!(
                    "{},{:.2},{:.2},{:.2},{:.2}",
                    r.nodes, r.dht_per_task, r.hdfs_per_task, r.dht_per_job, r.hdfs_per_job
                )
            })
            .collect(),
    );
    println!("\n--- §III-A concurrency probe (38 nodes, per-job MB/s) ---");
    println!("{:>5} | {:>10} {:>10}", "jobs", "DHT", "HDFS");
    for (jobs, dht, hdfs) in fig5::fig5_concurrency(scale) {
        println!("{jobs:>5} | {dht:>10.1} {hdfs:>10.1}");
    }
}

fn print_fig6(scale: f64) {
    header("Figure 6(a) — LAF vs Delay, non-iterative jobs (cold caches)");
    println!("{:>16} | {:>10} {:>10}", "app", "LAF s", "Delay s");
    let rows_a = fig6::fig6a(scale);
    for r in &rows_a {
        println!("{:>16} | {:>10.0} {:>10.0}", r.app.name(), r.laf_secs, r.delay_secs);
    }
    csv(
        "fig6a",
        "app,laf_s,delay_s",
        rows_a
            .iter()
            .map(|r| format!("{},{:.1},{:.1}", r.app.name(), r.laf_secs, r.delay_secs))
            .collect(),
    );
    header("Figure 6(b) — iterative jobs, 5 iterations, ±oCache");
    println!(
        "{:>12} | {:>9} {:>12} {:>9} {:>12}",
        "app", "LAF", "LAF+oCache", "Delay", "Delay+oCache"
    );
    let rows_b = fig6::fig6b(scale);
    for r in &rows_b {
        println!(
            "{:>12} | {:>9.0} {:>12.0} {:>9.0} {:>12.0}",
            r.app.name(),
            r.laf_secs,
            r.laf_ocache_secs,
            r.delay_secs,
            r.delay_ocache_secs
        );
    }
    csv(
        "fig6b",
        "app,laf_s,laf_ocache_s,delay_s,delay_ocache_s",
        rows_b
            .iter()
            .map(|r| {
                format!(
                    "{},{:.1},{:.1},{:.1},{:.1}",
                    r.app.name(),
                    r.laf_secs,
                    r.laf_ocache_secs,
                    r.delay_secs,
                    r.delay_ocache_secs
                )
            })
            .collect(),
    );
}

fn print_fig7(scale: f64) {
    header("Figure 7 — skewed grep: exec time (a) and cache hit ratio (b)");
    println!(
        "{:>12} | {:>9} | {:>9} {:>7} {:>12}",
        "policy", "cache GB", "exec s", "hit", "stdev t/slot"
    );
    let rows = fig7::fig7(scale);
    for r in &rows {
        println!(
            "{:>12} | {:>9.1} | {:>9.1} {:>7.3} {:>12.2}",
            r.policy, r.cache_gb, r.exec_secs, r.hit_ratio, r.tasks_per_slot_stdev
        );
    }
    csv(
        "fig7",
        "policy,cache_gb,exec_s,hit_ratio,tasks_per_slot_stdev",
        rows.iter()
            .map(|r| {
                format!(
                    "{},{},{:.2},{:.4},{:.3}",
                    r.policy, r.cache_gb, r.exec_secs, r.hit_ratio, r.tasks_per_slot_stdev
                )
            })
            .collect(),
    );
}

fn print_fig8(scale: f64) {
    header("Figure 8 — seven concurrent jobs, cache-size sweep");
    let (rows, summaries) = fig8::fig8(scale);
    println!("{:>8} | {:>8} | {:>14} | {:>9}", "policy", "cache", "job", "exec s");
    for r in &rows {
        println!(
            "{:>8} | {:>7}G | {:>14} | {:>9.0}",
            r.policy, r.cache_gb, r.job_label, r.exec_secs
        );
    }
    println!("\nper-configuration summary:");
    println!("{:>8} | {:>8} | {:>10} | {:>8}", "policy", "cache", "makespan", "hit");
    for s in &summaries {
        println!(
            "{:>8} | {:>7}G | {:>10.0} | {:>8.3}",
            s.policy, s.cache_gb, s.batch_makespan, s.hit_ratio
        );
    }
    csv(
        "fig8_jobs",
        "policy,cache_gb,job,exec_s",
        rows.iter()
            .map(|r| format!("{},{},{},{:.1}", r.policy, r.cache_gb, r.job_label, r.exec_secs))
            .collect(),
    );
    csv(
        "fig8_summary",
        "policy,cache_gb,makespan_s,hit_ratio",
        summaries
            .iter()
            .map(|s| {
                format!("{},{},{:.1},{:.4}", s.policy, s.cache_gb, s.batch_makespan, s.hit_ratio)
            })
            .collect(),
    );
}

fn print_fig9(scale: f64) {
    header("Figure 9 — EclipseMR vs Hadoop vs Spark (normalized to slowest)");
    println!(
        "{:>20} | {:>9} {:>6} | {:>9} {:>6} | {:>9} {:>6}",
        "app", "Eclipse s", "norm", "Spark s", "norm", "Hadoop s", "norm"
    );
    let rows = fig9::fig9(scale);
    csv(
        "fig9",
        "app,eclipse_s,spark_s,hadoop_s",
        rows.iter()
            .map(|r| {
                format!(
                    "{},{:.1},{:.1},{}",
                    r.app.name(),
                    r.eclipse_secs,
                    r.spark_secs,
                    r.hadoop_secs.map(|h| format!("{h:.1}")).unwrap_or_default()
                )
            })
            .collect(),
    );
    for r in rows {
        let (e, s, h) = r.normalized();
        let (hs, hn) = match (r.hadoop_secs, h) {
            (Some(secs), Some(n)) => (format!("{secs:9.0}"), format!("{n:6.2}")),
            _ => ("  omitted".to_string(), "     -".to_string()),
        };
        println!(
            "{:>20} | {:>9.0} {:>6.2} | {:>9.0} {:>6.2} | {} {}",
            r.app.name(),
            r.eclipse_secs,
            e,
            r.spark_secs,
            s,
            hs,
            hn
        );
    }
}

fn print_fig10(scale: f64) {
    header("Figure 10 — per-iteration times (10 iterations)");
    let series = fig10::fig10(scale);
    csv(
        "fig10",
        "app,system,iteration,secs",
        series
            .iter()
            .flat_map(|s| {
                let app = s.app.name();
                s.eclipse
                    .iter()
                    .enumerate()
                    .map(move |(i, v)| format!("{app},eclipse,{},{v:.1}", i + 1))
                    .chain(
                        s.spark
                            .iter()
                            .enumerate()
                            .map(move |(i, v)| format!("{app},spark,{},{v:.1}", i + 1)),
                    )
            })
            .collect(),
    );
    for s in series {
        println!("\n{}:", s.app.name());
        print!("  iter    ");
        for i in 1..=10 {
            print!("{i:>8}");
        }
        println!();
        print!("  eclipse ");
        for v in &s.eclipse {
            print!("{v:>8.0}");
        }
        println!();
        print!("  spark   ");
        for v in &s.spark {
            print!("{v:>8.0}");
        }
        println!();
    }
}

fn print_ablations() {
    header("Ablation — DHT routing: one-hop vs Chord fingers (40 nodes)");
    let (one, chord) = ablations::routing_hops(40, 4000);
    println!("avg hops: one-hop {one:.2}, chord {chord:.2}");

    header("Ablation — finger-table size (the paper's m knob, 40 nodes)");
    println!("{:>16} | {:>9}", "table", "avg hops");
    for (label, hops) in ablations::finger_size_sweep(40, 2000) {
        println!("{label:>16} | {hops:>9.2}");
    }

    header("Ablation — LAF α sweep (skewed grep, 1 GB cache)");
    println!("{:>8} | {:>8} {:>12}", "alpha", "hit", "stdev t/slot");
    for (a, hit, stdev) in ablations::alpha_sweep(3000) {
        println!("{a:>8.3} | {hit:>8.3} {stdev:>12.2}");
    }

    header("Ablation — box-kernel bandwidth k sweep");
    println!("{:>6} | {:>8} {:>12}", "k", "hit", "stdev t/slot");
    for (k, hit, stdev) in ablations::bandwidth_sweep(3000) {
        println!("{k:>6} | {hit:>8.3} {stdev:>12.2}");
    }

    header("Ablation — misplaced-cache migration (shifting hot spot)");
    let (off, on) = ablations::migration_ablation(3000);
    println!("hit ratio: migration off {off:.3}, on {on:.3}");

    header("Ablation — heterogeneous cluster (10 of 40 nodes slowed)");
    println!("{:>12} | {:>9} {:>9}", "slow factor", "LAF s", "Delay s");
    for factor in [1.0, 0.7, 0.4] {
        let (laf, delay) = ablations::heterogeneity(factor);
        println!("{factor:>12.1} | {laf:>9.0} {delay:>9.0}");
    }

    header("Ablation — spill-buffer size (1 GB map output, 64 partitions)");
    println!("{:>10} | {:>8}", "buffer MB", "spills");
    for (mb, spills) in ablations::spill_buffer_sweep() {
        println!("{mb:>10} | {spills:>8}");
    }

    header("Ablation — record-level reduce skew (word count)");
    println!("{:>12} | {:>10} {:>10}", "zipf s", "uniform s", "skewed s");
    for s in [0.5, 1.0, 1.5] {
        let (uniform, skewed) = ablations::reduce_skew(s);
        println!("{s:>12.1} | {uniform:>10.0} {skewed:>10.0}");
    }

    header("Ablation — streaming arrivals (Zipf-popular datasets)");
    let (laf_lat, delay_lat, laf_hit, delay_hit) = ablations::streaming(16, 42);
    println!("LAF:   mean latency {laf_lat:>7.1}s, hit ratio {laf_hit:.3}");
    println!("Delay: mean latency {delay_lat:>7.1}s, hit ratio {delay_hit:.3}");

    header("Ablation — failure recovery cost vs stored data");
    println!("{:>8} | {:>12}", "data GB", "recovery s");
    for (gb, secs) in ablations::recovery_cost(&[8, 32, 128, 250]) {
        println!("{gb:>8} | {secs:>12.1}");
    }
}
