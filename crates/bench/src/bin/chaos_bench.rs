//! Snapshot fault-path cost to `results/BENCH_chaos.json`.
//!
//! Usage: `chaos_bench [--quick] [--out PATH]`. One node crash injected
//! per word-count job at each phase (map / shuffle / reduce); records
//! job wall-clock vs the fault-free run plus recovery-time stats.
//! `scripts/tier1.sh` runs this in quick mode so every CI pass leaves a
//! comparable number behind.

use eclipse_bench::chaos_bench::{sweep, NODES};

fn main() {
    let mut quick = std::env::var("CRITERION_QUICK").is_ok();
    let mut out = String::from("results/BENCH_chaos.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown arg {other:?} (expected --quick / --out PATH)"),
        }
    }

    let corpus_bytes = if quick { 512 * 1024 } else { 2 * 1024 * 1024 };
    let points = sweep(corpus_bytes, quick);

    let mut json = String::from("{\n  \"bench\": \"chaos_recovery\",\n  \"app\": \"wordcount\",\n");
    json.push_str(&format!(
        "  \"nodes\": {NODES},\n  \"corpus_bytes\": {corpus_bytes},\n  \"quick\": {quick},\n  \"points\": [\n"
    ));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"phase\": \"{}\", \"secs\": {:.6}, \"fault_free_secs\": {:.6}, \"recovery_secs\": {:.6}, \"recovered_blocks\": {}, \"retries\": {}, \"stabilize_rounds\": {}}}{}\n",
            p.phase,
            p.secs,
            p.fault_free_secs,
            p.recovery_secs,
            p.recovered_blocks,
            p.retries,
            p.stabilize_rounds,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, &json).expect("write BENCH_chaos.json");

    for p in &points {
        println!(
            "phase={:<8} secs={:.4} fault_free={:.4} recovery={:.6} recovered_blocks={} retries={} stabilize_rounds={}",
            p.phase,
            p.secs,
            p.fault_free_secs,
            p.recovery_secs,
            p.recovered_blocks,
            p.retries,
            p.stabilize_rounds
        );
    }
    println!("wrote {out}");
}
