//! Snapshot elastic-membership cost to `results/BENCH_elastic.json`.
//!
//! Usage: `elastic_bench [--quick] [--out PATH]`. One runtime join, one
//! graceful leave, and both composed, injected mid-job into word-count
//! runs; records job wall-clock vs the static fault-free run plus the
//! handoff work (blocks/bytes pulled, uncommitted claims drained).
//! `scripts/tier1.sh` runs this in quick mode so every CI pass leaves a
//! comparable number behind.

use eclipse_bench::elastic_bench::{sweep, NODES};

fn main() {
    let mut quick = std::env::var("CRITERION_QUICK").is_ok();
    let mut out = String::from("results/BENCH_elastic.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown arg {other:?} (expected --quick / --out PATH)"),
        }
    }

    let corpus_bytes = if quick { 512 * 1024 } else { 2 * 1024 * 1024 };
    let points = sweep(corpus_bytes, quick);

    let mut json =
        String::from("{\n  \"bench\": \"elastic_membership\",\n  \"app\": \"wordcount\",\n");
    json.push_str(&format!(
        "  \"nodes\": {NODES},\n  \"corpus_bytes\": {corpus_bytes},\n  \"quick\": {quick},\n  \"points\": [\n"
    ));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"secs\": {:.6}, \"static_secs\": {:.6}, \"membership_secs\": {:.6}, \"handoff_blocks\": {}, \"handoff_bytes\": {}, \"drained_tasks\": {}, \"stabilize_rounds\": {}}}{}\n",
            p.scenario,
            p.secs,
            p.static_secs,
            p.membership_secs,
            p.handoff_blocks,
            p.handoff_bytes,
            p.drained_tasks,
            p.stabilize_rounds,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, &json).expect("write BENCH_elastic.json");

    for p in &points {
        println!(
            "scenario={:<10} secs={:.4} static={:.4} membership={:.6} handoff_blocks={} handoff_bytes={} drained_tasks={} stabilize_rounds={}",
            p.scenario,
            p.secs,
            p.static_secs,
            p.membership_secs,
            p.handoff_blocks,
            p.handoff_bytes,
            p.drained_tasks,
            p.stabilize_rounds
        );
    }
    println!("wrote {out}");
}
