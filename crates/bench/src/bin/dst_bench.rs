//! Randomized DST seed sweeps: `dst_bench [--runs N] [--seed0 S]
//! [--preset calm|moderate|chaos] [--out PATH]`.
//!
//! Each seed samples a workload and a fault schedule, runs the job
//! under fault injection, and checks the oracle (byte-identical output
//! or a typed allowed error, plus `LiveStats` invariants). Failures
//! print a one-line replayable repro and are recorded in the JSON
//! snapshot. `scripts/tier1.sh` runs the bounded smoke configuration
//! (`--runs 50 --preset moderate`) to emit `results/BENCH_dst.json`;
//! the acceptance sweep is `dst_bench --runs 1000 --preset chaos`.

use eclipse_bench::dst_bench::{sweep_range, to_json};
use eclipse_core::dst::{repro_line, DstPreset};

fn main() {
    let mut runs: u64 = 50;
    let mut seed0: u64 = 1;
    let mut preset = DstPreset::Moderate;
    let mut out = String::from("results/BENCH_dst.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--runs" => runs = args.next().expect("--runs needs N").parse().expect("N"),
            "--seed0" => seed0 = args.next().expect("--seed0 needs S").parse().expect("S"),
            "--preset" => {
                preset = args.next().expect("--preset needs a name").parse().unwrap()
            }
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!(
                "unknown arg {other:?} (expected --runs N / --seed0 S / --preset P / --out PATH)"
            ),
        }
    }

    let r = sweep_range(seed0, runs, preset, (runs / 10).max(10));
    let json = to_json(&r);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, &json).expect("write BENCH_dst.json");

    let s = &r.sweep;
    println!(
        "preset={preset} seeds={seed0}..{} runs={} matches={} allowed_errors={} \
         faults_injected={} oracle_checks={} secs={:.2}",
        seed0 + runs - 1,
        s.runs,
        s.matches,
        s.allowed_errors,
        s.faults_injected,
        s.oracle_checks,
        r.secs
    );
    for (seed, reason) in &s.failures {
        println!("FAIL seed={seed}: {reason}\n  replay: {}", repro_line(*seed, preset));
    }
    println!("wrote {out}");
    if !s.failures.is_empty() {
        std::process::exit(1);
    }
}
