//! Ablation studies for the design choices DESIGN.md calls out — not in
//! the paper's figures, but probing the mechanisms behind them.

use eclipse_core::{EclipseConfig, EclipseSim, SchedulerKind};
use eclipse_ring::{Ring, Router, RoutingMode};
use eclipse_sched::LafConfig;
use eclipse_util::{HashKey, GB};
use eclipse_workloads::{AppKind, CostModel};

/// Routing ablation: average lookup hops, one-hop vs Chord fingers
/// (§II-A sets m so one-hop routing is enabled; this shows what the
/// classic finger table would have cost).
pub fn routing_hops(nodes: usize, lookups: usize) -> (f64, f64) {
    let ring = Ring::with_servers(nodes, "route");
    let ids = ring.node_ids();
    let mut totals = [0usize; 2];
    for (mode_idx, mode) in [RoutingMode::OneHop, RoutingMode::Chord].iter().enumerate() {
        let router = Router::build(&ring, *mode).expect("ring non-empty");
        for i in 0..lookups {
            let key = HashKey::of_name(&format!("lookup-{i}"));
            let from = ids[i % ids.len()];
            totals[mode_idx] += router.hops(&ring, from, key).expect("resolves");
        }
    }
    (totals[0] as f64 / lookups as f64, totals[1] as f64 / lookups as f64)
}

/// Finger-table size sweep (the paper's m knob): average lookup hops as
/// the routing table shrinks from the full membership to a handful of
/// fingers.
pub fn finger_size_sweep(nodes: usize, lookups: usize) -> Vec<(String, f64)> {
    let ring = Ring::with_servers(nodes, "m");
    let ids = ring.node_ids();
    let modes: Vec<(String, RoutingMode)> = vec![
        (format!("one-hop (m={nodes})"), RoutingMode::OneHop),
        ("chord (m=64)".to_string(), RoutingMode::Chord),
        ("partial m=16".to_string(), RoutingMode::Partial(16)),
        ("partial m=8".to_string(), RoutingMode::Partial(8)),
        ("partial m=4".to_string(), RoutingMode::Partial(4)),
    ];
    modes
        .into_iter()
        .map(|(label, mode)| {
            let router = Router::build(&ring, mode).expect("ring non-empty");
            let total: usize = (0..lookups)
                .map(|i| {
                    let key = HashKey::of_name(&format!("look{i}"));
                    router.hops(&ring, ids[i % ids.len()], key).expect("resolves")
                })
                .sum();
            (label, total as f64 / lookups as f64)
        })
        .collect()
}

/// Moving-average weight sweep: hit ratio and tasks/slot stdev per α
/// under the Fig. 7 skewed workload at a fixed 1 GB cache.
pub fn alpha_sweep(tasks: usize) -> Vec<(f64, f64, f64)> {
    [0.0, 0.001, 0.01, 0.1, 1.0]
        .iter()
        .map(|&alpha| {
            let mut sim = EclipseSim::new(
                EclipseConfig::paper_defaults(SchedulerKind::Laf(LafConfig {
                    alpha,
                    ..Default::default()
                }))
                .with_cache(GB),
            );
            let trace = crate::fig7::skewed_trace(tasks, 4096, 7);
            let bytes = (90.0 * GB as f64 / 6410.0) as u64;
            sim.run_trace(&trace, bytes, &CostModel::eclipse(AppKind::Grep));
            (alpha, sim.cache_hit_ratio(), sim.tasks_per_slot_stdev())
        })
        .collect()
}

/// Box-kernel bandwidth sweep: same workload, varying `k`.
pub fn bandwidth_sweep(tasks: usize) -> Vec<(usize, f64, f64)> {
    [1usize, 4, 8, 32, 128]
        .iter()
        .map(|&k| {
            let mut sim = EclipseSim::new(
                EclipseConfig::paper_defaults(SchedulerKind::Laf(LafConfig {
                    bandwidth: k,
                    ..Default::default()
                }))
                .with_cache(GB),
            );
            let trace = crate::fig7::skewed_trace(tasks, 4096, 7);
            let bytes = (90.0 * GB as f64 / 6410.0) as u64;
            sim.run_trace(&trace, bytes, &CostModel::eclipse(AppKind::Grep));
            (k, sim.cache_hit_ratio(), sim.tasks_per_slot_stdev())
        })
        .collect()
}

/// Misplaced-cache migration ablation (§II-E): a workload whose hot spot
/// *shifts* midway; with migration on, entries stranded by the range
/// re-cut move to their new home. Returns (hit ratio off, hit ratio on).
pub fn migration_ablation(tasks: usize) -> (f64, f64) {
    let run = |migration: bool| {
        let mut cfg = EclipseConfig::paper_defaults(SchedulerKind::Laf(LafConfig {
            alpha: 0.5, // adapt fast so ranges actually move
            window: 64,
            ..Default::default()
        }))
        .with_cache(GB);
        cfg.migration = migration;
        let mut sim = EclipseSim::new(cfg);
        let bytes = (90.0 * GB as f64 / 6410.0) as u64;
        let cost = CostModel::eclipse(AppKind::Grep);
        // Phase 1: hot spot at 0.3.
        let t1 = crate::fig7::skewed_trace(tasks / 2, 1024, 3);
        sim.run_trace(&t1, bytes, &cost);
        // Phase 2: hot spot moves (different seed region by reusing the
        // bimodal's other mode via fresh draws).
        let t2 = crate::fig7::skewed_trace(tasks / 2, 1024, 4);
        sim.run_trace(&t2, bytes, &cost);
        sim.cache_hit_ratio()
    };
    (run(false), run(true))
}

/// Record-level reduce-skew ablation (paper §I): the same word-count
/// job with uniform vs Zipf reducer shares. Returns (uniform seconds,
/// skewed seconds).
pub fn reduce_skew(zipf_exponent: f64) -> (f64, f64) {
    use eclipse_core::JobSpec;
    let run = |skew: f64| {
        let mut sim = EclipseSim::new(
            EclipseConfig::paper_defaults(SchedulerKind::Laf(LafConfig::default()))
                .with_reduce_skew(skew),
        );
        sim.upload("text", 100 * GB);
        sim.run_job(&JobSpec::batch(AppKind::WordCount, "text")).elapsed
    };
    (run(0.0), run(zipf_exponent))
}

/// Streaming-arrivals ablation: a Poisson stream of jobs over a small
/// set of Zipf-popular datasets (the production-trace pattern the paper
/// cites: >30% of jobs repeat). Returns (mean job latency LAF, mean job
/// latency delay, LAF hit ratio, delay hit ratio).
pub fn streaming(jobs: usize, seed: u64) -> (f64, f64, f64, f64) {
    use eclipse_core::JobSpec;
    use eclipse_sched::DelayConfig;
    use eclipse_workloads::{arrivals, ArrivalConfig};
    let cfg = ArrivalConfig { rate: 0.01, ..Default::default() };
    let stream = arrivals(&cfg, jobs, seed);
    let run = |kind: SchedulerKind| {
        let mut sim = EclipseSim::new(EclipseConfig::paper_defaults(kind).with_cache(GB));
        for d in 0..cfg.datasets {
            sim.upload(&format!("ds{d}"), 15 * GB);
        }
        let mut latency_sum = 0.0;
        for job in &stream {
            sim.advance_to(job.at);
            let report = sim.run_job(&JobSpec::batch(job.app, format!("ds{}", job.dataset)));
            latency_sum += report.elapsed;
        }
        (latency_sum / stream.len() as f64, sim.cache_hit_ratio())
    };
    let (laf_lat, laf_hit) = run(SchedulerKind::Laf(LafConfig::default()));
    let (delay_lat, delay_hit) = run(SchedulerKind::Delay(DelayConfig::default()));
    (laf_lat, delay_lat, laf_hit, delay_hit)
}

/// Heterogeneous-cluster ablation: a quarter of the nodes run at the
/// given speed factor; compares LAF and delay makespans on a uniform
/// word-count job. LAF's work-conserving pulls absorb stragglers; the
/// delay scheduler's locality waits amplify them.
pub fn heterogeneity(slow_factor: f64) -> (f64, f64) {
    let (laf, delay, _) = heterogeneity_with_speculation(slow_factor);
    (laf, delay)
}

/// Like [`heterogeneity`], additionally measuring delay scheduling with
/// Hadoop-style speculative execution — the rival skew mitigation the
/// paper's related work cites.
pub fn heterogeneity_with_speculation(slow_factor: f64) -> (f64, f64, f64) {
    use eclipse_core::JobSpec;
    use eclipse_sched::DelayConfig;
    let mut speeds = vec![1.0; 40];
    for s in speeds.iter_mut().take(10) {
        *s = slow_factor;
    }
    let run = |kind: SchedulerKind, speculation: bool| {
        let mut sim = EclipseSim::new(
            EclipseConfig::paper_defaults(kind)
                .with_node_speeds(speeds.clone())
                .with_speculation(speculation),
        );
        sim.upload("data", 100 * GB);
        sim.run_job(&JobSpec::batch(AppKind::WordCount, "data")).elapsed
    };
    (
        run(SchedulerKind::Laf(LafConfig::default()), false),
        run(SchedulerKind::Delay(DelayConfig::default()), false),
        run(SchedulerKind::Delay(DelayConfig::default()), true),
    )
}

/// Spill-buffer size sweep (the paper's 32 MB knob, §II-D): for a fixed
/// intermediate stream, smaller buffers spill more often (finer pipeline
/// overlap, more per-spill overhead). Returns (buffer MB, spill count)
/// rows for one 1 GB map task over 64 partitions.
pub fn spill_buffer_sweep() -> Vec<(u64, u64)> {
    use eclipse_core::SpillBuffer;
    use eclipse_util::MB;
    [4u64, 8, 16, 32, 64, 128]
        .iter()
        .map(|&mb| {
            let mut buf: SpillBuffer<()> = SpillBuffer::new(64, mb * MB);
            for i in 0..8192u64 {
                let key = HashKey::of_name(&format!("rec{i}"));
                buf.push(key, 128 * 1024, None); // 1 GB total
            }
            let spills = buf.spill_count() + buf.flush().len() as u64;
            (mb, spills)
        })
        .collect()
}

/// Failure-injection ablation: recovery seconds and post-failure job
/// slowdown as stored data grows.
pub fn recovery_cost(data_gb: &[u64]) -> Vec<(u64, f64)> {
    data_gb
        .iter()
        .map(|&gb| {
            let mut sim = EclipseSim::new(EclipseConfig::paper_defaults(SchedulerKind::Laf(
                LafConfig::default(),
            )));
            sim.upload("data", gb * GB);
            let victim = sim.ring().node_ids()[1];
            let secs = sim.fail_node(victim);
            (gb, secs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hop_beats_chord_hops() {
        let (one_hop, chord) = routing_hops(40, 2000);
        assert!(one_hop <= 1.0);
        assert!(chord > one_hop, "chord {chord} one-hop {one_hop}");
        assert!(chord < 8.0, "chord should be O(log 40): {chord}");
    }

    #[test]
    fn smaller_finger_tables_cost_more_hops() {
        let rows = finger_size_sweep(40, 1000);
        let hops: Vec<f64> = rows.iter().map(|(_, h)| *h).collect();
        assert!(hops[0] <= 1.0, "one-hop {:?}", rows);
        // Monotone (weakly) as the table shrinks.
        for w in hops.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "{rows:?}");
        }
        assert!(hops[4] > hops[1], "m=4 must redirect more than full chord");
    }

    #[test]
    fn alpha_extremes_behave() {
        let rows = alpha_sweep(1200);
        assert_eq!(rows.len(), 5);
        let stdev_a0 = rows[0].2;
        let stdev_a1 = rows[4].2;
        // α=1 (pure balance) at least as balanced as α=0 (static).
        assert!(stdev_a1 <= stdev_a0 + 0.5, "a1 {stdev_a1} a0 {stdev_a0}");
    }

    #[test]
    fn migration_does_not_hurt_hits() {
        let (off, on) = migration_ablation(1200);
        assert!(on >= off - 0.02, "migration on {on} off {off}");
    }

    #[test]
    fn reduce_skew_stretches_the_tail() {
        let (uniform, skewed) = reduce_skew(1.0);
        assert!(
            skewed > uniform,
            "skewed reducers must slow the job: {skewed} vs {uniform}"
        );
    }

    #[test]
    fn streaming_reuse_across_jobs() {
        // Seed chosen so the 12-job Zipf arrival stream actually repeats
        // datasets under the vendored RNG (shims/rand); reuse, not the
        // exact stream, is what this test is about.
        let (laf_lat, delay_lat, laf_hit, delay_hit) = streaming(12, 1);
        // Repeated datasets give both schedulers real cache reuse …
        assert!(laf_hit > 0.25, "laf hit {laf_hit}");
        assert!(delay_hit > 0.25, "delay hit {delay_hit}");
        // … and with 120-block jobs on 320 slots there is no queueing
        // for LAF to fix, so static ranges (perfect locality) may edge
        // it — LAF must merely stay competitive here; its wins live in
        // the pressured regimes (Figs. 6–8).
        assert!(
            laf_lat <= delay_lat * 1.25,
            "laf {laf_lat:.1}s delay {delay_lat:.1}s"
        );
    }

    #[test]
    fn stragglers_hurt_delay_more() {
        let (laf_slow, delay_slow) = heterogeneity(0.4);
        let (laf_base, delay_base) = heterogeneity(1.0);
        // Slow nodes slow everyone down …
        assert!(laf_slow > laf_base);
        assert!(delay_slow > delay_base);
        // … but the delay scheduler degrades at least as hard as LAF.
        let laf_blowup = laf_slow / laf_base;
        let delay_blowup = delay_slow / delay_base;
        assert!(
            delay_blowup >= laf_blowup * 0.98,
            "laf ×{laf_blowup:.2} delay ×{delay_blowup:.2}"
        );
    }

    #[test]
    fn speculation_recovers_some_straggler_loss() {
        let (laf, delay, delay_spec) = heterogeneity_with_speculation(0.4);
        // Speculation is roughly a wash here: backup copies burn fast
        // slots that other tasks wanted (its classic cost) while trimming
        // straggler tails. It must stay within a couple of percent either
        // way, and LAF without speculation stays competitive with
        // speculation-assisted delay.
        assert!(delay_spec <= delay * 1.02, "spec {delay_spec} delay {delay}");
        assert!(laf <= delay_spec * 1.10, "laf {laf} vs delay+spec {delay_spec}");
    }

    #[test]
    fn recovery_cost_grows_with_data() {
        let rows = recovery_cost(&[8, 64]);
        assert!(rows[1].1 > rows[0].1, "{rows:?}");
        assert!(rows[0].1 > 0.0);
    }

    #[test]
    fn smaller_spill_buffers_spill_more() {
        let rows = spill_buffer_sweep();
        for w in rows.windows(2) {
            assert!(w[0].1 >= w[1].1, "{rows:?}");
        }
        assert!(rows[0].1 > rows[5].1, "{rows:?}");
    }

    #[test]
    fn bandwidth_sweep_runs() {
        let rows = bandwidth_sweep(800);
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|(_, hr, sd)| *hr >= 0.0 && *sd >= 0.0));
    }
}
