//! Straggler-mitigation measurement (PR 6's proof harness).
//!
//! Two experiments over the same 8-node word-count job:
//!
//! * **Makespan** — inject one hard straggler (`SlowNode`) and run the
//!   job with speculation off vs on. Speculation should recover most of
//!   the straggler-induced tail: the backup attempt commits in normal
//!   task time and the straggler's attempt is cancelled at its next
//!   spill boundary.
//! * **Shuffle locality** — run with replicated map-out r = 1, 2, 3 and
//!   account the remote `ShuffleBatch` first-send bytes per job. With
//!   r holders each emitting only the partitions nearest to them on the
//!   ring, remote shuffle volume should drop roughly to the fraction of
//!   reducers that are not co-located with any holder.
//!
//! Both experiments assert byte-identical output against the fault-free
//! r = 1 baseline — the performance story is only worth telling if the
//! answer never changes. Shared by the `straggler_bench` binary that
//! `scripts/tier1.sh` uses to snapshot `results/BENCH_straggler.json`.

use crate::live_bench::corpus;
use eclipse_apps::WordCount;
use eclipse_core::net::RpcKind;
use eclipse_core::{
    FaultPlan, LiveCluster, LiveConfig, LiveStats, ReusePolicy, SpeculationConfig, TransportKind,
};
use std::time::Instant;

/// The node count the straggler story is told at (matches `net_bench`).
pub const NODES: usize = 8;
/// Reduce partitions; fewer than nodes so replicated map-out has a
/// meaningful home set to co-locate with: r = 2 covers two of the
/// three reducer homes per block, r = 3 covers all of them.
pub const REDUCERS: usize = 3;
/// The injected straggler's map delay in microseconds. Its RPC serving
/// and shuffle sends are slowed proportionally by the fault plan.
pub const SLOW_MICROS: u64 = 50_000;

/// Makespan under one straggler, speculation off vs on.
#[derive(Clone, Debug)]
pub struct MakespanPoint {
    pub slow_micros: u64,
    pub secs_off: f64,
    pub secs_on: f64,
    /// `secs_off / secs_on` — how much of the tail speculation claws back.
    pub speedup: f64,
    pub speculative_attempts: u64,
    pub speculative_wins: u64,
    pub cancelled_attempts: u64,
    pub retries_on: u64,
    /// Output with speculation (and under the straggler) was
    /// byte-identical to the fault-free baseline.
    pub identical_output: bool,
}

/// Shuffle-plane accounting for one replicated map-out factor.
#[derive(Clone, Debug)]
pub struct ReplicationPoint {
    pub r: usize,
    pub map_tasks: u64,
    /// Remote `ShuffleBatch` payload a lossless wire would carry.
    pub shuffle_first_send_bytes: u64,
    /// Extra shuffle bytes that exist only because of retries.
    pub shuffle_retransmitted_bytes: u64,
    /// Records delivered to their reducer without touching the wire.
    pub local_shuffle_records: u64,
    /// `shuffle_first_send_bytes` relative to the r = 1 run.
    pub ratio_vs_r1: f64,
    pub identical_output: bool,
}

fn spec_config() -> SpeculationConfig {
    SpeculationConfig { slowdown: 2.0, min_completed: 3, poll_micros: 200 }
}

fn cluster(speculate: bool, map_replication: usize) -> LiveCluster {
    // Oversubscribed map slots: one worker thread per virtual node even
    // on small hosts. Without it a straggling *node* may simply never
    // claim a task (some other thread runs its queue) and both
    // experiments degenerate to measuring nothing.
    let mut cfg = LiveConfig::small()
        .with_nodes(NODES)
        .with_block_size(16 * 1024)
        .with_transport(TransportKind::Memory)
        .with_map_slots(NODES)
        .with_map_replication(map_replication);
    if speculate {
        cfg = cfg.with_speculation(spec_config());
    }
    LiveCluster::new(cfg)
}

fn run(c: &LiveCluster) -> (Vec<(String, String)>, LiveStats) {
    c.run_job(&WordCount, "input", "bench", REDUCERS, ReusePolicy::default())
}

/// A node that is NOT a reducer home: slowing a home would serialize
/// every mapper's shuffle through the delayed endpoint and measure the
/// serving delay instead of the map straggle speculation targets.
fn straggler_of(c: &LiveCluster) -> eclipse_ring::NodeId {
    c.ring().node_ids()[REDUCERS % NODES]
}

/// Makespan with one straggler, speculation off vs on: best of
/// `samples` interleaved runs per mode (same rationale as `net_bench`'s
/// interleaving — both modes see the same host-load profile).
pub fn makespan(corpus_bytes: usize, samples: usize) -> MakespanPoint {
    let (text, _records) = corpus(corpus_bytes);
    let off = cluster(false, 1);
    let on = cluster(true, 1);
    off.upload("input", "bench", &text);
    on.upload("input", "bench", &text);
    // Fault-free warmup: the baseline output plus warm caches, so the
    // timed runs isolate the straggler, not cold-start block moves.
    let (baseline, _) = run(&off);
    let _ = run(&on);

    let mut secs_off = f64::INFINITY;
    let mut secs_on = f64::INFINITY;
    let mut last = None;
    let mut identical = true;
    for _ in 0..samples.max(1) {
        off.inject_faults(FaultPlan::new().slow_node(straggler_of(&off), SLOW_MICROS));
        let t = Instant::now();
        let (out, _) = run(&off);
        secs_off = secs_off.min(t.elapsed().as_secs_f64());
        identical &= out == baseline;

        on.inject_faults(FaultPlan::new().slow_node(straggler_of(&on), SLOW_MICROS));
        let t = Instant::now();
        let (out, stats) = run(&on);
        secs_on = secs_on.min(t.elapsed().as_secs_f64());
        identical &= out == baseline;
        last = Some(stats);
    }
    let stats = last.expect("at least one sample");
    MakespanPoint {
        slow_micros: SLOW_MICROS,
        secs_off,
        secs_on,
        speedup: secs_off / secs_on,
        speculative_attempts: stats.speculative_attempts,
        speculative_wins: stats.speculative_wins,
        cancelled_attempts: stats.cancelled_attempts,
        retries_on: stats.retries,
        identical_output: identical,
    }
}

/// Remote shuffle volume at map replication r = 1, 2, 3. Each factor
/// gets a fresh cluster; the measured run is the second job so the
/// replica placement (a one-time `ReplicaSync` cost) and the input
/// cache are warm, leaving the per-job shuffle plane.
pub fn replication_sweep(corpus_bytes: usize) -> Vec<ReplicationPoint> {
    let (text, _records) = corpus(corpus_bytes);
    let mut points = Vec::new();
    let mut baseline: Option<Vec<(String, String)>> = None;
    let mut r1_bytes = 0u64;
    for r in [1usize, 2, 3] {
        let c = cluster(false, r);
        c.upload("input", "bench", &text);
        let _ = run(&c); // warmup: replica placement + iCache
        let before = c.transport().stats();
        let (out, stats) = run(&c);
        let wire = c.transport().stats().since(before);
        let (_rpcs, bytes) = wire.kind(RpcKind::ShuffleBatch);
        let retrans = wire.kind_retrans(RpcKind::ShuffleBatch);
        let first = bytes - retrans;
        let identical = match &baseline {
            None => {
                baseline = Some(out);
                r1_bytes = first.max(1);
                true
            }
            Some(b) => &out == b,
        };
        points.push(ReplicationPoint {
            r,
            map_tasks: stats.map_tasks,
            shuffle_first_send_bytes: first,
            shuffle_retransmitted_bytes: retrans,
            local_shuffle_records: stats.local_shuffle_records,
            ratio_vs_r1: first as f64 / r1_bytes as f64,
            identical_output: identical,
        });
    }
    points
}
