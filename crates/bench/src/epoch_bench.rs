//! Incremental-epoch measurement: the PR's continuous-job perf story.
//!
//! One sweep, shared by the `epoch_bench` binary that
//! `scripts/tier1.sh` uses to snapshot `results/BENCH_epoch.json`:
//! an 8-node cluster carries a standing word-count stream
//! ([`eclipse_core::EpochDriver`]). A bulk base corpus is folded as
//! epoch 1 (unmeasured setup), then a train of small deltas — each
//! ~1% of the base — arrives one per epoch. Every delta is committed
//! two ways:
//!
//! * **epoch** — [`EpochDriver::commit_epoch`] folds just the delta
//!   into the materialized result (map the delta's blocks, ship them
//!   through the shuffle plane, fold, publish). Per-commit wall-clock
//!   lands in a latency histogram (p50/p99).
//! * **rerun** — the no-incremental baseline: a one-shot batch job
//!   over *everything that has arrived so far*, which is what a system
//!   without materialized epochs must do per arrival.
//!
//! The headline is the speedup (mean rerun wall / mean epoch wall):
//! committing a 1% delta must cost a small fraction of re-running the
//! batch. The sweep also asserts the correctness anchor — after every
//! delta the materialized snapshot is byte-identical to a one-shot
//! batch over the concatenated input — so the number can never come
//! from a stream that quietly diverged.
//!
//! All input uses fixed-width lines with a block size that is a
//! multiple, so block boundaries never split a word in the per-epoch
//! deltas or in the concatenated baseline files (whose boundaries fall
//! at different offsets).

use eclipse_apps::WordCount;
use eclipse_core::{EpochDriver, LiveCluster, LiveConfig, ReusePolicy, StreamSpec};
use eclipse_util::LatencyHist;
use std::sync::Arc;
use std::time::Instant;

/// Cluster size — the acceptance point, matching the other benches.
pub const NODES: usize = 8;
const REDUCERS: usize = 4;
/// Byte width of one corpus line ("wNN wNN wNN wNN\n"); the block size
/// below is a multiple.
const LINE: usize = 16;
const WORDS_PER_LINE: u64 = 4;
const BLOCK: u64 = 4096;

/// What the sweep measured.
#[derive(Clone, Copy, Debug)]
pub struct EpochBenchReport {
    pub nodes: usize,
    /// Map-side records in the base corpus folded as epoch 1.
    pub base_records: u64,
    /// Records per delta (~1% of the base).
    pub delta_records: u64,
    /// Delta size as a fraction of the base corpus.
    pub delta_pct: f64,
    /// Measured delta epochs (excluding the epoch-1 bulk load).
    pub epochs: usize,
    pub epoch_p50_ms: f64,
    pub epoch_p99_ms: f64,
    pub epoch_mean_ms: f64,
    /// Delta records folded per second of epoch-commit wall-clock.
    pub epoch_records_per_sec: f64,
    /// Mean wall-clock of the full-batch re-run a delta arrival costs
    /// without incremental epochs.
    pub rerun_mean_ms: f64,
    pub rerun_records_per_sec: f64,
    /// rerun_mean_ms / epoch_mean_ms — the headline.
    pub speedup: f64,
    /// Every post-delta snapshot was byte-identical to its one-shot
    /// batch oracle (the sweep also asserts this).
    pub identical: bool,
}

/// Deterministic fixed-width corpus: `lines` lines of four 3-char
/// words drawn from a 100-word vocabulary, salted so deltas don't
/// repeat the base verbatim.
fn aligned_corpus(lines: usize, salt: u64) -> String {
    let mut s = String::with_capacity(lines * LINE);
    let mut x = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for _ in 0..lines {
        for i in 0..WORDS_PER_LINE {
            if i > 0 {
                s.push(' ');
            }
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s.push_str(&format!("w{:02}", (x >> 33) % 100));
        }
        s.push('\n');
    }
    s
}

fn cluster() -> Arc<LiveCluster> {
    Arc::new(LiveCluster::new(LiveConfig::small().with_nodes(NODES).with_block_size(BLOCK)))
}

/// Run the incremental-vs-rerun comparison and return the report.
/// Panics if any snapshot diverges from its batch oracle — a speedup
/// measured on wrong results is not a speedup.
pub fn epoch_sweep(quick: bool) -> EpochBenchReport {
    let base_lines = if quick { 16_384 } else { 65_536 };
    let delta_lines = (base_lines / 100).max(16);
    let deltas = if quick { 6 } else { 10 };

    let base = aligned_corpus(base_lines, 0);
    let delta_texts: Vec<String> =
        (1..=deltas).map(|i| aligned_corpus(delta_lines, i as u64)).collect();

    // Standing stream: fold the base as epoch 1 (setup, unmeasured),
    // then time each delta commit.
    let stream_cluster = cluster();
    let driver = EpochDriver::new(
        Arc::clone(&stream_cluster),
        StreamSpec {
            app: Arc::new(WordCount),
            name: "epoch-bench".to_string(),
            user: "bench".to_string(),
            reducers: REDUCERS,
        },
    );
    driver.commit_epoch(base.as_bytes()).expect("base epoch commits");

    // Baseline cluster: per arrival, upload everything-so-far and run
    // one batch job — the cost of answering the query without
    // materialized epochs. (Same cluster across re-runs, so the
    // baseline keeps its warm-cache best case.)
    let rerun_cluster = cluster();

    let mut epoch_hist = LatencyHist::new();
    let mut epoch_total = 0.0f64;
    let mut rerun_total = 0.0f64;
    let mut concat = base.clone();
    let mut identical = true;
    for (i, delta) in delta_texts.iter().enumerate() {
        concat.push_str(delta);

        let t = Instant::now();
        let rep = driver.commit_epoch(delta.as_bytes()).expect("delta epoch commits");
        let secs = t.elapsed().as_secs_f64();
        epoch_hist.record(t.elapsed().as_nanos() as u64);
        epoch_total += secs;

        let file = format!("rerun-{i}");
        rerun_cluster.upload(&file, "bench", concat.as_bytes());
        let t = Instant::now();
        let (oracle, _) = rerun_cluster.run_job_partitioned(
            &WordCount,
            &file,
            "bench",
            REDUCERS,
            ReusePolicy::default(),
        );
        rerun_total += t.elapsed().as_secs_f64();

        let snap = driver.snapshot(rep.epoch).expect("published epoch readable");
        let same = *snap == oracle;
        identical &= same;
        assert!(same, "epoch {} snapshot diverged from the batch oracle", rep.epoch);
    }
    driver.close();

    let base_records = base_lines as u64 * WORDS_PER_LINE;
    let delta_records = delta_lines as u64 * WORDS_PER_LINE;
    let epoch_mean = epoch_total / deltas as f64;
    let rerun_mean = rerun_total / deltas as f64;
    EpochBenchReport {
        nodes: NODES,
        base_records,
        delta_records,
        delta_pct: delta_lines as f64 / base_lines as f64,
        epochs: deltas,
        epoch_p50_ms: epoch_hist.quantile(0.5) as f64 / 1e6,
        epoch_p99_ms: epoch_hist.quantile(0.99) as f64 / 1e6,
        epoch_mean_ms: epoch_mean * 1e3,
        epoch_records_per_sec: delta_records as f64 * deltas as f64 / epoch_total,
        rerun_mean_ms: rerun_mean * 1e3,
        rerun_records_per_sec: delta_records as f64 * deltas as f64 / rerun_total,
        speedup: rerun_mean / epoch_mean,
        identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_lines_are_fixed_width_and_block_aligned() {
        let c = aligned_corpus(64, 7);
        assert_eq!(c.len(), 64 * LINE);
        for l in c.lines() {
            assert_eq!(l.len(), LINE - 1);
        }
        assert_eq!(BLOCK as usize % LINE, 0);
        // Salted corpora differ (deltas aren't the base replayed).
        assert_ne!(aligned_corpus(64, 1), aligned_corpus(64, 2));
    }
}
