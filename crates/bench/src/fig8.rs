//! Fig. 8 — Multiple concurrent jobs competing for resources.
//!
//! The paper's batch: 2 grep + 2 word count + 1 page rank + 1 sort +
//! 1 k-means submitted simultaneously; word count and grep share one
//! 15 GB input, the others have their own 15 GB datasets; cache per
//! server ∈ {1, 4, 8} GB; 32 MB spill buffers. Findings: LAF beats
//! delay at every cache size; hit ratios converge as the cache grows
//! (≈69% at 8 GB for both); with small caches delay's static ranges
//! overload some servers and waste cache on them.

use eclipse_core::{EclipseConfig, EclipseSim, JobSpec, SchedulerKind};
use eclipse_sched::{DelayConfig, LafConfig};
use eclipse_util::GB;
use eclipse_workloads::AppKind;

/// One measured bar of Fig. 8: a job's execution time under one policy
/// and cache size.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    pub policy: &'static str,
    pub cache_gb: u64,
    pub job_label: String,
    pub exec_secs: f64,
}

/// Summary per (policy, cache): the overall cache hit ratio.
#[derive(Clone, Debug)]
pub struct Fig8Summary {
    pub policy: &'static str,
    pub cache_gb: u64,
    pub hit_ratio: f64,
    pub batch_makespan: f64,
}

/// The paper's batch of 7 jobs.
fn batch() -> Vec<(String, JobSpec)> {
    vec![
        ("grep-1".into(), JobSpec::batch(AppKind::Grep, "shared-text")),
        ("grep-2".into(), JobSpec::batch(AppKind::Grep, "shared-text")),
        ("wordcount-1".into(), JobSpec::batch(AppKind::WordCount, "shared-text")),
        ("wordcount-2".into(), JobSpec::batch(AppKind::WordCount, "shared-text")),
        ("pagerank".into(), JobSpec::iterative(AppKind::PageRank, "graph", 2)),
        ("sort".into(), JobSpec::batch(AppKind::Sort, "sort-data")),
        ("kmeans".into(), JobSpec::iterative(AppKind::KMeans, "points", 5)),
    ]
}

/// Reproduce Fig. 8; returns (per-job rows, per-configuration summaries).
pub fn fig8(scale: f64) -> (Vec<Fig8Row>, Vec<Fig8Summary>) {
    let input_bytes = ((15.0 * scale).max(0.5) * GB as f64) as u64;
    let mut rows = Vec::new();
    let mut summaries = Vec::new();
    let policies: Vec<(&'static str, SchedulerKind)> = vec![
        ("LAF", SchedulerKind::Laf(LafConfig::default())),
        ("Delay", SchedulerKind::Delay(DelayConfig::default())),
    ];
    for (name, kind) in policies {
        for cache_gb in [1u64, 4, 8] {
            let mut sim = EclipseSim::new(
                EclipseConfig::paper_defaults(kind.clone()).with_cache(cache_gb * GB),
            );
            sim.upload("shared-text", input_bytes);
            sim.upload("graph", input_bytes);
            sim.upload("sort-data", input_bytes);
            sim.upload("points", input_bytes);
            let jobs = batch();
            let specs: Vec<JobSpec> = jobs.iter().map(|(_, s)| s.clone()).collect();
            let reports = sim.run_concurrent(&specs);
            let mut makespan: f64 = 0.0;
            for ((label, _), report) in jobs.iter().zip(&reports) {
                makespan = makespan.max(report.elapsed);
                rows.push(Fig8Row {
                    policy: name,
                    cache_gb,
                    job_label: label.clone(),
                    exec_secs: report.elapsed,
                });
            }
            summaries.push(Fig8Summary {
                policy: name,
                cache_gb,
                hit_ratio: sim.cache_hit_ratio(),
                batch_makespan: makespan,
            });
        }
    }
    (rows, summaries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laf_wins_at_every_cache_size() {
        let (_, summaries) = fig8(0.2);
        for cache_gb in [1u64, 4, 8] {
            let laf = summaries
                .iter()
                .find(|s| s.policy == "LAF" && s.cache_gb == cache_gb)
                .unwrap();
            let delay = summaries
                .iter()
                .find(|s| s.policy == "Delay" && s.cache_gb == cache_gb)
                .unwrap();
            assert!(
                laf.batch_makespan <= delay.batch_makespan * 1.02,
                "cache {cache_gb}: laf {} delay {}",
                laf.batch_makespan,
                delay.batch_makespan
            );
        }
    }

    #[test]
    fn bigger_cache_helps() {
        let (_, summaries) = fig8(0.2);
        let laf1 = summaries.iter().find(|s| s.policy == "LAF" && s.cache_gb == 1).unwrap();
        let laf8 = summaries.iter().find(|s| s.policy == "LAF" && s.cache_gb == 8).unwrap();
        assert!(laf8.hit_ratio >= laf1.hit_ratio, "1GB {} 8GB {}", laf1.hit_ratio, laf8.hit_ratio);
        assert!(laf8.batch_makespan <= laf1.batch_makespan * 1.02);
    }

    #[test]
    fn all_seven_jobs_reported() {
        let (rows, _) = fig8(0.2);
        // 7 jobs × 2 policies × 3 cache sizes.
        assert_eq!(rows.len(), 42);
        assert!(rows.iter().all(|r| r.exec_secs > 0.0));
    }
}
