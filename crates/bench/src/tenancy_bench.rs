//! Multi-tenant job-server measurement: the PR's p50/p99/p999 latency
//! story.
//!
//! Two sweeps, shared by the `tenancy_bench` binary that
//! `scripts/tier1.sh` uses to snapshot `results/BENCH_tenancy.json`:
//!
//! * **Storm** — a deterministic multi-tenant arrival storm
//!   ([`eclipse_workloads::tenant_arrivals`]) of word-count jobs over
//!   per-tenant datasets, executed two ways on an 8-node cluster: one
//!   scoped `run_job` at a time in arrival order (`serial`), and
//!   through the persistent [`JobServer`] pool with weighted-fair
//!   admission (`pool`). Per-job sojourn latency (storm start →
//!   completion) lands in a [`LatencyHist`], bucketed by the
//!   submitting tenant's size class; the pool must beat serial on both
//!   records/sec and small-job p99, because fair admission stops small
//!   jobs from queueing behind antagonist scans and the persistent
//!   workers amortize per-job thread spawn. Every pool output is
//!   asserted byte-identical to its serial reference.
//!
//! * **Quota** — a victim tenant's warm working set attacked by a
//!   cache-flooding scan, measured solo, with quotas off, and with the
//!   antagonist capped ([`LiveCluster::set_tenant_quota`]); quota-on
//!   must keep the victim's hit ratio and p99 within 20% of its solo
//!   baseline.

use eclipse_apps::WordCount;
use eclipse_core::{
    JobServer, JobServerConfig, LiveCluster, LiveConfig, PoolJobSpec, ReusePolicy, SchedulerKind,
};
use eclipse_util::LatencyHist;
use eclipse_workloads::{tenant_arrivals, ArrivalConfig, SizeClass, TenantSpec};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Cluster size for the storm sweep (matches the throughput bench's
/// headline point so the snapshots compare like for like).
pub const NODES: usize = 8;
const REDUCERS: usize = 2;
/// In-flight jobs under the pool: enough to overlap a small job with a
/// scan without oversubscribing the host.
const CONCURRENCY: usize = 2;

/// Latency quantiles in milliseconds, extracted from a [`LatencyHist`]
/// of nanosecond observations.
#[derive(Clone, Copy, Debug)]
pub struct LatencySummary {
    pub count: u64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub p999_ms: f64,
    pub max_ms: f64,
}

impl LatencySummary {
    fn of(h: &LatencyHist) -> LatencySummary {
        let ms = |v: u64| v as f64 / 1e6;
        LatencySummary {
            count: h.count(),
            p50_ms: ms(h.quantile(0.5)),
            p99_ms: ms(h.quantile(0.99)),
            p999_ms: ms(h.quantile(0.999)),
            max_ms: ms(h.max()),
        }
    }
}

/// One execution mode's side of the storm comparison.
#[derive(Clone, Copy, Debug)]
pub struct StormPoint {
    /// `"serial"` (scoped executor, arrival order) or `"pool"`
    /// (persistent workers, weighted-fair admission).
    pub mode: &'static str,
    pub jobs: usize,
    /// Wall-clock for the whole storm.
    pub secs: f64,
    /// Input records mapped per second across the storm.
    pub records_per_sec: f64,
    /// Sojourn latency of the latency-sensitive (small) tenants' jobs.
    pub small: LatencySummary,
    /// Sojourn latency over every job in the storm.
    pub all: LatencySummary,
}

/// One quota scenario's victim-side measurement.
#[derive(Clone, Copy, Debug)]
pub struct QuotaPoint {
    /// `"solo"`, `"quota_off"` or `"quota_on"`.
    pub mode: &'static str,
    /// Victim warm-run cache hit ratio, aggregated over the measured
    /// iterations.
    pub victim_hit_ratio: f64,
    /// Victim warm-run latency.
    pub victim: LatencySummary,
    /// Bytes resident under the antagonist's tenant after the sweep.
    pub scan_cache_bytes: u64,
}

/// The storm's tenant mix: two latency-sensitive small tenants with
/// high weight, one medium batch tenant, one low-weight antagonist
/// whose jobs scan the largest dataset.
fn tenant_mix() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new(0.6, 16, SizeClass::Small),
        TenantSpec::new(0.6, 16, SizeClass::Small),
        TenantSpec::new(0.3, 8, SizeClass::Medium),
        TenantSpec::new(0.15, 1, SizeClass::Scan),
    ]
}

fn dataset_bytes(size: SizeClass, quick: bool) -> usize {
    let scale = if quick { 1 } else { 4 };
    match size {
        SizeClass::Small => 8 * 1024 * scale,
        SizeClass::Medium => 32 * 1024 * scale,
        SizeClass::Scan => 128 * 1024 * scale,
    }
}

fn storm_cluster() -> LiveCluster {
    LiveCluster::new(LiveConfig::small().with_nodes(NODES).with_block_size(4 * 1024))
}

/// Upload one dataset per tenant (owned by that tenant's user) and
/// return per-tenant `(user, input, records)`.
fn upload_mix(
    c: &LiveCluster,
    tenants: &[TenantSpec],
    quick: bool,
) -> Vec<(String, String, u64)> {
    tenants
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let (text, records) = crate::live_bench::corpus(dataset_bytes(spec.size, quick));
            let user = format!("tenant{i}");
            let input = format!("in-{user}");
            c.upload(&input, &user, &text);
            (user, input, records)
        })
        .collect()
}

/// Run the storm serially and through the pool; panics if any pool
/// output diverges from its serial reference.
pub fn storm_sweep(quick: bool) -> Vec<StormPoint> {
    let tenants = tenant_mix();
    let jobs = if quick { 36 } else { 100 };
    let storm = tenant_arrivals(&ArrivalConfig::default(), &tenants, jobs, 42);
    let total_records: u64 = {
        // Records mapped = each arrival reads its tenant's whole dataset.
        let per_tenant: Vec<u64> = tenants
            .iter()
            .map(|s| crate::live_bench::corpus(dataset_bytes(s.size, quick)).1)
            .collect();
        storm.iter().map(|a| per_tenant[a.tenant]).sum()
    };

    // Serial: scoped executor, one job at a time in arrival order.
    let (serial_point, reference) = {
        let c = storm_cluster();
        let files = upload_mix(&c, &tenants, quick);
        let mut small = LatencyHist::new();
        let mut all = LatencyHist::new();
        let mut reference: Vec<Option<Vec<(String, String)>>> = vec![None; tenants.len()];
        let t0 = Instant::now();
        for a in &storm {
            let (user, input, _) = &files[a.tenant];
            let (out, _) = c.run_job(&WordCount, input, user, REDUCERS, ReusePolicy::default());
            let sojourn = t0.elapsed().as_nanos() as u64;
            all.record(sojourn);
            if a.size == SizeClass::Small {
                small.record(sojourn);
            }
            reference[a.tenant].get_or_insert(out);
        }
        let secs = t0.elapsed().as_secs_f64();
        (
            StormPoint {
                mode: "serial",
                jobs,
                secs,
                records_per_sec: total_records as f64 / secs,
                small: LatencySummary::of(&small),
                all: LatencySummary::of(&all),
            },
            reference,
        )
    };

    // Pool: persistent workers, weighted-fair admission, CONCURRENCY
    // jobs in flight. One waiter thread per job records its completion.
    let pool_point = {
        let c = Arc::new(storm_cluster());
        let files = upload_mix(&c, &tenants, quick);
        let server = JobServer::new(
            c.clone(),
            JobServerConfig {
                concurrency: CONCURRENCY,
                policy: eclipse_core::AdmissionPolicy::WeightedFair,
                ..Default::default()
            },
        );
        let hists = Mutex::new((LatencyHist::new(), LatencyHist::new()));
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for a in &storm {
                let (user, input, _) = &files[a.tenant];
                let handle = server.submit(PoolJobSpec {
                    app: Arc::new(WordCount),
                    inputs: vec![input.clone()],
                    user: user.clone(),
                    reducers: REDUCERS,
                    reuse: ReusePolicy::default(),
                    weight: a.weight,
                });
                let expect = reference[a.tenant].as_ref().expect("serial ran every tenant");
                let hists = &hists;
                let size = a.size;
                s.spawn(move || {
                    let (out, _) = handle.wait().expect("storm has no faults");
                    let sojourn = t0.elapsed().as_nanos() as u64;
                    assert_eq!(&out, expect, "pool output diverged from serial");
                    let mut h = hists.lock().expect("hist lock");
                    h.1.record(sojourn);
                    if size == SizeClass::Small {
                        h.0.record(sojourn);
                    }
                });
            }
        });
        let secs = t0.elapsed().as_secs_f64();
        server.shutdown();
        let (small, all) = &*hists.lock().expect("hist lock");
        StormPoint {
            mode: "pool",
            jobs,
            secs,
            records_per_sec: total_records as f64 / secs,
            small: LatencySummary::of(small),
            all: LatencySummary::of(all),
        }
    };

    vec![serial_point, pool_point]
}

/// Delay scheduling keeps warm-run placement purely data-local on an
/// idle cluster, so victim hit ratios measure cache residency rather
/// than LAF fairness-counter drift from the antagonist's task surge.
fn quota_cluster() -> LiveCluster {
    let mut cfg = LiveConfig::small()
        .with_nodes(NODES)
        .with_block_size(2 * 1024)
        .with_cache_shards(1)
        .with_scheduler(SchedulerKind::Delay(Default::default()));
    cfg.cache_per_node = 64 * 1024;
    LiveCluster::new(cfg)
}

/// Measure the victim's warm-run hit ratio and latency: solo, under an
/// uncapped antagonist, and with the antagonist quota'd.
pub fn quota_sweep(quick: bool) -> Vec<QuotaPoint> {
    let iters = if quick { 5 } else { 10 };
    let (victim_text, _) = crate::live_bench::corpus(24 * 1024);
    let (scan_text, _) = crate::live_bench::corpus(512 * 1024);

    let run = |mode: &'static str, antagonist: bool, quota: Option<u64>| {
        let c = quota_cluster();
        c.upload("in-victim", "victim", &victim_text);
        if antagonist {
            c.upload("in-scan", "scan", &scan_text);
        }
        if let Some(bytes_per_node) = quota {
            c.set_tenant_quota("scan", bytes_per_node);
        }
        // Warm the victim's working set once, unmeasured.
        c.run_job(&WordCount, "in-victim", "victim", REDUCERS, ReusePolicy::default());
        let mut lat = LatencyHist::new();
        let (mut hits, mut misses) = (0u64, 0u64);
        for _ in 0..iters {
            if antagonist {
                c.run_job(&WordCount, "in-scan", "scan", REDUCERS, ReusePolicy::default());
            }
            let t = Instant::now();
            let (_, s) =
                c.run_job(&WordCount, "in-victim", "victim", REDUCERS, ReusePolicy::default());
            lat.record(t.elapsed().as_nanos() as u64);
            hits += s.cache_hits;
            misses += s.cache_misses;
        }
        QuotaPoint {
            mode,
            victim_hit_ratio: hits as f64 / (hits + misses).max(1) as f64,
            victim: LatencySummary::of(&lat),
            scan_cache_bytes: c.tenant_cache_used("scan"),
        }
    };

    vec![
        run("solo", false, None),
        run("quota_off", true, None),
        run("quota_on", true, Some(16 * 1024)),
    ]
}
