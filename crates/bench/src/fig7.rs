//! Fig. 7 — Load balancing vs data locality under a skewed grep
//! workload.
//!
//! The paper's setup (§III-C): grep tasks access input blocks whose hash
//! keys follow a **mixture of two normal distributions**; 24 jobs run a
//! total of 6410 map tasks reading 90 GB. Cache per server sweeps
//! {0, 0.5, 1, 1.5} GB. Findings to reproduce:
//!
//! * Delay scheduling yields a **higher cache hit ratio** (static ranges
//!   + unlimited waiting) but is up to ~2.9× **slower** overall.
//! * LAF with α=1 balances load perfectly; α=0.001 trades a little
//!   balance for a better hit ratio (~13.2% vs ~10.8% at their point).
//! * Tasks-per-slot stdev: ~4 for LAF vs ~13 for delay.

use eclipse_core::{EclipseConfig, EclipseSim, SchedulerKind};
use eclipse_sched::{DelayConfig, LafConfig};
use eclipse_util::{HashKey, GB, MB};
use eclipse_workloads::{AppKind, CostModel, KeyDist, KeySampler};

/// One measured cell of Fig. 7.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    pub policy: &'static str,
    pub cache_gb: f64,
    pub exec_secs: f64,
    pub hit_ratio: f64,
    /// Tasks-per-slot standard deviation (§III-C text metric).
    pub tasks_per_slot_stdev: f64,
}

/// The scheduling policies swept in Fig. 7.
fn policies() -> Vec<(&'static str, SchedulerKind)> {
    vec![
        (
            "LAF:a=0.001",
            SchedulerKind::Laf(LafConfig { alpha: 0.001, ..Default::default() }),
        ),
        ("LAF:a=1", SchedulerKind::Laf(LafConfig { alpha: 1.0, ..Default::default() })),
        ("DELAY", SchedulerKind::Delay(DelayConfig::default())),
    ]
}

/// Build the skewed access trace: `tasks` accesses over a finite block
/// population, positions drawn from the bimodal mixture and snapped to
/// the nearest population block (so repeats exist and caching matters).
pub fn skewed_trace(tasks: usize, population: usize, seed: u64) -> Vec<HashKey> {
    skewed_trace_drift(tasks, population, seed, 0.0)
}

/// Like [`skewed_trace`], with the mixture centers shifted by `drift`
/// around the ring — the paper's "time series" workloads, where the hot
/// region moves slowly from job to job (§III-C: a small α works well
/// "especially when a large number of subsequent jobs are submitted as
/// in time series").
pub fn skewed_trace_drift(
    tasks: usize,
    population: usize,
    seed: u64,
    drift: f64,
) -> Vec<HashKey> {
    // Population blocks at uniform ring positions.
    let mut blocks: Vec<HashKey> =
        (0..population).map(|i| HashKey::of_name(&format!("skewblk-{i}"))).collect();
    blocks.sort();
    let mut sampler = KeySampler::new(
        KeyDist::Bimodal {
            center_a: (0.3 + drift).rem_euclid(1.0),
            center_b: (0.7 + drift).rem_euclid(1.0),
            stddev: 0.025,
        },
        seed,
    );
    (0..tasks)
        .map(|_| {
            let want = sampler.sample();
            // Snap to the nearest population block clockwise.
            match blocks.binary_search(&want) {
                Ok(i) => blocks[i],
                Err(i) => blocks[i % blocks.len()],
            }
        })
        .collect()
}

/// Reproduce Fig. 7. `scale` multiplies the task count (6410 at 1.0).
pub fn fig7(scale: f64) -> Vec<Fig7Row> {
    let tasks = ((6410.0 * scale) as usize).max(200);
    // 90 GB over 6410 tasks ≈ 14.4 MB per access; the block population
    // is sized so the working set (~236 GB) dwarfs even the largest
    // swept cache (1.5 GB/server = 60 GB cluster-wide) — hit ratios stay
    // in the paper's 10–35% band and scale with cache size.
    let bytes_per_access = (90.0 * GB as f64 / 6410.0) as u64;
    let population = 16384;
    let cost = CostModel::eclipse(AppKind::Grep);
    let mut out = Vec::new();
    for (name, kind) in policies() {
        for cache_mb in [0u64, 512, 1024, 1536] {
            let mut sim = EclipseSim::new(
                EclipseConfig::paper_defaults(kind.clone()).with_cache(cache_mb * MB),
            );
            // 24 job submissions; the mixture drifts slowly across jobs
            // (a time series), and the OS page cache is emptied before
            // every job as in the paper's protocol.
            let mut exec_total = 0.0;
            let per_job = tasks / 24;
            for job in 0..24 {
                sim.drop_page_caches();
                let trace = skewed_trace_drift(
                    per_job.max(8),
                    population,
                    1000 + job,
                    job as f64 * 0.002,
                );
                let report = sim.run_trace(&trace, bytes_per_access, &cost);
                exec_total += report.elapsed;
            }
            out.push(Fig7Row {
                policy: name,
                cache_gb: cache_mb as f64 / 1024.0,
                exec_secs: exec_total,
                hit_ratio: sim.cache_hit_ratio(),
                tasks_per_slot_stdev: sim.tasks_per_slot_stdev(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One full-scale run checks every Fig. 7 claim at once (the sweep
    /// is the expensive part; the assertions are free).
    #[test]
    fn fig7_shapes_match_paper() {
        let rows = fig7(1.0);
        let series = |policy: &str| -> Vec<&Fig7Row> {
            rows.iter().filter(|r| r.policy == policy).collect()
        };
        let laf001 = series("LAF:a=0.001");
        let laf1 = series("LAF:a=1");
        let delay = series("DELAY");

        for s in [&laf001, &laf1, &delay] {
            assert_eq!(s.len(), 4);
            // Hit ratio grows with cache size; execution time does not
            // grow.
            assert!(s[3].hit_ratio > s[0].hit_ratio, "{:?}", s[3]);
            assert!(s[3].exec_secs <= s[0].exec_secs * 1.01, "{:?}", s[3]);
        }

        for i in 0..4 {
            // Delay is the slowest policy at every cache size …
            assert!(delay[i].exec_secs > laf001[i].exec_secs * 1.2, "col {i}");
            assert!(delay[i].exec_secs > laf1[i].exec_secs * 1.2, "col {i}");
            // … α=1 is the best balanced …
            assert!(laf1[i].tasks_per_slot_stdev <= laf001[i].tasks_per_slot_stdev + 0.1);
            assert!(laf1[i].tasks_per_slot_stdev < delay[i].tasks_per_slot_stdev / 1.8);
        }
        // … and at the largest cache: delay has the top hit ratio
        // (static ranges + waiting), while the two α settings land close
        // together (the paper's ~13.2% vs ~10.8%).
        assert!(delay[3].hit_ratio > laf001[3].hit_ratio, "{delay:?}");
        assert!(laf001[3].hit_ratio > laf1[3].hit_ratio - 0.03);
        // α=1 runs at least as fast as α=0.001 (perfect balance).
        assert!(laf1[3].exec_secs <= laf001[3].exec_secs * 1.02);
    }

    #[test]
    fn trace_is_skewed_and_snapped() {
        let trace = skewed_trace(2000, 512, 7);
        // All keys come from the population.
        let mut uniq: Vec<HashKey> = trace.clone();
        uniq.sort();
        uniq.dedup();
        assert!(uniq.len() <= 512);
        // Skew: some keys repeat many times.
        let mut counts = std::collections::HashMap::new();
        for k in &trace {
            *counts.entry(k).or_insert(0u32) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(max >= 10, "max repeat {max}");
    }
}
