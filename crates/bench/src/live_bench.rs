//! Live-executor throughput measurement (the PR's proof harness).
//!
//! Runs real word-count jobs through [`LiveCluster`] and reports
//! records/second (one record = one whitespace-separated word mapped).
//! Shared by the `live_throughput` criterion bench and the
//! `live_bench` binary that `scripts/tier1.sh` uses to snapshot
//! `results/BENCH_live.json`.

use eclipse_apps::WordCount;
use eclipse_core::{LiveCluster, LiveConfig, ReusePolicy};
use std::time::Instant;

/// Node counts the throughput story is told at.
pub const NODE_POINTS: &[usize] = &[1, 4, 8, 16];

/// Deterministic synthetic text: a Zipf-flavored vocabulary cycled to
/// `target_bytes`, newline-separated so block splits land between
/// records most of the time. Returns the text and its record count.
pub fn corpus(target_bytes: usize) -> (Vec<u8>, u64) {
    // Skewed vocabulary: early words repeat much more, giving the
    // combiner real work and the reducers realistic key skew.
    const VOCAB: &[&str] = &[
        "the", "of", "and", "to", "in", "is", "that", "was", "cluster", "cache",
        "shuffle", "reduce", "consistent", "hashing", "eclipse", "throughput",
        "partition", "replica", "locality", "spill",
    ];
    let mut text = Vec::with_capacity(target_bytes + 64);
    let mut records = 0u64;
    // SplitMix64: deterministic, dependency-free.
    let mut x = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    while text.len() < target_bytes {
        for col in 0..8 {
            // Square the draw to bias toward low indices (Zipf-ish).
            let u = (next() >> 11) as f64 / (1u64 << 53) as f64;
            let idx = ((u * u) * VOCAB.len() as f64) as usize;
            text.extend_from_slice(VOCAB[idx.min(VOCAB.len() - 1)].as_bytes());
            text.push(if col == 7 { b'\n' } else { b' ' });
            records += 1;
        }
    }
    (text, records)
}

/// Build a live cluster with `nodes` virtual nodes and the corpus
/// uploaded as `input`. Block size is kept small (16 KiB) so even the
/// default corpus yields enough map tasks to occupy 16 nodes.
pub fn make_cluster(nodes: usize, text: &[u8]) -> LiveCluster {
    let c = LiveCluster::new(
        LiveConfig::small().with_nodes(nodes).with_block_size(16 * 1024),
    );
    c.upload("input", "bench", text);
    c
}

/// One throughput sample: records/sec for a word-count job.
#[derive(Clone, Debug)]
pub struct ThroughputPoint {
    pub nodes: usize,
    pub records: u64,
    pub secs: f64,
    pub records_per_sec: f64,
}

/// Measure steady-state job throughput at `nodes` nodes: one warmup run
/// (populates the iCache, as a production stream would), then the
/// median of `samples` timed runs.
pub fn measure(nodes: usize, text: &[u8], records: u64, samples: usize) -> ThroughputPoint {
    let cluster = make_cluster(nodes, text);
    let reducers = nodes.max(2);
    let run = || {
        cluster.run_job(&WordCount, "input", "bench", reducers, ReusePolicy::default())
    };
    let warm = run(); // warmup + sanity: output must be non-empty
    assert!(!warm.0.is_empty(), "word count produced no output");
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(run());
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    let secs = times[times.len() / 2];
    ThroughputPoint { nodes, records, secs, records_per_sec: records as f64 / secs }
}

/// Sweep the standard node points; `quick` trades samples for speed.
pub fn sweep(corpus_bytes: usize, quick: bool) -> Vec<ThroughputPoint> {
    let (text, records) = corpus(corpus_bytes);
    let samples = if quick { 3 } else { 7 };
    NODE_POINTS.iter().map(|&n| measure(n, &text, records, samples)).collect()
}
