//! Fig. 5 — IO throughput of the DHT file system vs HDFS while varying
//! the number of data nodes (6, 14, 22, 30, 38).
//!
//! (a) bytes / map-task read time: raw local-disk bandwidth, overheads
//!     excluded — the two file systems tie.
//! (b) bytes / job execution time: NameNode lookups, container init and
//!     job scheduling included — the DHT FS pulls ahead.

use eclipse_baselines::{dfsio_dht, dfsio_hdfs};
use eclipse_util::GB;

/// One row of Fig. 5 (both panels).
#[derive(Clone, Copy, Debug)]
pub struct Fig5Row {
    pub nodes: usize,
    /// Fig. 5(a) series, MB/s.
    pub dht_per_task: f64,
    pub hdfs_per_task: f64,
    /// Fig. 5(b) series, MB/s.
    pub dht_per_job: f64,
    pub hdfs_per_job: f64,
}

/// The paper's node counts.
pub const NODE_COUNTS: [usize; 5] = [6, 14, 22, 30, 38];

/// Reproduce Fig. 5. `scale` multiplies the per-node data volume
/// (1 GB/node at scale 1.0, the DFSIO default of one file per node).
pub fn fig5(scale: f64) -> Vec<Fig5Row> {
    NODE_COUNTS
        .iter()
        .map(|&nodes| {
            let bytes = ((nodes as f64 * scale).max(0.25) * GB as f64) as u64;
            let dht = dfsio_dht(nodes, bytes, 1);
            let hdfs = dfsio_hdfs(nodes, bytes, 1, 7.0);
            Fig5Row {
                nodes,
                dht_per_task: dht.per_task_throughput,
                hdfs_per_task: hdfs.per_task_throughput,
                dht_per_job: dht.per_job_throughput,
                hdfs_per_job: hdfs.per_job_throughput,
            }
        })
        .collect()
}

/// The §III-A concurrency probe: per-job throughput as concurrent DFSIO
/// jobs increase. Returns (jobs, dht MB/s, hdfs MB/s) rows.
pub fn fig5_concurrency(scale: f64) -> Vec<(usize, f64, f64)> {
    let nodes = 38;
    let bytes = ((14.0 * scale).max(0.25) * GB as f64) as u64;
    [1usize, 2, 4, 8]
        .iter()
        .map(|&jobs| {
            let dht = dfsio_dht(nodes, bytes, jobs);
            let hdfs = dfsio_hdfs(nodes, bytes, jobs, 7.0);
            (jobs, dht.per_job_throughput, hdfs.per_job_throughput)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        let rows = fig5(0.25);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            // (a): parity within 5%.
            let ratio = r.dht_per_task / r.hdfs_per_task;
            assert!((0.95..1.05).contains(&ratio), "nodes {} ratio {ratio}", r.nodes);
            // (b): DHT clearly ahead.
            assert!(
                r.dht_per_job > 1.3 * r.hdfs_per_job,
                "nodes {}: dht {} hdfs {}",
                r.nodes,
                r.dht_per_job,
                r.hdfs_per_job
            );
        }
        // Throughput grows with node count in both panels.
        assert!(rows[4].dht_per_job > rows[0].dht_per_job);
        assert!(rows[4].dht_per_task > rows[0].dht_per_task);
    }

    #[test]
    fn concurrency_hurts_hdfs_more() {
        let rows = fig5_concurrency(0.25);
        let (j1, dht1, hdfs1) = rows[0];
        let (j8, dht8, hdfs8) = rows[3];
        assert_eq!((j1, j8), (1, 8));
        let dht_drop = dht1 / dht8;
        let hdfs_drop = hdfs1 / hdfs8;
        assert!(hdfs_drop > dht_drop, "hdfs {hdfs_drop} dht {dht_drop}");
    }
}
