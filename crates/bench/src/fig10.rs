//! Fig. 10 — Per-iteration execution time of the iterative applications
//! (k-means, logistic regression, page rank; 10 iterations), EclipseMR
//! vs Spark.
//!
//! Shapes to reproduce (§III-F):
//! * Spark's **first** iteration is much slower than its later ones
//!   (RDD construction).
//! * For k-means and logistic regression EclipseMR's subsequent
//!   iterations are ~3× faster than Spark's.
//! * For page rank Spark's subsequent iterations beat EclipseMR (which
//!   writes ~input-sized iteration outputs to the DHT FS), but EclipseMR
//!   stays within ~30%; Spark's **last** iteration is slower because it
//!   finally writes output to disk.

use eclipse_baselines::{SparkConfig, SparkSim};
use eclipse_core::{EclipseConfig, EclipseSim, JobSpec, SchedulerKind};
use eclipse_sched::LafConfig;
use eclipse_util::GB;
use eclipse_workloads::AppKind;

/// Per-iteration series for one application.
#[derive(Clone, Debug)]
pub struct Fig10Series {
    pub app: AppKind,
    pub eclipse: Vec<f64>,
    pub spark: Vec<f64>,
}

/// Reproduce Fig. 10 (all three panels), 10 iterations each.
pub fn fig10(scale: f64) -> Vec<Fig10Series> {
    let big = ((250.0 * scale).max(1.0) * GB as f64) as u64;
    let small = ((15.0 * scale).max(0.5) * GB as f64) as u64;
    [
        (AppKind::KMeans, big),
        (AppKind::LogisticRegression, big),
        (AppKind::PageRank, small),
    ]
    .iter()
    .map(|&(app, bytes)| {
        let spec = JobSpec::iterative(app, "input", 10);

        let mut eclipse = EclipseSim::new(EclipseConfig::paper_defaults(
            SchedulerKind::Laf(LafConfig::default()),
        ));
        eclipse.upload("input", bytes);
        let e = eclipse.run_job(&spec).iteration_times;

        let mut spark = SparkSim::new(SparkConfig::paper_defaults());
        spark.upload("input", bytes);
        let s = spark.run_job(&spec).iteration_times;

        Fig10Series { app, eclipse: e, spark: s }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_for(rows: &[Fig10Series], app: AppKind) -> &Fig10Series {
        rows.iter().find(|s| s.app == app).unwrap()
    }

    #[test]
    fn spark_first_iteration_is_slowest_prefix() {
        let rows = fig10(1.0);
        for s in &rows {
            assert_eq!(s.spark.len(), 10);
            assert_eq!(s.eclipse.len(), 10);
            let mid = s.spark[4];
            assert!(
                s.spark[0] > mid,
                "{:?}: spark iter0 {} vs mid {mid}",
                s.app,
                s.spark[0]
            );
        }
    }

    #[test]
    fn kmeans_and_logreg_subsequent_iterations_favor_eclipse() {
        let rows = fig10(1.0);
        for app in [AppKind::KMeans, AppKind::LogisticRegression] {
            let s = series_for(&rows, app);
            // Compare steady-state iterations (index 3..9).
            let e_mid: f64 = s.eclipse[3..].iter().sum::<f64>() / 7.0;
            let sp_mid: f64 = s.spark[3..].iter().sum::<f64>() / 7.0;
            assert!(
                sp_mid > 1.8 * e_mid,
                "{app:?}: eclipse {e_mid} spark {sp_mid} — expected ≥1.8×"
            );
        }
    }

    #[test]
    fn pagerank_subsequent_iterations_favor_spark_but_bounded() {
        let rows = fig10(1.0);
        let s = series_for(&rows, AppKind::PageRank);
        let e_mid: f64 = s.eclipse[3..9].iter().sum::<f64>() / 6.0;
        let sp_mid: f64 = s.spark[3..9].iter().sum::<f64>() / 6.0;
        assert!(sp_mid < e_mid, "spark steady {sp_mid} vs eclipse {e_mid}");
        assert!(
            e_mid < 1.6 * sp_mid,
            "eclipse must stay within ~modest factor: {e_mid} vs {sp_mid}"
        );
        // Spark's final iteration pays the output write.
        assert!(s.spark[9] > s.spark[5], "last {} mid {}", s.spark[9], s.spark[5]);
    }

    #[test]
    fn eclipse_iterations_speed_up_after_first() {
        let rows = fig10(1.0);
        for s in &rows {
            // 250 GB inputs exceed the 40 GB cluster cache, so k-means
            // and LR iterations stay flat (the paper's Fig. 10(a)/(b)
            // EclipseMR lines are likewise flat); no iteration may get
            // meaningfully slower.
            assert!(
                s.eclipse[2] <= s.eclipse[0] * 1.03,
                "{:?}: iter2 {} iter0 {}",
                s.app,
                s.eclipse[2],
                s.eclipse[0]
            );
        }
        // Page rank's 15 GB input fits the cache: later iterations are
        // strictly faster than the cold first one.
        let pr = series_for(&rows, AppKind::PageRank);
        assert!(pr.eclipse[2] < pr.eclipse[0], "{:?}", pr.eclipse);
    }
}
