//! Fault-path cost measurement for the live executor.
//!
//! Runs real word-count jobs through [`LiveCluster`] with one node
//! crash injected per job (via [`FaultPlan`]) at each phase — map,
//! shuffle, reduce — and reports the job's wall-clock next to the
//! fault-free time plus the recovery work performed (re-replicated
//! blocks, task retries, stabilization rounds, time spent inside the
//! recovery path). Shared by the `chaos_bench` binary that
//! `scripts/tier1.sh` uses to snapshot `results/BENCH_chaos.json`, so
//! CI tracks fault-path cost alongside throughput. Every faulted run's
//! output is asserted byte-identical to the fault-free reference.

use eclipse_apps::WordCount;
use eclipse_core::{FaultPlan, LiveCluster, LiveConfig, ReusePolicy};
use std::time::Instant;

/// Cluster size for the fault scenarios (crashes need survivors, so
/// this stays well above the replication factor).
pub const NODES: usize = 8;
const REDUCERS: usize = 4;

/// The phases a crash is injected into.
pub const PHASES: &[&str] = &["map", "shuffle", "reduce"];

/// One fault-scenario sample.
#[derive(Clone, Debug)]
pub struct ChaosPoint {
    /// Phase the crash was injected into.
    pub phase: &'static str,
    /// Median wall-clock of the crashed job.
    pub secs: f64,
    /// Wall-clock of the fault-free reference job (same data/cluster
    /// shape), for overhead comparison.
    pub fault_free_secs: f64,
    /// Median seconds spent inside the recovery path itself
    /// (detection + stabilization + re-replication + re-queue).
    pub recovery_secs: f64,
    pub recovered_blocks: u64,
    pub retries: u64,
    pub stabilize_rounds: u64,
}

fn make(text: &[u8]) -> LiveCluster {
    let c = LiveCluster::new(
        LiveConfig::small().with_nodes(NODES).with_block_size(16 * 1024),
    );
    c.upload("input", "bench", text);
    c
}

/// Measure every crash phase. `quick` trades samples for speed.
pub fn sweep(corpus_bytes: usize, quick: bool) -> Vec<ChaosPoint> {
    let (text, _) = crate::live_bench::corpus(corpus_bytes);
    let samples = if quick { 3 } else { 5 };

    // Fault-free reference: correctness oracle and timing baseline.
    let (expect, fault_free_secs) = {
        let c = make(&text);
        let t = Instant::now();
        let (out, _) =
            c.run_job(&WordCount, "input", "bench", REDUCERS, ReusePolicy::default());
        (out, t.elapsed().as_secs_f64())
    };

    PHASES
        .iter()
        .map(|&phase| {
            let mut times = Vec::with_capacity(samples);
            let mut recoveries = Vec::with_capacity(samples);
            let mut recovered_blocks = 0;
            let mut retries = 0;
            let mut stabilize_rounds = 0;
            for _ in 0..samples {
                // A crash consumes the cluster (the victim leaves the
                // ring), so every sample gets a fresh one.
                let c = make(&text);
                let victim = c.ring().node_ids()[1];
                let plan = match phase {
                    "map" => FaultPlan::new().crash_after_maps(victim, 2),
                    "shuffle" => FaultPlan::new().crash_after_spills(victim, 2),
                    _ => FaultPlan::new().crash_in_reduce(victim),
                };
                c.inject_faults(plan);
                let t = Instant::now();
                let (out, stats) = c
                    .try_run_job(&WordCount, "input", "bench", REDUCERS, ReusePolicy::default())
                    .expect("one crash is within the fault model");
                times.push(t.elapsed().as_secs_f64());
                assert_eq!(out, expect, "chaos bench: {phase}-phase crash diverged output");
                recoveries.push(stats.recovery_nanos as f64 / 1e9);
                recovered_blocks = stats.recovered_blocks;
                retries = stats.retries;
                stabilize_rounds = stats.stabilize_rounds;
            }
            times.sort_by(|a, b| a.total_cmp(b));
            recoveries.sort_by(|a, b| a.total_cmp(b));
            ChaosPoint {
                phase,
                secs: times[times.len() / 2],
                fault_free_secs,
                recovery_secs: recoveries[recoveries.len() / 2],
                recovered_blocks,
                retries,
                stabilize_rounds,
            }
        })
        .collect()
}
