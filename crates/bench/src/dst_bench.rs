//! Seed-sweep driver for the DST harness (`eclipse_core::dst`).
//!
//! Runs a contiguous range of seeds through [`run_seed`] at a chosen
//! preset and aggregates the results. Shared by the `dst_bench` binary
//! (full randomized sweeps: `dst_bench --runs 1000 --preset chaos`)
//! and the bounded smoke step in `scripts/tier1.sh` (fixed seed list,
//! `moderate` preset, snapshot to `results/BENCH_dst.json`). Every run
//! is oracle-checked; a failure is carried in the summary together
//! with its replayable seed line rather than panicking the sweep, so
//! one bad seed still leaves a complete report behind.

use eclipse_core::dst::{repro_line, run_seed, DstPreset, DstSweep, Verdict};
use std::time::Instant;

/// One sweep's result: the aggregate counters plus wall-clock.
#[derive(Clone, Debug)]
pub struct SweepResult {
    pub preset: DstPreset,
    pub seed0: u64,
    pub sweep: DstSweep,
    pub secs: f64,
}

/// Run `runs` consecutive seeds starting at `seed0`, printing progress
/// every `chunk` seeds (0 disables progress output).
pub fn sweep_range(seed0: u64, runs: u64, preset: DstPreset, chunk: u64) -> SweepResult {
    let t = Instant::now();
    let mut agg = DstSweep::default();
    for seed in seed0..seed0 + runs {
        let r = run_seed(seed, preset);
        agg.runs += 1;
        agg.faults_injected += r.faults_injected;
        agg.oracle_checks += r.oracle_checks;
        match r.verdict {
            Verdict::Match => agg.matches += 1,
            Verdict::AllowedError(_) => agg.allowed_errors += 1,
            Verdict::Fail { reason, .. } => agg.failures.push((r.seed, reason)),
        }
        if chunk > 0 && agg.runs % chunk == 0 {
            eprintln!(
                "dst[{preset}] {}/{runs} seeds, {} match, {} allowed, {} FAIL, {} faults, {} checks",
                agg.runs, agg.matches, agg.allowed_errors, agg.failures.len(),
                agg.faults_injected, agg.oracle_checks
            );
        }
    }
    SweepResult { preset, seed0, sweep: agg, secs: t.elapsed().as_secs_f64() }
}

/// Render a sweep as the `results/BENCH_dst.json` snapshot format.
pub fn to_json(r: &SweepResult) -> String {
    let s = &r.sweep;
    let mut json = String::from("{\n  \"bench\": \"dst_sweep\",\n");
    json.push_str(&format!(
        "  \"preset\": \"{}\",\n  \"seed0\": {},\n  \"runs\": {},\n  \"matches\": {},\n  \
         \"allowed_errors\": {},\n  \"faults_injected\": {},\n  \"oracle_checks\": {},\n  \
         \"secs\": {:.3},\n  \"failures\": [\n",
        r.preset, r.seed0, s.runs, s.matches, s.allowed_errors, s.faults_injected,
        s.oracle_checks, r.secs
    ));
    for (i, (seed, reason)) in s.failures.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"seed\": {seed}, \"reason\": {:?}, \"replay\": {:?}}}{}\n",
            reason,
            repro_line(*seed, r.preset),
            if i + 1 < s.failures.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}
