//! Cache-plane measurement (the cache PR's proof harness).
//!
//! Two regimes, one report:
//!
//! * **Microbenchmarks** of the structures on a map task's first stop:
//!   LRU hit (get + recency touch) and steady-state insert (with
//!   eviction), the tagged-output key path, the live payload path
//!   (`get_payload`/`put_payload` through [`DistributedCache`]), and a
//!   contended run where several worker threads hammer one hot node's
//!   iCache at once.
//! * **Warm-run live throughput**: a second word-count job over the same
//!   input at 8 nodes — the iCache-hit regime where the paper claims its
//!   wins — timed against the cold first run.
//!
//! Shared by the `cache` criterion bench and the `cache_bench` binary
//! that `scripts/tier1.sh` uses to snapshot `results/BENCH_cache.json`
//! (the seed numbers live on as `results/BENCH_cache_before.json`).

use crate::live_bench::corpus;
use bytes::Bytes;
use eclipse_apps::WordCount;
use eclipse_cache::{CacheKey, DistributedCache, LruCache, OutputTag};
use eclipse_core::{LiveCluster, LiveConfig, ReusePolicy};
use eclipse_ring::{NodeId, Ring};
use eclipse_util::HashKey;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Resident-entry count for the microbenchmarks: big enough that tree-
/// vs-hash index effects show, small enough to stay cache-resident-ish.
const RESIDENT: usize = 16 * 1024;

/// Threads aimed at one hot node in the contention benchmark.
const CONTENDERS: usize = 4;

/// One micro-measurement: nanoseconds per operation.
fn ns_per_op(iters: u64, mut op: impl FnMut(u64)) -> f64 {
    // One untimed pass warms whatever the op touches.
    op(0);
    let t = Instant::now();
    for i in 0..iters {
        op(i);
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

/// Pseudorandom visit order over `n` entries (odd stride walks the whole
/// space), defeating any accidental sequential-access friendliness.
#[inline]
fn scramble(i: u64, n: u64) -> u64 {
    (i.wrapping_mul(0x9E3779B97F4A7C15) | 1) % n
}

/// Microbenchmark results, all ns/op except the contended row.
#[derive(Clone, Debug)]
pub struct MicroReport {
    /// iCache-style hit: `get` + recency touch on an `Input` key.
    pub lru_hit_ns: f64,
    /// Steady-state `put` of a fresh key with LRU eviction to fit.
    pub lru_insert_ns: f64,
    /// oCache-style hit: `get` on a tagged `Output` key.
    pub otag_hit_ns: f64,
    /// Live-path payload hit through a node's cache.
    pub payload_hit_ns: f64,
    /// Live-path payload insert (churning, evictions every step).
    pub payload_insert_ns: f64,
    /// Aggregate get_payload ops/sec of CONTENDERS threads on ONE node.
    pub contended_mops: f64,
}

/// Warm-run live numbers at `nodes` nodes.
#[derive(Clone, Debug)]
pub struct WarmReport {
    pub nodes: usize,
    pub records: u64,
    pub cold_secs: f64,
    pub warm_secs: f64,
    pub warm_records_per_sec: f64,
    pub hit_ratio: f64,
}

#[derive(Clone, Debug)]
pub struct CacheBenchReport {
    pub micro: MicroReport,
    pub warm: WarmReport,
}

fn input_keys(n: usize) -> Vec<CacheKey> {
    // of_name, not HashKey(i): realistic bit-spread in the index.
    (0..n).map(|i| CacheKey::Input(HashKey::of_name(&format!("blk{i}")))).collect()
}

fn output_keys(n: usize) -> Vec<CacheKey> {
    (0..n)
        .map(|i| CacheKey::Output(OutputTag::new("bench", format!("iter{}/part{i}", i % 7))))
        .collect()
}

/// LRU hit path: every key resident, every get a hit plus a touch.
pub fn bench_lru_hit(iters: u64) -> f64 {
    let keys = input_keys(RESIDENT);
    let mut lru: LruCache<CacheKey> = LruCache::new(u64::MAX);
    for k in &keys {
        lru.put(k.clone(), 1, 0.0, None);
    }
    let n = keys.len() as u64;
    ns_per_op(iters, |i| {
        let k = &keys[scramble(i, n) as usize];
        black_box(lru.get(k, 1.0));
    })
}

/// LRU insert path: capacity holds RESIDENT entries, every insert of a
/// fresh key evicts the LRU victim — the steady state of a full iCache.
pub fn bench_lru_insert(iters: u64) -> f64 {
    let keys = input_keys(2 * RESIDENT);
    let mut lru: LruCache<CacheKey> = LruCache::new(RESIDENT as u64);
    for k in keys.iter().take(RESIDENT) {
        lru.put(k.clone(), 1, 0.0, None);
    }
    let n = keys.len() as u64;
    ns_per_op(iters, |i| {
        let k = &keys[scramble(i, n) as usize];
        black_box(lru.put(k.clone(), 1, 1.0, None));
    })
}

/// Tagged-output hit path: exercises OutputTag hashing on every lookup.
pub fn bench_otag_hit(iters: u64) -> f64 {
    let keys = output_keys(RESIDENT);
    let mut lru: LruCache<CacheKey> = LruCache::new(u64::MAX);
    for k in &keys {
        lru.put(k.clone(), 1, 0.0, None);
    }
    let n = keys.len() as u64;
    ns_per_op(iters, |i| {
        let k = &keys[scramble(i, n) as usize];
        black_box(lru.get(k, 1.0));
    })
}

/// A one-node distributed cache sized to hold `resident` 4 KiB payloads.
fn payload_cache(resident: usize) -> (DistributedCache, Vec<CacheKey>) {
    let ring = Ring::with_servers_evenly_spaced(1, "cb");
    let cache = DistributedCache::new(&ring, (resident as u64) * 4096);
    let keys = input_keys(resident);
    for (i, k) in keys.iter().enumerate() {
        cache.with_node(NodeId(0), |c| {
            c.put_payload(k.clone(), Bytes::from(vec![i as u8; 4096]), 0.0, None)
        });
    }
    (cache, keys)
}

/// Live payload hit: index lookup + payload handout on one node.
pub fn bench_payload_hit(iters: u64) -> f64 {
    let (cache, keys) = payload_cache(512);
    let n = keys.len() as u64;
    ns_per_op(iters, |i| {
        let k = &keys[scramble(i, n) as usize];
        black_box(cache.with_node(NodeId(0), |c| c.get_payload(k, 1.0)));
    })
}

/// Live payload insert under churn: the cache is full, so every insert
/// evicts — the regime where any per-insert full-table work shows up.
pub fn bench_payload_insert(iters: u64) -> f64 {
    let (cache, _) = payload_cache(512);
    let fresh = input_keys(2048);
    let n = fresh.len() as u64;
    let payload = Bytes::from(vec![7u8; 4096]);
    ns_per_op(iters, |i| {
        let k = fresh[scramble(i, n) as usize].clone();
        black_box(cache.with_node(NodeId(0), |c| {
            c.put_payload(k, payload.clone(), 1.0, None)
        }));
    })
}

/// CONTENDERS threads all reading one hot node's iCache for ~`millis`;
/// returns aggregate million-ops/sec. This is the whole-node-lock
/// worst case the live executor hits when several map workers read the
/// same popular server.
pub fn bench_contended(millis: u64) -> f64 {
    let (cache, keys) = payload_cache(512);
    let cache = Arc::new(cache);
    let keys = Arc::new(keys);
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..CONTENDERS {
        let cache = Arc::clone(&cache);
        let keys = Arc::clone(&keys);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let n = keys.len() as u64;
            let mut ops = 0u64;
            let mut i = (t as u64) * 7919;
            while !stop.load(Ordering::Relaxed) {
                for _ in 0..256 {
                    let k = &keys[scramble(i, n) as usize];
                    black_box(cache.with_node(NodeId(0), |c| c.get_payload(k, 1.0)));
                    i += 1;
                }
                ops += 256;
            }
            ops
        }));
    }
    let t = Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(millis));
    stop.store(true, Ordering::Relaxed);
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    total as f64 / t.elapsed().as_secs_f64() / 1e6
}

/// The full microbenchmark suite.
pub fn micro(quick: bool) -> MicroReport {
    let iters = if quick { 400_000 } else { 2_000_000 };
    let pay_iters = if quick { 100_000 } else { 500_000 };
    MicroReport {
        lru_hit_ns: bench_lru_hit(iters),
        lru_insert_ns: bench_lru_insert(iters),
        otag_hit_ns: bench_otag_hit(iters),
        payload_hit_ns: bench_payload_hit(pay_iters),
        payload_insert_ns: bench_payload_insert(pay_iters),
        contended_mops: bench_contended(if quick { 300 } else { 1000 }),
    }
}

/// Warm-run live throughput: cold first job populates the iCache, then
/// the median of `samples` repeat jobs measures the hit regime.
pub fn warm_run(nodes: usize, corpus_bytes: usize, samples: usize) -> WarmReport {
    let (text, records) = corpus(corpus_bytes);
    let cluster = LiveCluster::new(
        LiveConfig::small().with_nodes(nodes).with_block_size(16 * 1024),
    );
    cluster.upload("input", "bench", &text);
    let reducers = nodes.max(2);
    let run = || {
        cluster.run_job(&WordCount, "input", "bench", reducers, ReusePolicy::default())
    };
    let t = Instant::now();
    let cold = run();
    let cold_secs = t.elapsed().as_secs_f64();
    assert!(!cold.0.is_empty(), "word count produced no output");
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            black_box(run());
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    let warm_secs = times[times.len() / 2];
    WarmReport {
        nodes,
        records,
        cold_secs,
        warm_secs,
        warm_records_per_sec: records as f64 / warm_secs,
        hit_ratio: cluster.cache_hit_ratio(),
    }
}

/// Everything `cache_bench` snapshots.
pub fn report(quick: bool) -> CacheBenchReport {
    CacheBenchReport {
        micro: micro(quick),
        warm: warm_run(8, 2 * 1024 * 1024, if quick { 5 } else { 9 }),
    }
}

/// Render the report as the JSON layout stored under `results/`.
pub fn to_json(r: &CacheBenchReport, quick: bool) -> String {
    let m = &r.micro;
    let w = &r.warm;
    format!(
        "{{\n  \"bench\": \"cache_plane\",\n  \"quick\": {quick},\n  \"micro\": {{\n    \
         \"lru_hit_ns\": {:.2},\n    \"lru_insert_ns\": {:.2},\n    \"otag_hit_ns\": {:.2},\n    \
         \"payload_hit_ns\": {:.2},\n    \"payload_insert_ns\": {:.2},\n    \
         \"contended_mops\": {:.3}\n  }},\n  \"warm_run\": {{\n    \"nodes\": {},\n    \
         \"records\": {},\n    \"cold_secs\": {:.6},\n    \"warm_secs\": {:.6},\n    \
         \"warm_records_per_sec\": {:.1},\n    \"hit_ratio\": {:.4}\n  }}\n}}\n",
        m.lru_hit_ns,
        m.lru_insert_ns,
        m.otag_hit_ns,
        m.payload_hit_ns,
        m.payload_insert_ns,
        m.contended_mops,
        w.nodes,
        w.records,
        w.cold_secs,
        w.warm_secs,
        w.warm_records_per_sec,
        w.hit_ratio,
    )
}
