//! # eclipse-bench
//!
//! The benchmark harness reproducing every figure in the paper's
//! evaluation (Figs. 5–10) plus ablations of the design choices. Each
//! figure is a pure function from a `scale` factor (data-volume
//! multiplier; 1.0 = the paper's sizes) to the figure's series, consumed
//! by the `figures` binary, by the criterion benches, and by shape tests.

pub mod ablations;
pub mod cache_bench;
pub mod chaos_bench;
pub mod dst_bench;
pub mod elastic_bench;
pub mod epoch_bench;
pub mod live_bench;
pub mod net_bench;
pub mod straggler_bench;
pub mod tenancy_bench;
pub mod fig10;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
