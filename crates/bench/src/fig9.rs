//! Fig. 9 — EclipseMR vs Hadoop vs Spark across six applications,
//! normalized to the slowest framework per application.
//!
//! Paper setup: 250 GB datasets (15 GB for page rank), OS/buffer caches
//! emptied; iterative configs: k-means 5 iterations, page rank 2,
//! logistic regression 10; 1 GB cache/server for the iterative apps.
//! Findings: EclipseMR fastest everywhere except page rank, where Spark
//! is ~15% faster (big iteration outputs that EclipseMR persists to the
//! DHT FS); Hadoop omitted for k-means/LR ("an order of magnitude
//! slower"); Spark slightly worse than Hadoop on several non-iterative
//! ETL jobs, sort in particular.

use eclipse_baselines::{HadoopConfig, HadoopSim, SparkConfig, SparkSim};
use eclipse_core::{EclipseConfig, EclipseSim, JobSpec, SchedulerKind};
use eclipse_sched::LafConfig;
use eclipse_util::GB;
use eclipse_workloads::AppKind;

/// One application's times on each framework (seconds; `None` = omitted
/// as in the paper).
#[derive(Clone, Debug)]
pub struct Fig9Row {
    pub app: AppKind,
    pub eclipse_secs: f64,
    pub spark_secs: f64,
    pub hadoop_secs: Option<f64>,
}

impl Fig9Row {
    /// The slowest measured framework (the normalization base).
    pub fn slowest(&self) -> f64 {
        self.eclipse_secs.max(self.spark_secs).max(self.hadoop_secs.unwrap_or(0.0))
    }

    pub fn normalized(&self) -> (f64, f64, Option<f64>) {
        let base = self.slowest();
        (
            self.eclipse_secs / base,
            self.spark_secs / base,
            self.hadoop_secs.map(|h| h / base),
        )
    }
}

/// (app, iterations, dataset bytes at scale 1.0).
fn cases(scale: f64) -> Vec<(AppKind, u32, u64)> {
    let big = ((250.0 * scale).max(1.0) * GB as f64) as u64;
    let small = ((15.0 * scale).max(0.5) * GB as f64) as u64;
    vec![
        (AppKind::InvertedIndex, 1, big),
        (AppKind::WordCount, 1, big),
        (AppKind::Sort, 1, big),
        (AppKind::KMeans, 5, big),
        (AppKind::LogisticRegression, 10, big),
        (AppKind::PageRank, 2, small),
    ]
}

/// Reproduce Fig. 9.
pub fn fig9(scale: f64) -> Vec<Fig9Row> {
    cases(scale)
        .into_iter()
        .map(|(app, iterations, bytes)| {
            let spec = if iterations > 1 {
                JobSpec::iterative(app, "input", iterations)
            } else {
                JobSpec::batch(app, "input")
            };

            let mut eclipse = EclipseSim::new(EclipseConfig::paper_defaults(
                SchedulerKind::Laf(LafConfig::default()),
            ));
            eclipse.upload("input", bytes);
            let eclipse_secs = eclipse.run_job(&spec).elapsed;

            let mut spark = SparkSim::new(SparkConfig::paper_defaults());
            spark.upload("input", bytes);
            let spark_secs = spark.run_job(&spec).elapsed;

            // Hadoop omitted for k-means and logistic regression, as in
            // the paper.
            let hadoop_secs = if matches!(app, AppKind::KMeans | AppKind::LogisticRegression) {
                None
            } else {
                let mut hadoop = HadoopSim::new(HadoopConfig::paper_defaults());
                hadoop.upload("input", bytes);
                Some(hadoop.run_job(&spec).elapsed)
            };

            Fig9Row { app, eclipse_secs, spark_secs, hadoop_secs }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eclipse_fastest_except_pagerank() {
        let rows = fig9(1.0);
        for row in &rows {
            match row.app {
                AppKind::PageRank => {
                    // Spark within striking distance or ahead (paper:
                    // Spark ~15% faster; EclipseMR "at most 30% slower").
                    assert!(
                        row.eclipse_secs < row.spark_secs * 1.45,
                        "pagerank: eclipse {} spark {}",
                        row.eclipse_secs,
                        row.spark_secs
                    );
                }
                _ => {
                    assert!(
                        row.eclipse_secs < row.spark_secs,
                        "{:?}: eclipse {} spark {}",
                        row.app,
                        row.eclipse_secs,
                        row.spark_secs
                    );
                    if let Some(h) = row.hadoop_secs {
                        assert!(
                            row.eclipse_secs < h,
                            "{:?}: eclipse {} hadoop {h}",
                            row.app,
                            row.eclipse_secs
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn spark_worse_than_hadoop_on_sort() {
        let rows = fig9(1.0);
        let sort = rows.iter().find(|r| r.app == AppKind::Sort).unwrap();
        let hadoop = sort.hadoop_secs.unwrap();
        assert!(
            sort.spark_secs > hadoop * 0.9,
            "spark {} hadoop {hadoop} — Spark should not win sort clearly",
            sort.spark_secs
        );
    }

    #[test]
    fn kmeans_speedup_over_spark_is_large() {
        let rows = fig9(1.0);
        let km = rows.iter().find(|r| r.app == AppKind::KMeans).unwrap();
        // Paper: ~3.5×. Accept anything ≥ 2×.
        let speedup = km.spark_secs / km.eclipse_secs;
        assert!(speedup >= 2.0, "kmeans speedup {speedup}");
        assert!(km.hadoop_secs.is_none(), "Hadoop omitted for kmeans");
    }

    #[test]
    fn normalization() {
        let row = Fig9Row {
            app: AppKind::Sort,
            eclipse_secs: 50.0,
            spark_secs: 100.0,
            hadoop_secs: Some(80.0),
        };
        let (e, s, h) = row.normalized();
        assert_eq!((e, s, h), (0.5, 1.0, Some(0.8)));
    }
}
