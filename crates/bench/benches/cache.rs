//! Criterion wrapper over the cache-plane hot-path benchmarks (see
//! `eclipse_bench::cache_bench` for the measured scenarios; the
//! `cache_bench` binary snapshots the same numbers as JSON).

use criterion::{criterion_group, criterion_main, Criterion};
use eclipse_bench::cache_bench;
use std::hint::black_box;

fn bench_cache_plane(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_plane");
    // Each lib helper runs its own timed loop over `iters` operations;
    // criterion's outer loop just re-samples it. Keep the inner loop
    // small so a sample stays in criterion's budget.
    g.sample_size(10);
    g.bench_function("lru_hit_ns", |b| {
        b.iter(|| black_box(cache_bench::bench_lru_hit(50_000)))
    });
    g.bench_function("lru_insert_ns", |b| {
        b.iter(|| black_box(cache_bench::bench_lru_insert(50_000)))
    });
    g.bench_function("otag_hit_ns", |b| {
        b.iter(|| black_box(cache_bench::bench_otag_hit(50_000)))
    });
    g.bench_function("payload_hit_ns", |b| {
        b.iter(|| black_box(cache_bench::bench_payload_hit(20_000)))
    });
    g.bench_function("payload_insert_ns", |b| {
        b.iter(|| black_box(cache_bench::bench_payload_insert(20_000)))
    });
    g.finish();
}

criterion_group!(benches, bench_cache_plane);
criterion_main!(benches);
