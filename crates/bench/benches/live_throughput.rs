//! Live executor throughput: records/sec of real word-count jobs at
//! 1/4/8/16 virtual nodes. This is the hot-path benchmark the live
//! data-plane work is judged by (see DESIGN.md, "Live data plane").

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eclipse_bench::live_bench::{corpus, make_cluster, NODE_POINTS};
use eclipse_apps::WordCount;
use eclipse_core::ReusePolicy;

const CORPUS_BYTES: usize = 2 * 1024 * 1024;

fn live_throughput(c: &mut Criterion) {
    let (text, records) = corpus(CORPUS_BYTES);
    let mut g = c.benchmark_group("live_throughput");
    g.sample_size(10).throughput(Throughput::Elements(records));
    for &nodes in NODE_POINTS {
        let cluster = make_cluster(nodes, &text);
        let reducers = nodes.max(2);
        // Warm the iCache once so the timed loop measures the
        // steady-state map/shuffle/reduce pipeline.
        cluster.run_job(&WordCount, "input", "bench", reducers, ReusePolicy::default());
        g.bench_function(format!("wordcount/nodes={nodes}"), |b| {
            b.iter(|| {
                cluster.run_job(&WordCount, "input", "bench", reducers, ReusePolicy::default())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, live_throughput);
criterion_main!(benches);
