//! Micro-benchmarks of the EclipseMR building blocks: the SHA-1 hash,
//! ring lookups and routing, the LAF estimator, the LRU cache, and the
//! proactive-shuffle spill buffer.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eclipse_cache::{CacheKey, LruCache};
use eclipse_core::SpillBuffer;
use eclipse_ring::{Ring, Router, RoutingMode};
use eclipse_sched::{LafConfig, LafScheduler};
use eclipse_util::{sha1, HashKey, KeyHistogram};
use std::hint::black_box;

fn bench_sha1(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha1");
    for size in [64usize, 4096, 65536] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| black_box(sha1(black_box(&data))))
        });
    }
    g.finish();
}

fn bench_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring");
    let ring = Ring::with_servers_evenly_spaced(40, "n");
    let keys: Vec<HashKey> =
        (0..1024).map(|i| HashKey::of_name(&format!("k{i}"))).collect();
    g.bench_function("owner_of", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(ring.owner_of(black_box(keys[i])).unwrap().id)
        })
    });
    g.bench_function("replica_set", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(ring.replica_set(black_box(keys[i]), 2).unwrap())
        })
    });
    let one_hop = Router::build(&ring, RoutingMode::OneHop).unwrap();
    let chord = Router::build(&ring, RoutingMode::Chord).unwrap();
    let from = ring.node_ids()[0];
    g.bench_function("route_one_hop", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(one_hop.route(&ring, from, keys[i]).unwrap())
        })
    });
    g.bench_function("route_chord", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(chord.route(&ring, from, keys[i]).unwrap())
        })
    });
    g.finish();
}

fn bench_laf(c: &mut Criterion) {
    let mut g = c.benchmark_group("laf");
    let ring = Ring::with_servers_evenly_spaced(40, "n");
    let keys: Vec<HashKey> =
        (0..4096).map(|i| HashKey::of_name(&format!("k{i}"))).collect();
    g.bench_function("assign", |b| {
        let mut laf = LafScheduler::new(&ring, LafConfig::default());
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(laf.assign(black_box(keys[i])))
        })
    });
    g.bench_function("histogram_add", |b| {
        let mut h = KeyHistogram::new(4096);
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            h.add(black_box(keys[i]), 64);
        })
    });
    g.bench_function("cdf_partition_40", |b| {
        let mut h = KeyHistogram::new(4096);
        for &k in &keys {
            h.add(k, 64);
        }
        b.iter(|| black_box(h.to_cdf().partition(40)))
    });
    g.finish();
}

fn bench_cache_and_shuffle(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.bench_function("lru_put_get", |b| {
        let mut lru: LruCache<CacheKey> = LruCache::new(1 << 20);
        let keys: Vec<CacheKey> =
            (0..512).map(|i| CacheKey::Input(HashKey(i * 7919))).collect();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            lru.put(keys[i].clone(), 4096, i as f64, None);
            black_box(lru.get(&keys[i], i as f64))
        })
    });
    g.bench_function("spill_buffer_push", |b| {
        let mut buf: SpillBuffer<()> = SpillBuffer::new(64, 32 * 1024 * 1024);
        let keys: Vec<HashKey> = (0..1024).map(|i| HashKey(i * 104729)).collect();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(buf.push(keys[i], 1024, None))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sha1, bench_ring, bench_laf, bench_cache_and_shuffle);
criterion_main!(benches);
