//! Criterion benches regenerating each paper figure at reduced scale.
//!
//! These track the *cost of the reproduction pipeline itself* (schedulers,
//! caches, simulator) so regressions in the control-plane code show up as
//! slower figure generation. Absolute figure values come from the
//! `figures` binary at full scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig5_io_throughput", |b| {
        b.iter(|| black_box(eclipse_bench::fig5::fig5(black_box(0.1))))
    });
    g.bench_function("fig6a_sched_batch", |b| {
        b.iter(|| black_box(eclipse_bench::fig6::fig6a(black_box(0.05))))
    });
    g.bench_function("fig6b_sched_iterative", |b| {
        b.iter(|| black_box(eclipse_bench::fig6::fig6b(black_box(0.05))))
    });
    g.bench_function("fig7_laf_alpha", |b| {
        b.iter(|| black_box(eclipse_bench::fig7::fig7(black_box(0.05))))
    });
    g.bench_function("fig8_multijob", |b| {
        b.iter(|| black_box(eclipse_bench::fig8::fig8(black_box(0.05))))
    });
    g.bench_function("fig9_frameworks", |b| {
        b.iter(|| black_box(eclipse_bench::fig9::fig9(black_box(0.02))))
    });
    g.bench_function("fig10_iterative", |b| {
        b.iter(|| black_box(eclipse_bench::fig10::fig10(black_box(0.02))))
    });
    g.finish();

    let mut a = c.benchmark_group("ablations");
    a.sample_size(10);
    a.bench_function("routing_hops", |b| {
        b.iter(|| black_box(eclipse_bench::ablations::routing_hops(40, 500)))
    });
    a.bench_function("alpha_sweep", |b| {
        b.iter(|| black_box(eclipse_bench::ablations::alpha_sweep(400)))
    });
    a.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
