//! The simulator-driven EclipseMR executor.
//!
//! Drives the production control-plane crates — ring, DHT FS, distributed
//! cache, LAF/delay schedulers, proactive shuffle — against the
//! discrete-event cluster substrate. Every *decision* (who runs what,
//! where data is read, what gets cached) is made by the same code the
//! live executor uses; the simulator only answers "when does it finish",
//! which is what lets this reproduce the paper's 40-node / 250 GB
//! experiments on one machine.

use crate::job::{JobReport, JobSpec, ReadSource};
use crate::timeline::{TaskEvent, TaskKind, Timeline};
use eclipse_cache::{CacheKey, DistributedCache, LruCache, OutputTag};
use eclipse_dhtfs::{BlockInfo, DhtFs, DhtFsConfig};
use eclipse_ring::{NodeId, Ring};
use eclipse_sched::{DelayConfig, DelayScheduler, LafConfig, LafScheduler};
use eclipse_sim::{ClusterConfig, SimCluster, SimTime};
use eclipse_util::{HashKey, GB};
use eclipse_workloads::CostModel;

/// Which scheduling policy the executor runs.
#[derive(Clone, Debug)]
pub enum SchedulerKind {
    Laf(LafConfig),
    Delay(DelayConfig),
}

/// Executor configuration.
#[derive(Clone, Debug)]
pub struct EclipseConfig {
    pub cluster: ClusterConfig,
    pub scheduler: SchedulerKind,
    /// Distributed in-memory cache bytes per server.
    pub cache_per_node: u64,
    /// Modeled OS page-cache bytes per server. The paper's Fig. 6(b)
    /// finding — oCache does not beat the page cache for iteration
    /// outputs — emerges from this.
    pub page_cache_per_node: u64,
    /// DHT FS replication beyond the primary (2 in the paper).
    pub replicas: usize,
    /// Enable the §II-E misplaced-cache migration pass after every LAF
    /// re-partition (disabled in the paper's experiments).
    pub migration: bool,
    pub block_size: u64,
    /// Per-node CPU speed factors (padded with 1.0) — a heterogeneous /
    /// straggler cluster. Empty = homogeneous, the paper's testbed.
    pub node_speeds: Vec<f64>,
    /// Record-level reduce skew: Zipf exponent over reduce partitions
    /// (0 = uniform, the default; ~0.8 models word count's Zipf word
    /// frequencies — the paper's §I record-level skew).
    pub reduce_skew: f64,
    /// Hadoop-style speculative execution: when a map task lands on a
    /// below-nominal-speed node while a faster node has an idle slot, a
    /// backup copy runs there and the earlier finisher wins. Off by
    /// default (EclipseMR proper relies on LAF instead; the paper cites
    /// speculative scheduling as the rival approach to skew).
    pub speculation: bool,
}

impl EclipseConfig {
    /// The paper's testbed: 40 nodes, 1 GB cache/server, 128 MB blocks,
    /// two replicas, migration off.
    pub fn paper_defaults(scheduler: SchedulerKind) -> EclipseConfig {
        EclipseConfig {
            cluster: ClusterConfig::paper_testbed(),
            scheduler,
            cache_per_node: GB,
            // The OS page cache is shared with shuffle spills, iteration
            // outputs and every other write on the node; under a running
            // MapReduce workload its effective residency for *input*
            // blocks is small — and the paper's protocol empties it
            // between jobs anyway.
            page_cache_per_node: 2 * GB,
            replicas: 2,
            migration: false,
            block_size: eclipse_util::DEFAULT_BLOCK_SIZE,
            node_speeds: Vec::new(),
            speculation: false,
            reduce_skew: 0.0,
        }
    }

    /// Make some nodes slow: a heterogeneous cluster for the straggler
    /// ablation.
    pub fn with_node_speeds(mut self, speeds: Vec<f64>) -> EclipseConfig {
        self.node_speeds = speeds;
        self
    }

    pub fn with_speculation(mut self, on: bool) -> EclipseConfig {
        self.speculation = on;
        self
    }

    pub fn with_reduce_skew(mut self, zipf_exponent: f64) -> EclipseConfig {
        self.reduce_skew = zipf_exponent;
        self
    }

    pub fn with_nodes(mut self, nodes: usize) -> EclipseConfig {
        self.cluster.nodes = nodes;
        self
    }

    pub fn with_cache(mut self, bytes_per_node: u64) -> EclipseConfig {
        self.cache_per_node = bytes_per_node;
        self
    }
}

enum Sched {
    Laf(LafScheduler),
    Delay(DelayScheduler),
}

/// Simulated EclipseMR deployment.
pub struct EclipseSim {
    cfg: EclipseConfig,
    ring: Ring,
    cluster: SimCluster,
    fs: DhtFs,
    cache: DistributedCache,
    sched: Sched,
    /// Per-node OS page cache of recently written/read disk data.
    page_cache: Vec<LruCache<HashKey>>,
    /// Nodes still in the ring (failed nodes keep their index but never
    /// pull tasks again).
    alive: Vec<bool>,
    /// Recorded task events when enabled via [`record_timeline`].
    timeline: Option<Timeline>,
    /// Current submission clock.
    clock: f64,
    repartitions_seen: u64,
}

/// Pending tasks bucketed by the server whose range currently covers
/// them, in global submission order. Servers *pull*: the earliest-free
/// server takes the oldest task in its own bucket, or steals the oldest
/// pending task cluster-wide when its bucket is empty.
struct PullQueue<T> {
    buckets: Vec<std::collections::VecDeque<(u64, T)>>,
    /// Last time each bucket's own server launched one of its tasks
    /// (Spark's delay timer resets on every local launch).
    last_local: Vec<f64>,
    len: usize,
}

impl<T> PullQueue<T> {
    fn new(nodes: usize) -> PullQueue<T> {
        PullQueue {
            buckets: (0..nodes).map(|_| std::collections::VecDeque::new()).collect(),
            last_local: vec![0.0; nodes],
            len: 0,
        }
    }

    fn push(&mut self, bucket: usize, seq: u64, item: T) {
        self.buckets[bucket].push_back((seq, item));
        self.len += 1;
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Oldest task in `bucket` (locality pull) at time `t`.
    fn pop_local(&mut self, bucket: usize, t: f64) -> Option<(u64, T)> {
        let item = self.buckets[bucket].pop_front();
        if item.is_some() {
            self.len -= 1;
            self.last_local[bucket] = t;
        }
        item
    }

    /// Oldest pending task cluster-wide (unconditional steal — LAF never
    /// idles a slot).
    fn pop_oldest(&mut self) -> Option<(u64, T)> {
        let bucket = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.front().map(|(seq, _)| (*seq, i)))
            .min()
            .map(|(_, i)| i)?;
        let item = self.buckets[bucket].pop_front();
        if item.is_some() {
            self.len -= 1;
        }
        item
    }

    /// Oldest task among buckets whose delay timer has expired at `t`:
    /// a bucket is stealable only if its own server has not launched a
    /// local task within the last `wait` seconds. A hot bucket that keeps
    /// launching locally never yields its tasks — Spark's launch-reset
    /// pathology, the reason delay scheduling keeps its cache hits but
    /// loses the load balance.
    fn pop_oldest_expired(&mut self, t: f64, wait: f64) -> Option<(u64, T)> {
        let bucket = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(i, b)| !b.is_empty() && t - self.last_local[*i] >= wait)
            .filter_map(|(i, b)| b.front().map(|(seq, _)| (*seq, i)))
            .min()
            .map(|(_, i)| i)?;
        let item = self.buckets[bucket].pop_front();
        if item.is_some() {
            self.len -= 1;
        }
        item
    }

    /// Earliest time any nonempty bucket's delay timer expires.
    fn earliest_expiry(&self, wait: f64) -> Option<f64> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(i, _)| self.last_local[i] + wait)
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Re-assign every pending task to a new bucket (after a LAF
    /// re-partition), preserving global order within buckets.
    fn rebucket(&mut self, mut bucket_of: impl FnMut(&T) -> usize) {
        let mut all: Vec<(u64, T)> =
            self.buckets.iter_mut().flat_map(|b| b.drain(..)).collect();
        all.sort_by_key(|(seq, _)| *seq);
        for (seq, item) in all {
            let b = bucket_of(&item);
            self.buckets[b].push_back((seq, item));
        }
    }
}

/// One pull decision: which task the freed server takes and when it may
/// start (delayed when the server stole past its locality wait).
struct Pulled<T> {
    item: T,
    not_before: f64,
    #[allow(dead_code)]
    stolen: bool,
}

/// Outcome of a pull attempt.
enum PullOutcome<T> {
    Task(Pulled<T>),
    /// Nothing local and nothing stealable yet: the server's slots idle
    /// until this time (the delay scheduler declining offers).
    Blocked(f64),
}

impl EclipseSim {
    pub fn new(cfg: EclipseConfig) -> EclipseSim {
        let ring = Ring::with_servers_evenly_spaced(cfg.cluster.nodes, "worker");
        let cluster = SimCluster::with_speeds(cfg.cluster, &cfg.node_speeds);
        let fs = DhtFs::new(
            ring.clone(),
            DhtFsConfig { block_size: cfg.block_size, replicas: cfg.replicas },
        );
        let cache = DistributedCache::new(&ring, cfg.cache_per_node);
        let sched = match &cfg.scheduler {
            SchedulerKind::Laf(c) => Sched::Laf(LafScheduler::new(&ring, *c)),
            SchedulerKind::Delay(c) => Sched::Delay(DelayScheduler::new(&ring, *c)),
        };
        let page_cache =
            (0..cfg.cluster.nodes).map(|_| LruCache::new(cfg.page_cache_per_node)).collect();
        let alive = vec![true; cfg.cluster.nodes];
        EclipseSim {
            cfg,
            ring,
            cluster,
            fs,
            cache,
            sched,
            page_cache,
            alive,
            timeline: None,
            clock: 0.0,
            repartitions_seen: 0,
        }
    }

    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    pub fn fs(&self) -> &DhtFs {
        &self.fs
    }

    pub fn cache(&self) -> &DistributedCache {
        &self.cache
    }

    pub fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Start (or restart) recording per-task events.
    pub fn record_timeline(&mut self) {
        self.timeline = Some(Timeline::default());
    }

    /// The recorded timeline, if recording was enabled.
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_ref()
    }

    fn log_task(&mut self, kind: TaskKind, node: u32, start: f64, end: f64, source: Option<&'static str>) {
        if let Some(t) = self.timeline.as_mut() {
            t.push(TaskEvent { kind, node, start, end, source });
        }
    }

    /// Advance the submission clock to at least `t` (job arrivals in a
    /// stream: the next job may not be submitted before its arrival
    /// time, but a backlogged cluster keeps its later clock).
    pub fn advance_to(&mut self, t: f64) {
        if t > self.clock {
            self.clock = t;
        }
    }

    /// Upload an input file to the DHT file system (charged as free —
    /// the paper's experiments pre-load inputs).
    pub fn upload(&mut self, name: &str, bytes: u64) {
        self.fs.upload(name, "hibench", bytes).expect("upload");
    }

    /// Empty the distributed in-memory caches and the page caches — the
    /// paper's cold-cache protocol before each run.
    pub fn drop_caches(&mut self) {
        self.cache.clear_all();
        for pc in &mut self.page_cache {
            pc.clear();
        }
    }

    /// Empty only the OS page caches — the paper's per-job protocol
    /// (the distributed in-memory cache is the system under test and
    /// stays warm across jobs in the Fig. 7/8 sweeps).
    pub fn drop_page_caches(&mut self) {
        for pc in &mut self.page_cache {
            pc.clear();
        }
    }

    /// Hit ratio of the distributed cache since construction.
    pub fn cache_hit_ratio(&self) -> f64 {
        self.cache.hit_ratio()
    }

    /// Tasks-per-slot standard deviation across all map slots (§III-C).
    pub fn tasks_per_slot_stdev(&self) -> f64 {
        let counts: Vec<f64> = self
            .cluster
            .map_tasks_per_slot()
            .iter()
            .map(|&c| c as f64)
            .collect();
        eclipse_util::stats::stdev(&counts)
    }

    fn node_count(&self) -> usize {
        self.cfg.cluster.nodes
    }

    /// The earliest-free node and its free time (the next pull event),
    /// skipping nodes blocked by the delay scheduler until their timer.
    fn next_puller(&self, floor: f64, blocked: &[f64]) -> (usize, f64) {
        self.cluster
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| self.alive[*i])
            .map(|(i, n)| {
                let free = n.map_slots.next_free(SimTime(floor)).secs().max(blocked[i]);
                // Ties (several nodes with a free slot at the same time)
                // go to the node with the most idle slots: resource
                // offers rotate over the cluster instead of letting node
                // 0 drain its whole slot pool first — which would steal
                // the other nodes' local tasks on small jobs.
                let idle = n.map_slots.idle_slots(SimTime(free));
                (i, free, idle)
            })
            .min_by(|a, b| {
                a.1.partial_cmp(&b.1).unwrap().then(b.2.cmp(&a.2)).then(a.0.cmp(&b.0))
            })
            .map(|(i, free, _)| (i, free))
            .expect("at least one alive node")
    }

    /// A full-speed node with an idle map slot at `t`, if any (the
    /// speculation target).
    fn idle_fast_node(&self, t: f64) -> Option<usize> {
        self.cluster
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| {
                self.alive[*i]
                    && self.cluster.speed_of(*i) >= 1.0
                    && n.map_slots.idle_slots(SimTime(t)) > 0
            })
            .max_by_key(|(i, n)| (n.map_slots.idle_slots(SimTime(t)), usize::MAX - i))
            .map(|(i, _)| i)
    }

    /// Let the freed server `node` pull a task at time `t` under the
    /// configured policy, recording scheduler state updates.
    fn pull_task<T: Clone>(
        &mut self,
        queue: &mut PullQueue<T>,
        node: usize,
        t: f64,
        key_of: impl Fn(&T) -> HashKey,
    ) -> Option<PullOutcome<T>> {
        match &mut self.sched {
            Sched::Laf(laf) => {
                let pulled = match queue.pop_local(node, t) {
                    Some((_, item)) => Pulled { item, not_before: t, stolen: false },
                    None => {
                        let (_, item) = queue.pop_oldest()?;
                        Pulled { item, not_before: t, stolen: true }
                    }
                };
                // Record the access; a re-partition re-buckets the
                // pending tasks and moves the cache ranges.
                let before = laf.repartitions();
                laf.assign(key_of(&pulled.item));
                if laf.repartitions() != before {
                    self.repartitions_seen += 1;
                    let ranges = laf.ranges().to_vec();
                    self.cache.set_ranges(ranges.clone());
                    if self.cfg.migration {
                        self.cache.migrate_misplaced(t);
                    }
                    queue.rebucket(|item| {
                        let k = key_of(item);
                        ranges
                            .iter()
                            .find(|(_, r)| r.contains(k))
                            .map(|(n, _)| n.index())
                            .expect("ranges tile the ring")
                    });
                }
                Some(PullOutcome::Task(pulled))
            }
            Sched::Delay(delay) => match queue.pop_local(node, t) {
                Some((_, item)) => {
                    Some(PullOutcome::Task(Pulled { item, not_before: t, stolen: false }))
                }
                None => {
                    // Delay scheduling: a non-matching server may only
                    // steal from a bucket whose delay timer expired — and
                    // every local launch resets that timer, so a busy hot
                    // bucket keeps its tasks (and its cache hits) while
                    // its server grinds through them (Spark's launch-
                    // reset pathology, the 2.86× slowdown of §III-C).
                    let wait = delay.config().effective_wait();
                    match queue.pop_oldest_expired(t, wait) {
                        Some((_, item)) => {
                            Some(PullOutcome::Task(Pulled { item, not_before: t, stolen: true }))
                        }
                        None => {
                            let until = queue.earliest_expiry(wait).unwrap_or(t);
                            Some(PullOutcome::Blocked(until.max(t + 1e-3)))
                        }
                    }
                }
            },
        }
    }

    /// Acquire one map task's input bytes at `at` on `exec`; returns
    /// (completion time, source). Consults, in order: distributed
    /// in-memory cache on the executing server, OS page cache, then the
    /// DHT file system (local or remote replica).
    fn read_input(
        &mut self,
        exec: NodeId,
        block: &BlockInfo,
        at: f64,
        cache_input: bool,
        report: &mut JobReport,
    ) -> f64 {
        let key = CacheKey::Input(block.key);
        report.cache_lookups += 1;
        if self.cache.with_node(exec, |c| c.get(&key, at).is_some()) {
            report.cache_hits += 1;
            report.record_read(ReadSource::LocalCache, block.size);
            return self.cluster.mem_read(SimTime(at), exec.index(), block.size).secs();
        }
        if self.page_cache[exec.index()].get(&block.key, at).is_some() {
            report.record_read(ReadSource::PageCache, block.size);
            let done = self.cluster.mem_read(SimTime(at), exec.index(), block.size).secs();
            if cache_input {
                self.cache.with_node(exec, |c| c.put(key, block.size, at, None));
            }
            return done;
        }
        // Read the replica whose disk frees earliest — the reader holds a
        // copy itself whenever the cache range has not drifted past the
        // predecessor/successor arcs (§II-E's misalignment discussion).
        let holder = {
            let holders = self.fs.block_holders(block.id).expect("block exists");
            if holders.contains(&exec) {
                exec
            } else {
                holders
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        let fa = self.cluster.nodes[a.index()].disk.available_at(SimTime(at)).secs();
                        let fb = self.cluster.nodes[b.index()].disk.available_at(SimTime(at)).secs();
                        fa.partial_cmp(&fb).unwrap().then(a.cmp(&b))
                    })
                    .expect("replicated")
            }
        };
        let done = if holder == exec {
            report.record_read(ReadSource::LocalDisk, block.size);
            self.cluster.disk_read(SimTime(at), exec.index(), block.size).secs()
        } else {
            report.record_read(ReadSource::RemoteDisk, block.size);
            self.cluster
                .remote_disk_read(SimTime(at), holder.index(), exec.index(), block.size)
                .secs()
        };
        // Disk reads populate the OS page cache on the executing node and
        // (policy permitting) the distributed in-memory cache.
        self.page_cache[exec.index()].put(block.key, block.size, at, None);
        if cache_input {
            self.cache.with_node(exec, |c| c.put(key, block.size, at, None));
        }
        done
    }

    /// Ring node that hosts reduce partition `r` of `total` (reducers run
    /// where the intermediate hash keys land in the DHT FS, §II-C).
    fn reducer_node(&self, r: usize, total: usize) -> NodeId {
        let key = HashKey::from_unit((r as f64 + 0.5) / total as f64);
        self.ring.owner_of(key).expect("ring non-empty").id
    }

    /// Run one MapReduce round; returns the report. `extra_input_per_map`
    /// models iteration state read by every map task (e.g. previous page
    /// rank ranks); `iter_tag` labels oCache entries for this round.
    fn run_round(
        &mut self,
        spec: &JobSpec,
        cost: &CostModel,
        submit: f64,
        extra_input_per_map: u64,
        prev_iter_tag: Option<&str>,
        iter_tag: Option<&str>,
    ) -> JobReport {
        let mut report =
            JobReport { tasks_per_node: vec![0; self.node_count()], ..JobReport::default() };
        let meta = self.fs.open(&spec.input, &spec.user).expect("input uploaded").clone();
        let reducers = spec.reducers.max(1);

        // ---- Map phase --------------------------------------------------
        // Placement is interleaved with execution: the scheduler sees the
        // cluster's true slot horizons for every decision, exactly as the
        // live system does when servers pull tasks as slots free.
        let mut map_phase_end = submit;
        let mut reducer_ready = vec![submit; reducers];
        let reducer_nodes: Vec<NodeId> =
            (0..reducers).map(|r| self.reducer_node(r, reducers)).collect();
        let mut shuffle_bytes_total = 0u64;

        // Seed the pull queue: tasks bucketed by current range owners.
        let mut queue: PullQueue<BlockInfo> = PullQueue::new(self.node_count());
        let owner_ranges: Vec<(NodeId, eclipse_util::KeyRange)> = match &self.sched {
            Sched::Laf(laf) => laf.ranges().to_vec(),
            Sched::Delay(d) => d.ranges().to_vec(),
        };
        for (seq, block) in meta.blocks.iter().enumerate() {
            let bucket = owner_ranges
                .iter()
                .find(|(_, r)| r.contains(block.key))
                .map(|(n, _)| n.index())
                .expect("ranges tile the ring");
            queue.push(bucket, seq as u64, *block);
        }

        let mut blocked = vec![submit; self.node_count()];
        while !queue.is_empty() {
            let (node, t) = self.next_puller(submit, &blocked);
            let pulled = match self.pull_task(&mut queue, node, t, |b| b.key) {
                Some(PullOutcome::Task(p)) => p,
                Some(PullOutcome::Blocked(until)) => {
                    blocked[node] = until;
                    continue;
                }
                None => break,
            };
            let exec = NodeId(node as u32);
            let block = pulled.item;
            report.tasks_per_node[exec.index()] += 1;
            report.map_tasks += 1;
            let slot_start = self.cluster.nodes[exec.index()]
                .map_slots
                .next_free(SimTime(pulled.not_before))
                .secs();
            // Input block read.
            let before_sources = report.read_bytes.clone();
            let mut io_done =
                self.read_input(exec, &block, slot_start, spec.reuse.cache_input, &mut report);
            let source = report
                .read_bytes
                .iter()
                .find(|(k, v)| before_sources.get(*k).copied().unwrap_or(0) < **v)
                .map(|(k, _)| *k);
            // Iteration-state read (previous round's output share).
            if extra_input_per_map > 0 {
                io_done = io_done.max(self.read_iter_state(
                    exec,
                    extra_input_per_map,
                    slot_start,
                    spec,
                    prev_iter_tag,
                    &mut report,
                ));
            }
            let cpu = self.cluster.cpu_time(exec.index(), cost.map_cpu_secs(block.size));
            let dur = (io_done - slot_start).max(0.0) + cpu;
            let (start, mut end) = self.cluster.nodes[exec.index()]
                .map_slots
                .run(SimTime(pulled.not_before), dur);
            debug_assert!((start.secs() - slot_start).abs() < 1e-6);
            // Speculative execution: back up a straggling copy on an
            // idle full-speed node; the earlier finisher wins.
            if self.cfg.speculation && self.cluster.speed_of(exec.index()) < 1.0 {
                if let Some(backup) = self.idle_fast_node(slot_start) {
                    let b_cpu = self.cluster.cpu_time(backup, cost.map_cpu_secs(block.size));
                    // The backup reads remotely from a replica (never
                    // cached there) — charge a conservative remote read.
                    let b_io = self.cluster.disk_latency(backup, block.size)
                        + self.cluster.net_latency(exec.index(), backup, block.size);
                    let (_, b_end) = self.cluster.nodes[backup]
                        .map_slots
                        .run(SimTime(slot_start), b_io + b_cpu);
                    if b_end.secs() < end.secs() {
                        end = b_end;
                    }
                }
            }
            map_phase_end = map_phase_end.max(end.secs());
            self.log_task(TaskKind::Map, exec.0, start.secs(), end.secs(), source);

            // ---- Proactive shuffle (overlapped with the map) ------------
            let im = cost.intermediate_bytes(block.size);
            if im > 0 {
                let share = im / reducers as u64;
                for (r, &dest) in reducer_nodes.iter().enumerate() {
                    let bytes = if r == 0 { im - share * (reducers as u64 - 1) } else { share };
                    if bytes == 0 {
                        continue;
                    }
                    shuffle_bytes_total += bytes;
                    // Push begins while the map runs (spill pipeline): the
                    // network reservation starts at the map's start.
                    let net_done =
                        self.cluster.network.transfer(start, exec.index(), dest.index(), bytes);
                    // Intermediate results persist in the reducer-side DHT
                    // FS (and hence its page cache). Latency-only: these
                    // writes happen chronologically between other nodes'
                    // reservations, so pushing the disk horizon here would
                    // corrupt the FIFO model.
                    let disk_done = net_done.secs() + self.cluster.disk_latency(dest.index(), bytes);
                    let ready = end.secs().max(disk_done);
                    reducer_ready[r] = reducer_ready[r].max(ready);
                }
            } else {
                for ready in reducer_ready.iter_mut() {
                    *ready = ready.max(end.secs());
                }
            }
        }
        report.map_elapsed = map_phase_end - submit;
        report.shuffle_bytes = shuffle_bytes_total;

        // ---- Reduce phase -----------------------------------------------
        let total_im: u64 = cost.intermediate_bytes(meta.size);
        let iter_out_total = cost.iter_output_bytes(meta.size);
        let shares = CostModel::reducer_shares(total_im, reducers, self.cfg.reduce_skew);
        let mut job_end = map_phase_end;
        for (r, &node) in reducer_nodes.iter().enumerate() {
            report.reduce_tasks += 1;
            let bytes = shares[r];
            // Freshly spilled data is in the reducer's page cache.
            let read_done = if bytes > 0 {
                self.cluster.mem_read(SimTime(reducer_ready[r]), node.index(), bytes).secs()
            } else {
                reducer_ready[r]
            };
            let cpu = self.cluster.cpu_time(node.index(), cost.reduce_cpu_secs(bytes));
            let dur = (read_done - reducer_ready[r]).max(0.0) + cpu;
            let (red_start, end) =
                self.cluster.nodes[node.index()].reduce_slots.run(SimTime(reducer_ready[r]), dur);
            self.log_task(TaskKind::Reduce, node.0, red_start.secs(), end.secs(), None);
            // Output write: final job output or iteration output.
            let out_bytes = if iter_out_total > 0 && spec.iterations > 1 {
                iter_out_total / reducers as u64
            } else {
                cost.output_bytes(bytes)
            };
            let mut end_t = end.secs();
            if out_bytes > 0 {
                let wrote =
                    self.cluster.disk_read(SimTime(end.secs()), node.index(), out_bytes).secs();
                // Writes land in the page cache (the Fig. 6(b) effect) and
                // optionally in oCache under this iteration's tag.
                let out_key = HashKey::of_name(&format!("{}/iterout/{r}", spec.input));
                self.page_cache[node.index()].put(out_key, out_bytes, end.secs(), None);
                if spec.reuse.cache_outputs {
                    if let Some(tag) = iter_tag {
                        let okey = CacheKey::Output(OutputTag::new(
                            spec.app.name(),
                            format!("{tag}/{r}"),
                        ));
                        self.cache.with_node(node, |c| {
                            c.put(okey, out_bytes, end.secs(), spec.reuse.ocache_ttl)
                        });
                    }
                }
                end_t = end_t.max(wrote);
            }
            job_end = job_end.max(end_t);
        }

        report.elapsed = job_end - submit;
        report
    }

    /// Read this map task's share of the previous iteration's output:
    /// oCache first (if the application cached it), then the page cache
    /// (it was just written through the DHT FS), then disk.
    fn read_iter_state(
        &mut self,
        exec: NodeId,
        bytes: u64,
        at: f64,
        spec: &JobSpec,
        prev_iter_tag: Option<&str>,
        report: &mut JobReport,
    ) -> f64 {
        if spec.reuse.cache_outputs {
            if let Some(tag) = prev_iter_tag {
                // Iteration-output shares are tagged per reducer and live
                // on the reducer's node; a map task resolves its share's
                // home by hash key — no central directory (§II-B).
                let reducers = spec.reducers.max(1);
                let r = exec.index() % reducers;
                let home = self.reducer_node(r, reducers);
                let okey =
                    CacheKey::Output(OutputTag::new(spec.app.name(), format!("{tag}/{r}")));
                report.cache_lookups += 1;
                if self.cache.with_node(home, |c| c.get(&okey, at).is_some()) {
                    // Iteration state is consumed in fine-grained shares
                    // interleaved with the map work; charge it at memory
                    // speed without a bulk transfer (each task's slice is
                    // small and pipelined — modeling it as a full remote
                    // copy per task would double-count the shuffle that
                    // already moved the data).
                    report.cache_hits += 1;
                    report.record_read(ReadSource::LocalCache, bytes);
                    return self.cluster.mem_read(SimTime(at), exec.index(), bytes).secs();
                }
            }
        }
        let state_key = HashKey::of_name(&format!("{}/iterstate/{}", spec.input, exec.0));
        if self.page_cache[exec.index()].get(&state_key, at).is_some() {
            report.record_read(ReadSource::PageCache, bytes);
            return self.cluster.mem_read(SimTime(at), exec.index(), bytes).secs();
        }
        report.record_read(ReadSource::LocalDisk, bytes);
        let done = self.cluster.disk_read(SimTime(at), exec.index(), bytes).secs();
        self.page_cache[exec.index()].put(state_key, bytes, at, None);
        done
    }

    /// Run a (possibly iterative) job to completion. Advances the clock.
    pub fn run_job(&mut self, spec: &JobSpec) -> JobReport {
        let cost = CostModel::eclipse(spec.app);
        self.run_job_with_cost(spec, &cost)
    }

    /// Run with an explicit cost model (baselines reuse this executor
    /// with JVM-calibrated models).
    pub fn run_job_with_cost(&mut self, spec: &JobSpec, cost: &CostModel) -> JobReport {
        let submit = self.clock;
        if spec.iterations <= 1 {
            let report = self.run_round(spec, cost, submit, 0, None, None);
            self.clock = submit + report.elapsed;
            return report;
        }
        // Iterative driver: each round reads the input and the previous
        // round's output, and writes this round's output.
        let meta_size = self.fs.stat(&spec.input).expect("input uploaded").size;
        let blocks = eclipse_util::num_blocks(meta_size, self.cfg.block_size).max(1);
        let iter_out = cost.iter_output_bytes(meta_size);
        let mut combined =
            JobReport { tasks_per_node: vec![0; self.node_count()], ..JobReport::default() };
        let mut at = submit;
        for iter in 0..spec.iterations {
            let prev_tag = (iter > 0).then(|| format!("iter{}", iter - 1));
            let tag = format!("iter{iter}");
            let extra = if iter > 0 { iter_out / blocks } else { 0 };
            let r = self.run_round(spec, cost, at, extra, prev_tag.as_deref(), Some(&tag));
            // Iteration k's output supersedes iteration k-1's: invalidate
            // the stale tags so they stop evicting useful input blocks
            // (the application-controlled invalidation of §II-C).
            if spec.reuse.cache_outputs && iter > 0 {
                let reducers = spec.reducers.max(1);
                for rr in 0..reducers {
                    let okey = CacheKey::Output(OutputTag::new(
                        spec.app.name(),
                        format!("iter{}/{rr}", iter - 1),
                    ));
                    let home = self.reducer_node(rr, reducers);
                    self.cache.with_node(home, |c| c.invalidate(&okey));
                }
            }
            at += r.elapsed;
            combined.iteration_times.push(r.elapsed);
            combined.map_tasks += r.map_tasks;
            combined.reduce_tasks += r.reduce_tasks;
            combined.cache_hits += r.cache_hits;
            combined.cache_lookups += r.cache_lookups;
            combined.shuffle_bytes += r.shuffle_bytes;
            for (k, v) in r.read_bytes {
                *combined.read_bytes.entry(k).or_insert(0) += v;
            }
            for (i, c) in r.tasks_per_node.iter().enumerate() {
                combined.tasks_per_node[i] += c;
            }
            combined.map_elapsed += r.map_elapsed;
        }
        combined.elapsed = at - submit;
        self.clock = at;
        combined
    }

    /// Run a raw access trace: each entry is one map task that reads a
    /// block-sized object at the given ring key (the Fig. 7 skewed-grep
    /// harness, where tasks repeatedly access a non-uniform key
    /// population). Objects live in the DHT FS at their key's owner (and
    /// its replicas) and are cached in iCache on access.
    pub fn run_trace(
        &mut self,
        keys: &[HashKey],
        bytes_per_access: u64,
        cost: &CostModel,
    ) -> JobReport {
        let submit = self.clock;
        let mut report =
            JobReport { tasks_per_node: vec![0; self.node_count()], ..JobReport::default() };
        let mut end_max = submit;
        // Bucket the trace by current range owners; servers pull.
        let mut queue: PullQueue<HashKey> = PullQueue::new(self.node_count());
        let owner_ranges: Vec<(NodeId, eclipse_util::KeyRange)> = match &self.sched {
            Sched::Laf(laf) => laf.ranges().to_vec(),
            Sched::Delay(d) => d.ranges().to_vec(),
        };
        for (seq, &hkey) in keys.iter().enumerate() {
            let bucket = owner_ranges
                .iter()
                .find(|(_, r)| r.contains(hkey))
                .map(|(n, _)| n.index())
                .expect("ranges tile the ring");
            queue.push(bucket, seq as u64, hkey);
        }
        let mut blocked = vec![submit; self.node_count()];
        while !queue.is_empty() {
            let (node, t) = self.next_puller(submit, &blocked);
            let pulled = match self.pull_task(&mut queue, node, t, |k| *k) {
                Some(PullOutcome::Task(p)) => p,
                Some(PullOutcome::Blocked(until)) => {
                    blocked[node] = until;
                    continue;
                }
                None => break,
            };
            let exec = NodeId(node as u32);
            let hkey = pulled.item;
            report.tasks_per_node[exec.index()] += 1;
            report.map_tasks += 1;
            let slot_start = self.cluster.nodes[exec.index()]
                .map_slots
                .next_free(SimTime(pulled.not_before))
                .secs();
            // Data acquisition: iCache → page cache → DHT FS replica.
            let key = CacheKey::Input(hkey);
            report.cache_lookups += 1;
            let io_done = if self.cache.with_node(exec, |c| c.get(&key, slot_start).is_some()) {
                report.cache_hits += 1;
                report.record_read(ReadSource::LocalCache, bytes_per_access);
                self.cluster.mem_read(SimTime(slot_start), exec.index(), bytes_per_access).secs()
            } else if self.page_cache[exec.index()].get(&hkey, slot_start).is_some() {
                report.record_read(ReadSource::PageCache, bytes_per_access);
                let d = self
                    .cluster
                    .mem_read(SimTime(slot_start), exec.index(), bytes_per_access)
                    .secs();
                self.cache.with_node(exec, |c| c.put(key, bytes_per_access, slot_start, None));
                d
            } else {
                let holders = self.ring.replica_set(hkey, self.cfg.replicas).expect("ring");
                let src = if holders.contains(&exec) {
                    exec
                } else {
                    holders
                        .iter()
                        .copied()
                        .min_by(|&a, &b| {
                            let fa = self.cluster.nodes[a.index()]
                                .disk
                                .available_at(SimTime(slot_start))
                                .secs();
                            let fb = self.cluster.nodes[b.index()]
                                .disk
                                .available_at(SimTime(slot_start))
                                .secs();
                            fa.partial_cmp(&fb).unwrap().then(a.cmp(&b))
                        })
                        .expect("replicated")
                };
                let d = if src == exec {
                    report.record_read(ReadSource::LocalDisk, bytes_per_access);
                    self.cluster
                        .disk_read(SimTime(slot_start), exec.index(), bytes_per_access)
                        .secs()
                } else {
                    report.record_read(ReadSource::RemoteDisk, bytes_per_access);
                    self.cluster
                        .remote_disk_read(
                            SimTime(slot_start),
                            src.index(),
                            exec.index(),
                            bytes_per_access,
                        )
                        .secs()
                };
                self.page_cache[exec.index()].put(hkey, bytes_per_access, slot_start, None);
                self.cache.with_node(exec, |c| c.put(key, bytes_per_access, slot_start, None));
                d
            };
            let cpu = self.cluster.cpu_time(exec.index(), cost.map_cpu_secs(bytes_per_access));
            let dur = (io_done - slot_start).max(0.0) + cpu;
            let (_, end) =
                self.cluster.nodes[exec.index()].map_slots.run(SimTime(pulled.not_before), dur);
            end_max = end_max.max(end.secs());
        }
        report.map_elapsed = end_max - submit;
        report.elapsed = end_max - submit;
        self.clock = end_max;
        report
    }

    /// Run several jobs concurrently: all submitted at the same instant,
    /// competing for slots, disks and the network (Fig. 8's setup).
    /// Returns one report per job, order-matched to `specs`.
    pub fn run_concurrent(&mut self, specs: &[JobSpec]) -> Vec<JobReport> {
        // One merged pull loop over every job's map tasks (iterative jobs
        // contribute one pass per iteration), interleaved round-robin in
        // submission order. Approximation vs. the sequential driver:
        // iteration barriers inside a job are relaxed — pass k+1's tasks
        // are eligible while pass k drains. The contention picture (slots,
        // disks, caches shared by seven jobs) is what Fig. 8 measures.
        let submit = self.clock;
        let n_jobs = specs.len();
        let mut reports: Vec<JobReport> = specs
            .iter()
            .map(|_| JobReport { tasks_per_node: vec![0; self.node_count()], ..Default::default() })
            .collect();
        let costs: Vec<CostModel> = specs.iter().map(|s| CostModel::eclipse(s.app)).collect();
        let metas: Vec<_> = specs
            .iter()
            .map(|s| self.fs.open(&s.input, &s.user).expect("input uploaded").clone())
            .collect();

        // Round-robin merge of every job's passes of map tasks.
        let owner_ranges: Vec<(NodeId, eclipse_util::KeyRange)> = match &self.sched {
            Sched::Laf(laf) => laf.ranges().to_vec(),
            Sched::Delay(d) => d.ranges().to_vec(),
        };
        let mut queue: PullQueue<(usize, BlockInfo, u32)> = PullQueue::new(self.node_count());
        let mut cursors: Vec<(u32, usize)> = vec![(0, 0); n_jobs]; // (pass, block idx)
        let mut seq = 0u64;
        loop {
            let mut progressed = false;
            for (j, spec) in specs.iter().enumerate() {
                let (pass, idx) = cursors[j];
                if pass >= spec.iterations.max(1) {
                    continue;
                }
                let block = metas[j].blocks[idx];
                let bucket = owner_ranges
                    .iter()
                    .find(|(_, r)| r.contains(block.key))
                    .map(|(n, _)| n.index())
                    .expect("ranges tile the ring");
                queue.push(bucket, seq, (j, block, pass));
                seq += 1;
                progressed = true;
                cursors[j] = if idx + 1 == metas[j].blocks.len() {
                    (pass + 1, 0)
                } else {
                    (pass, idx + 1)
                };
            }
            if !progressed {
                break;
            }
        }

        // ---- Merged map phase -------------------------------------------
        let mut map_end = vec![submit; n_jobs];
        let mut blocked = vec![submit; self.node_count()];
        while !queue.is_empty() {
            let (node, t) = self.next_puller(submit, &blocked);
            let pulled = match self.pull_task(&mut queue, node, t, |(_, b, _)| b.key) {
                Some(PullOutcome::Task(p)) => p,
                Some(PullOutcome::Blocked(until)) => {
                    blocked[node] = until;
                    continue;
                }
                None => break,
            };
            let (j, block, _pass) = pulled.item;
            let exec = NodeId(node as u32);
            reports[j].tasks_per_node[exec.index()] += 1;
            reports[j].map_tasks += 1;
            let slot_start = self.cluster.nodes[exec.index()]
                .map_slots
                .next_free(SimTime(pulled.not_before))
                .secs();
            let io_done = self.read_input(
                exec,
                &block,
                slot_start,
                specs[j].reuse.cache_input,
                &mut reports[j],
            );
            let cpu =
                self.cluster.cpu_time(exec.index(), costs[j].map_cpu_secs(block.size));
            let dur = (io_done - slot_start).max(0.0) + cpu;
            let (_, end) = self.cluster.nodes[exec.index()]
                .map_slots
                .run(SimTime(pulled.not_before), dur);
            map_end[j] = map_end[j].max(end.secs());
        }

        // ---- Per-job reduce phases --------------------------------------
        for (j, spec) in specs.iter().enumerate() {
            let reducers = spec.reducers.max(1);
            let passes = spec.iterations.max(1) as u64;
            let total_im = costs[j].intermediate_bytes(metas[j].size) * passes;
            reports[j].shuffle_bytes = total_im;
            let mut job_end = map_end[j];
            for r in 0..reducers {
                reports[j].reduce_tasks += 1;
                let node = self.reducer_node(r, reducers);
                let share = total_im / reducers as u64;
                // Shuffle push happened during the maps (proactive);
                // charge the reducer-side arrival as a latency from the
                // map end plus the pipeline residue.
                let ready = map_end[j];
                let read_done = if share > 0 {
                    self.cluster.mem_read(SimTime(ready), node.index(), share).secs()
                } else {
                    ready
                };
                let cpu = self.cluster.cpu_time(node.index(), costs[j].reduce_cpu_secs(share));
                let dur = (read_done - ready).max(0.0) + cpu;
                let (_, end) =
                    self.cluster.nodes[node.index()].reduce_slots.run(SimTime(ready), dur);
                let out = costs[j].output_bytes(share);
                let mut end_t = end.secs();
                if out > 0 {
                    end_t += self.cluster.disk_latency(node.index(), out);
                }
                job_end = job_end.max(end_t);
            }
            reports[j].map_elapsed = map_end[j] - submit;
            reports[j].elapsed = job_end - submit;
        }
        self.clock = submit + reports.iter().map(|r| r.elapsed).fold(0.0, f64::max);
        reports
    }

    /// Admit a new server: fresh hardware in the simulator, a new ring
    /// position in the DHT FS (existing blocks stay put), a new cache
    /// shard, and re-cut scheduler ranges. Returns the node id.
    pub fn join_node(&mut self, name: &str) -> NodeId {
        let idx = self.cluster.add_node();
        let id = NodeId(idx as u32);
        self.alive.push(true);
        self.page_cache.push(LruCache::new(self.cfg.page_cache_per_node));
        self.cache.add_node(self.cfg.cache_per_node);
        // Ring position by name hash — joiners cannot preserve even
        // spacing, and don't need to: consistent hashing moves only the
        // joiner's new arc.
        let mut info = eclipse_ring::ServerInfo::from_name(id, name);
        let mut salt = 0u32;
        while self.fs.ring().members().any(|s| s.key == info.key) {
            salt += 1;
            info = eclipse_ring::ServerInfo::from_name(id, format!("{name}+{salt}"));
        }
        self.fs.join(info).expect("fresh node id");
        self.ring = self.fs.ring().clone();
        self.cfg.cluster.nodes += 1;
        match &mut self.sched {
            Sched::Laf(laf) => {
                laf.set_nodes(&self.ring);
                self.cache.set_ranges(laf.ranges().to_vec());
            }
            Sched::Delay(_) => {
                let d = DelayScheduler::new(
                    &self.ring,
                    match &self.cfg.scheduler {
                        SchedulerKind::Delay(c) => *c,
                        _ => DelayConfig::default(),
                    },
                );
                self.cache.set_ranges(d.ranges().to_vec());
                self.sched = Sched::Delay(d);
            }
        }
        id
    }

    /// Kill a node: removes it from the ring, re-replicates its blocks
    /// (charging recovery traffic), and rebuilds the schedulers. Returns
    /// the simulated seconds the recovery copies took.
    pub fn fail_node(&mut self, node: NodeId) -> f64 {
        let plan = self.fs.fail_node(node).expect("node is a member");
        let start = self.clock;
        let mut done = start;
        for copy in &plan {
            let read = self.cluster.disk_read(SimTime(start), copy.from.index(), copy.bytes);
            let moved =
                self.cluster.network.transfer(read, copy.from.index(), copy.to.index(), copy.bytes);
            let wrote = self.cluster.disk_read(SimTime(moved.secs()), copy.to.index(), copy.bytes);
            done = done.max(wrote.secs());
        }
        self.ring.remove(node).ok();
        self.alive[node.index()] = false;
        // Rebuild ring-derived state. (DhtFs already removed it.)
        self.ring = self.fs.ring().clone();
        match &mut self.sched {
            Sched::Laf(laf) => laf.set_nodes(&self.ring),
            Sched::Delay(_) => {
                self.sched = Sched::Delay(DelayScheduler::new(
                    &self.ring,
                    match &self.cfg.scheduler {
                        SchedulerKind::Delay(c) => *c,
                        _ => DelayConfig::default(),
                    },
                ));
            }
        }
        self.clock = done;
        done - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclipse_util::MB;
    use eclipse_workloads::AppKind;

    fn sim(scheduler: SchedulerKind, nodes: usize) -> EclipseSim {
        EclipseSim::new(EclipseConfig::paper_defaults(scheduler).with_nodes(nodes))
    }

    fn laf() -> SchedulerKind {
        SchedulerKind::Laf(LafConfig::default())
    }

    fn delay() -> SchedulerKind {
        SchedulerKind::Delay(DelayConfig::default())
    }

    #[test]
    fn grep_runs_and_reports() {
        let mut s = sim(laf(), 8);
        s.upload("text", 4 * GB);
        let r = s.run_job(&JobSpec::batch(AppKind::Grep, "text"));
        assert_eq!(r.map_tasks, 32, "4 GB / 128 MB blocks");
        assert!(r.elapsed > 0.0);
        assert!(r.map_elapsed <= r.elapsed);
        let total_read: u64 = r.read_bytes.values().sum();
        assert_eq!(total_read, 4 * GB);
        assert_eq!(r.tasks_per_node.iter().sum::<u64>(), 32);
    }

    #[test]
    fn second_identical_job_hits_cache_and_speeds_up() {
        let mut s = sim(laf(), 8);
        s.upload("text", 2 * GB); // 16 blocks; 8 GB of cache cluster-wide
        let cold = s.run_job(&JobSpec::batch(AppKind::WordCount, "text"));
        let warm = s.run_job(&JobSpec::batch(AppKind::WordCount, "text"));
        assert_eq!(cold.cache_hits, 0);
        assert!(warm.cache_hits > 0, "second run must reuse iCache");
        assert!(warm.hit_ratio() > 0.8, "hit ratio {}", warm.hit_ratio());
        assert!(warm.elapsed <= cold.elapsed, "warm {} cold {}", warm.elapsed, cold.elapsed);
        assert!(warm.read_bytes.get("local_cache").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn laf_balances_better_than_delay_on_skew() {
        // A hot-spot trace: delay's static ranges overload the hot arc's
        // owner while LAF re-cuts ranges (and work-conserving pulls
        // spread the backlog).
        use eclipse_workloads::{AppKind, CostModel, KeyDist, KeySampler};
        let cost = CostModel::eclipse(AppKind::Grep);
        let mut stdevs = Vec::new();
        for kind in [laf(), delay()] {
            let mut s = EclipseSim::new(EclipseConfig::paper_defaults(kind).with_nodes(10));
            let mut sampler =
                KeySampler::new(KeyDist::Hotspot { center: 0.35, stddev: 0.02 }, 9);
            for _ in 0..8 {
                let trace = sampler.sample_n(300);
                s.run_trace(&trace, 8 * MB, &cost);
            }
            stdevs.push(s.tasks_per_slot_stdev());
        }
        assert!(
            stdevs[0] < stdevs[1],
            "laf stdev {} delay stdev {}",
            stdevs[0],
            stdevs[1]
        );
    }

    #[test]
    fn iterative_job_reports_per_iteration() {
        let mut s = sim(laf(), 8);
        s.upload("points", 2 * GB);
        let r = s.run_job(&JobSpec::iterative(AppKind::KMeans, "points", 5).with_reducers(8));
        assert_eq!(r.iteration_times.len(), 5);
        assert!(r.elapsed > 0.0);
        // Later iterations benefit from iCache (2 GB fits in 8 GB total).
        let first = r.iteration_times[0];
        let later = r.iteration_times[2];
        assert!(later < first, "iter3 {later} vs iter1 {first}");
        assert!((r.iteration_times.iter().sum::<f64>() - r.elapsed).abs() < 1e-6);
    }

    #[test]
    fn sort_shuffles_everything() {
        let mut s = sim(laf(), 4);
        s.upload("data", GB);
        let r = s.run_job(&JobSpec::batch(AppKind::Sort, "data").with_reducers(16));
        assert_eq!(r.shuffle_bytes, GB);
        let g = {
            let mut s2 = sim(laf(), 4);
            s2.upload("data", GB);
            s2.run_job(&JobSpec::batch(AppKind::Grep, "data").with_reducers(16))
        };
        assert!(g.shuffle_bytes < GB / 100);
    }

    #[test]
    fn concurrent_jobs_contend() {
        let mut s = sim(laf(), 4);
        s.upload("a", GB);
        s.upload("b", GB);
        let solo = {
            let mut s2 = sim(laf(), 4);
            s2.upload("a", GB);
            s2.run_job(&JobSpec::batch(AppKind::WordCount, "a")).elapsed
        };
        let reports = s.run_concurrent(&[
            JobSpec::batch(AppKind::WordCount, "a"),
            JobSpec::batch(AppKind::WordCount, "b"),
        ]);
        assert_eq!(reports.len(), 2);
        // Two jobs through the same slots: at least one must take longer
        // than the job running alone.
        let slowest = reports.iter().map(|r| r.elapsed).fold(0.0, f64::max);
        assert!(slowest > solo, "slowest {slowest} vs solo {solo}");
    }

    #[test]
    fn failure_recovery_charges_time_and_shrinks_ring() {
        let mut s = sim(laf(), 8);
        s.upload("data", 4 * GB);
        let victim = s.ring().node_ids()[3];
        let recovery = s.fail_node(victim);
        assert!(recovery > 0.0, "copies take time");
        assert_eq!(s.ring().len(), 7);
        // Jobs still run after the failure.
        let r = s.run_job(&JobSpec::batch(AppKind::Grep, "data"));
        assert_eq!(r.map_tasks, 32);
        assert!(r.tasks_per_node[victim.index()] == 0, "dead node got tasks");
    }

    #[test]
    fn joined_node_receives_tasks() {
        let mut s = sim(laf(), 6);
        s.upload("data", 4 * GB);
        s.run_job(&JobSpec::batch(AppKind::Grep, "data"));
        let newbie = s.join_node("late-arrival");
        assert_eq!(s.ring().len(), 7);
        let r = s.run_job(&JobSpec::batch(AppKind::Grep, "data"));
        assert_eq!(r.read_bytes.values().sum::<u64>(), 4 * GB);
        assert!(
            r.tasks_per_node[newbie.index()] > 0,
            "joiner idle: {:?}",
            r.tasks_per_node
        );
        // New uploads place blocks on the joiner too.
        s.upload("fresh", 8 * GB);
        let holds_fresh = s
            .fs()
            .stat("fresh")
            .unwrap()
            .blocks
            .iter()
            .any(|b| s.fs().block_holders(b.id).unwrap().contains(&newbie));
        assert!(holds_fresh, "joiner owns no new blocks");
    }

    #[test]
    fn join_then_fail_round_trip() {
        let mut s = sim(laf(), 5);
        s.upload("data", 2 * GB);
        let newbie = s.join_node("n5");
        s.upload("after-join", 2 * GB);
        let recovery = s.fail_node(newbie);
        assert!(recovery >= 0.0);
        assert_eq!(s.ring().len(), 5);
        let r = s.run_job(&JobSpec::batch(AppKind::Grep, "after-join"));
        assert_eq!(r.read_bytes.values().sum::<u64>(), 2 * GB);
        assert_eq!(r.tasks_per_node[newbie.index()], 0);
    }

    #[test]
    fn zero_cache_still_works() {
        let mut s = EclipseSim::new(
            EclipseConfig::paper_defaults(laf()).with_nodes(4).with_cache(0),
        );
        s.upload("x", GB);
        let a = s.run_job(&JobSpec::batch(AppKind::Grep, "x"));
        let b = s.run_job(&JobSpec::batch(AppKind::Grep, "x"));
        assert_eq!(a.cache_hits + b.cache_hits, 0);
        assert!(b.elapsed > 0.0);
    }

    #[test]
    fn timeline_records_every_task() {
        let mut s = sim(laf(), 6);
        s.upload("data", 2 * GB);
        s.record_timeline();
        let r = s.run_job(&JobSpec::batch(AppKind::WordCount, "data").with_reducers(8));
        let t = s.timeline().expect("recording enabled");
        use crate::timeline::TaskKind;
        let maps = t.events.iter().filter(|e| e.kind == TaskKind::Map).count();
        let reduces = t.events.iter().filter(|e| e.kind == TaskKind::Reduce).count();
        assert_eq!(maps as u64, r.map_tasks);
        assert_eq!(reduces as u64, r.reduce_tasks);
        // Every span lies within the job window and is well-formed.
        for e in &t.events {
            assert!(e.end >= e.start);
            assert!(e.end <= r.elapsed + 1e-6, "task past job end");
        }
        // Map events carry read sources; cold run = disk.
        assert!(t
            .events
            .iter()
            .filter(|e| e.kind == TaskKind::Map)
            .all(|e| e.source.is_some()));
        // The utilization profile peaks above one busy task.
        let peak = t.utilization_profile(1.0).iter().map(|(_, b)| *b).max().unwrap();
        assert!(peak >= 2, "peak busy {peak}");
    }

    #[test]
    fn small_file_single_block() {
        let mut s = sim(laf(), 4);
        s.upload("tiny", 5 * MB);
        let r = s.run_job(&JobSpec::batch(AppKind::Grep, "tiny"));
        assert_eq!(r.map_tasks, 1);
    }
}
