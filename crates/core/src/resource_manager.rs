//! The resource manager (paper §II): "responsible for server join,
//! leave, failure recovery, and file upload", elected by the ring
//! election together with the job scheduler, and notified through the
//! neighbor heartbeat protocol.
//!
//! This module ties those pieces into one deterministic state machine:
//! heartbeats come in, silence is detected, the ring shrinks, blocks are
//! re-replicated from predecessor/successor copies, coordinators are
//! re-elected if one of them died, and joiners are admitted with a
//! minimal-disruption key handoff. Both executors can host it; the tests
//! drive it standalone.

use eclipse_dhtfs::{DhtFs, FsError, RecoveryCopy};
use eclipse_ring::{
    ClusterView, Coordinators, HeartbeatMonitor, MembershipEvent, NodeId, RingError, ServerInfo,
};

/// What the resource manager decided during one `tick`.
#[derive(Clone, Debug, Default)]
pub struct TickOutcome {
    /// Nodes declared dead this tick (heartbeat silence).
    pub failed: Vec<NodeId>,
    /// Re-replication copies to execute for the failures.
    pub recovery: Vec<RecoveryCopy>,
    /// New coordinators, if an election ran.
    pub reelected: Option<Coordinators>,
}

/// Errors from resource-manager operations.
#[derive(Debug)]
pub enum RmError {
    Ring(RingError),
    Fs(FsError),
}

impl From<RingError> for RmError {
    fn from(e: RingError) -> Self {
        RmError::Ring(e)
    }
}
impl From<FsError> for RmError {
    fn from(e: FsError) -> Self {
        RmError::Fs(e)
    }
}

impl std::fmt::Display for RmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RmError::Ring(e) => write!(f, "ring: {e}"),
            RmError::Fs(e) => write!(f, "fs: {e}"),
        }
    }
}
impl std::error::Error for RmError {}

/// The coordinator state machine.
pub struct ResourceManager {
    view: ClusterView,
    fs: DhtFs,
    heartbeats: HeartbeatMonitor,
    /// Seconds of silence before a node is declared failed.
    timeout: f64,
    epoch_at_last_election: u64,
}

impl ResourceManager {
    /// Stand up the manager over an existing file system. Every current
    /// member is assumed alive at time `now`.
    pub fn new(fs: DhtFs, heartbeat_timeout: f64, now: f64) -> ResourceManager {
        let view = ClusterView::new(fs.ring().clone());
        let mut heartbeats = HeartbeatMonitor::new(heartbeat_timeout);
        for id in fs.ring().node_ids() {
            heartbeats.heartbeat(id, now);
        }
        ResourceManager {
            epoch_at_last_election: view.epoch(),
            view,
            fs,
            heartbeats,
            timeout: heartbeat_timeout,
        }
    }

    pub fn fs(&self) -> &DhtFs {
        &self.fs
    }

    pub fn fs_mut(&mut self) -> &mut DhtFs {
        &mut self.fs
    }

    pub fn coordinators(&self) -> Option<Coordinators> {
        self.view.coordinators()
    }

    pub fn members(&self) -> Vec<NodeId> {
        self.view.ring().node_ids()
    }

    pub fn epoch(&self) -> u64 {
        self.view.epoch()
    }

    /// A worker's periodic heartbeat.
    pub fn heartbeat(&mut self, node: NodeId, now: f64) {
        self.heartbeats.heartbeat(node, now);
    }

    /// Admit a joining server at time `now`. The DHT FS does not move
    /// existing blocks (consistent hashing keeps disruption minimal; new
    /// writes flow to the joiner), but membership, heartbeats and the
    /// election all see it immediately.
    pub fn join(&mut self, info: ServerInfo, now: f64) -> Result<(), RmError> {
        self.fs.join(info.clone())?;
        self.view.apply(MembershipEvent::Join(info.clone()))?;
        self.heartbeats.heartbeat(info.id, now);
        Ok(())
    }

    /// Graceful leave: like a failure, but announced — data is still
    /// re-replicated off the leaver (it may power down immediately).
    pub fn leave(&mut self, node: NodeId) -> Result<Vec<RecoveryCopy>, RmError> {
        self.heartbeats.forget(node);
        let plan = self.fs.fail_node(node)?;
        self.view.apply(MembershipEvent::Leave(node))?;
        Ok(plan)
    }

    /// Advance to time `now`: detect heartbeat silences, recover each
    /// failure, and re-elect if a coordinator died.
    pub fn tick(&mut self, now: f64) -> Result<TickOutcome, RmError> {
        let mut outcome = TickOutcome::default();
        for dead in self.heartbeats.expired(now) {
            // A node may have been removed by leave() already.
            if !self.view.ring().contains(dead) {
                continue;
            }
            outcome.failed.push(dead);
            outcome.recovery.extend(self.fs.fail_node(dead)?);
            self.view.apply(MembershipEvent::Fail(dead))?;
        }
        if self.view.epoch() != self.epoch_at_last_election {
            self.epoch_at_last_election = self.view.epoch();
            outcome.reelected = self.view.coordinators();
        }
        Ok(outcome)
    }

    /// Upload a file through the manager (the paper routes uploads via
    /// the resource manager).
    pub fn upload(&mut self, name: &str, owner: &str, bytes: u64) -> Result<(), RmError> {
        self.fs.upload(name, owner, bytes)?;
        Ok(())
    }

    /// Heartbeat timeout currently in force.
    pub fn timeout(&self) -> f64 {
        self.timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclipse_dhtfs::DhtFsConfig;
    use eclipse_ring::Ring;
    use eclipse_util::{HashKey, GB};

    fn manager(nodes: usize) -> ResourceManager {
        let ring = Ring::with_servers_evenly_spaced(nodes, "rm");
        let mut fs = DhtFs::new(ring, DhtFsConfig::default());
        fs.upload("data", "ops", 4 * GB).unwrap();
        ResourceManager::new(fs, 3.0, 0.0)
    }

    /// Drive heartbeats for every member except `silent` up to `t`.
    fn beat_all_except(rm: &mut ResourceManager, silent: &[NodeId], t: f64) {
        for id in rm.members() {
            if !silent.contains(&id) {
                rm.heartbeat(id, t);
            }
        }
    }

    #[test]
    fn healthy_cluster_ticks_quietly() {
        let mut rm = manager(8);
        for step in 1..10 {
            let t = step as f64;
            beat_all_except(&mut rm, &[], t);
            let out = rm.tick(t).unwrap();
            assert!(out.failed.is_empty());
            assert!(out.recovery.is_empty());
            assert!(out.reelected.is_none());
        }
        assert_eq!(rm.members().len(), 8);
    }

    #[test]
    fn silence_triggers_failure_and_recovery() {
        let mut rm = manager(8);
        let victim = rm.members()[3];
        for step in 1..=5 {
            let t = step as f64;
            beat_all_except(&mut rm, &[victim], t);
        }
        let out = rm.tick(5.0).unwrap();
        assert_eq!(out.failed, vec![victim]);
        assert!(!out.recovery.is_empty(), "victim held replicas");
        assert!(!rm.members().contains(&victim));
        // Replication restored.
        let meta = rm.fs().stat("data").unwrap().clone();
        for b in &meta.blocks {
            assert_eq!(rm.fs().block_holders(b.id).unwrap().len(), 3);
        }
    }

    #[test]
    fn coordinator_death_reelects() {
        let mut rm = manager(6);
        let coords = rm.coordinators().unwrap();
        for step in 1..=5 {
            beat_all_except(&mut rm, &[coords.scheduler], step as f64);
        }
        let out = rm.tick(5.0).unwrap();
        assert_eq!(out.failed, vec![coords.scheduler]);
        let new = out.reelected.expect("election ran");
        assert_ne!(new.scheduler, coords.scheduler);
        assert!(rm.members().contains(&new.scheduler));
    }

    #[test]
    fn graceful_leave_recovers_without_timeout() {
        let mut rm = manager(8);
        let leaver = rm.members()[1];
        let plan = rm.leave(leaver).unwrap();
        assert!(!plan.is_empty());
        assert!(!rm.members().contains(&leaver));
        // The leaver produces no later "failure" — survivors keep
        // heartbeating, and the tick stays quiet.
        beat_all_except(&mut rm, &[], 100.0);
        let out = rm.tick(100.0).unwrap();
        assert!(out.failed.is_empty());
    }

    #[test]
    fn join_extends_membership_and_heartbeats() {
        let mut rm = manager(4);
        let newbie = ServerInfo::at_key(NodeId(99), "joiner", HashKey(0x1234_5678_0000_0000));
        rm.join(newbie, 10.0).unwrap();
        assert_eq!(rm.members().len(), 5);
        // The joiner heartbeats like everyone else; silence kills it too.
        beat_all_except(&mut rm, &[NodeId(99)], 20.0);
        let out = rm.tick(20.0).unwrap();
        assert_eq!(out.failed, vec![NodeId(99)]);
    }

    #[test]
    fn cascading_failures_until_minimum() {
        let mut rm = manager(8);
        for round in 0..5 {
            let victim = rm.members()[0];
            let t = 10.0 * (round + 1) as f64;
            for sub in 0..5 {
                beat_all_except(&mut rm, &[victim], t + sub as f64);
            }
            let out = rm.tick(t + 4.0).unwrap();
            assert_eq!(out.failed, vec![victim], "round {round}");
        }
        assert_eq!(rm.members().len(), 3);
        // Data still fully replicated on the 3 survivors.
        let meta = rm.fs().stat("data").unwrap().clone();
        for b in &meta.blocks {
            assert_eq!(rm.fs().block_holders(b.id).unwrap().len(), 3);
        }
    }

    #[test]
    fn upload_via_manager() {
        let mut rm = manager(4);
        rm.upload("new-file", "ops", GB).unwrap();
        assert!(rm.fs().exists("new-file"));
        assert!(matches!(rm.upload("new-file", "ops", GB), Err(RmError::Fs(_))));
    }
}
