//! Multi-tenant job server: a persistent worker pool over
//! [`LiveCluster`].
//!
//! The scoped executor ([`LiveCluster::run_job`]) spawns a full thread
//! complement per job — fine for one long job, pure overhead for a
//! storm of small ones. [`JobServer`] amortizes it: map workers are
//! spawned once per cluster, admitted jobs place their tasks into
//! per-node work queues the shared workers drain, and a small set of
//! persistent driver threads folds each job's reduce partitions. The
//! attempt ledger, commit board, shuffle router and cache quotas are
//! the live executor's own machinery — every pool job is a first-class
//! entry in the cluster's run registry.
//!
//! Admission is bounded and tenant-aware: [`JobServer::submit`] blocks
//! while the queue is full (backpressure), [`JobServer::try_submit`]
//! refuses instead, and [`AdmissionPolicy::WeightedFair`] dispatches by
//! per-tenant virtual time so a storm from one tenant cannot starve
//! another (the same decision shape as the simulator's fair scheduler,
//! applied to jobs instead of blocks).

use crate::epoch::{EpochDriver, EpochReport, EpochSnapshot, StreamSpec};
use crate::job::{JobError, ReusePolicy};
use crate::live::{LiveCluster, LiveStats, MapReduce, PoolJob};
use eclipse_ring::NodeId;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How queued jobs are dispatched to the driver threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Strict arrival order.
    Fifo,
    /// Per-tenant weighted virtual time: each dispatch charges the
    /// job's tenant `1 / weight`, and the tenant with the smallest
    /// virtual time goes next (FIFO within a tenant). A tenant
    /// submitting twice the weight gets twice the dispatch share; a
    /// flood from one tenant cannot starve the rest.
    WeightedFair,
}

/// Sizing and policy knobs for [`JobServer`].
#[derive(Clone, Copy, Debug)]
pub struct JobServerConfig {
    /// Bounded admission queue: `submit` blocks (and `try_submit`
    /// refuses) once this many jobs are queued undispatched.
    pub queue_depth: usize,
    /// Driver threads — the maximum number of jobs in flight at once.
    pub concurrency: usize,
    /// Pool map-worker threads; `0` sizes to the host's parallelism.
    pub workers: usize,
    pub policy: AdmissionPolicy,
}

impl Default for JobServerConfig {
    fn default() -> JobServerConfig {
        JobServerConfig {
            queue_depth: 32,
            concurrency: 2,
            workers: 0,
            policy: AdmissionPolicy::Fifo,
        }
    }
}

/// One job submission: what to run, over what, and as whom. The `user`
/// doubles as the cache-quota tenant and the weighted-fair identity.
#[derive(Clone)]
pub struct PoolJobSpec {
    pub app: Arc<dyn MapReduce>,
    pub inputs: Vec<String>,
    pub user: String,
    pub reducers: usize,
    pub reuse: ReusePolicy,
    /// Weighted-fair share (0 is treated as 1). Ignored under FIFO.
    pub weight: u32,
}

/// What a finished job yields: key-sorted output pairs plus stats.
pub type JobResult = Result<(Vec<(String, String)>, LiveStats), JobError>;

/// A submitted job's completion slot.
struct HandleInner {
    slot: Mutex<Option<JobResult>>,
    cv: Condvar,
}

impl HandleInner {
    fn fulfill(&self, res: JobResult) {
        let mut slot = self.slot.lock().expect("handle lock");
        if slot.is_none() {
            *slot = Some(res);
        }
        self.cv.notify_all();
    }
}

/// Await a submitted job. Dropping the handle does not cancel the job.
pub struct JobHandle {
    inner: Arc<HandleInner>,
}

impl JobHandle {
    /// Block until the job completes; yields its key-sorted output and
    /// stats, or the terminal error.
    pub fn wait(self) -> JobResult {
        let mut slot = self.inner.slot.lock().expect("handle lock");
        while slot.is_none() {
            slot = self.inner.cv.wait(slot).expect("handle lock");
        }
        slot.take().expect("slot filled")
    }
}

/// A queued, undispatched job.
struct Pending {
    spec: PoolJobSpec,
    handle: Arc<HandleInner>,
    seq: u64,
}

/// Admission state under one lock: the bounded queue plus the
/// weighted-fair virtual clocks.
struct AdmitState {
    pending: VecDeque<Pending>,
    /// Per-tenant virtual time (weighted-fair only). A tenant's first
    /// job starts at the current minimum so newcomers neither starve
    /// nor lap the field.
    vt: HashMap<String, f64>,
    next_seq: u64,
}

/// Dispatch one job per `policy`. FIFO within a tenant is preserved in
/// both modes.
fn pick(q: &mut AdmitState, policy: AdmissionPolicy) -> Option<Pending> {
    if q.pending.is_empty() {
        return None;
    }
    let at = match policy {
        AdmissionPolicy::Fifo => 0,
        AdmissionPolicy::WeightedFair => {
            let floor = q.vt.values().copied().fold(f64::INFINITY, f64::min);
            let floor = if floor.is_finite() { floor } else { 0.0 };
            for p in &q.pending {
                q.vt.entry(p.spec.user.clone()).or_insert(floor);
            }
            // The earliest-queued job of the lowest-virtual-time tenant.
            let (at, winner) = q
                .pending
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let (va, vb) = (q.vt[&a.spec.user], q.vt[&b.spec.user]);
                    va.total_cmp(&vb).then(a.seq.cmp(&b.seq))
                })
                .expect("pending non-empty");
            let charge = 1.0 / f64::from(winner.spec.weight.max(1));
            *q.vt.get_mut(&winner.spec.user).expect("seeded above") += charge;
            at
        }
    };
    q.pending.remove(at)
}

/// One `(job, tid)` unit per entry, one queue per pool-worker node.
type WorkQueues = Vec<VecDeque<(Arc<PoolJob>, usize)>>;

struct Shared {
    cluster: Arc<LiveCluster>,
    cfg: JobServerConfig,
    admit: Mutex<AdmitState>,
    /// Signals both directions on the admission queue: drivers wait for
    /// work, submitters wait for space.
    admit_cv: Condvar,
    /// Per-node map-task queues (indexed by node index modulo len);
    /// drained by the pool workers, own-node first then ring order.
    work: Mutex<WorkQueues>,
    work_cv: Condvar,
    /// Completion signal: workers notify after every task, so a driver
    /// waiting out its job's last in-flight attempts wakes promptly
    /// instead of polling.
    done_lock: Mutex<()>,
    done_cv: Condvar,
    shutdown: AtomicBool,
}

/// The persistent multi-tenant job server. Construction spawns the
/// driver and worker threads once; [`Drop`] (or
/// [`shutdown`](Self::shutdown)) stops them, cancelling still-queued
/// jobs.
pub struct JobServer {
    shared: Arc<Shared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl JobServer {
    pub fn new(cluster: Arc<LiveCluster>, cfg: JobServerConfig) -> JobServer {
        let nodes: Vec<NodeId> = cluster.ring().node_ids();
        let par = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let workers = if cfg.workers == 0 { par } else { cfg.workers };
        let shared = Arc::new(Shared {
            cluster,
            cfg,
            admit: Mutex::new(AdmitState {
                pending: VecDeque::new(),
                vt: HashMap::new(),
                next_seq: 0,
            }),
            admit_cv: Condvar::new(),
            work: Mutex::new((0..nodes.len()).map(|_| VecDeque::new()).collect()),
            work_cv: Condvar::new(),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let mut threads = Vec::with_capacity(cfg.concurrency + workers);
        for _ in 0..cfg.concurrency {
            let s = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || driver_loop(&s)));
        }
        for wi in 0..workers {
            let s = Arc::clone(&shared);
            let me = nodes[wi % nodes.len()];
            threads.push(std::thread::spawn(move || worker_loop(&s, me)));
        }
        JobServer { shared, threads: Mutex::new(threads) }
    }

    /// Queue a job, blocking while the admission queue is full — the
    /// caller *is* the backpressure. A saturated shuffle send window
    /// anywhere in the cluster blocks admission too: once some
    /// destination has a full wall of unacknowledged sends, queueing
    /// more jobs only deepens the pile-up, so the stall is surfaced
    /// here, at `submit`, instead of inside the workers. Returns a
    /// handle to await.
    pub fn submit(&self, spec: PoolJobSpec) -> JobHandle {
        let mut q = self.shared.admit.lock().expect("admit lock");
        while !self.shared.shutdown.load(Ordering::Acquire)
            && (q.pending.len() >= self.shared.cfg.queue_depth
                || self.shared.cluster.shuffle_backpressure())
        {
            // Timed wait: queue space is notified, but a send window
            // draining (ack arrives, link heals) is not — re-check.
            let (nq, _) = self
                .shared
                .admit_cv
                .wait_timeout(q, Duration::from_millis(1))
                .expect("admit lock");
            q = nq;
        }
        self.enqueue(&mut q, spec)
    }

    /// Non-blocking twin of [`submit`](Self::submit): when the queue is
    /// full the spec is handed back so the caller can shed or retry.
    pub fn try_submit(&self, spec: PoolJobSpec) -> Result<JobHandle, PoolJobSpec> {
        let mut q = self.shared.admit.lock().expect("admit lock");
        if q.pending.len() >= self.shared.cfg.queue_depth {
            return Err(spec);
        }
        Ok(self.enqueue(&mut q, spec))
    }

    fn enqueue(&self, q: &mut AdmitState, spec: PoolJobSpec) -> JobHandle {
        let handle =
            Arc::new(HandleInner { slot: Mutex::new(None), cv: Condvar::new() });
        let seq = q.next_seq;
        q.next_seq += 1;
        q.pending.push_back(Pending { spec, handle: Arc::clone(&handle), seq });
        self.shared.admit_cv.notify_all();
        JobHandle { inner: handle }
    }

    /// Jobs queued but not yet dispatched (diagnostic).
    pub fn queued(&self) -> usize {
        self.shared.admit.lock().expect("admit lock").pending.len()
    }

    /// Open a continuous job: a standing stream whose epochs execute on
    /// this server's shared worker pool, coexisting with batch jobs at
    /// the work-queue level. The returned handle commits deltas and
    /// reads published snapshots; see [`EpochDriver`] for the
    /// consistency contract.
    pub fn open_stream(&self, spec: StreamSpec) -> StreamHandle {
        StreamHandle {
            driver: Arc::new(EpochDriver::new(Arc::clone(&self.shared.cluster), spec)),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stop the server: in-flight jobs complete, still-queued jobs are
    /// fulfilled with [`JobError::Cancelled`], and every thread is
    /// joined. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let mut q = self.shared.admit.lock().expect("admit lock");
            for p in q.pending.drain(..) {
                p.handle.fulfill(Err(JobError::Cancelled));
            }
        }
        self.shared.admit_cv.notify_all();
        self.shared.work_cv.notify_all();
        for t in self.threads.lock().expect("threads lock").drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for JobServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A continuous job opened on a [`JobServer`]: the server-pool face of
/// one [`EpochDriver`]. Epoch waves are enqueued on the same per-node
/// work queues as batch jobs — the pool workers drain both — while the
/// committing caller self-drains work-conservingly, exactly like a
/// batch driver thread. Dropping the handle closes the stream.
pub struct StreamHandle {
    driver: Arc<EpochDriver>,
    shared: Arc<Shared>,
}

impl StreamHandle {
    /// Ingest one delta and commit it as the stream's next epoch on
    /// the server's worker pool. Serialized per stream; concurrent
    /// batch jobs keep flowing while this blocks.
    pub fn commit_epoch(&self, delta: &[u8]) -> Result<EpochReport, JobError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(JobError::Cancelled);
        }
        let s = &*self.shared;
        self.driver.commit_epoch_via(delta, &|job| run_pool_job(s, job))
    }

    /// The newest published epoch (0 before the first commit).
    pub fn published(&self) -> u32 {
        self.driver.published()
    }

    /// Read a published epoch's materialized result; see
    /// [`EpochDriver::snapshot`].
    pub fn snapshot(&self, epoch: u32) -> Option<EpochSnapshot> {
        self.driver.snapshot(epoch)
    }

    /// Close the stream: refuse further commits and release the
    /// materialized cache pins.
    pub fn close(&self) {
        self.driver.close();
    }
}

impl Drop for StreamHandle {
    fn drop(&mut self) {
        self.driver.close();
    }
}

/// A driver owns one admitted job end to end: place, lease the pool,
/// await the commit board, fold, fulfill.
fn driver_loop(s: &Shared) {
    loop {
        let p = {
            let mut q = s.admit.lock().expect("admit lock");
            loop {
                if s.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(p) = pick(&mut q, s.cfg.policy) {
                    break p;
                }
                q = s.admit_cv.wait(q).expect("admit lock");
            }
        };
        // Space freed: wake any submitter blocked on the full queue.
        s.admit_cv.notify_all();
        let inputs: Vec<&str> = p.spec.inputs.iter().map(|s| s.as_str()).collect();
        let job = match s.cluster.begin_pool_job(
            Arc::clone(&p.spec.app),
            &inputs,
            &p.spec.user,
            p.spec.reducers,
            p.spec.reuse,
        ) {
            Ok(job) => job,
            Err(e) => {
                p.handle.fulfill(Err(e));
                continue;
            }
        };
        run_pool_job(s, &job);
        let res = s.cluster.finish_pool_job(&job).map(|(parts, stats)| {
            let mut out: Vec<(String, String)> = parts.into_iter().flatten().collect();
            out.sort();
            (out, stats)
        });
        p.handle.fulfill(res);
    }
}

/// Lease one placed job to the pool and wait out its barrier: enqueue
/// its tasks on the per-node queues, drain the still-queued ones on
/// the calling thread (work-conserving — each executed at its assigned
/// node, so locality is exact; this also guarantees an admitted job
/// completes even if every worker has already exited on shutdown),
/// then sleep until the last in-flight attempt commits. Shared by the
/// batch driver loop and the epoch streams — a standing job's waves
/// ride the same queues as batch jobs.
fn run_pool_job(s: &Shared, job: &Arc<PoolJob>) {
    {
        let mut work = s.work.lock().expect("work lock");
        let n = work.len();
        for tid in 0..job.task_count() {
            let qi = job.task_node(tid).index() % n;
            work[qi].push_back((Arc::clone(job), tid));
        }
    }
    s.work_cv.notify_all();
    loop {
        let unit = {
            let mut work = s.work.lock().expect("work lock");
            let n = work.len();
            let mut found = None;
            for q in work.iter_mut().take(n) {
                if let Some(pos) = q.iter().position(|(j, _)| Arc::ptr_eq(j, job)) {
                    found = q.remove(pos);
                    break;
                }
            }
            found
        };
        match unit {
            Some((j, tid)) => s.cluster.pool_exec_task(&j, tid, j.task_node(tid)),
            None => break,
        }
    }
    // Only tasks currently inside a pool worker remain; sleep until
    // its notify (timeout guards the check-then-wait race).
    let mut g = s.done_lock.lock().expect("done lock");
    while !job.done() {
        let (ng, _) =
            s.done_cv.wait_timeout(g, Duration::from_millis(1)).expect("done lock");
        g = ng;
    }
}

/// Pool map worker under a fixed node identity: drain the own node's
/// queue first (placement locality), then steal in ring order.
fn worker_loop(s: &Shared, me: NodeId) {
    loop {
        let unit = {
            let mut work = s.work.lock().expect("work lock");
            'wait: loop {
                if s.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let n = work.len();
                for step in 0..n {
                    let qi = (me.index() + step) % n;
                    if let Some(u) = work[qi].pop_front() {
                        break 'wait u;
                    }
                }
                work = s.work_cv.wait(work).expect("work lock");
            }
        };
        s.cluster.pool_exec_task(&unit.0, unit.1, me);
        s.done_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::LiveConfig;

    struct WordCount;
    impl MapReduce for WordCount {
        fn map(&self, block: &[u8], emit: &mut dyn FnMut(String, String)) {
            for w in String::from_utf8_lossy(block).split_whitespace() {
                emit(w.to_string(), "1".to_string());
            }
        }
        fn reduce(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
            emit(key.to_string(), values.len().to_string());
        }
    }

    fn cluster_with(data: &str, files: &[&str]) -> Arc<LiveCluster> {
        let c = LiveCluster::new(LiveConfig::small().with_block_size(256));
        for f in files {
            c.upload(f, "tester", data.as_bytes());
        }
        Arc::new(c)
    }

    fn spec(input: &str, user: &str, weight: u32) -> PoolJobSpec {
        PoolJobSpec {
            app: Arc::new(WordCount),
            inputs: vec![input.to_string()],
            user: user.to_string(),
            reducers: 4,
            reuse: ReusePolicy::default(),
            weight,
        }
    }

    #[test]
    fn pool_output_matches_scoped_executor() {
        let data = "apple banana apple\ncherry banana apple\n".repeat(64);
        let c = cluster_with(&data, &["input"]);
        let (baseline, _) =
            c.run_job(&WordCount, "input", "tester", 4, ReusePolicy::default());
        let server = JobServer::new(Arc::clone(&c), JobServerConfig::default());
        let (out, stats) = server.submit(spec("input", "tester", 1)).wait().expect("pool job");
        assert_eq!(out, baseline, "pool path must match the scoped executor");
        assert!(stats.map_tasks > 0);
        assert_eq!(stats.attempts, stats.map_tasks, "fault-free: one attempt per task");
    }

    #[test]
    fn concurrent_jobs_all_correct() {
        let data = "red green blue green\n".repeat(128);
        let c = cluster_with(&data, &["a", "b", "c", "d"]);
        let (baseline, _) = c.run_job(&WordCount, "a", "tester", 4, ReusePolicy::default());
        let server = JobServer::new(
            Arc::clone(&c),
            JobServerConfig { concurrency: 3, ..JobServerConfig::default() },
        );
        let handles: Vec<JobHandle> = ["a", "b", "c", "d"]
            .iter()
            .map(|f| server.submit(spec(f, "tester", 1)))
            .collect();
        for h in handles {
            let (out, _) = h.wait().expect("job");
            assert_eq!(out, baseline, "every concurrent job folds the same data");
        }
    }

    #[test]
    fn try_submit_saturates_and_shutdown_cancels() {
        let data = "x y z\n".repeat(16);
        // No drivers: the queue can only fill.
        let c = cluster_with(&data, &["input"]);
        let server = JobServer::new(
            Arc::clone(&c),
            JobServerConfig { queue_depth: 2, concurrency: 0, ..JobServerConfig::default() },
        );
        let h1 = server.try_submit(spec("input", "a", 1)).ok().expect("first fits");
        let _h2 = server.try_submit(spec("input", "b", 1)).ok().expect("second fits");
        assert!(server.try_submit(spec("input", "c", 1)).is_err(), "queue full");
        assert_eq!(server.queued(), 2);
        server.shutdown();
        assert!(matches!(h1.wait(), Err(JobError::Cancelled)));
    }

    #[test]
    fn weighted_fair_dispatch_order() {
        let mk = |user: &str, weight: u32, seq: u64| Pending {
            spec: spec("input", user, weight),
            handle: Arc::new(HandleInner { slot: Mutex::new(None), cv: Condvar::new() }),
            seq,
        };
        let mut q = AdmitState {
            pending: VecDeque::new(),
            vt: HashMap::new(),
            next_seq: 0,
        };
        // Tenant `a` floods 4 jobs at weight 1; tenant `b` queues 2 at
        // weight 2 behind them.
        for i in 0..4 {
            q.pending.push_back(mk("a", 1, i));
        }
        q.pending.push_back(mk("b", 2, 4));
        q.pending.push_back(mk("b", 2, 5));
        let order: Vec<String> = std::iter::from_fn(|| {
            pick(&mut q, AdmissionPolicy::WeightedFair).map(|p| p.spec.user)
        })
        .collect();
        // b's half-price dispatches interleave ahead of a's flood
        // instead of queueing behind it.
        assert_eq!(order, ["a", "b", "b", "a", "a", "a"], "order: {order:?}");
        // FIFO would have drained a's flood first.
        let mut q2 = AdmitState {
            pending: VecDeque::new(),
            vt: HashMap::new(),
            next_seq: 0,
        };
        for i in 0..4 {
            q2.pending.push_back(mk("a", 1, i));
        }
        q2.pending.push_back(mk("b", 2, 4));
        let fifo: Vec<String> = std::iter::from_fn(|| {
            pick(&mut q2, AdmissionPolicy::Fifo).map(|p| p.spec.user)
        })
        .collect();
        assert_eq!(fifo, ["a", "a", "a", "a", "b"]);
    }

    #[test]
    fn stream_epochs_coexist_with_batch_jobs() {
        // 19-byte lines + a block size that is a multiple keep block
        // boundaries word-aligned in both the per-epoch delta files
        // and the concatenated oracle file.
        let data = "apple banana apple\n".repeat(64);
        let c = Arc::new(LiveCluster::new(LiveConfig::small().with_block_size(19 * 8)));
        c.upload("batchin", "tester", data.as_bytes());
        let (baseline, _) =
            c.run_job(&WordCount, "batchin", "tester", 4, ReusePolicy::default());
        let server = JobServer::new(
            Arc::clone(&c),
            JobServerConfig { concurrency: 2, ..JobServerConfig::default() },
        );
        let stream = server.open_stream(StreamSpec {
            app: Arc::new(WordCount),
            name: "s".to_string(),
            user: "tester".to_string(),
            reducers: 4,
        });
        let deltas =
            ["apple banana apple\n".repeat(16), "cherry banana pear\n".repeat(24)];
        let mut concat = String::new();
        for (i, delta) in deltas.iter().enumerate() {
            concat.push_str(delta);
            // A batch job in flight while the epoch commits: both ride
            // the same worker pool and both must stay correct.
            let h = server.submit(spec("batchin", "tester", 1));
            let rep = stream.commit_epoch(delta.as_bytes()).expect("epoch commits");
            assert_eq!(rep.epoch as usize, i + 1);
            let (out, _) = h.wait().expect("batch job");
            assert_eq!(out, baseline, "batch output drifted beside a stream");
        }
        c.upload("oracle", "tester", concat.as_bytes());
        let (oracle, _) =
            c.run_job_partitioned(&WordCount, "oracle", "tester", 4, ReusePolicy::default());
        let snap = stream.snapshot(2).expect("published epoch readable");
        assert_eq!(*snap, oracle, "materialized result != one-shot batch");
        stream.close();
    }

    #[test]
    fn submit_blocks_while_shuffle_window_saturated() {
        use eclipse_net::{Rpc, Transport};
        let data = "q r s\n".repeat(64);
        let c = cluster_with(&data, &["input"]);
        let mem = Arc::clone(c.mem_net().expect("memory transport"));
        let ids = c.ring().node_ids();
        let (a, b) = (ids[0], ids[1]);
        // Saturate a→b: a full ack window of sends whose frames the cut
        // link ate, none yet redeemed.
        mem.cut_one_way(a, b);
        let batch = || Rpc::ShuffleBatch {
            task: u32::MAX,
            attempt: 0,
            seq: 0,
            epoch: 0,
            partition: 0,
            records: Vec::new(),
        };
        let tickets: Vec<_> = (0..eclipse_net::RetryPolicy::default().ack_window)
            .map(|_| mem.send(a, b, batch()).expect("send queues under a cut"))
            .collect();
        assert!(c.shuffle_backpressure(), "window toward b is saturated");
        let server = Arc::new(JobServer::new(Arc::clone(&c), JobServerConfig::default()));
        let admitted = Arc::new(AtomicBool::new(false));
        let t = {
            let (server, admitted) = (Arc::clone(&server), Arc::clone(&admitted));
            std::thread::spawn(move || {
                let h = server.submit(spec("input", "tester", 1));
                admitted.store(true, Ordering::Release);
                h.wait()
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            !admitted.load(Ordering::Acquire),
            "submit must block while the shuffle plane is saturated"
        );
        // Heal and redeem: the window drains, admission resumes, the
        // job completes.
        mem.heal_all();
        let _ = mem.flush(&tickets);
        t.join().expect("submitter thread").expect("job completes after release");
    }

    #[test]
    fn submit_blocks_until_space_then_completes() {
        let data = "m n o p\n".repeat(64);
        let c = cluster_with(&data, &["input"]);
        let server = Arc::new(JobServer::new(
            Arc::clone(&c),
            JobServerConfig { queue_depth: 1, concurrency: 1, ..JobServerConfig::default() },
        ));
        // A burst far deeper than the queue: every submit eventually
        // lands (blocking backpressure), every handle completes.
        let handles: Vec<JobHandle> =
            (0..6).map(|_| server.submit(spec("input", "tester", 1))).collect();
        for h in handles {
            h.wait().expect("job completes");
        }
    }
}
