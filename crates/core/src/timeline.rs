//! Per-task execution timelines — the observability layer over the
//! simulated executor. When enabled, every map and reduce task records
//! (node, start, end, read source), from which utilization profiles,
//! straggler analyses and Gantt-style exports are derived.

use serde::Serialize;

/// Task flavor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum TaskKind {
    Map,
    Reduce,
}

/// One executed task.
#[derive(Clone, Debug, Serialize)]
pub struct TaskEvent {
    pub kind: TaskKind,
    /// Executing node index.
    pub node: u32,
    /// Start / end in simulated seconds.
    pub start: f64,
    pub end: f64,
    /// Where the input bytes came from ("local_disk", "local_cache", …);
    /// `None` for reduce tasks.
    pub source: Option<&'static str>,
}

impl TaskEvent {
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A recorded execution timeline.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Timeline {
    pub events: Vec<TaskEvent>,
}

impl Timeline {
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn push(&mut self, e: TaskEvent) {
        self.events.push(e);
    }

    /// Cluster-wide busy-slot count sampled every `bucket` seconds from
    /// 0 to the last task end — the utilization curve.
    pub fn utilization_profile(&self, bucket: f64) -> Vec<(f64, usize)> {
        assert!(bucket > 0.0);
        let horizon = self.events.iter().map(|e| e.end).fold(0.0f64, f64::max);
        let mut out = Vec::new();
        let mut t = 0.0;
        while t <= horizon {
            let busy = self.events.iter().filter(|e| e.start <= t && t < e.end).count();
            out.push((t, busy));
            t += bucket;
        }
        out
    }

    /// The `n` longest tasks (straggler inspection), longest first.
    pub fn stragglers(&self, n: usize) -> Vec<&TaskEvent> {
        let mut sorted: Vec<&TaskEvent> = self.events.iter().collect();
        sorted.sort_by(|a, b| b.duration().partial_cmp(&a.duration()).unwrap());
        sorted.truncate(n);
        sorted
    }

    /// Tasks per node (matches `JobReport::tasks_per_node` when a single
    /// job was recorded).
    pub fn tasks_per_node(&self, nodes: usize) -> Vec<usize> {
        let mut counts = vec![0usize; nodes];
        for e in &self.events {
            if (e.node as usize) < nodes {
                counts[e.node as usize] += 1;
            }
        }
        counts
    }

    /// CSV rows (`kind,node,start,end,source`) for external tooling.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("kind,node,start,end,source\n");
        for e in &self.events {
            s.push_str(&format!(
                "{:?},{},{:.3},{:.3},{}\n",
                e.kind,
                e.node,
                e.start,
                e.end,
                e.source.unwrap_or("")
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(node: u32, start: f64, end: f64) -> TaskEvent {
        TaskEvent { kind: TaskKind::Map, node, start, end, source: Some("local_disk") }
    }

    #[test]
    fn utilization_counts_overlaps() {
        let mut t = Timeline::default();
        t.push(ev(0, 0.0, 10.0));
        t.push(ev(1, 5.0, 15.0));
        let profile = t.utilization_profile(5.0);
        // Samples at t = 0, 5, 10, 15.
        assert_eq!(profile.len(), 4);
        assert_eq!(profile[0].1, 1);
        assert_eq!(profile[1].1, 2);
        assert_eq!(profile[2].1, 1);
        assert_eq!(profile[3].1, 0);
    }

    #[test]
    fn stragglers_sorted_by_duration() {
        let mut t = Timeline::default();
        t.push(ev(0, 0.0, 1.0));
        t.push(ev(1, 0.0, 9.0));
        t.push(ev(2, 0.0, 4.0));
        let s = t.stragglers(2);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].node, 1);
        assert_eq!(s[1].node, 2);
    }

    #[test]
    fn per_node_counts_and_csv() {
        let mut t = Timeline::default();
        t.push(ev(0, 0.0, 1.0));
        t.push(ev(0, 1.0, 2.0));
        t.push(ev(3, 0.0, 1.0));
        assert_eq!(t.tasks_per_node(4), vec![2, 0, 0, 1]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.starts_with("kind,node,start,end,source"));
    }
}
