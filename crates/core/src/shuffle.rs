//! Proactive shuffling (paper §II-D).
//!
//! Hadoop stores intermediate results on the mapper's local disk and lets
//! reducers pull after the map phase. EclipseMR instead pushes: "each map
//! task stores the intermediate results in a memory buffer for each hash
//! key range. When the size of this buffer reaches a certain threshold
//! specified by the application, EclipseMR spills the buffered results to
//! the DHT file system so that they can be accessed by reducers" — while
//! the map task is still running.

use eclipse_util::HashKey;

/// One emitted spill: `bytes` of partition `partition` ready to push to
/// the reducer side.
#[derive(Clone, Debug, PartialEq)]
pub struct Spill<P> {
    pub partition: usize,
    pub bytes: u64,
    /// Buffered payload records (empty for metered/simulated shuffles).
    pub records: Vec<P>,
}

/// A map task's per-partition spill buffers.
///
/// Generic over the record payload `P`: the live executor buffers real
/// key/value pairs, the simulator buffers nothing and only meters bytes.
#[derive(Clone, Debug)]
pub struct SpillBuffer<P> {
    threshold: u64,
    partitions: usize,
    buffered_bytes: Vec<u64>,
    buffered_records: Vec<Vec<P>>,
    spilled_bytes: u64,
    spills: u64,
}

impl<P> SpillBuffer<P> {
    /// `partitions` reducer partitions, spilling each partition when it
    /// buffers `threshold` bytes (32 MB in the paper's experiments).
    pub fn new(partitions: usize, threshold: u64) -> SpillBuffer<P> {
        assert!(partitions > 0, "need at least one reduce partition");
        assert!(threshold > 0, "spill threshold must be positive");
        SpillBuffer {
            threshold,
            partitions,
            buffered_bytes: vec![0; partitions],
            buffered_records: (0..partitions).map(|_| Vec::new()).collect(),
            spilled_bytes: 0,
            spills: 0,
        }
    }

    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Partition index for an intermediate key: reducers own equal
    /// slices of the ring, so the hash key picks the partition directly —
    /// this is what lets EclipseMR place reducers before maps finish.
    pub fn partition_of(&self, key: HashKey) -> usize {
        ((key.0 as u128 * self.partitions as u128) >> 64) as usize
    }

    /// Buffer `bytes` (and optionally a record) for `key`'s partition;
    /// returns a [`Spill`] if that partition crossed the threshold.
    pub fn push(&mut self, key: HashKey, bytes: u64, record: Option<P>) -> Option<Spill<P>> {
        let p = self.partition_of(key);
        self.push_to(p, bytes, record)
    }

    /// Buffer into an explicit partition — used by applications with a
    /// custom partitioner (e.g. TeraSort's sampled range partitioning).
    pub fn push_to(&mut self, p: usize, bytes: u64, record: Option<P>) -> Option<Spill<P>> {
        assert!(p < self.partitions, "partition {p} out of range");
        self.buffered_bytes[p] += bytes;
        if let Some(r) = record {
            self.buffered_records[p].push(r);
        }
        if self.buffered_bytes[p] >= self.threshold {
            Some(self.spill(p))
        } else {
            None
        }
    }

    fn spill(&mut self, p: usize) -> Spill<P> {
        let bytes = std::mem::take(&mut self.buffered_bytes[p]);
        let records = std::mem::take(&mut self.buffered_records[p]);
        self.spilled_bytes += bytes;
        self.spills += 1;
        Spill { partition: p, bytes, records }
    }

    /// Discard everything currently buffered while keeping the record
    /// vectors' allocations and the cumulative spill telemetry — one
    /// buffer can serve a whole stream of map tasks without reallocating
    /// per task. (To *emit* the remainder instead, use
    /// [`flush`](Self::flush).)
    pub fn reset(&mut self) {
        for b in &mut self.buffered_bytes {
            *b = 0;
        }
        for r in &mut self.buffered_records {
            r.clear();
        }
    }

    /// Flush every non-empty partition (map task end).
    pub fn flush(&mut self) -> Vec<Spill<P>> {
        let mut out = Vec::new();
        for p in 0..self.partitions {
            if self.buffered_bytes[p] > 0 || !self.buffered_records[p].is_empty() {
                out.push(self.spill(p));
            }
        }
        out
    }

    /// Total bytes spilled so far.
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes
    }

    /// Number of spill events so far.
    pub fn spill_count(&self) -> u64 {
        self.spills
    }

    /// Bytes currently buffered (unspilled).
    pub fn buffered(&self) -> u64 {
        self.buffered_bytes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spills_at_threshold() {
        let mut b: SpillBuffer<()> = SpillBuffer::new(4, 100);
        let key = HashKey::from_unit(0.1); // partition 0
        assert!(b.push(key, 60, None).is_none());
        let spill = b.push(key, 60, None).expect("crossed threshold");
        assert_eq!(spill.partition, 0);
        assert_eq!(spill.bytes, 120);
        assert_eq!(b.buffered(), 0);
        assert_eq!(b.spilled_bytes(), 120);
        assert_eq!(b.spill_count(), 1);
    }

    #[test]
    fn partitions_are_independent() {
        let mut b: SpillBuffer<()> = SpillBuffer::new(2, 100);
        b.push(HashKey::from_unit(0.1), 90, None); // partition 0
        b.push(HashKey::from_unit(0.9), 90, None); // partition 1
        assert_eq!(b.buffered(), 180);
        let spill = b.push(HashKey::from_unit(0.1), 20, None).unwrap();
        assert_eq!(spill.partition, 0);
        assert_eq!(b.buffered(), 90, "partition 1 untouched");
    }

    #[test]
    fn partition_of_covers_all() {
        let b: SpillBuffer<()> = SpillBuffer::new(7, 100);
        let mut seen = vec![false; 7];
        for i in 0..1000u64 {
            let p = b.partition_of(HashKey::of_name(&format!("k{i}")));
            assert!(p < 7);
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        // Boundary keys.
        assert_eq!(b.partition_of(HashKey(0)), 0);
        assert_eq!(b.partition_of(HashKey(u64::MAX)), 6);
    }

    #[test]
    fn flush_emits_remainders() {
        let mut b: SpillBuffer<u32> = SpillBuffer::new(3, 1000);
        b.push(HashKey::from_unit(0.1), 10, Some(1));
        b.push(HashKey::from_unit(0.5), 20, Some(2));
        let spills = b.flush();
        assert_eq!(spills.len(), 2);
        let total: u64 = spills.iter().map(|s| s.bytes).sum();
        assert_eq!(total, 30);
        assert!(b.flush().is_empty());
    }

    #[test]
    fn records_travel_with_spills() {
        let mut b: SpillBuffer<&str> = SpillBuffer::new(1, 10);
        b.push(HashKey(0), 5, Some("a"));
        let spill = b.push(HashKey(1), 6, Some("b")).unwrap();
        assert_eq!(spill.records, vec!["a", "b"]);
    }

    #[test]
    fn reset_reuses_buffer_across_tasks() {
        let mut b: SpillBuffer<u32> = SpillBuffer::new(2, 1000);
        b.push(HashKey::from_unit(0.1), 600, Some(1));
        b.push(HashKey::from_unit(0.9), 700, Some(2));
        assert_eq!(b.buffered(), 1300);
        b.reset();
        assert_eq!(b.buffered(), 0, "reset drops buffered bytes");
        assert!(b.flush().is_empty(), "reset drops buffered records");
        // Telemetry survives a reset; the buffer is immediately reusable.
        b.push(HashKey::from_unit(0.1), 1200, Some(3)).expect("spills again");
        assert_eq!(b.spill_count(), 1);
        assert_eq!(b.spilled_bytes(), 1200);
    }

    #[test]
    fn paper_spill_sizing() {
        // 128 MB of sort intermediate data with 32 MB buffers over 64
        // partitions: each partition buffers 2 MB, nothing spills until
        // flush — matching the paper's description that spills are
        // per-range 32 MB chunks only when a range accumulates enough.
        let mut b: SpillBuffer<()> = SpillBuffer::new(64, 32 * 1024 * 1024);
        for i in 0..1024u64 {
            let key = HashKey::of_name(&format!("rec{i}"));
            b.push(key, 128 * 1024, None);
        }
        assert_eq!(b.spilled_bytes() + b.buffered(), 128 * 1024 * 1024);
    }
}
