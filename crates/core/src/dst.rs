//! Deterministic simulation testing (DST) for the live executor.
//!
//! One `u64` seed drives everything: a workload sampler (app, input,
//! cluster shape, scheduler, cache shards, map slots, speculation,
//! replication), and a fault-schedule sampler that composes the
//! existing chaos machinery — [`FaultPlan`] crash/slow/fail-task and
//! elastic join/leave hooks
//! plus the [`MemTransport`] partition/delay/drop API — at points keyed
//! off the job's *own progress* (maps committed, shuffle batches sent)
//! rather than wall time. The same seed therefore replays the same
//! workload, the same fault schedule, and the same injection points on
//! any host; thread interleavings are not bit-identical across runs,
//! but the oracle must hold for *every* interleaving, so a seed that
//! fails is a seed that keeps failing.
//!
//! The oracle per run:
//!
//! 1. **Output**: byte-identical to a fault-free run of the same
//!    workload on the in-memory transport, *or* a typed terminal error
//!    from the allowed set — [`JobError::TaskFailed`] /
//!    [`JobError::DataLoss`] only when the sampled schedule plausibly
//!    exhausted a retry budget or destroyed every replica (see
//!    [`allowed_errors`]). A wrong result, a panic, or an error outside
//!    the allowed set is always a failure.
//! 2. **Accounting**: the [`LiveStats`] invariants
//!    (`attempts = map_tasks + retries + speculative_attempts`,
//!    per-node task counts summing to `map_tasks`, no phantom recovery
//!    on crash-free schedules, …) checked by [`check_stats`].
//!
//! On failure the harness *shrinks*: it bisects the fault schedule to
//! a minimal failing subset ([`shrink_schedule`]) and prints a
//! one-line, copy-pastable repro ([`repro_line`]) that replays the
//! exact seed under `cargo test`.
//!
//! Fault rates come from [`FaultConfig`] presets ([`DstPreset`]):
//! `calm` schedules are benign by construction (no crashes, no
//! partitions, every injected failure under the retry budget) and must
//! always produce byte-identical output; `moderate` and `chaos` may
//! legitimately end in an allowed typed error. **Maintainer rule:**
//! when a new fault point is added to the executor or the transport,
//! the same commit must wire it into the samplers here and give every
//! preset an explicit rate for it (zero is a decision, not a default).

use crate::epoch::{EpochDriver, StreamSpec};
use crate::job::{JobError, ReusePolicy};
use crate::live::{
    DstEvent, DstObserver, FaultPlan, LiveCluster, LiveConfig, LiveStats, MapReduce,
    SpeculationConfig,
};
use crate::sim_exec::SchedulerKind;
use eclipse_net::{MemTransport, RpcKind};
use eclipse_ring::NodeId;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Owner string for DST uploads.
pub const DST_USER: &str = "dst";
const INPUT: &str = "input";

/// Byte width of one line of epoch-mode input ("wNN wNN wNN wNN\n").
/// Every sampled block size (256/512/1024) is a multiple, so block
/// boundaries land on line boundaries in every delta layout.
const ALIGNED_LINE: usize = 16;

/// Transmissions the transport pays for per call (or windowed flush)
/// before surfacing a typed failure: `RetryPolicy::default().max_attempts`.
/// Drop schedules that stay strictly below this on every link and kind
/// are benign — the retry layer absorbs them.
const NET_BUDGET: u32 = 4;

/// Attempts the executor grants one map task before
/// [`JobError::TaskFailed`] (mirrors `live::MAX_ATTEMPTS`).
const TASK_BUDGET: u32 = 4;

// ---------------------------------------------------------------------------
// Presets
// ---------------------------------------------------------------------------

/// Named fault-rate presets, in increasing order of violence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DstPreset {
    /// Benign by construction: timing pressure only (delays, slow
    /// nodes, sub-budget drops, sub-budget injected task failures).
    /// Every calm run must end byte-identical — a typed error under
    /// `calm` is a bug.
    Calm,
    /// One crash slot, partitions (usually healed), heavier drops.
    Moderate,
    /// Two crash slots, partitions that may never heal, drop bursts
    /// past the retry budget.
    Chaos,
}

impl DstPreset {
    pub fn config(self) -> FaultConfig {
        match self {
            DstPreset::Calm => FaultConfig::calm(),
            DstPreset::Moderate => FaultConfig::moderate(),
            DstPreset::Chaos => FaultConfig::chaos(),
        }
    }
}

impl fmt::Display for DstPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DstPreset::Calm => "calm",
            DstPreset::Moderate => "moderate",
            DstPreset::Chaos => "chaos",
        };
        f.write_str(s)
    }
}

impl FromStr for DstPreset {
    type Err = String;
    fn from_str(s: &str) -> Result<DstPreset, String> {
        match s {
            "calm" => Ok(DstPreset::Calm),
            "moderate" => Ok(DstPreset::Moderate),
            "chaos" => Ok(DstPreset::Chaos),
            other => Err(format!("unknown DST preset {other:?} (calm|moderate|chaos)")),
        }
    }
}

/// Per-fault-point rates consumed by [`sample_schedule`]. Every fault
/// point the harness knows about has an explicit knob here, and every
/// preset sets every knob.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Max crash ops per schedule (distinct victims).
    pub crash_slots: u32,
    /// Probability of one injected-task-failure op.
    pub fail_task_p: f64,
    /// Max injected failures for that task.
    pub fail_times_max: u32,
    /// Probability of one slow-node op.
    pub slow_p: f64,
    /// Max per-attempt delay for the slow node, microseconds.
    pub slow_micros_max: u64,
    /// Max network ops (cut/delay/drop) per schedule.
    pub net_ops_max: u32,
    // Relative weights choosing which network op each slot becomes.
    pub cut_weight: u32,
    pub delay_weight: u32,
    pub drop_link_weight: u32,
    pub drop_kind_weight: u32,
    /// Probability a cut gets a matching heal later in the schedule.
    pub heal_p: f64,
    /// Max drop tokens per drop op.
    pub drop_n_max: u32,
    /// Cap on the *total* tokens any one link or RPC kind may
    /// accumulate across the schedule. Calm pins this below
    /// [`NET_BUDGET`] so drops can never exhaust a retry loop.
    pub tokens_per_target_max: u32,
    /// Max mid-job node joins per schedule (elastic membership).
    pub join_slots_max: u32,
    /// Max mid-job graceful leaves per schedule. Leavers are drawn
    /// from the same availability pool as crash victims, so a leaver
    /// is never also scheduled to crash and at least two original
    /// members always survive. A leave voids at most one in-flight
    /// attempt per task, so calm keeps
    /// `fail_times_max + leave_slots_max < TASK_BUDGET` to stay benign
    /// by construction.
    pub leave_slots_max: u32,
    /// Max concurrent jobs per seed (≥ 1). The primary job carries the
    /// fault schedule and the chaos observer; siblings run the same
    /// workload concurrently through the multi-job registry, and every
    /// job's output and attempt ledger is checked independently — a
    /// shuffle-dedup bleed or a recovery walk that misses a live run
    /// shows up as a sibling divergence.
    pub concurrent_jobs_max: u32,
    /// Probability an epoch-mode seed crashes a node at an epoch
    /// barrier — between the wave's last map commit and the snapshot
    /// publish, the exact window where the fold and the materialized
    /// oCache state are in flight. Calm pins this to zero.
    pub epoch_crash_p: f64,
    /// Probability of one graceful leave fired at an epoch barrier.
    pub epoch_leave_p: f64,
    /// Probability of one RPC-kind drop burst armed at an epoch
    /// barrier (hits the publish `CachePut`s or the next wave's reads
    /// and shuffle). Calm pins this to zero.
    pub epoch_drop_p: f64,
}

impl FaultConfig {
    pub fn calm() -> FaultConfig {
        FaultConfig {
            crash_slots: 0,
            fail_task_p: 0.5,
            fail_times_max: TASK_BUDGET - 2,
            slow_p: 0.5,
            slow_micros_max: 3_000,
            net_ops_max: 2,
            cut_weight: 0,
            delay_weight: 3,
            drop_link_weight: 2,
            drop_kind_weight: 1,
            heal_p: 1.0,
            drop_n_max: 2,
            tokens_per_target_max: NET_BUDGET - 1,
            // fail_times_max (2) + leave_slots_max (1) < TASK_BUDGET:
            // a leave-voided attempt stacked on every injected failure
            // still leaves one attempt of budget, so calm stays benign.
            join_slots_max: 1,
            leave_slots_max: 1,
            concurrent_jobs_max: 2,
            // Zero is a decision: calm epoch runs exercise timing
            // pressure only, so every calm epoch seed must publish
            // byte-identical snapshots.
            epoch_crash_p: 0.0,
            epoch_leave_p: 0.0,
            epoch_drop_p: 0.0,
        }
    }

    pub fn moderate() -> FaultConfig {
        FaultConfig {
            crash_slots: 1,
            fail_task_p: 0.6,
            fail_times_max: TASK_BUDGET - 1,
            slow_p: 0.6,
            slow_micros_max: 5_000,
            net_ops_max: 3,
            cut_weight: 2,
            delay_weight: 2,
            drop_link_weight: 2,
            drop_kind_weight: 2,
            heal_p: 0.7,
            drop_n_max: 4,
            tokens_per_target_max: u32::MAX,
            join_slots_max: 1,
            leave_slots_max: 1,
            concurrent_jobs_max: 2,
            epoch_crash_p: 0.3,
            epoch_leave_p: 0.3,
            epoch_drop_p: 0.5,
        }
    }

    pub fn chaos() -> FaultConfig {
        FaultConfig {
            crash_slots: 2,
            fail_task_p: 0.7,
            fail_times_max: TASK_BUDGET + 2,
            slow_p: 0.7,
            slow_micros_max: 8_000,
            net_ops_max: 5,
            cut_weight: 3,
            delay_weight: 2,
            drop_link_weight: 3,
            drop_kind_weight: 3,
            heal_p: 0.5,
            drop_n_max: 6,
            tokens_per_target_max: u32::MAX,
            join_slots_max: 2,
            leave_slots_max: 2,
            concurrent_jobs_max: 3,
            epoch_crash_p: 0.5,
            epoch_leave_p: 0.5,
            epoch_drop_p: 0.7,
        }
    }
}

// ---------------------------------------------------------------------------
// Workload sampling
// ---------------------------------------------------------------------------

/// The two DST applications. Both reduce with order-insensitive
/// aggregates, so output is a pure function of the multiset of shuffled
/// records — exactly what the byte-identical oracle needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DstApp {
    /// Classic word count; `combiner` exercises the map-side combine
    /// path (partial sums re-summed at the reducer).
    WordCount { combiner: bool },
    /// Groups words by their first two characters and emits
    /// `count|max` per group — a no-combiner app whose reduce output
    /// still can't depend on value arrival order.
    KeySum,
}

impl MapReduce for DstApp {
    fn map(&self, block: &[u8], emit: &mut dyn FnMut(String, String)) {
        let text = String::from_utf8_lossy(block);
        for w in text.split_whitespace() {
            match self {
                DstApp::WordCount { .. } => emit(w.to_string(), "1".to_string()),
                DstApp::KeySum => emit(w.chars().take(2).collect(), w.to_string()),
            }
        }
    }

    fn reduce(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
        match self {
            DstApp::WordCount { .. } => {
                let total: u64 = values.iter().map(|v| v.parse::<u64>().unwrap_or(0)).sum();
                emit(key.to_string(), total.to_string());
            }
            DstApp::KeySum => {
                let max = values.iter().max().cloned().unwrap_or_default();
                emit(key.to_string(), format!("{}|{max}", values.len()));
            }
        }
    }

    fn combine(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
        match self {
            DstApp::WordCount { .. } => {
                let total: u64 = values.iter().map(|v| v.parse::<u64>().unwrap_or(0)).sum();
                emit(key.to_string(), total.to_string());
            }
            DstApp::KeySum => {
                for v in values {
                    emit(key.to_string(), v.clone());
                }
            }
        }
    }

    fn has_combiner(&self) -> bool {
        matches!(self, DstApp::WordCount { combiner: true })
    }
}

/// Everything the seed decides about the job itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DstWorkload {
    pub seed: u64,
    pub app: DstApp,
    pub lines: usize,
    pub vocab: u64,
    pub nodes: usize,
    pub reducers: usize,
    pub laf: bool,
    pub block_size: u64,
    pub cache_shards: usize,
    pub map_slots: usize,
    pub speculation: bool,
    pub replication: usize,
    /// Epochs this seed runs: 1 = the classic one-shot batch flow;
    /// ≥ 2 = a standing job ([`crate::EpochDriver`]) that folds the
    /// input as that many barrier-aligned deltas and is judged against
    /// a one-shot batch over the concatenation.
    pub epochs: u32,
}

impl DstWorkload {
    /// Sample a workload from the seed. Pure: same seed, same workload.
    pub fn sample(seed: u64) -> DstWorkload {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE1C1_05E0_0000_0001);
        let app = if rng.random_bool(0.5) {
            DstApp::WordCount { combiner: rng.random_bool(0.5) }
        } else {
            DstApp::KeySum
        };
        let nodes = rng.random_range(4..9usize);
        let speculation = rng.random_bool(0.25);
        let replication = if rng.random_bool(0.25) { 2 } else { 1 };
        // Speculation and replicated map-out both need a worker thread
        // per node on low-core hosts (see DESIGN.md §8h).
        let map_slots =
            if speculation || replication > 1 { nodes } else { rng.random_range(1..3usize) };
        // Sampled off its own stream so adding the continuous-job mode
        // left every existing seed's workload and schedule untouched.
        let mut erng = StdRng::seed_from_u64(seed ^ 0xE70C_4B12_0000_0004);
        let epochs = if erng.random_bool(0.3) { erng.random_range(2..=4u32) } else { 1 };
        DstWorkload {
            seed,
            app,
            lines: rng.random_range(60..321usize),
            vocab: rng.random_range(8..31u64),
            nodes,
            reducers: rng.random_range(1..6usize),
            laf: rng.random_bool(0.5),
            block_size: [256, 512, 1024][rng.random_range(0..3usize)],
            cache_shards: 1usize << rng.random_range(0..4u32),
            map_slots,
            speculation,
            replication,
            epochs,
        }
    }

    /// Deterministic input text for this workload.
    pub fn input(&self) -> String {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xD511_0000_0000_0002);
        let mut s = String::new();
        for _ in 0..self.lines {
            let words = rng.random_range(3..9usize);
            for i in 0..words {
                if i > 0 {
                    s.push(' ');
                }
                let w = rng.random_range(0..self.vocab);
                s.push_str(&format!("w{w:02}"));
            }
            s.push('\n');
        }
        s
    }

    /// Fixed-width-line input for epoch-mode seeds: every line is
    /// exactly [`ALIGNED_LINE`] bytes (four 3-char words), and every
    /// sampled block size is a multiple of it. Block boundaries
    /// therefore never split a word — neither in the per-epoch delta
    /// files nor in the concatenated oracle file, whose boundaries
    /// fall at different input offsets. Without this alignment the
    /// epoch-vs-batch comparison would diverge on word halves, not on
    /// executor bugs.
    pub fn aligned_input(&self) -> String {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xA119_0000_0000_0005);
        let mut s = String::with_capacity(self.lines * ALIGNED_LINE);
        for _ in 0..self.lines {
            for i in 0..4 {
                if i > 0 {
                    s.push(' ');
                }
                let w = rng.random_range(0..self.vocab);
                s.push_str(&format!("w{w:02}"));
            }
            s.push('\n');
        }
        s
    }

    /// Split [`aligned_input`](Self::aligned_input) into `epochs`
    /// contiguous line-aligned deltas (the last takes the remainder).
    /// Concatenating them reproduces the aligned input byte for byte.
    pub fn epoch_deltas(&self) -> Vec<String> {
        let input = self.aligned_input();
        let epochs = self.epochs.max(1) as usize;
        let per = (self.lines / epochs).max(1) * ALIGNED_LINE;
        let mut out = Vec::with_capacity(epochs);
        let mut at = 0usize;
        for e in 0..epochs {
            let end = if e + 1 == epochs { input.len() } else { (at + per).min(input.len()) };
            out.push(input[at..end].to_string());
            at = end;
        }
        out
    }

    /// The cluster configuration this workload runs under.
    pub fn config(&self) -> LiveConfig {
        let sched = if self.laf {
            SchedulerKind::Laf(Default::default())
        } else {
            SchedulerKind::Delay(Default::default())
        };
        let mut c = LiveConfig::small()
            .with_nodes(self.nodes)
            .with_block_size(self.block_size)
            .with_cache_shards(self.cache_shards)
            .with_map_slots(self.map_slots)
            .with_scheduler(sched);
        if self.speculation {
            c = c.with_speculation(SpeculationConfig::default());
        }
        if self.replication > 1 {
            c = c.with_map_replication(self.replication);
        }
        c
    }
}

// ---------------------------------------------------------------------------
// Fault schedules
// ---------------------------------------------------------------------------

/// A point on the job's logical clock (see [`DstEvent`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Point {
    /// After this many map commits.
    Maps(u64),
    /// After this many shuffle batches sent.
    Spills(u64),
    /// At this epoch's barrier — between the wave's last map commit
    /// and the snapshot publish ([`DstEvent::EpochBarrier`]). Only
    /// standing jobs reach these points.
    Epochs(u32),
}

/// One sampled fault. Crash/fail/slow ops compile into a [`FaultPlan`];
/// network ops are armed on a [`ChaosObserver`] and fire when the
/// executor's progress events reach their [`Point`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DstFault {
    CrashAtMaps { node: NodeId, maps: u64 },
    CrashAtSpills { node: NodeId, spills: u64 },
    CrashInReduce { node: NodeId },
    FailTask { task: usize, times: u32 },
    SlowNode { node: NodeId, micros: u64 },
    CutLink { from: NodeId, to: NodeId, at: Point, heal_at: Option<Point> },
    DelayLink { from: NodeId, to: NodeId, at: Point, salt: u64 },
    DropOnLink { from: NodeId, to: NodeId, at: Point, n: u32 },
    DropKind { kind: RpcKind, at: Point, n: u32 },
    /// Admit a fresh node once `at` map tasks have committed.
    JoinAtMaps { at: u64 },
    /// Gracefully retire `node` once `at` map tasks have committed.
    LeaveAtMaps { node: NodeId, at: u64 },
    /// Crash `node` at epoch `epoch`'s barrier — after the wave's maps
    /// committed, before the snapshot publish. Epoch-mode seeds only.
    CrashAtEpoch { node: NodeId, epoch: u32 },
    /// Gracefully retire `node` at epoch `epoch`'s barrier.
    LeaveAtEpoch { node: NodeId, epoch: u32 },
    /// Drop the next `n` RPCs of `kind` starting at epoch `epoch`'s
    /// barrier: the burst lands on the publish `CachePut`s and the
    /// next wave's reads, uploads, and shuffle.
    DropAtEpoch { kind: RpcKind, epoch: u32, n: u32 },
}

const KINDS: [RpcKind; 10] = [
    RpcKind::GetBlock,
    RpcKind::PutBlock,
    RpcKind::ReplicaSync,
    RpcKind::CacheGet,
    RpcKind::CachePut,
    RpcKind::ShuffleBatch,
    RpcKind::Heartbeat,
    RpcKind::TaskAssign,
    RpcKind::RangeHandoff,
    RpcKind::BlockPull,
];

fn sample_point(rng: &mut StdRng, maps: u64, spills: u64) -> Point {
    if rng.random_bool(0.5) {
        Point::Maps(rng.random_range(1..=maps))
    } else {
        Point::Spills(rng.random_range(1..=spills))
    }
}

fn sample_link(rng: &mut StdRng, nodes: &[NodeId]) -> (NodeId, NodeId) {
    let i = rng.random_range(0..nodes.len());
    let mut j = rng.random_range(0..nodes.len() - 1);
    if j >= i {
        j += 1;
    }
    (nodes[i], nodes[j])
}

/// Sample a fault schedule against a workload whose fault-free run
/// committed `maps` map tasks and sent `spills` shuffle batches (the
/// ranges the progress-keyed injection points are drawn from). Pure in
/// `rng`: same RNG state, same schedule.
pub fn sample_schedule(
    rng: &mut StdRng,
    cfg: &FaultConfig,
    nodes: &[NodeId],
    maps: u64,
    spills: u64,
) -> Vec<DstFault> {
    let (maps, spills) = (maps.max(1), spills.max(1));
    let mut out = Vec::new();

    // Crashes: distinct victims, random phase each.
    let slots = rng.random_range(0..=cfg.crash_slots);
    let mut avail: Vec<NodeId> = nodes.to_vec();
    for _ in 0..slots {
        if avail.len() <= 2 {
            // Never schedule a crash that leaves fewer than two
            // survivors; total-annihilation runs test nothing.
            break;
        }
        let node = avail.swap_remove(rng.random_range(0..avail.len()));
        out.push(match rng.random_range(0..3u32) {
            0 => DstFault::CrashAtMaps { node, maps: rng.random_range(1..=maps) },
            1 => DstFault::CrashAtSpills { node, spills: rng.random_range(1..=spills) },
            _ => DstFault::CrashInReduce { node },
        });
    }

    // Elastic membership: joins only add capacity, so they need no
    // survivor guard. Leavers come from the same availability pool as
    // crash victims — a leaver is never also a crash victim, and at
    // least two original members survive every schedule. Both are
    // armed on the map-commit logical clock and clamped to [1, maps]
    // so every scheduled event actually fires on a successful run.
    let joins = rng.random_range(0..=cfg.join_slots_max);
    for _ in 0..joins {
        out.push(DstFault::JoinAtMaps { at: rng.random_range(1..=maps) });
    }
    let leaves = rng.random_range(0..=cfg.leave_slots_max);
    for _ in 0..leaves {
        if avail.len() <= 2 {
            break;
        }
        let node = avail.swap_remove(rng.random_range(0..avail.len()));
        out.push(DstFault::LeaveAtMaps { node, at: rng.random_range(1..=maps) });
    }

    if rng.random_bool(cfg.fail_task_p) {
        out.push(DstFault::FailTask {
            task: rng.random_range(0..maps) as usize,
            times: rng.random_range(1..=cfg.fail_times_max),
        });
    }
    if rng.random_bool(cfg.slow_p) {
        out.push(DstFault::SlowNode {
            node: nodes[rng.random_range(0..nodes.len())],
            micros: rng.random_range(500..=cfg.slow_micros_max),
        });
    }

    // Network ops, budgeted per target so calm stays under the retry
    // budget on every link and kind.
    let mut link_tokens: HashMap<(NodeId, NodeId), u32> = HashMap::new();
    let mut kind_tokens: HashMap<RpcKind, u32> = HashMap::new();
    let total_w =
        cfg.cut_weight + cfg.delay_weight + cfg.drop_link_weight + cfg.drop_kind_weight;
    let ops = rng.random_range(0..=cfg.net_ops_max);
    for salt in 0..ops {
        if total_w == 0 {
            break;
        }
        let at = sample_point(rng, maps, spills);
        let (from, to) = sample_link(rng, nodes);
        let w = rng.random_range(0..total_w);
        if w < cfg.cut_weight {
            let heal_at = if rng.random_bool(cfg.heal_p) {
                Some(match at {
                    Point::Maps(m) => Point::Maps(m + rng.random_range(1..4u64)),
                    Point::Spills(s) => Point::Spills(s + rng.random_range(1..4u64)),
                    // sample_point never draws epoch points here.
                    p => p,
                })
            } else {
                None
            };
            out.push(DstFault::CutLink { from, to, at, heal_at });
        } else if w < cfg.cut_weight + cfg.delay_weight {
            out.push(DstFault::DelayLink { from, to, at, salt: u64::from(salt) + 1 });
        } else if w < cfg.cut_weight + cfg.delay_weight + cfg.drop_link_weight {
            let used = *link_tokens.get(&(from, to)).unwrap_or(&0);
            let budget = cfg.tokens_per_target_max.saturating_sub(used).min(cfg.drop_n_max);
            if budget == 0 {
                continue;
            }
            let n = rng.random_range(1..=budget);
            *link_tokens.entry((from, to)).or_insert(0) += n;
            out.push(DstFault::DropOnLink { from, to, at, n });
        } else {
            let kind = KINDS[rng.random_range(0..KINDS.len())];
            let used = *kind_tokens.get(&kind).unwrap_or(&0);
            let budget = cfg.tokens_per_target_max.saturating_sub(used).min(cfg.drop_n_max);
            if budget == 0 {
                continue;
            }
            let n = rng.random_range(1..=budget);
            *kind_tokens.entry(kind).or_insert(0) += n;
            out.push(DstFault::DropKind { kind, at, n });
        }
    }
    out
}

/// RPC kinds a standing job actually exercises: delta uploads, cached
/// block reads, the shuffle plane, the materialized-snapshot publish,
/// and crash-recovery re-replication.
const EPOCH_KINDS: [RpcKind; 6] = [
    RpcKind::GetBlock,
    RpcKind::PutBlock,
    RpcKind::ReplicaSync,
    RpcKind::CacheGet,
    RpcKind::CachePut,
    RpcKind::ShuffleBatch,
];

/// Sample a fault schedule for an epoch-mode seed: barrier-point node
/// crashes, graceful leaves, and drop bursts (the new fault points),
/// plus in-wave network ops keyed off the map-commit clock. Executor
/// fault-plan ops (`CrashAtMaps`, `FailTask`, …) are deliberately
/// absent — the pool path leaves the injected plan undrained, so a
/// sampled-but-unfired fault would silently weaken the oracle.
/// `wave_maps` is the smallest wave's map count, so every sampled
/// in-wave point actually fires.
pub fn sample_epoch_schedule(
    rng: &mut StdRng,
    cfg: &FaultConfig,
    nodes: &[NodeId],
    epochs: u32,
    wave_maps: u64,
) -> Vec<DstFault> {
    let epochs = epochs.max(1);
    let wave_maps = wave_maps.max(1);
    let mut out = Vec::new();

    // Barrier-point membership faults: distinct victims, and never
    // below two survivors (nodes ≥ 4, at most one crash + one leave).
    let mut avail: Vec<NodeId> = nodes.to_vec();
    if rng.random_bool(cfg.epoch_crash_p) && avail.len() > 2 {
        let node = avail.swap_remove(rng.random_range(0..avail.len()));
        out.push(DstFault::CrashAtEpoch { node, epoch: rng.random_range(1..=epochs) });
    }
    if rng.random_bool(cfg.epoch_leave_p) && avail.len() > 2 {
        let node = avail.swap_remove(rng.random_range(0..avail.len()));
        out.push(DstFault::LeaveAtEpoch { node, epoch: rng.random_range(1..=epochs) });
    }
    if rng.random_bool(cfg.epoch_drop_p) {
        out.push(DstFault::DropAtEpoch {
            kind: EPOCH_KINDS[rng.random_range(0..EPOCH_KINDS.len())],
            epoch: rng.random_range(1..=epochs),
            n: rng.random_range(1..=cfg.drop_n_max.max(1)),
        });
    }

    // In-wave network pressure on the map-commit clock, with the same
    // per-target token budget that keeps calm under the retry budget.
    let mut link_tokens: HashMap<(NodeId, NodeId), u32> = HashMap::new();
    let total_w = cfg.cut_weight + cfg.delay_weight + cfg.drop_link_weight;
    let ops = rng.random_range(0..=cfg.net_ops_max);
    for salt in 0..ops {
        if total_w == 0 {
            break;
        }
        let at = Point::Maps(rng.random_range(1..=wave_maps));
        let (from, to) = sample_link(rng, nodes);
        let w = rng.random_range(0..total_w);
        if w < cfg.cut_weight {
            let heal_at = if rng.random_bool(cfg.heal_p) {
                Some(match at {
                    Point::Maps(m) => Point::Maps(m + rng.random_range(1..4u64)),
                    p => p,
                })
            } else {
                None
            };
            out.push(DstFault::CutLink { from, to, at, heal_at });
        } else if w < cfg.cut_weight + cfg.delay_weight {
            out.push(DstFault::DelayLink { from, to, at, salt: u64::from(salt) + 1 });
        } else {
            let used = *link_tokens.get(&(from, to)).unwrap_or(&0);
            let budget = cfg.tokens_per_target_max.saturating_sub(used).min(cfg.drop_n_max);
            if budget == 0 {
                continue;
            }
            let n = rng.random_range(1..=budget);
            *link_tokens.entry((from, to)).or_insert(0) += n;
            out.push(DstFault::DropOnLink { from, to, at, n });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Progress-keyed network fault injection
// ---------------------------------------------------------------------------

/// A transport fault a [`ChaosObserver`] can fire at a [`Point`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetOp {
    Cut { from: NodeId, to: NodeId },
    Heal { from: NodeId, to: NodeId },
    Delay { from: NodeId, to: NodeId, salt: u64 },
    DropLink { from: NodeId, to: NodeId, n: u32 },
    DropKind { kind: RpcKind, n: u32 },
}

/// A fault a [`ChaosObserver`] can fire at a [`Point`]: a transport
/// op, or — for epoch-mode runs that hold a cluster handle — a
/// node-level membership fault at an epoch barrier.
#[derive(Clone)]
pub enum ChaosOp {
    Net(NetOp),
    /// Crash the node via [`LiveCluster::crash_node`].
    Crash { node: NodeId },
    /// Gracefully retire the node via [`LiveCluster::leave_node`].
    Leave { node: NodeId },
}

#[derive(Clone)]
struct ChaosAction {
    at: Point,
    act: ChaosOp,
}

/// A [`DstObserver`] that arms [`MemTransport`] faults (and, given a
/// cluster handle, node-level barrier faults) and fires each one the
/// first time the executor's logical clock reaches its [`Point`].
/// Counts fired actions for the `faults_injected` total. Also usable
/// directly from tests to stage a hand-written progress-keyed net
/// fault (see `tests/chaos.rs`).
pub struct ChaosObserver {
    net: Arc<MemTransport>,
    /// Needed only for node-level ops; the batch harness arms pure
    /// transport faults and leaves this empty.
    cluster: Option<Arc<LiveCluster>>,
    pending: Mutex<Vec<ChaosAction>>,
    fired: AtomicU64,
}

impl ChaosObserver {
    pub fn new(net: Arc<MemTransport>, armed: Vec<(Point, NetOp)>) -> ChaosObserver {
        ChaosObserver {
            net,
            cluster: None,
            pending: Mutex::new(
                armed
                    .into_iter()
                    .map(|(at, act)| ChaosAction { at, act: ChaosOp::Net(act) })
                    .collect(),
            ),
            fired: AtomicU64::new(0),
        }
    }

    /// Observer for epoch-mode runs: the cluster handle lets barrier
    /// points crash or retire nodes, not just disturb the transport.
    pub fn with_cluster(
        net: Arc<MemTransport>,
        cluster: Arc<LiveCluster>,
        armed: Vec<(Point, ChaosOp)>,
    ) -> ChaosObserver {
        ChaosObserver {
            net,
            cluster: Some(cluster),
            pending: Mutex::new(
                armed.into_iter().map(|(at, act)| ChaosAction { at, act }).collect(),
            ),
            fired: AtomicU64::new(0),
        }
    }

    /// How many armed ops have fired so far.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    fn apply(&self, act: ChaosOp) {
        match act {
            ChaosOp::Net(NetOp::Cut { from, to }) => self.net.cut_one_way(from, to),
            ChaosOp::Net(NetOp::Heal { from, to }) => self.net.heal_link(from, to),
            ChaosOp::Net(NetOp::Delay { from, to, salt }) => {
                self.net.delay_link_seeded(from, to, salt);
            }
            ChaosOp::Net(NetOp::DropLink { from, to, n }) => {
                self.net.drop_next_on_link(from, to, n)
            }
            ChaosOp::Net(NetOp::DropKind { kind, n }) => self.net.drop_rpcs(kind, n),
            // Node-level barrier faults are best-effort by design: a
            // recovery error here surfaces through the job's own typed
            // result, which is what the oracle judges.
            ChaosOp::Crash { node } => {
                if let Some(c) = &self.cluster {
                    let _ = c.crash_node(node);
                }
            }
            ChaosOp::Leave { node } => {
                if let Some(c) = &self.cluster {
                    let _ = c.leave_node(node);
                }
            }
        }
    }
}

impl DstObserver for ChaosObserver {
    fn on_event(&self, ev: DstEvent) {
        let mut due = Vec::new();
        {
            let mut pending = self.pending.lock();
            pending.retain(|a| {
                let fire = match (ev, a.at) {
                    (DstEvent::MapCommitted { done }, Point::Maps(m)) => m <= done,
                    (DstEvent::SpillSent { sent }, Point::Spills(s)) => s <= sent,
                    (DstEvent::EpochBarrier { epoch }, Point::Epochs(e)) => e <= epoch,
                    _ => false,
                };
                if fire {
                    due.push(a.act.clone());
                }
                !fire
            });
        }
        for act in due {
            self.apply(act);
            self.fired.fetch_add(1, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------------

/// Which typed terminal errors a schedule could legitimately cause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Allowed {
    pub task_failed: bool,
    pub data_loss: bool,
}

/// Decide, from the schedule alone, which typed errors are excusable.
/// The predicate is deliberately conservative in the *strict*
/// direction: a schedule with no crash, no cut, and every drop burst
/// under the retry budget allows nothing — those runs must be
/// byte-identical, full stop.
pub fn allowed_errors(schedule: &[DstFault]) -> Allowed {
    let mut victims = Vec::new();
    let mut fail_times = 0u32;
    let mut fail_task = false;
    let mut cuts = false;
    let mut any_drop = false;
    let mut leaves = 0u32;
    let mut link_tokens: HashMap<(NodeId, NodeId), u32> = HashMap::new();
    let mut kind_tokens: HashMap<RpcKind, u32> = HashMap::new();
    for f in schedule {
        match *f {
            DstFault::CrashAtMaps { node, .. }
            | DstFault::CrashAtSpills { node, .. }
            | DstFault::CrashInReduce { node } => {
                if !victims.contains(&node) {
                    victims.push(node);
                }
            }
            DstFault::FailTask { times, .. } => {
                fail_task = true;
                fail_times = fail_times.max(times);
            }
            DstFault::SlowNode { .. } | DstFault::DelayLink { .. } => {}
            DstFault::CutLink { .. } => cuts = true,
            DstFault::DropOnLink { from, to, n, .. } => {
                any_drop = true;
                *link_tokens.entry((from, to)).or_insert(0) += n;
            }
            DstFault::DropKind { kind, n, .. } => {
                any_drop = true;
                *kind_tokens.entry(kind).or_insert(0) += n;
            }
            // A join adds capacity and excuses nothing. A leave alone
            // excuses nothing either — its handoff falls back through
            // every surviving replica — but each leave can void one
            // in-flight attempt per task, charging the retry budget,
            // so it counts toward the exhaustion arithmetic below.
            DstFault::JoinAtMaps { .. } => {}
            DstFault::LeaveAtMaps { .. } => leaves += 1,
            // Barrier faults obey the same arithmetic: a crash is a
            // crash (one alone still excuses nothing — barrier
            // recovery must converge before the next wave), a leave is
            // a leave, and a barrier drop burst spends kind tokens
            // exactly like a mid-job one.
            DstFault::CrashAtEpoch { node, .. } => {
                if !victims.contains(&node) {
                    victims.push(node);
                }
            }
            DstFault::LeaveAtEpoch { .. } => leaves += 1,
            DstFault::DropAtEpoch { kind, n, .. } => {
                any_drop = true;
                *kind_tokens.entry(kind).or_insert(0) += n;
            }
        }
    }
    // Budget arithmetic: injected failures plus one possible
    // leave-void per leave may exhaust MAX_ATTEMPTS.
    let kill_task = fail_times > 0 && fail_times + leaves >= TASK_BUDGET;
    let heavy_drops = link_tokens.values().any(|&n| n >= NET_BUDGET)
        || kind_tokens.values().any(|&n| n >= NET_BUDGET);
    let crashes = victims.len();
    Allowed {
        // A task dies for good when its attempt budget is exhausted:
        // directly (times ≥ budget), by retries burning against a
        // partition or a heavy drop burst, or by crash-voided attempts
        // stacking on injected failures.
        task_failed: kill_task
            || cuts
            || heavy_drops
            || crashes >= 2
            || (fail_task && crashes >= 1),
        // Replicas only vanish when multiple holders die, or when a
        // partition/drop burst makes a live holder unreachable through
        // the whole retry budget during recovery.
        data_loss: crashes >= 2 || cuts || heavy_drops || (crashes >= 1 && any_drop),
    }
}

/// Per-job attempt-ledger invariants — the subset of [`check_stats`]
/// that holds for *every* job in a run, including siblings sharing the
/// cluster with the fault-carrying primary. Each job has its own
/// commit board and counters, so a cross-job dedup bleed (one job's
/// shuffle batches settled against another's ledger) breaks these.
pub fn check_job_ledger(stats: &LiveStats, checks: &mut u64) -> Result<(), String> {
    macro_rules! inv {
        ($cond:expr, $($msg:tt)*) => {{
            *checks += 1;
            if !$cond {
                return Err(format!($($msg)*));
            }
        }};
    }

    inv!(
        stats.attempts == stats.map_tasks + stats.retries + stats.speculative_attempts,
        "attempts {} != map_tasks {} + retries {} + speculative {}",
        stats.attempts,
        stats.map_tasks,
        stats.retries,
        stats.speculative_attempts
    );
    inv!(
        stats.speculative_wins <= stats.speculative_attempts,
        "speculative_wins {} > speculative_attempts {}",
        stats.speculative_wins,
        stats.speculative_attempts
    );
    inv!(
        stats.speculative_wins + stats.retries <= stats.attempts - stats.map_tasks,
        "wins {} + retries {} exceed surplus attempts {}",
        stats.speculative_wins,
        stats.retries,
        stats.attempts - stats.map_tasks
    );
    inv!(
        stats.tasks_per_node.iter().sum::<u64>() == stats.map_tasks,
        "tasks_per_node sums to {} != map_tasks {}",
        stats.tasks_per_node.iter().sum::<u64>(),
        stats.map_tasks
    );
    Ok(())
}

/// Check the [`LiveStats`] accounting invariants for a successful run.
/// Increments `checks` once per invariant evaluated; returns the first
/// violation.
pub fn check_stats(
    stats: &LiveStats,
    w: &DstWorkload,
    schedule: &[DstFault],
    checks: &mut u64,
) -> Result<(), String> {
    macro_rules! inv {
        ($cond:expr, $($msg:tt)*) => {{
            *checks += 1;
            if !$cond {
                return Err(format!($($msg)*));
            }
        }};
    }

    check_job_ledger(stats, checks)?;
    let planned_joins =
        schedule.iter().filter(|f| matches!(f, DstFault::JoinAtMaps { .. })).count() as u64;
    let planned_leaves =
        schedule.iter().filter(|f| matches!(f, DstFault::LeaveAtMaps { .. })).count() as u64;
    inv!(
        stats.tasks_per_node.len() == w.nodes + planned_joins as usize,
        "tasks_per_node has {} entries for {} nodes + {} joins",
        stats.tasks_per_node.len(),
        w.nodes,
        planned_joins
    );
    // Every map-commit count is reached on a successful run, so every
    // scheduled elastic event fired exactly once (leavers are never
    // crash victims, so no leave degenerates into a no-op).
    inv!(
        stats.joins == planned_joins,
        "joins {} != scheduled {}",
        stats.joins,
        planned_joins
    );
    inv!(
        stats.leaves == planned_leaves,
        "leaves {} != scheduled {}",
        stats.leaves,
        planned_leaves
    );
    if planned_leaves == 0 {
        inv!(
            stats.drained_tasks == 0,
            "drained {} tasks with no scheduled leave",
            stats.drained_tasks
        );
    }
    if planned_joins == 0 && planned_leaves == 0 {
        inv!(
            stats.handoff_blocks == 0 && stats.handoff_bytes == 0,
            "phantom handoff without elastic events: blocks={} bytes={}",
            stats.handoff_blocks,
            stats.handoff_bytes
        );
    }
    if w.replication == 1 {
        inv!(
            stats.cache_hits + stats.cache_misses >= stats.map_tasks,
            "cache lookups {} < map_tasks {} (every commit reads its block)",
            stats.cache_hits + stats.cache_misses,
            stats.map_tasks
        );
    }

    let mut crash_victims = Vec::new();
    let mut map_crashes = 0u64;
    for f in schedule {
        let node = match *f {
            DstFault::CrashAtMaps { node, .. } => {
                map_crashes += 1;
                node
            }
            DstFault::CrashAtSpills { node, .. } | DstFault::CrashInReduce { node } => node,
            _ => continue,
        };
        if !crash_victims.contains(&node) {
            crash_victims.push(node);
        }
    }
    if crash_victims.is_empty() {
        // Crash recovery counters stay crash-only: a graceful leave
        // re-homes blocks through the handoff counters, never these.
        inv!(
            stats.failed_nodes == 0 && stats.recovered_blocks == 0,
            "phantom recovery on a crash-free schedule: failed={} recovered={}",
            stats.failed_nodes,
            stats.recovered_blocks
        );
        if planned_joins == 0 && planned_leaves == 0 {
            inv!(
                stats.stabilize_rounds == 0,
                "phantom stabilization on a membership-static schedule: {}",
                stats.stabilize_rounds
            );
        }
    } else {
        inv!(
            stats.failed_nodes <= crash_victims.len() as u64,
            "failed_nodes {} exceeds scheduled victims {}",
            stats.failed_nodes,
            crash_victims.len()
        );
        // A map-phase crash trigger always fires on a successful run
        // (every map commit count is reached), so detection must have
        // seen at least those victims.
        inv!(
            stats.failed_nodes >= map_crashes,
            "failed_nodes {} < {} scheduled map-phase crashes",
            stats.failed_nodes,
            map_crashes
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Running, shrinking, reporting
// ---------------------------------------------------------------------------

/// Outcome of one schedule execution, before shrinking.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Outcome {
    Match,
    Allowed(String),
    Fail(String),
}

/// Final verdict of a seeded run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Output byte-identical to the fault-free run, invariants hold.
    Match,
    /// A typed terminal error the schedule legitimately allows.
    AllowedError(String),
    /// Oracle violation: wrong output, bad accounting, or a
    /// disallowed error. Carries the shrunk schedule and a repro line.
    Fail { reason: String, minimal: Vec<DstFault>, repro: String },
}

impl Verdict {
    pub fn is_fail(&self) -> bool {
        matches!(self, Verdict::Fail { .. })
    }
}

/// Everything one seeded run produced.
#[derive(Clone, Debug)]
pub struct DstReport {
    pub seed: u64,
    pub preset: DstPreset,
    pub workload: DstWorkload,
    pub schedule: Vec<DstFault>,
    pub verdict: Verdict,
    pub faults_injected: u64,
    pub oracle_checks: u64,
    /// Jobs run concurrently on the cluster this seed (1 = the
    /// primary alone), sampled from the preset's
    /// `concurrent_jobs_max`.
    pub concurrent_jobs: u32,
}

impl DstReport {
    pub fn passed(&self) -> bool {
        !self.verdict.is_fail()
    }
}

/// The one-line replay command printed on failure.
pub fn repro_line(seed: u64, preset: DstPreset) -> String {
    format!(
        "DST_SEED={seed} DST_PRESET={preset} cargo test -p eclipse-integration-tests \
         --test dst replay_env_seed -- --nocapture"
    )
}

fn run_schedule(
    w: &DstWorkload,
    input: &str,
    schedule: &[DstFault],
    expect: &[(String, String)],
    jobs: u32,
) -> (Outcome, u64, u64) {
    let c = LiveCluster::new(w.config());
    c.upload(INPUT, DST_USER, input.as_bytes());
    let net = c.mem_net().expect("DST drives the in-memory transport").clone();
    net.seed_faults(w.seed);

    let mut plan = FaultPlan::new();
    let mut pending = Vec::new();
    for f in schedule {
        match *f {
            DstFault::CrashAtMaps { node, maps } => plan = plan.crash_after_maps(node, maps),
            DstFault::CrashAtSpills { node, spills } => {
                plan = plan.crash_after_spills(node, spills)
            }
            DstFault::CrashInReduce { node } => plan = plan.crash_in_reduce(node),
            DstFault::FailTask { task, times } => plan = plan.fail_task(task, times),
            DstFault::SlowNode { node, micros } => plan = plan.slow_node(node, micros),
            DstFault::CutLink { from, to, at, heal_at } => {
                pending.push((at, NetOp::Cut { from, to }));
                if let Some(h) = heal_at {
                    pending.push((h, NetOp::Heal { from, to }));
                }
            }
            DstFault::DelayLink { from, to, at, salt } => {
                pending.push((at, NetOp::Delay { from, to, salt }));
            }
            DstFault::DropOnLink { from, to, at, n } => {
                pending.push((at, NetOp::DropLink { from, to, n }));
            }
            DstFault::DropKind { kind, at, n } => {
                pending.push((at, NetOp::DropKind { kind, n }));
            }
            DstFault::JoinAtMaps { at } => plan = plan.join_at_maps(at),
            DstFault::LeaveAtMaps { node, at } => plan = plan.leave_at_maps(node, at),
            DstFault::CrashAtEpoch { .. }
            | DstFault::LeaveAtEpoch { .. }
            | DstFault::DropAtEpoch { .. } => {
                debug_assert!(false, "epoch fault {f:?} in a batch schedule");
            }
        }
    }
    let planned = plan.len() as u64;
    c.inject_faults(plan);
    let obs = Arc::new(ChaosObserver::new(net.clone(), pending));
    c.set_observer(Some(obs.clone() as Arc<dyn DstObserver>));

    // The primary job drains the fault plan and carries the chaos
    // observer; sibling jobs start only after the primary has
    // registered (or already finished), so faults and progress-keyed
    // injection points bind to the primary deterministically. Siblings
    // share the cluster — cache, transport, recovery walks — and are
    // judged by the same output oracle and their own attempt ledgers.
    let primary_done = std::sync::atomic::AtomicBool::new(false);
    let mut sibling_res = Vec::new();
    let res = std::thread::scope(|s| {
        let primary = s.spawn(|| {
            let r = c.try_run_job(&w.app, INPUT, DST_USER, w.reducers, ReusePolicy::default());
            primary_done.store(true, Ordering::Release);
            r
        });
        while c.active_jobs() == 0 && !primary_done.load(Ordering::Acquire) {
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        // From here on new runs see no observer: the logical clock
        // driving injection points is the primary's alone.
        c.set_observer(None);
        let sibs: Vec<_> = (1..jobs)
            .map(|_| {
                s.spawn(|| {
                    c.try_run_job(&w.app, INPUT, DST_USER, w.reducers, ReusePolicy::default())
                })
            })
            .collect();
        sibling_res =
            sibs.into_iter().map(|h| h.join().expect("sibling job panicked")).collect();
        primary.join().expect("primary job panicked")
    });
    net.heal_all();

    let injected = planned + obs.fired();
    let allowed = allowed_errors(schedule);
    let mut checks = 0u64;
    let excused = |e: &JobError| match e {
        JobError::TaskFailed { .. } => allowed.task_failed,
        JobError::DataLoss(_) => allowed.data_loss,
        JobError::Open(_) | JobError::Cancelled => false,
    };
    let mut outcome = match res {
        Ok((out, stats)) => {
            checks += 1;
            if out != *expect {
                Outcome::Fail(format!(
                    "output diverged: {} rows vs {} expected",
                    out.len(),
                    expect.len()
                ))
            } else {
                match check_stats(&stats, w, schedule, &mut checks) {
                    Ok(()) => Outcome::Match,
                    Err(e) => Outcome::Fail(format!("stats invariant violated: {e}")),
                }
            }
        }
        Err(e) => {
            checks += 1;
            if excused(&e) {
                Outcome::Allowed(e.to_string())
            } else {
                Outcome::Fail(format!("disallowed terminal error: {e}"))
            }
        }
    };
    // Sibling oracle: same expected bytes (the workload is identical
    // and output is placement-independent), same allowed-error set
    // (crashes and partitions hit every live job), plus the per-job
    // ledger. A sibling failure outranks a primary Match/Allowed.
    // With replication 1 every block commits exactly one map task.
    // Replicated map-out adds up to r−1 extra placements per block,
    // but drops any whose partition mask comes up empty (the count
    // depends on ring geometry at the sibling's start), so the bleed
    // check is a band: below it a task vanished into another job's
    // ledger, above it another job's commits leaked into this one.
    let blocks = (input.len() as u64).div_ceil(w.block_size);
    let maps_band = blocks..=blocks * w.replication as u64;
    for (i, r) in sibling_res.into_iter().enumerate() {
        if matches!(outcome, Outcome::Fail(_)) {
            break;
        }
        match r {
            Ok((out, stats)) => {
                checks += 1;
                if out != *expect {
                    outcome = Outcome::Fail(format!(
                        "concurrent job {i} output diverged: {} rows vs {} expected",
                        out.len(),
                        expect.len()
                    ));
                    continue;
                }
                checks += 1;
                if !maps_band.contains(&stats.map_tasks) {
                    outcome = Outcome::Fail(format!(
                        "concurrent job {i} committed {} maps for {} blocks at r={} \
                         (cross-job dedup bleed?)",
                        stats.map_tasks, blocks, w.replication
                    ));
                    continue;
                }
                if let Err(e) = check_job_ledger(&stats, &mut checks) {
                    outcome =
                        Outcome::Fail(format!("concurrent job {i} ledger violated: {e}"));
                }
            }
            Err(e) => {
                checks += 1;
                if !excused(&e) {
                    outcome = Outcome::Fail(format!(
                        "concurrent job {i} disallowed terminal error: {e}"
                    ));
                }
            }
        }
    }
    (outcome, injected, checks)
}

/// Fault-free one-shot batch over the concatenation of `deltas` — the
/// reference an epoch run's materialized snapshot must match byte for
/// byte, including the prefix folded before an excused mid-stream
/// failure.
fn epoch_oracle(w: &DstWorkload, deltas: &[String]) -> Result<Vec<(String, String)>, JobError> {
    let c = LiveCluster::new(w.config());
    let concat: String = deltas.concat();
    c.upload(INPUT, DST_USER, concat.as_bytes());
    c.try_run_job(&w.app, INPUT, DST_USER, w.reducers, ReusePolicy::default()).map(|(o, _)| o)
}

/// Execute an epoch-mode schedule: open a standing job, commit every
/// delta as one epoch under injection, and judge the stream against
/// the one-shot oracle. The oracle is layered: every committed wave's
/// attempt ledger must balance, the publish board must advance exactly
/// once per commit, a terminal error must come from the allowed set —
/// and whatever epoch ends up published must read back byte-identical
/// to a fault-free batch over exactly the deltas folded so far, even
/// when a later epoch died to an excused fault (the
/// readable-at-previous-epoch contract).
fn run_epoch_schedule(
    w: &DstWorkload,
    deltas: &[String],
    schedule: &[DstFault],
    expect: &[(String, String)],
) -> (Outcome, u64, u64) {
    let c = Arc::new(LiveCluster::new(w.config()));
    let net = c.mem_net().expect("DST drives the in-memory transport").clone();
    net.seed_faults(w.seed);

    let mut armed: Vec<(Point, ChaosOp)> = Vec::new();
    for f in schedule {
        match *f {
            DstFault::CrashAtEpoch { node, epoch } => {
                armed.push((Point::Epochs(epoch), ChaosOp::Crash { node }));
            }
            DstFault::LeaveAtEpoch { node, epoch } => {
                armed.push((Point::Epochs(epoch), ChaosOp::Leave { node }));
            }
            DstFault::DropAtEpoch { kind, epoch, n } => {
                armed.push((Point::Epochs(epoch), ChaosOp::Net(NetOp::DropKind { kind, n })));
            }
            DstFault::CutLink { from, to, at, heal_at } => {
                armed.push((at, ChaosOp::Net(NetOp::Cut { from, to })));
                if let Some(h) = heal_at {
                    armed.push((h, ChaosOp::Net(NetOp::Heal { from, to })));
                }
            }
            DstFault::DelayLink { from, to, at, salt } => {
                armed.push((at, ChaosOp::Net(NetOp::Delay { from, to, salt })));
            }
            DstFault::DropOnLink { from, to, at, n } => {
                armed.push((at, ChaosOp::Net(NetOp::DropLink { from, to, n })));
            }
            // The pool path never drains the executor fault plan, so
            // plan-side ops have no business in an epoch schedule.
            _ => debug_assert!(false, "non-epoch fault {f:?} in an epoch schedule"),
        }
    }
    let obs = Arc::new(ChaosObserver::with_cluster(net.clone(), Arc::clone(&c), armed));
    c.set_observer(Some(obs.clone() as Arc<dyn DstObserver>));

    let driver = EpochDriver::new(
        Arc::clone(&c),
        StreamSpec {
            app: Arc::new(w.app),
            name: "dst-stream".to_string(),
            user: DST_USER.to_string(),
            reducers: w.reducers,
        },
    );
    let mut checks = 0u64;
    let mut terminal: Option<JobError> = None;
    let mut board_fail: Option<String> = None;
    for (i, delta) in deltas.iter().enumerate() {
        match driver.commit_epoch(delta.as_bytes()) {
            Ok(rep) => {
                checks += 1;
                if rep.epoch != i as u32 + 1 || driver.published() != rep.epoch {
                    board_fail = Some(format!(
                        "commit {} published board at {} (read-your-epoch broken)",
                        i + 1,
                        driver.published()
                    ));
                    break;
                }
                if let Err(e) = check_job_ledger(&rep.stats, &mut checks) {
                    board_fail = Some(format!("epoch {} wave ledger violated: {e}", rep.epoch));
                    break;
                }
            }
            Err(e) => {
                terminal = Some(e);
                break;
            }
        }
    }
    // Break the observer↔cluster cycle and stop injecting before the
    // oracle reads back through the (healed) transport.
    c.set_observer(None);
    net.heal_all();
    let injected = obs.fired();

    if let Some(msg) = board_fail {
        return (Outcome::Fail(msg), injected, checks);
    }
    let allowed = allowed_errors(schedule);
    if let Some(e) = &terminal {
        checks += 1;
        let excused = match e {
            JobError::TaskFailed { .. } => allowed.task_failed,
            JobError::DataLoss(_) => allowed.data_loss,
            JobError::Open(_) | JobError::Cancelled => false,
        };
        if !excused {
            return (
                Outcome::Fail(format!(
                    "disallowed terminal error at epoch {}: {e}",
                    driver.published() + 1
                )),
                injected,
                checks,
            );
        }
    }
    let k = driver.published();
    checks += 1;
    if terminal.is_none() && k as usize != deltas.len() {
        return (
            Outcome::Fail(format!(
                "every epoch committed but the board stopped at {k} of {}",
                deltas.len()
            )),
            injected,
            checks,
        );
    }
    if k > 0 {
        let snap = match driver.snapshot(k) {
            Some(s) => s,
            None => {
                return (Outcome::Fail(format!("published epoch {k} unreadable")), injected, checks)
            }
        };
        let mut flat: Vec<(String, String)> = snap.iter().flatten().cloned().collect();
        flat.sort();
        let want = if k as usize == deltas.len() {
            expect.to_vec()
        } else {
            match epoch_oracle(w, &deltas[..k as usize]) {
                Ok(o) => o,
                Err(e) => {
                    return (
                        Outcome::Fail(format!("fault-free partial oracle failed: {e}")),
                        injected,
                        checks,
                    )
                }
            }
        };
        checks += 1;
        if flat != want {
            return (
                Outcome::Fail(format!(
                    "materialized epoch {k} diverged: {} rows vs {} expected",
                    flat.len(),
                    want.len()
                )),
                injected,
                checks,
            );
        }
    }
    driver.close();
    match terminal {
        Some(e) => (Outcome::Allowed(e.to_string()), injected, checks),
        None => (Outcome::Match, injected, checks),
    }
}

/// Shrink a failing schedule to a (locally) minimal failing subset:
/// bisect to the shortest failing prefix, then greedily drop single
/// faults. `fails` re-executes a candidate and reports whether it
/// still violates the oracle. If the shrunk candidate stops failing on
/// the confirmation run (interleaving noise), the full schedule is
/// returned instead — a repro must repro.
pub fn shrink_schedule(
    schedule: &[DstFault],
    fails: &mut dyn FnMut(&[DstFault]) -> bool,
) -> Vec<DstFault> {
    if schedule.is_empty() {
        return Vec::new();
    }
    // Invariant: schedule[..hi] fails (the caller just watched the
    // whole schedule fail), schedule[..lo] does not.
    let (mut lo, mut hi) = (0usize, schedule.len());
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if fails(&schedule[..mid]) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let mut cur: Vec<DstFault> = schedule[..hi].to_vec();
    let mut i = 0;
    while i < cur.len() && cur.len() > 1 {
        let mut cand = cur.clone();
        cand.remove(i);
        if fails(&cand) {
            cur = cand;
        } else {
            i += 1;
        }
    }
    if fails(&cur) {
        cur
    } else {
        schedule.to_vec()
    }
}

/// Run one seed end to end: sample the workload, take the fault-free
/// oracle run, sample a schedule at `preset` rates, execute it, check
/// the oracle, and shrink + print a repro on failure.
pub fn run_seed(seed: u64, preset: DstPreset) -> DstReport {
    let w = DstWorkload::sample(seed);
    if w.epochs > 1 {
        return run_epoch_seed(seed, preset, w);
    }
    let input = w.input();

    let base = LiveCluster::new(w.config());
    base.upload(INPUT, DST_USER, input.as_bytes());
    let (expect, base_stats) = base
        .try_run_job(&w.app, INPUT, DST_USER, w.reducers, ReusePolicy::default())
        .unwrap_or_else(|e| panic!("DST seed {seed}: fault-free oracle run failed: {e}"));

    let nodes = base.ring().node_ids();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_5C8E_D01E_55ED);
    let cfg = preset.config();
    let schedule =
        sample_schedule(&mut rng, &cfg, &nodes, base_stats.map_tasks, base_stats.spills);
    drop(base);

    // Concurrency is sampled off its own RNG stream so adding the knob
    // left every existing seed's schedule untouched.
    let mut crng = StdRng::seed_from_u64(seed ^ 0xC0C0_4A0B_5000_0003);
    let concurrent_jobs = crng.random_range(1..=cfg.concurrent_jobs_max.max(1));

    let (outcome, faults_injected, oracle_checks) =
        run_schedule(&w, &input, &schedule, &expect, concurrent_jobs);
    let verdict = match outcome {
        Outcome::Match => Verdict::Match,
        Outcome::Allowed(e) => Verdict::AllowedError(e),
        Outcome::Fail(reason) => {
            let minimal = shrink_schedule(&schedule, &mut |cand| {
                matches!(
                    run_schedule(&w, &input, cand, &expect, concurrent_jobs).0,
                    Outcome::Fail(_)
                )
            });
            let repro = repro_line(seed, preset);
            eprintln!(
                "DST FAILURE seed={seed} preset={preset}: {reason}\n  \
                 minimal schedule ({} of {} faults): {minimal:?}\n  replay: {repro}",
                minimal.len(),
                schedule.len(),
            );
            Verdict::Fail { reason, minimal, repro }
        }
    };
    DstReport {
        seed,
        preset,
        workload: w,
        schedule,
        verdict,
        faults_injected,
        oracle_checks,
        concurrent_jobs,
    }
}

/// [`run_seed`] for an epoch-mode workload: the seed's input arrives
/// as `w.epochs` barrier-aligned deltas through a standing job, the
/// schedule is drawn from the epoch sampler (barrier crashes, leaves,
/// drop bursts, in-wave net ops), and the verdict compares the
/// materialized stream against a one-shot batch over the concatenated
/// input. Reported as `concurrent_jobs = 1`: the stream itself is the
/// standing tenant.
fn run_epoch_seed(seed: u64, preset: DstPreset, w: DstWorkload) -> DstReport {
    let deltas = w.epoch_deltas();

    let base = LiveCluster::new(w.config());
    base.upload(INPUT, DST_USER, w.aligned_input().as_bytes());
    let (expect, _) = base
        .try_run_job(&w.app, INPUT, DST_USER, w.reducers, ReusePolicy::default())
        .unwrap_or_else(|e| panic!("DST seed {seed}: fault-free epoch oracle run failed: {e}"));
    let nodes = base.ring().node_ids();
    drop(base);

    // The smallest wave bounds the in-wave injection range, so every
    // sampled map-clock point fires in every epoch that reaches it.
    let wave_maps = deltas
        .iter()
        .map(|d| (d.len() as u64).div_ceil(w.block_size))
        .min()
        .unwrap_or(1)
        .max(1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_5C8E_D01E_55ED);
    let cfg = preset.config();
    let schedule = sample_epoch_schedule(&mut rng, &cfg, &nodes, w.epochs, wave_maps);

    let (outcome, faults_injected, oracle_checks) =
        run_epoch_schedule(&w, &deltas, &schedule, &expect);
    let verdict = match outcome {
        Outcome::Match => Verdict::Match,
        Outcome::Allowed(e) => Verdict::AllowedError(e),
        Outcome::Fail(reason) => {
            let minimal = shrink_schedule(&schedule, &mut |cand| {
                matches!(run_epoch_schedule(&w, &deltas, cand, &expect).0, Outcome::Fail(_))
            });
            let repro = repro_line(seed, preset);
            eprintln!(
                "DST FAILURE seed={seed} preset={preset} (epochs={}): {reason}\n  \
                 minimal schedule ({} of {} faults): {minimal:?}\n  replay: {repro}",
                w.epochs,
                minimal.len(),
                schedule.len(),
            );
            Verdict::Fail { reason, minimal, repro }
        }
    };
    DstReport {
        seed,
        preset,
        workload: w,
        schedule,
        verdict,
        faults_injected,
        oracle_checks,
        concurrent_jobs: 1,
    }
}

/// Aggregate results of a seed sweep (what the smoke step and
/// `dst_bench` report).
#[derive(Clone, Debug, Default)]
pub struct DstSweep {
    pub runs: u64,
    pub matches: u64,
    pub allowed_errors: u64,
    pub faults_injected: u64,
    pub oracle_checks: u64,
    /// `(seed, reason)` for every oracle violation; the repro line is
    /// reconstructible via [`repro_line`].
    pub failures: Vec<(u64, String)>,
}

/// Run `runs` consecutive seeds starting at `seed0`.
pub fn sweep(seed0: u64, runs: u64, preset: DstPreset) -> DstSweep {
    let mut agg = DstSweep::default();
    for seed in seed0..seed0 + runs {
        let r = run_seed(seed, preset);
        agg.runs += 1;
        agg.faults_injected += r.faults_injected;
        agg.oracle_checks += r.oracle_checks;
        match r.verdict {
            Verdict::Match => agg.matches += 1,
            Verdict::AllowedError(_) => agg.allowed_errors += 1,
            Verdict::Fail { reason, .. } => agg.failures.push((r.seed, reason)),
        }
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_parse_roundtrip() {
        for p in [DstPreset::Calm, DstPreset::Moderate, DstPreset::Chaos] {
            assert_eq!(p.to_string().parse::<DstPreset>().unwrap(), p);
        }
        assert!("mild".parse::<DstPreset>().is_err());
    }

    #[test]
    fn workload_and_input_are_pure_functions_of_the_seed() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let a = DstWorkload::sample(seed);
            let b = DstWorkload::sample(seed);
            assert_eq!(a, b);
            assert_eq!(a.input(), b.input());
        }
        // Different seeds actually move the sampler.
        let shapes: Vec<DstWorkload> = (0..16).map(DstWorkload::sample).collect();
        assert!(shapes.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn schedule_sampling_is_deterministic() {
        let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
        let cfg = FaultConfig::chaos();
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        assert_eq!(
            sample_schedule(&mut a, &cfg, &nodes, 40, 120),
            sample_schedule(&mut b, &cfg, &nodes, 40, 120)
        );
    }

    #[test]
    fn calm_schedules_are_benign_by_construction() {
        let nodes: Vec<NodeId> = (0..8).map(NodeId).collect();
        let cfg = FaultConfig::calm();
        for seed in 0..200u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let schedule = sample_schedule(&mut rng, &cfg, &nodes, 30, 90);
            let allowed = allowed_errors(&schedule);
            assert!(
                !allowed.task_failed && !allowed.data_loss,
                "calm seed {seed} sampled a non-benign schedule: {schedule:?}"
            );
        }
    }

    #[test]
    fn allowed_errors_classifies_schedules() {
        let n = NodeId(1);
        let m = NodeId(2);
        // Benign: one delay, a sub-budget drop, a sub-budget fail.
        let benign = vec![
            DstFault::DelayLink { from: n, to: m, at: Point::Maps(1), salt: 1 },
            DstFault::DropOnLink { from: n, to: m, at: Point::Maps(2), n: 3 },
            DstFault::FailTask { task: 0, times: 2 },
        ];
        assert_eq!(allowed_errors(&benign), Allowed { task_failed: false, data_loss: false });
        // A cut allows both.
        let cut =
            vec![DstFault::CutLink { from: n, to: m, at: Point::Maps(1), heal_at: None }];
        assert_eq!(allowed_errors(&cut), Allowed { task_failed: true, data_loss: true });
        // Budget-exhausting fail kills the task but loses no data.
        let kill = vec![DstFault::FailTask { task: 0, times: TASK_BUDGET }];
        assert_eq!(allowed_errors(&kill), Allowed { task_failed: true, data_loss: false });
        // Two drop bursts on the same link sum past the retry budget.
        let heavy = vec![
            DstFault::DropOnLink { from: n, to: m, at: Point::Maps(1), n: 2 },
            DstFault::DropOnLink { from: n, to: m, at: Point::Maps(2), n: 2 },
        ];
        assert_eq!(allowed_errors(&heavy), Allowed { task_failed: true, data_loss: true });
        // One crash alone: recovery must succeed, no excuses.
        let one = vec![DstFault::CrashAtMaps { node: n, maps: 1 }];
        assert_eq!(allowed_errors(&one), Allowed { task_failed: false, data_loss: false });
    }

    #[test]
    fn shrink_isolates_the_culprit() {
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let schedule: Vec<DstFault> = (0..6)
            .map(|i| DstFault::SlowNode { node: nodes[i % 4], micros: 1000 + i as u64 })
            .collect();
        let culprit = schedule[4];
        let mut runs = 0;
        let minimal = shrink_schedule(&schedule, &mut |cand| {
            runs += 1;
            cand.contains(&culprit)
        });
        assert_eq!(minimal, vec![culprit]);
        assert!(runs < 20, "shrink took {runs} runs for 6 faults");
    }

    #[test]
    fn shrink_falls_back_to_full_schedule_when_flaky() {
        let schedule = vec![
            DstFault::FailTask { task: 0, times: 1 },
            DstFault::FailTask { task: 1, times: 1 },
        ];
        // A predicate that never re-fails: the confirmation run must
        // reject the shrunk candidate and hand back the real schedule.
        let minimal = shrink_schedule(&schedule, &mut |_| false);
        assert_eq!(minimal, schedule);
    }

    #[test]
    fn calm_seed_matches_baseline() {
        let r = run_seed(1, DstPreset::Calm);
        assert_eq!(r.verdict, Verdict::Match, "calm seed 1 must be byte-identical");
        assert!(r.oracle_checks > 1);
    }

    #[test]
    fn concurrent_jobs_sampled_and_checked() {
        // Find a calm seed that samples ≥ 2 concurrent jobs: the
        // siblings must also be byte-identical under a benign schedule.
        let seed = (1u64..64)
            .find(|&s| {
                let mut crng = StdRng::seed_from_u64(s ^ 0xC0C0_4A0B_5000_0003);
                crng.random_range(1..=FaultConfig::calm().concurrent_jobs_max) >= 2
            })
            .expect("some seed under 64 samples 2 jobs");
        let r = run_seed(seed, DstPreset::Calm);
        assert!(r.concurrent_jobs >= 2);
        assert_eq!(r.verdict, Verdict::Match, "calm concurrent seed {seed} must match");
        // Redundant sibling checks were actually evaluated.
        assert!(r.oracle_checks > 6, "only {} checks", r.oracle_checks);
        // Sampling is pure in the seed.
        assert_eq!(run_seed(seed, DstPreset::Calm).concurrent_jobs, r.concurrent_jobs);
    }

    #[test]
    fn every_preset_bounds_concurrency() {
        for p in [DstPreset::Calm, DstPreset::Moderate, DstPreset::Chaos] {
            let c = p.config();
            assert!(
                (1..=3).contains(&c.concurrent_jobs_max),
                "{p}: concurrent_jobs_max {} out of range",
                c.concurrent_jobs_max
            );
        }
    }

    #[test]
    fn same_seed_same_outcome() {
        let a = run_seed(5, DstPreset::Moderate);
        let b = run_seed(5, DstPreset::Moderate);
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.verdict, b.verdict);
    }

    /// First seed (deterministically) sampling an epoch-mode workload.
    fn epoch_seed() -> u64 {
        (0u64..256)
            .find(|&s| DstWorkload::sample(s).epochs > 1)
            .expect("some seed under 256 samples an epoch-mode workload")
    }

    #[test]
    fn every_preset_sets_epoch_rates_and_calm_pins_zero() {
        for p in [DstPreset::Calm, DstPreset::Moderate, DstPreset::Chaos] {
            let c = p.config();
            for r in [c.epoch_crash_p, c.epoch_leave_p, c.epoch_drop_p] {
                assert!((0.0..=1.0).contains(&r), "{p}: epoch rate {r} out of range");
            }
        }
        let calm = FaultConfig::calm();
        assert_eq!(
            (calm.epoch_crash_p, calm.epoch_leave_p, calm.epoch_drop_p),
            (0.0, 0.0, 0.0),
            "calm epoch-boundary rates are explicit zeros"
        );
        assert!(FaultConfig::moderate().epoch_crash_p > 0.0);
        assert!(FaultConfig::chaos().epoch_drop_p > 0.0);
    }

    #[test]
    fn calm_epoch_schedules_are_benign_by_construction() {
        let nodes: Vec<NodeId> = (0..8).map(NodeId).collect();
        let cfg = FaultConfig::calm();
        for seed in 0..200u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let schedule = sample_epoch_schedule(&mut rng, &cfg, &nodes, 4, 10);
            let allowed = allowed_errors(&schedule);
            assert!(
                !allowed.task_failed && !allowed.data_loss,
                "calm epoch seed {seed} sampled a non-benign schedule: {schedule:?}"
            );
            assert!(
                !schedule.iter().any(|f| matches!(
                    f,
                    DstFault::CrashAtEpoch { .. }
                        | DstFault::LeaveAtEpoch { .. }
                        | DstFault::DropAtEpoch { .. }
                )),
                "calm sampled a barrier fault despite its zero rates: {schedule:?}"
            );
        }
    }

    #[test]
    fn chaos_epoch_schedules_reach_every_barrier_fault_point() {
        let nodes: Vec<NodeId> = (0..8).map(NodeId).collect();
        let cfg = FaultConfig::chaos();
        let (mut crash, mut leave, mut drop) = (false, false, false);
        for seed in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            for f in sample_epoch_schedule(&mut rng, &cfg, &nodes, 4, 10) {
                match f {
                    DstFault::CrashAtEpoch { .. } => crash = true,
                    DstFault::LeaveAtEpoch { .. } => leave = true,
                    DstFault::DropAtEpoch { .. } => drop = true,
                    _ => {}
                }
            }
        }
        assert!(crash && leave && drop, "chaos sampler missed a barrier fault point");
    }

    #[test]
    fn epoch_deltas_are_line_aligned_and_lossless() {
        let seed = epoch_seed();
        let w = DstWorkload::sample(seed);
        let deltas = w.epoch_deltas();
        assert_eq!(deltas.len(), w.epochs as usize);
        for d in &deltas {
            assert!(!d.is_empty());
            assert_eq!(d.len() % ALIGNED_LINE, 0, "delta not line-aligned");
        }
        assert_eq!(deltas.concat(), w.aligned_input());
        assert_eq!(w.block_size as usize % ALIGNED_LINE, 0);
    }

    #[test]
    fn calm_epoch_seed_matches_one_shot_batch() {
        let seed = epoch_seed();
        let r = run_seed(seed, DstPreset::Calm);
        assert!(r.workload.epochs > 1);
        assert_eq!(
            r.verdict,
            Verdict::Match,
            "calm epoch seed {seed} must publish byte-identical snapshots"
        );
        assert!(r.oracle_checks > r.workload.epochs as u64, "per-wave checks ran");
    }

    #[test]
    fn epoch_seed_same_outcome_under_chaos() {
        let seed = epoch_seed();
        let a = run_seed(seed, DstPreset::Chaos);
        let b = run_seed(seed, DstPreset::Chaos);
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.verdict, b.verdict);
    }

    #[test]
    fn allowed_errors_classifies_epoch_schedules() {
        let n = NodeId(1);
        // One barrier crash alone: recovery must converge, no excuses.
        let one = vec![DstFault::CrashAtEpoch { node: n, epoch: 2 }];
        assert_eq!(allowed_errors(&one), Allowed { task_failed: false, data_loss: false });
        // A barrier drop burst at the retry budget exhausts like any
        // other kind burst.
        let burst = vec![DstFault::DropAtEpoch {
            kind: RpcKind::ShuffleBatch,
            epoch: 1,
            n: NET_BUDGET,
        }];
        assert_eq!(allowed_errors(&burst), Allowed { task_failed: true, data_loss: true });
        // Crash + any drop can starve recovery of a replica.
        let combo = vec![
            DstFault::CrashAtEpoch { node: n, epoch: 1 },
            DstFault::DropAtEpoch { kind: RpcKind::ReplicaSync, epoch: 1, n: 1 },
        ];
        assert!(allowed_errors(&combo).data_loss);
        // A barrier leave alone excuses nothing.
        let leave = vec![DstFault::LeaveAtEpoch { node: n, epoch: 3 }];
        assert_eq!(allowed_errors(&leave), Allowed { task_failed: false, data_loss: false });
    }
}
