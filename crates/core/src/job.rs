//! Jobs, tasks and execution reports.

use eclipse_dhtfs::{BlockId, FsError};
use eclipse_workloads::AppKind;
use serde::Serialize;
use std::collections::BTreeMap;

/// Terminal job failures from the live executor's fault-tolerant path.
///
/// Transient failures (a node crash mid-job, an injected task panic) are
/// retried against surviving replicas and never surface here; a
/// `JobError` means the job cannot produce a correct result at all.
#[derive(Debug, PartialEq)]
pub enum JobError {
    /// An input file could not be opened (missing or permission denied).
    Open(FsError),
    /// Every replica of an input block is gone — more simultaneous
    /// failures than the predecessor/successor replication tolerates
    /// (beyond the paper's fault model). Partial output is never
    /// returned in this case.
    DataLoss(BlockId),
    /// One task kept failing after the bounded retry budget.
    TaskFailed { task: usize, attempts: u32 },
    /// The job server shut down before this queued job was started.
    Cancelled,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Open(e) => write!(f, "cannot open input: {e}"),
            JobError::DataLoss(b) => write!(f, "all replicas lost for input block {b:?}"),
            JobError::TaskFailed { task, attempts } => {
                write!(f, "task {task} failed after {attempts} attempts")
            }
            JobError::Cancelled => write!(f, "job server shut down before the job started"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<FsError> for JobError {
    /// A filesystem `DataLoss` maps onto the job-level one; everything
    /// else (unknown block, ring trouble) also terminates the job.
    fn from(e: FsError) -> JobError {
        match e {
            FsError::DataLoss(b) => JobError::DataLoss(b),
            other => JobError::Open(other),
        }
    }
}

/// Job identifier (assigned by the scheduler at submission).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// What a job may cache and reuse (paper §II-B/§II-C: "applications can
/// choose to tag and store intermediate results from map tasks or job
/// outputs for future reuse").
#[derive(Clone, Copy, Debug)]
pub struct ReusePolicy {
    /// Cache input blocks in iCache on read.
    pub cache_input: bool,
    /// Cache iteration outputs / intermediate results in oCache.
    pub cache_outputs: bool,
    /// TTL for oCache entries, seconds (`None` = no expiry).
    pub ocache_ttl: Option<f64>,
}

impl Default for ReusePolicy {
    fn default() -> Self {
        ReusePolicy { cache_input: true, cache_outputs: false, ocache_ttl: None }
    }
}

impl ReusePolicy {
    /// Everything cached — the iterative-application configuration.
    pub fn full() -> ReusePolicy {
        ReusePolicy { cache_input: true, cache_outputs: true, ocache_ttl: None }
    }

    /// Nothing cached (cold baseline).
    pub fn none() -> ReusePolicy {
        ReusePolicy { cache_input: false, cache_outputs: false, ocache_ttl: None }
    }
}

/// A MapReduce job submission.
#[derive(Clone, Debug)]
pub struct JobSpec {
    pub app: AppKind,
    /// Input file in the DHT file system.
    pub input: String,
    /// Submitting user (permission subject).
    pub user: String,
    /// Number of reduce partitions.
    pub reducers: usize,
    /// MapReduce rounds (1 = batch; >1 = iterative driver).
    pub iterations: u32,
    pub reuse: ReusePolicy,
    /// Proactive-shuffle spill buffer bytes (32 MB in the paper).
    pub spill_buffer: u64,
}

impl JobSpec {
    /// A batch job with paper-default knobs.
    pub fn batch(app: AppKind, input: impl Into<String>) -> JobSpec {
        JobSpec {
            app,
            input: input.into(),
            user: "hibench".to_string(),
            reducers: 64,
            iterations: 1,
            reuse: ReusePolicy::default(),
            spill_buffer: eclipse_util::DEFAULT_SPILL_BUFFER,
        }
    }

    /// An iterative job with oCache reuse enabled.
    pub fn iterative(app: AppKind, input: impl Into<String>, iterations: u32) -> JobSpec {
        JobSpec {
            iterations,
            reuse: ReusePolicy::full(),
            ..Self::batch(app, input)
        }
    }

    pub fn with_reducers(mut self, reducers: usize) -> JobSpec {
        self.reducers = reducers;
        self
    }

    pub fn with_reuse(mut self, reuse: ReusePolicy) -> JobSpec {
        self.reuse = reuse;
        self
    }

    pub fn with_user(mut self, user: impl Into<String>) -> JobSpec {
        self.user = user.into();
        self
    }

    pub fn with_spill_buffer(mut self, bytes: u64) -> JobSpec {
        self.spill_buffer = bytes;
        self
    }
}

/// Where a map task's input bytes came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReadSource {
    /// iCache/oCache hit on the executing server.
    LocalCache,
    /// Cache hit on a remote server (read over the network).
    RemoteCache,
    /// OS page cache on the executing server (recently written data).
    PageCache,
    /// Executing server's own disk.
    LocalDisk,
    /// Remote server's disk over the network.
    RemoteDisk,
}

/// Outcome of one job (or one iteration of an iterative job).
/// Serializable so harnesses can archive raw results alongside CSVs.
#[derive(Clone, Debug, Default, Serialize)]
pub struct JobReport {
    /// Wall-clock seconds from submission to the last reduce completion.
    pub elapsed: f64,
    /// Seconds until the last map task finished.
    pub map_elapsed: f64,
    pub map_tasks: u64,
    pub reduce_tasks: u64,
    /// Input bytes by source.
    pub read_bytes: BTreeMap<&'static str, u64>,
    /// Cache hits / lookups for input blocks.
    pub cache_hits: u64,
    pub cache_lookups: u64,
    /// Map tasks per node index (load-balance metric).
    pub tasks_per_node: Vec<u64>,
    /// Total bytes shuffled map→reduce.
    pub shuffle_bytes: u64,
    /// Per-iteration elapsed seconds (iterative jobs; length = iterations).
    pub iteration_times: Vec<f64>,
}

impl JobReport {
    pub fn record_read(&mut self, source: ReadSource, bytes: u64) {
        let k = match source {
            ReadSource::LocalCache => "local_cache",
            ReadSource::RemoteCache => "remote_cache",
            ReadSource::PageCache => "page_cache",
            ReadSource::LocalDisk => "local_disk",
            ReadSource::RemoteDisk => "remote_disk",
        };
        *self.read_bytes.entry(k).or_insert(0) += bytes;
    }

    /// Input-block cache hit ratio observed by this job.
    pub fn hit_ratio(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }

    /// Standard deviation of map tasks per node.
    pub fn task_stdev(&self) -> f64 {
        let loads: Vec<f64> = self.tasks_per_node.iter().map(|&c| c as f64).collect();
        eclipse_util::stats::stdev(&loads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builders() {
        let b = JobSpec::batch(AppKind::Grep, "data");
        assert_eq!(b.iterations, 1);
        assert!(b.reuse.cache_input && !b.reuse.cache_outputs);
        let it = JobSpec::iterative(AppKind::KMeans, "pts", 5).with_reducers(8);
        assert_eq!(it.iterations, 5);
        assert_eq!(it.reducers, 8);
        assert!(it.reuse.cache_outputs);
        let none = JobSpec::batch(AppKind::Sort, "x").with_reuse(ReusePolicy::none());
        assert!(!none.reuse.cache_input);
    }

    #[test]
    fn report_accounting() {
        let mut r = JobReport::default();
        r.record_read(ReadSource::LocalDisk, 100);
        r.record_read(ReadSource::LocalDisk, 50);
        r.record_read(ReadSource::LocalCache, 10);
        assert_eq!(r.read_bytes["local_disk"], 150);
        assert_eq!(r.read_bytes["local_cache"], 10);
        r.cache_hits = 3;
        r.cache_lookups = 4;
        assert!((r.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(JobReport::default().hit_ratio(), 0.0);
    }

    #[test]
    fn job_error_from_fs_error() {
        use eclipse_util::HashKey;
        let b = BlockId { file: HashKey(1), index: 0 };
        assert_eq!(JobError::from(FsError::DataLoss(b)), JobError::DataLoss(b));
        assert!(matches!(
            JobError::from(FsError::FileNotFound("x".into())),
            JobError::Open(FsError::FileNotFound(_))
        ));
        let msg = format!("{}", JobError::TaskFailed { task: 3, attempts: 4 });
        assert!(msg.contains("task 3"));
    }

    #[test]
    fn task_stdev() {
        let r = JobReport { tasks_per_node: vec![4, 4, 4, 4], ..Default::default() };
        assert_eq!(r.task_stdev(), 0.0);
        let r2 = JobReport { tasks_per_node: vec![0, 8], ..Default::default() };
        assert_eq!(r2.task_stdev(), 4.0);
    }
}
