//! The live executor: real MapReduce over real data, in-process.
//!
//! Virtual nodes are threads; block payloads live in
//! [`eclipse_dhtfs::BlockStore`]. Placement, caching and shuffling run
//! through exactly the same control-plane code as the simulator — this
//! is the executable proof that the EclipseMR design computes correct
//! results, and it powers the examples and the integration tests.
//!
//! # Transport plane (see DESIGN.md §8e)
//!
//! Every inter-node interaction travels as a framed RPC over a
//! pluggable [`Transport`]: block reads/writes (`GetBlock`/`PutBlock`),
//! re-replication (`ReplicaSync`), cross-node cache traffic
//! (`CacheGet`/`CachePut`), shuffle delivery (`ShuffleBatch`),
//! failure-detection pings (`Heartbeat`) and task placement
//! (`TaskAssign`). [`TransportKind::Memory`] (the default) keeps runs
//! deterministic and exposes fault injection — partitions, drops,
//! delays — while still pushing every frame through the real wire
//! codec; [`TransportKind::Tcp`] runs the same protocol over loopback
//! TCP sockets. Node-local operations (a node reading its own store
//! shard or cache shard) stay direct function calls; only cross-node
//! traffic pays for the wire.
//!
//! # Data-plane concurrency (see DESIGN.md, "Live data plane")
//!
//! The hot path is engineered so node threads almost never contend:
//!
//! - **Sharded cache locks.** [`DistributedCache`] locks per node shard,
//!   so iCache traffic from different nodes proceeds in parallel; the
//!   executor holds no cluster-wide cache lock at all.
//! - **Concurrent reads.** File metadata sits behind a `RwLock` (reads
//!   during a job never block each other) and [`BlockStore`] is already
//!   a reader-parallel payload store.
//! - **Work stealing.** Map assignments are frozen per node at placement
//!   time; workers drain their own queue first, then steal from other
//!   nodes' tails via atomic cursors. Cache and locality accounting
//!   always uses the *assigned* node, so stealing changes wall-clock,
//!   never stats or cache placement.
//! - **Allocation-light shuffle.** One [`SpillBuffer`] per worker serves
//!   all its blocks; spills are combined by sorting the run in place
//!   (no per-spill `BTreeMap`), and only when the application actually
//!   overrides [`MapReduce::combine`] (see
//!   [`MapReduce::has_combiner`]). Reducers ingest into a `HashMap` and
//!   sort once at fold time.
//!
//! # Mid-job fault tolerance (see DESIGN.md, "Mid-job recovery")
//!
//! A node may crash while a job is running — injected deterministically
//! through [`FaultPlan`] — and the job still completes with output
//! byte-identical to the fault-free run:
//!
//! - **Attempt ledger.** Every map task has an attempt counter, a claim
//!   slot and a commit slot. An attempt *commits* (one CAS) only after
//!   shipping its complete output; reducers accept a batch only if its
//!   `(task, attempt)` matches the committed attempt, so re-executed
//!   maps never double-count.
//! - **Crash semantics.** At the crash instant the victim's store shard
//!   and cache shard are wiped and every not-yet-delivered send from it
//!   is suppressed; an attempt with a suppressed send can never commit.
//! - **Recovery flow.** Heartbeat detection ([`HeartbeatMonitor`]) →
//!   ring repair mirrored through Chord stabilization ([`ChordNet`]) →
//!   re-replication along the predecessor/successor chain → scheduler
//!   rebuild → re-queue of the victim's unfinished tasks. Reads fall
//!   back through surviving replicas; only when *every* copy of a block
//!   is gone does the job end with [`JobError::DataLoss`] — never a
//!   wrong or partial result, never a hang.

use crate::job::{JobError, ReusePolicy};
use crate::shuffle::{Spill, SpillBuffer};
use crate::sim_exec::SchedulerKind;
use bytes::Bytes;
use eclipse_cache::{CacheKey, DistributedCache, OutputTag};
use eclipse_dhtfs::{BlockId, BlockStore, DhtFs, DhtFsConfig, FsError};
use eclipse_net::{
    MemTransport, NetSnapshot, RetryPolicy, Rpc, RpcReply, SendTicket, TcpTransport, Transport,
    CLIENT,
};
use eclipse_ring::{
    ChordNet, ClusterView, HeartbeatMonitor, MembershipEvent, NodeId, Ring, RingError, ServerInfo,
};
use eclipse_sched::{DelayScheduler, LafScheduler};
use eclipse_util::{HashKey, KeyRange};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Commit-board sentinel: no attempt of this task has committed yet.
const UNCOMMITTED: u32 = u32::MAX;
/// Claim-slot sentinel: no worker has claimed this task yet.
const NO_CLAIM: u32 = u32::MAX;
/// Bounded retry budget per map task; exceeding it is a terminal
/// [`JobError::TaskFailed`].
const MAX_ATTEMPTS: u32 = 4;
/// Heartbeat timeout on the logical failure-detection clock.
const HEARTBEAT_TIMEOUT_SECS: u64 = 3;
/// Slice size for cancellable straggler sleeps. A fixed slice keeps
/// the cancellation-check cadence a function of the injected delay
/// alone — the same `slow_node(micros)` performs the same number of
/// slices (and token checks) on any host, so a DST seed replays the
/// same straggler behaviour on 1-core and 8-core machines.
const SLOW_SLICE_MICROS: u64 = 200;
/// A straggler serves RPCs late at `micros / SLOW_SERVE_DIV` (fan-in
/// from many callers would otherwise multiply the full delay).
const SLOW_SERVE_DIV: u64 = 8;
/// A straggler ships shuffle batches late at `micros / SLOW_SEND_DIV`.
const SLOW_SEND_DIV: u64 = 4;
/// Base of the exponential re-execution backoff (micros, doubling per
/// attempt): deterministic in the attempt number, never in wall time.
const RETRY_BACKOFF_BASE_MICROS: u64 = 100;

/// A MapReduce application for the live executor.
pub trait MapReduce: Send + Sync {
    /// Emit intermediate (key, value) pairs for one input block.
    fn map(&self, block: &[u8], emit: &mut dyn FnMut(String, String));
    /// Fold all values of one intermediate key into output pairs.
    fn reduce(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String));
    /// Optional map-side combiner, run on each spill buffer before it is
    /// pushed to the reducer side — shrinks shuffle volume for
    /// associative reductions (word count's classic optimization). The
    /// default is a pass-through.
    fn combine(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
        for v in values {
            emit(key.to_string(), v.clone());
        }
    }

    /// Whether [`combine`](Self::combine) actually reduces data. Apps
    /// that override `combine` must also override this to return `true`;
    /// when `false` (the default) the executor skips spill
    /// sorting/grouping entirely and ships mapped records untouched —
    /// the pass-through default `combine` would only have copied them.
    fn has_combiner(&self) -> bool {
        false
    }

    /// Map one block of a *multi-input* job (reduce-side joins): the
    /// `source` index says which input file the block came from, so the
    /// mapper can tag records by side. The default ignores the source
    /// and delegates to [`map`](Self::map).
    fn map_tagged(&self, _source: usize, block: &[u8], emit: &mut dyn FnMut(String, String)) {
        self.map(block, emit);
    }

    /// Optional custom partitioner. `None` (the default) partitions by
    /// the key's ring hash — EclipseMR's native scheme, which lets
    /// reducers be placed by consistent hashing. Return `Some(p)` with
    /// `p < partitions` to override (e.g. TeraSort's sampled range
    /// partitioning, which makes partition order = global sort order).
    fn partition(&self, _key: &str, _partitions: usize) -> Option<usize> {
        None
    }
}

/// Which [`Transport`] backend carries the cluster's RPCs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// Deterministic in-memory links with injectable faults (the
    /// default). Every frame still round-trips the real wire codec.
    #[default]
    Memory,
    /// Real loopback TCP sockets: framing, connection pooling,
    /// correlation ids, timeouts and retries, end to end.
    Tcp,
}

/// Speculative re-execution tuning (straggler mitigation). Enabled via
/// [`LiveConfig::with_speculation`]: the driver tracks per-task attempt
/// progress through heartbeats and launches a backup attempt on the
/// least-loaded node when an attempt falls far behind the running
/// median task duration. Correctness is free — the commit-board CAS
/// picks whichever attempt finishes first and reducer dedup drops the
/// loser; the loser is additionally *cancelled* at its next spill
/// boundary so it stops burning the straggling node.
#[derive(Clone, Copy, Debug)]
pub struct SpeculationConfig {
    /// Launch a backup once an attempt's elapsed time exceeds
    /// `slowdown × median` of committed task durations.
    pub slowdown: f64,
    /// Don't speculate before this many tasks have committed (the
    /// median needs mass before it means anything).
    pub min_completed: u64,
    /// Monitor polling period in microseconds.
    pub poll_micros: u64,
}

impl Default for SpeculationConfig {
    fn default() -> SpeculationConfig {
        SpeculationConfig { slowdown: 3.0, min_completed: 3, poll_micros: 500 }
    }
}

/// Live cluster configuration.
#[derive(Clone, Debug)]
pub struct LiveConfig {
    pub nodes: usize,
    pub cache_per_node: u64,
    pub replicas: usize,
    pub block_size: u64,
    pub scheduler: SchedulerKind,
    pub transport: TransportKind,
    /// Retry/backoff budget and link tuning (ack window, TCP_NODELAY,
    /// read-buffer size) handed to the transport backend.
    pub net_policy: RetryPolicy,
    /// Spill-coalescing target: a map task buffers each reduce
    /// partition's records until this many bytes accumulate, so the
    /// windowed shuffle lane carries few large batches instead of many
    /// tiny ones.
    pub shuffle_batch_bytes: u64,
    /// Map-slot oversubscription: worker threads per unit of hardware
    /// parallelism (the paper's nodes run several task slots each).
    /// With an in-memory data plane 1 is right — extra threads only
    /// add context switching — but over a real wire a worker blocked
    /// on a round-trip costs no CPU, so extra slots hide that latency
    /// behind other workers' map compute. Thread count stays capped at
    /// the virtual-node count.
    pub map_slots: usize,
    /// Lock shards inside each node's cache (see
    /// `eclipse_cache::sharded`). More shards let a node's map slots
    /// and its RPC service thread hit the cache concurrently; each
    /// shard gets `cache_per_node / cache_shards` of the byte budget.
    /// The simulator pins 1 (exact paper-figure reproduction); the live
    /// executor defaults to 8.
    pub cache_shards: usize,
    /// Speculative re-execution of straggling map attempts (off by
    /// default — zero overhead when `None`: no progress heartbeats, no
    /// monitor thread).
    pub speculation: Option<SpeculationConfig>,
    /// Replicated map-out factor r (default 1 = off). With r ≥ 2 every
    /// map task's input block is placed on r nodes chosen among the
    /// reduce partitions' home nodes (nearest on the ring to the block's
    /// key), the map runs at all r placements, and each placement emits
    /// only the partitions *closest to it on the ring* — so roughly
    /// (r-1)/r of shuffle traffic becomes node-local delivery instead
    /// of remote `ShuffleBatch` frames (the coded-MapReduce tradeoff:
    /// r× map compute for r× less shuffle).
    pub map_replication: usize,
}

impl LiveConfig {
    /// Small defaults suited to tests and examples: 8 virtual nodes,
    /// 64 KB blocks, 16 MB cache each, LAF scheduling, in-memory
    /// transport.
    pub fn small() -> LiveConfig {
        LiveConfig {
            nodes: 8,
            cache_per_node: 16 * 1024 * 1024,
            replicas: 2,
            block_size: 64 * 1024,
            scheduler: SchedulerKind::Laf(Default::default()),
            transport: TransportKind::Memory,
            net_policy: RetryPolicy::default(),
            shuffle_batch_bytes: 256 * 1024,
            map_slots: 1,
            cache_shards: 8,
            speculation: None,
            map_replication: 1,
        }
    }

    pub fn with_nodes(mut self, nodes: usize) -> LiveConfig {
        self.nodes = nodes;
        self
    }

    pub fn with_block_size(mut self, bytes: u64) -> LiveConfig {
        self.block_size = bytes;
        self
    }

    pub fn with_cache_per_node(mut self, bytes: u64) -> LiveConfig {
        self.cache_per_node = bytes;
        self
    }

    pub fn with_replicas(mut self, replicas: usize) -> LiveConfig {
        self.replicas = replicas;
        self
    }

    pub fn with_scheduler(mut self, s: SchedulerKind) -> LiveConfig {
        self.scheduler = s;
        self
    }

    pub fn with_transport(mut self, t: TransportKind) -> LiveConfig {
        self.transport = t;
        self
    }

    pub fn with_net_policy(mut self, p: RetryPolicy) -> LiveConfig {
        self.net_policy = p;
        self
    }

    pub fn with_shuffle_batch_bytes(mut self, bytes: u64) -> LiveConfig {
        self.shuffle_batch_bytes = bytes;
        self
    }

    pub fn with_map_slots(mut self, slots: usize) -> LiveConfig {
        self.map_slots = slots;
        self
    }

    pub fn with_cache_shards(mut self, shards: usize) -> LiveConfig {
        self.cache_shards = shards;
        self
    }

    /// Enable speculative re-execution of straggling map attempts.
    pub fn with_speculation(mut self, s: SpeculationConfig) -> LiveConfig {
        self.speculation = Some(s);
        self
    }

    /// Set the replicated map-out factor (1 = off).
    pub fn with_map_replication(mut self, r: usize) -> LiveConfig {
        self.map_replication = r.max(1);
        self
    }
}

enum LiveSched {
    Laf(LafScheduler),
    Delay(DelayScheduler),
}

/// Per-job execution statistics from the live path.
#[derive(Clone, Debug, Default)]
pub struct LiveStats {
    pub map_tasks: u64,
    pub reduce_tasks: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub remote_reads: u64,
    pub spills: u64,
    /// Map tasks executed by a thread other than their assigned node
    /// (work stealing). `tasks_per_node` still counts by assignment.
    pub steals: u64,
    pub tasks_per_node: Vec<u64>,
    /// Map attempts started (≥ `map_tasks`; the surplus is fault
    /// re-execution).
    pub attempts: u64,
    /// Attempts that were re-executions (attempt number > 0).
    pub retries: u64,
    /// Nodes that crashed while this job was running.
    pub failed_nodes: u64,
    /// Block copies re-replicated from survivors during mid-job
    /// recovery.
    pub recovered_blocks: u64,
    /// Chord stabilization rounds run to re-converge the ring after
    /// mid-job crashes.
    pub stabilize_rounds: u64,
    /// Wall-clock nanoseconds spent inside mid-job crash recovery
    /// (detection + stabilization + re-replication + re-queue).
    pub recovery_nanos: u64,
    /// Bytes pushed onto the transport (frames, both directions the
    /// sender pays for) during this job.
    pub bytes_sent: u64,
    /// RPC attempts issued during this job (retries included).
    pub rpcs: u64,
    /// RPC attempts that were retries after a timeout.
    pub rpc_retries: u64,
    /// RPC attempts that timed out (lost frames, partitions, silence).
    pub timeouts: u64,
    /// Backup attempts launched by the speculation monitor.
    pub speculative_attempts: u64,
    /// Backup attempts that won their task's commit race.
    pub speculative_wins: u64,
    /// Attempts stopped early by the per-attempt cancellation token
    /// (another attempt of the same task had already committed).
    pub cancelled_attempts: u64,
    /// Shuffle records delivered node-locally (no `ShuffleBatch` frame
    /// on the wire) — the replicated map-out's dividend.
    pub local_shuffle_records: u64,
    /// Nodes that joined the ring while this job was running.
    pub joins: u64,
    /// Nodes that left the ring gracefully while this job was running.
    pub leaves: u64,
    /// Block replicas moved by elastic handoff: a joiner pulling its
    /// arc, or a leaver's copies pushed to their new ideal holders.
    pub handoff_blocks: u64,
    /// Payload bytes moved by elastic handoff.
    pub handoff_bytes: u64,
    /// Claimed-but-uncommitted tasks a graceful leaver handed back to
    /// the scheduler (their re-executions count as `retries`).
    pub drained_tasks: u64,
}

/// What a mid-job (or between-jobs) node recovery accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Block copies re-created from surviving replicas.
    pub recovered_blocks: u64,
    /// Payload bytes copied during re-replication.
    pub recovered_bytes: u64,
}

/// One scheduled fault. Private: built via [`FaultPlan`]'s methods.
#[derive(Clone, Debug)]
enum FaultOp {
    /// Crash `node` once `maps` map tasks have committed cluster-wide.
    CrashAfterMaps { node: NodeId, maps: u64 },
    /// Crash `node` once `spills` shuffle batches have been sent —
    /// i.e. mid-shuffle, while map output is in flight.
    CrashAfterSpills { node: NodeId, spills: u64 },
    /// Crash `node` during the reduce phase (after all maps committed).
    CrashInReduce { node: NodeId },
    /// Make the first `times` attempts of map task `task` die before
    /// producing output (an injected task panic).
    FailTask { task: usize, times: u32 },
    /// Delay every attempt executed by `node` (a straggler).
    SlowNode { node: NodeId, micros: u64 },
    /// Admit a fresh node once `maps` map tasks have committed: full
    /// elastic join — stabilization, replica pull, cache-range handoff,
    /// and a parked worker thread waking under the new identity.
    JoinAtMaps { maps: u64 },
    /// Gracefully remove `node` once `maps` map tasks have committed:
    /// its queued tasks drain back to the scheduler and its data is
    /// pushed to successors before the endpoint closes.
    LeaveAtMaps { node: NodeId, maps: u64 },
}

/// A deterministic fault-injection schedule for one job run.
///
/// Build a plan, hand it to [`LiveCluster::inject_faults`], and the
/// next `run_job*` call executes it: crashes fire at exact points in
/// the job's own progress (blocks mapped, shuffle batches sent, reduce
/// start), so a given (plan, input, scheduler) triple replays the same
/// failure every time — the foundation of the chaos suite.
///
/// ```
/// # use eclipse_core::{FaultPlan, LiveCluster, LiveConfig};
/// let cluster = LiveCluster::new(LiveConfig::small());
/// let victim = cluster.ring().node_ids()[1];
/// cluster.inject_faults(FaultPlan::new().crash_after_maps(victim, 3));
/// // The next job loses `victim` after its 3rd map task commits — and
/// // still returns output identical to a fault-free run.
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    ops: Vec<FaultOp>,
}

impl FaultPlan {
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Crash `node` once `maps` map tasks have committed.
    pub fn crash_after_maps(mut self, node: NodeId, maps: u64) -> FaultPlan {
        self.ops.push(FaultOp::CrashAfterMaps { node, maps });
        self
    }

    /// Crash `node` once `spills` shuffle batches are in flight.
    pub fn crash_after_spills(mut self, node: NodeId, spills: u64) -> FaultPlan {
        self.ops.push(FaultOp::CrashAfterSpills { node, spills });
        self
    }

    /// Crash `node` during the reduce phase.
    pub fn crash_in_reduce(mut self, node: NodeId) -> FaultPlan {
        self.ops.push(FaultOp::CrashInReduce { node });
        self
    }

    /// Kill the first `times` attempts of map task `task`.
    pub fn fail_task(mut self, task: usize, times: u32) -> FaultPlan {
        self.ops.push(FaultOp::FailTask { task, times });
        self
    }

    /// Delay every attempt run by `node` by `micros` microseconds.
    pub fn slow_node(mut self, node: NodeId, micros: u64) -> FaultPlan {
        self.ops.push(FaultOp::SlowNode { node, micros });
        self
    }

    /// Admit a fresh node once `maps` map tasks have committed.
    pub fn join_at_maps(mut self, maps: u64) -> FaultPlan {
        self.ops.push(FaultOp::JoinAtMaps { maps });
        self
    }

    /// Gracefully remove `node` once `maps` map tasks have committed.
    pub fn leave_at_maps(mut self, node: NodeId, maps: u64) -> FaultPlan {
        self.ops.push(FaultOp::LeaveAtMaps { node, maps });
        self
    }

    /// Number of scheduled operations (diagnostics).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A progress milestone the live executor reports to a registered
/// [`DstObserver`]. These are the executor's *logical clock*: counts of
/// committed maps and sent shuffle batches, not wall time — so a fault
/// keyed off an event fires at the same point in the job's own progress
/// on any host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DstEvent {
    /// The run is placed and armed; `tasks` map tasks are queued.
    JobStart { tasks: usize },
    /// A map attempt just committed; `done` tasks are committed
    /// cluster-wide (1-based, monotonic).
    MapCommitted { done: u64 },
    /// A shuffle batch was just sent (or delivered locally); `sent`
    /// batches are out cluster-wide (1-based, monotonic).
    SpillSent { sent: u64 },
    /// `node` finished crashing: detection, stabilization and
    /// re-replication are complete and its tasks are re-queued.
    NodeCrashed { node: NodeId },
    /// `node` joined the ring mid-run: the ring stabilized around it,
    /// it pulled its cache range and block replicas, and it is
    /// accepting work.
    NodeJoined { node: NodeId },
    /// `node` left the ring gracefully: its queued tasks drained back
    /// to the scheduler and its data was handed off before departure.
    NodeLeft { node: NodeId },
    /// The run finished (success or error); transport fault state
    /// installed by the observer should be torn down.
    JobEnd,
    /// A standing job's epoch wave passed its barrier (every delta map
    /// committed and drained) but has **not yet published**: the window
    /// where a crash, leave or partition hits the materialized-state
    /// fold itself. Fired by the epoch driver between barrier and
    /// publish so DST can aim faults at exactly that edge.
    EpochBarrier { epoch: u32 },
}

/// Observer hook for deterministic simulation testing: the DST harness
/// registers one via [`LiveCluster::set_observer`] to inject transport
/// faults (partitions, drops, delays) at exact points of job progress —
/// the same progress-keyed determinism [`FaultPlan`] crashes already
/// have, extended to the full `MemTransport` chaos API.
///
/// Callbacks run inline on executor threads (mappers, reducers, the
/// crash handler), so implementations must be cheap and must not call
/// back into the running job.
pub trait DstObserver: Send + Sync {
    fn on_event(&self, ev: DstEvent);
}

/// How one map attempt ended (executor-internal).
enum Attempt {
    /// Complete output shipped; eligible to commit.
    Shipped,
    /// The worker's node crashed mid-attempt: at least one send was
    /// suppressed, so the attempt must not commit.
    Voided,
    /// An injected task fault consumed the attempt before output.
    Faulted,
    /// A *different* attempt of the same task committed while this one
    /// ran: the per-attempt cancellation token (checked at spill
    /// boundaries) stopped it early. Safe by construction — the token
    /// only fires after another attempt's complete output committed, so
    /// cancellation can never suppress a committed send.
    Cancelled,
}

/// What one map attempt produced: its terminal state plus the
/// still-in-flight windowed send tickets the deferred settle step must
/// redeem — shuffle batches tagged with the partition they carry, then
/// best-effort cache inserts.
type AttemptOutcome = (Attempt, Vec<(SendTicket, usize)>, Vec<SendTicket>);

/// Per-reducer output partitions paired with the run's [`LiveStats`]:
/// what every partitioned `run_job*` entry point yields.
pub type PartitionedOutput = (Vec<Vec<(String, String)>>, LiveStats);

/// A drained job's grouped (pre-reduce) state: per reduce partition,
/// each key's full value multiset, plus the wave's statistics.
pub(crate) type GroupedOutput = (Vec<HashMap<String, Vec<String>>>, LiveStats);

/// A shipped attempt whose windowed batches are still in flight: the
/// worker holds it across the *next* attempt's map work (acks overlap
/// with compute) and settles it — flush, then the commit CAS — before
/// anything that needs the task committed. The happens-before edge is
/// untouched: commit still strictly follows acknowledged delivery.
struct PendingCommit {
    tid: usize,
    attempt: u32,
    /// Windowed cross-node shuffle batches, with the partition each
    /// one carries (re-homed on loss).
    shuffle: Vec<(SendTicket, usize)>,
    /// Best-effort windowed cache inserts (outcome ignored).
    cache: Vec<SendTicket>,
    /// This attempt was a speculative backup (its commit is a
    /// `speculative_wins`; its loss is not requeued).
    speculative: bool,
    /// When the attempt started — a winning commit feeds the running
    /// median the speculation monitor compares stragglers against.
    started: Instant,
}

/// Bits of a wire task id reserved for the per-job task index; the
/// bits above carry the job slot. A *global* task id (gtid) is
/// `(jid << JOB_SHIFT) | tid`, letting shuffle batches, heartbeats and
/// assignments from concurrent jobs share one transport without
/// colliding.
const JOB_SHIFT: u32 = 20;
/// Mask extracting the per-job task index from a gtid.
const TID_MASK: u32 = (1 << JOB_SHIFT) - 1;
/// Job slots: jids are assigned modulo this, keeping every gtid
/// strictly below `u32::MAX` (the heartbeat liveness sentinel) while
/// leaving a full 2048-job window before a slot is reused — and slot
/// reuse is safe anyway because `begin_job` prunes the slot's gtid
/// space.
const MAX_JOB_SLOTS: u32 = 1 << (31 - JOB_SHIFT);

/// One shuffle batch: the complete output of `(task, attempt)` for one
/// reduce partition. Reducers use the pair for exactly-once dedup.
struct TaskBatch {
    task: u32,
    attempt: u32,
    records: Vec<(String, String)>,
}

/// Reorder-tolerant duplicate detector for one map attempt's shuffle
/// sequence numbers. Sequence numbers below `next` are all delivered;
/// out-of-order arrivals park in `ahead` until the gap below them
/// fills, keeping the set small (bounded by the sender's ack window)
/// instead of remembering every seq ever seen.
#[derive(Debug, Default)]
struct SeqTracker {
    next: u32,
    ahead: HashSet<u32>,
}

impl SeqTracker {
    /// True if `seq` is new (caller must deliver it), false for a
    /// duplicate in any arrival order.
    fn admit(&mut self, seq: u32) -> bool {
        if seq < self.next || !self.ahead.insert(seq) {
            return false;
        }
        while self.ahead.remove(&self.next) {
            self.next += 1;
        }
        true
    }
}

/// One live job's routing state: where its reduce partitions ingest
/// and which node each partition's shuffle batches are addressed to.
struct JobRoute {
    /// Reduce-partition channels.
    sinks: Vec<Sender<TaskBatch>>,
    /// Home node per reduce partition. Re-homed when the home becomes
    /// unreachable.
    homes: Vec<NodeId>,
    /// Execution epoch this route ingests (0 for batch jobs). A
    /// standing job re-installs its route each epoch; batches tagged
    /// with any other epoch are acknowledged and dropped — their wave
    /// is over (commit happens-after acknowledged delivery, so a stale
    /// epoch's batch is either already folded or its wave aborted).
    epoch: u32,
}

/// The receiving half of the shuffle and control planes, shared by every
/// node's RPC handler. Multi-job: every wire task id is a *global* task
/// id `(jid << JOB_SHIFT) | tid`, so batches, dedup trackers, progress
/// entries and assignments from concurrent jobs never collide.
/// `begin_job` installs a job's partition channels and homes under its
/// jid; `end_job` tears them down so stragglers are dropped instead of
/// delivered into a later job reusing the slot.
struct ShuffleRouter {
    /// Routing state per live job, keyed by jid.
    jobs: RwLock<HashMap<u32, JobRoute>>,
    /// Transport-level dedup, one tracker per `(gtid, attempt)`.
    /// At-least-once retry can re-deliver a batch whose *response* was
    /// lost, and the windowed one-way lane can deliver retransmissions
    /// out of order; neither a duplicate nor a reordered duplicate may
    /// reach a reducer twice.
    seen: Mutex<HashMap<(u32, u32), SeqTracker>>,
    /// Tasks (gtids) whose commit has settled, with the winning attempt.
    /// Bounds dedup memory: once a task settles, every loser's `seen`
    /// tracker is pruned and late loser batches are acknowledged without
    /// ever creating one — only the winner's tracker survives (late
    /// retransmissions of acked frames must still dedup).
    settled: Mutex<HashMap<u32, u32>>,
    /// Speculation progress board: gtid → (first heard, latest promille
    /// 0..=1000), fed by `Heartbeat` frames addressed to the driver.
    progress: Mutex<HashMap<u32, (Instant, u32)>>,
    /// Control plane: global task ids assigned per node via `TaskAssign`.
    assigned: Mutex<HashMap<u32, Vec<u32>>>,
}

impl ShuffleRouter {
    fn new() -> ShuffleRouter {
        ShuffleRouter {
            jobs: RwLock::new(HashMap::new()),
            seen: Mutex::new(HashMap::new()),
            settled: Mutex::new(HashMap::new()),
            progress: Mutex::new(HashMap::new()),
            assigned: Mutex::new(HashMap::new()),
        }
    }

    /// Drop every gtid-keyed entry belonging to `jid` — called on both
    /// begin (slot reuse after [`MAX_JOB_SLOTS`] jobs must not inherit
    /// a predecessor's dedup state) and end (free the memory).
    fn prune_job(&self, jid: u32) {
        self.seen.lock().retain(|&(t, _), _| t >> JOB_SHIFT != jid);
        self.settled.lock().retain(|&t, _| t >> JOB_SHIFT != jid);
        self.progress.lock().retain(|&t, _| t >> JOB_SHIFT != jid);
        for q in self.assigned.lock().values_mut() {
            q.retain(|&t| t >> JOB_SHIFT != jid);
        }
    }

    fn begin_job(&self, jid: u32, sinks: Vec<Sender<TaskBatch>>, homes: Vec<NodeId>) {
        self.begin_epoch(jid, sinks, homes, 0);
    }

    /// Install (or re-install) `jid`'s route for one execution epoch of
    /// a standing job. Pruning the jid's dedup state here is what lets
    /// per-epoch task ids restart at 0: epoch N+1's `(gtid, attempt)`
    /// trackers never collide with epoch N's, because N's were dropped
    /// at this barrier and N's late batches are epoch-gated before they
    /// can recreate one.
    fn begin_epoch(
        &self,
        jid: u32,
        sinks: Vec<Sender<TaskBatch>>,
        homes: Vec<NodeId>,
        epoch: u32,
    ) {
        self.prune_job(jid);
        self.jobs.write().insert(jid, JobRoute { sinks, homes, epoch });
    }

    fn end_job(&self, jid: u32) {
        self.jobs.write().remove(&jid);
        self.prune_job(jid);
    }

    fn home_of(&self, jid: u32, partition: usize) -> NodeId {
        self.jobs.read()[&jid].homes[partition]
    }

    fn set_home(&self, jid: u32, partition: usize, node: NodeId) {
        if let Some(route) = self.jobs.write().get_mut(&jid) {
            route.homes[partition] = node;
        }
    }

    /// Proactively re-home every partition of every live job addressed
    /// at `victim` onto `to` (the victim's ring successor). Crash and
    /// graceful-leave recovery both call this so post-event spills go
    /// straight to the current owner instead of discovering the stale
    /// home through a failed send (which burns an attempt's worth of
    /// retry budget).
    fn rehome_from(&self, victim: NodeId, to: NodeId) {
        let mut jobs = self.jobs.write();
        for route in jobs.values_mut() {
            for h in route.homes.iter_mut() {
                if *h == victim {
                    *h = to;
                }
            }
        }
    }

    /// Feed one batch into its partition channel. Duplicates are
    /// acknowledged without re-delivery; `false` means the batch's job
    /// is not accepting shuffle output (teardown or a stale slot).
    fn deliver(
        &self,
        task: u32,
        attempt: u32,
        seq: u32,
        epoch: u32,
        partition: u32,
        records: Vec<(String, String)>,
    ) -> bool {
        let jobs = self.jobs.read();
        let Some(route) = jobs.get(&(task >> JOB_SHIFT)) else { return false };
        // The epoch gate comes BEFORE dedup admission: a stale-epoch
        // retransmission must not seed a fresh `seen` tracker that
        // would then falsely dedup the current epoch's identically
        // numbered batches (per-epoch task ids restart at 0).
        if route.epoch != epoch {
            return true; // ack-drop: that wave already committed or aborted
        }
        if let Some(&winner) = self.settled.lock().get(&task) {
            if winner != attempt {
                // A losing attempt of a settled task: acknowledge and
                // drop without creating a tracker (dedup memory stays
                // bounded by settled-task pruning).
                return true;
            }
        }
        if !self.seen.lock().entry((task, attempt)).or_default().admit(seq) {
            return true; // duplicate of a batch that already landed
        }
        let Some(tx) = route.sinks.get(partition as usize) else { return false };
        tx.send(TaskBatch { task, attempt, records }).is_ok()
    }

    /// The task's commit settled with `attempt` winning: prune every
    /// loser's dedup tracker and remember the winner so late loser
    /// deliveries are ack-dropped trackerless.
    fn settle_task(&self, task: u32, attempt: u32) {
        self.settled.lock().insert(task, attempt);
        self.seen.lock().retain(|&(t, a), _| t != task || a == attempt);
    }

    /// Record heartbeat-carried map progress (speculation input).
    fn note_progress(&self, task: u32, progress: u32) {
        let mut board = self.progress.lock();
        let e = board.entry(task).or_insert_with(|| (Instant::now(), progress));
        e.1 = e.1.max(progress);
    }

    /// Snapshot of one job's progress board for its speculation
    /// monitor, with local task ids.
    fn progress_entries(&self, jid: u32) -> Vec<(u32, Instant, u32)> {
        self.progress
            .lock()
            .iter()
            .filter(|(&t, _)| t >> JOB_SHIFT == jid)
            .map(|(&t, &(at, p))| (t & TID_MASK, at, p))
            .collect()
    }

    fn assign(&self, node: NodeId, gtid: u32) {
        self.assigned.lock().entry(node.0).or_default().push(gtid);
    }

    /// Drain one job's entries from the per-node assignment inboxes
    /// into placement-order queues of local task ids. Other jobs'
    /// assignments stay parked.
    fn take_assignments(&self, jid: u32, nodes: usize) -> Vec<Vec<usize>> {
        let mut inbox = self.assigned.lock();
        (0..nodes)
            .map(|n| {
                let Some(q) = inbox.get_mut(&(n as u32)) else { return Vec::new() };
                let mut mine = Vec::new();
                q.retain(|&gtid| {
                    if gtid >> JOB_SHIFT == jid {
                        mine.push((gtid & TID_MASK) as usize);
                        false
                    } else {
                        true
                    }
                });
                mine
            })
            .collect()
    }
}

/// Bind `node`'s RPC endpoint: the serving side of every data-plane,
/// cache, shuffle and control message addressed to it.
fn bind_endpoint(
    net: &Arc<dyn Transport>,
    node: NodeId,
    store: Arc<BlockStore>,
    cache: Arc<DistributedCache>,
    router: Arc<ShuffleRouter>,
    slow_serving: Arc<RwLock<HashMap<u32, u64>>>,
) {
    // The handler keeps a Weak transport: `ReplicaSync` relays a
    // `PutBlock` onward, and a strong Arc here would cycle
    // (transport → handler → transport) and leak the TCP threads.
    let weak = Arc::downgrade(net);
    net.bind(
        node,
        Arc::new(move |rpc| {
            // An injected straggler is slow end to end: its RPC *serving*
            // is delayed too, not just its map compute (a real slow host
            // answers block reads and accepts shuffle batches late).
            let delay = slow_serving.read().get(&node.0).copied().unwrap_or(0);
            if delay > 0 {
                std::thread::sleep(Duration::from_micros(delay));
            }
            match rpc {
            Rpc::GetBlock { block } => RpcReply::Block(store.get(node, block)),
            Rpc::PutBlock { block, data } => {
                store.put(node, block, data);
                RpcReply::Ack
            }
            Rpc::ReplicaSync { block, to } => {
                // Relay this node's replica to the re-replication
                // target; `Missing` reports a destroyed source copy.
                let Some(data) = store.get(node, block) else {
                    return RpcReply::Missing;
                };
                let Some(net) = weak.upgrade() else {
                    return RpcReply::Error("transport shut down".into());
                };
                let bytes = data.len() as u64;
                match net.call(node, to, Rpc::PutBlock { block, data }) {
                    Ok(RpcReply::Ack) => RpcReply::Synced { bytes },
                    Ok(r) => RpcReply::Error(format!("unexpected reply {r:?}")),
                    Err(e) => RpcReply::Error(e.to_string()),
                }
            }
            Rpc::CacheGet { key } => {
                RpcReply::CacheValue(cache.with_node(node, |c| c.get_payload(&key, 0.0)))
            }
            Rpc::CachePut { key, data, ttl, tenant, pin } => {
                cache.with_node(node, |c| {
                    if pin {
                        c.put_payload_pinned(key, data, 0.0, ttl, tenant)
                    } else {
                        c.put_payload_tenant(key, data, 0.0, ttl, tenant)
                    }
                });
                RpcReply::Ack
            }
            Rpc::ShuffleBatch { task, attempt, seq, epoch, partition, records } => {
                if router.deliver(task, attempt, seq, epoch, partition, records) {
                    RpcReply::Ack
                } else {
                    RpcReply::Error("no job accepting shuffle output".into())
                }
            }
            Rpc::Heartbeat { .. } => RpcReply::Ack,
            Rpc::TaskAssign { task, .. } => {
                router.assign(node, task);
                RpcReply::Ack
            }
            Rpc::RangeHandoff { key, data } => {
                // A re-homed cache entry arriving from its previous
                // owner (elastic join or leave). Adopt it into this
                // node's shard; a lost handoff is only a future miss,
                // so there is no further handshake.
                cache.with_node(node, |c| c.put_payload(key, data, 0.0, None));
                RpcReply::Ack
            }
            Rpc::BlockPull { block, from } => {
                // Elastic handoff: this node is the block's new ideal
                // holder and pulls the payload from `from`. The same
                // relay shape as `ReplicaSync`, but pull-driven — the
                // new holder drives its own catch-up.
                if let Some(data) = store.get(node, block) {
                    return RpcReply::Synced { bytes: data.len() as u64 };
                }
                let Some(net) = weak.upgrade() else {
                    return RpcReply::Error("transport shut down".into());
                };
                match net.call(node, from, Rpc::GetBlock { block }) {
                    Ok(RpcReply::Block(Some(data))) => {
                        let bytes = data.len() as u64;
                        store.put(node, block, data);
                        RpcReply::Synced { bytes }
                    }
                    Ok(RpcReply::Block(None)) => RpcReply::Missing,
                    Ok(r) => RpcReply::Error(format!("unexpected reply {r:?}")),
                    Err(e) => RpcReply::Error(e.to_string()),
                }
            }
            }
        }),
    );
}

/// Per-run shared state: the attempt ledger, fault schedule and
/// recovery accounting. Lives on the driver's stack; worker and
/// reducer threads share it by reference inside the thread scope.
struct RunRt {
    /// Job slot this run occupies: wire task ids are
    /// `(jid << JOB_SHIFT) | tid`.
    jid: u32,
    /// Cache-quota tenant the job's inserts are accounted to
    /// (0 = untagged).
    tenant: u16,
    /// Commit board: `commits[t]` is the winning attempt number, or
    /// [`UNCOMMITTED`]. Written once per task by CAS.
    commits: Vec<AtomicU32>,
    /// Next attempt number to hand out per task.
    next_attempt: Vec<AtomicU32>,
    /// Index of the node whose worker most recently claimed each task —
    /// the crash handler re-queues the victim's claims.
    claims: Vec<AtomicU32>,
    /// Count of committed tasks (fast all-done check).
    committed: AtomicUsize,
    /// Tasks needing re-execution after a crash / fault / panic.
    retry: Mutex<Vec<usize>>,
    /// First terminal error wins.
    error: Mutex<Option<JobError>>,
    aborted: AtomicBool,
    /// Crash flags, indexed by node index. A poisoned node's worker
    /// stops; its sends are suppressed ("the crash loses in-flight
    /// messages").
    poisoned: Vec<AtomicBool>,
    /// Committed map count (drives `CrashAfterMaps` triggers).
    maps_done: AtomicU64,
    /// Shuffle batches sent (drives `CrashAfterSpills` triggers).
    spills_sent: AtomicU64,
    /// Remaining fault schedule; crash ops are consumed when they fire.
    ops: Mutex<Vec<FaultOp>>,
    /// Faults were scheduled at job start — when false, the hot path
    /// never touches `ops`.
    armed: bool,
    /// DST progress observer for this run (cloned from the cluster at
    /// job start so the hot path never takes the cluster's lock).
    obs: Option<Arc<dyn DstObserver>>,
    /// Non-speculative failures per task. Only these count against the
    /// retry budget — a lost backup must not push a healthy task over
    /// [`MAX_ATTEMPTS`].
    failures: Vec<AtomicU32>,
    /// Running map attempts per node index (scheduler load signal for
    /// backup placement).
    running: Vec<AtomicU32>,
    /// Backup launch requests from the monitor: `(task, preferred node
    /// index)`. Idle workers drain this in phase 2.
    spec: Mutex<Vec<(usize, u32)>>,
    /// At most one backup per task, ever.
    spec_launched: Vec<AtomicBool>,
    /// Committed map attempt durations in nanos — the monitor's median
    /// baseline. Only populated when speculation is on.
    durations: Mutex<Vec<u64>>,
    attempts: AtomicU64,
    retries: AtomicU64,
    failed_nodes: AtomicU64,
    recovered_blocks: AtomicU64,
    stabilize_rounds: AtomicU64,
    recovery_nanos: AtomicU64,
    speculative_attempts: AtomicU64,
    speculative_wins: AtomicU64,
    cancelled_attempts: AtomicU64,
    local_shuffle_records: AtomicU64,
    joins: AtomicU64,
    leaves: AtomicU64,
    handoff_blocks: AtomicU64,
    handoff_bytes: AtomicU64,
    drained_tasks: AtomicU64,
    /// Elastic joins scheduled for this run: per-node ledgers are sized
    /// `nodes + planned_joins` so a joiner's index is in range, and one
    /// parked worker thread is spawned per planned join.
    planned_joins: usize,
    /// Identities posted by the join handler for parked worker threads
    /// to adopt.
    joined: Mutex<Vec<NodeId>>,
}

impl RunRt {
    fn new(
        jid: u32,
        tenant: u16,
        tasks: usize,
        nodes: usize,
        ops: Vec<FaultOp>,
        obs: Option<Arc<dyn DstObserver>>,
    ) -> RunRt {
        let planned_joins =
            ops.iter().filter(|op| matches!(op, FaultOp::JoinAtMaps { .. })).count();
        let slots = nodes + planned_joins;
        RunRt {
            jid,
            tenant,
            commits: (0..tasks).map(|_| AtomicU32::new(UNCOMMITTED)).collect(),
            next_attempt: (0..tasks).map(|_| AtomicU32::new(0)).collect(),
            claims: (0..tasks).map(|_| AtomicU32::new(NO_CLAIM)).collect(),
            committed: AtomicUsize::new(0),
            retry: Mutex::new(Vec::new()),
            error: Mutex::new(None),
            aborted: AtomicBool::new(false),
            poisoned: (0..slots).map(|_| AtomicBool::new(false)).collect(),
            maps_done: AtomicU64::new(0),
            spills_sent: AtomicU64::new(0),
            armed: !ops.is_empty(),
            ops: Mutex::new(ops),
            obs,
            failures: (0..tasks).map(|_| AtomicU32::new(0)).collect(),
            running: (0..slots).map(|_| AtomicU32::new(0)).collect(),
            spec: Mutex::new(Vec::new()),
            spec_launched: (0..tasks).map(|_| AtomicBool::new(false)).collect(),
            durations: Mutex::new(Vec::new()),
            attempts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            failed_nodes: AtomicU64::new(0),
            recovered_blocks: AtomicU64::new(0),
            stabilize_rounds: AtomicU64::new(0),
            recovery_nanos: AtomicU64::new(0),
            speculative_attempts: AtomicU64::new(0),
            speculative_wins: AtomicU64::new(0),
            cancelled_attempts: AtomicU64::new(0),
            local_shuffle_records: AtomicU64::new(0),
            joins: AtomicU64::new(0),
            leaves: AtomicU64::new(0),
            handoff_blocks: AtomicU64::new(0),
            handoff_bytes: AtomicU64::new(0),
            drained_tasks: AtomicU64::new(0),
            planned_joins,
            joined: Mutex::new(Vec::new()),
        }
    }

    /// Pop a backup request this worker should run: prefer tasks whose
    /// backup the monitor placed here, else any task whose primary runs
    /// elsewhere. Entries whose task already committed are dropped.
    fn pop_spec(&self, me: usize) -> Option<usize> {
        let mut q = self.spec.lock();
        q.retain(|&(tid, _)| self.commits[tid].load(Ordering::Acquire) == UNCOMMITTED);
        let pick = q
            .iter()
            .position(|&(_, pref)| pref == me as u32)
            .or_else(|| {
                q.iter().position(|&(tid, _)| self.claims[tid].load(Ordering::Acquire) != me as u32)
            })?;
        Some(q.remove(pick).0)
    }

    /// Record a terminal error (first one wins) and stop the job.
    fn abort(&self, e: JobError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        self.aborted.store(true, Ordering::Release);
    }

    fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    fn node_down(&self, n: NodeId) -> bool {
        self.poisoned.get(n.index()).is_some_and(|p| p.load(Ordering::Acquire))
    }

    /// Report a progress milestone to the DST observer, if one is set.
    fn notify(&self, ev: DstEvent) {
        if let Some(o) = &self.obs {
            o.on_event(ev);
        }
    }

    /// Remove and return the first due crash op matching `pred`.
    fn take_crash(&self, pred: impl Fn(&FaultOp) -> bool) -> Option<NodeId> {
        let mut ops = self.ops.lock();
        let i = ops.iter().position(pred)?;
        match ops.remove(i) {
            FaultOp::CrashAfterMaps { node, .. }
            | FaultOp::CrashAfterSpills { node, .. }
            | FaultOp::CrashInReduce { node } => Some(node),
            _ => None,
        }
    }

    fn due_after_maps(&self, done: u64) -> Option<NodeId> {
        self.take_crash(|op| matches!(op, FaultOp::CrashAfterMaps { maps, .. } if done >= *maps))
    }

    fn due_after_spills(&self, sent: u64) -> Option<NodeId> {
        self.take_crash(
            |op| matches!(op, FaultOp::CrashAfterSpills { spills, .. } if sent >= *spills),
        )
    }

    fn due_in_reduce(&self) -> Option<NodeId> {
        self.take_crash(|op| matches!(op, FaultOp::CrashInReduce { .. }))
    }

    /// Pop one due elastic join (armed on the committed-maps clock).
    fn due_join(&self, done: u64) -> bool {
        let mut ops = self.ops.lock();
        match ops
            .iter()
            .position(|op| matches!(op, FaultOp::JoinAtMaps { maps } if done >= *maps))
        {
            Some(i) => {
                ops.remove(i);
                true
            }
            None => false,
        }
    }

    /// Pop one due graceful leave (armed on the committed-maps clock).
    fn due_leave(&self, done: u64) -> Option<NodeId> {
        let mut ops = self.ops.lock();
        let i = ops
            .iter()
            .position(|op| matches!(op, FaultOp::LeaveAtMaps { maps, .. } if done >= *maps))?;
        match ops.remove(i) {
            FaultOp::LeaveAtMaps { node, .. } => Some(node),
            _ => unreachable!("position matched LeaveAtMaps"),
        }
    }

    /// Straggler delay for attempts executed by `node` (0 = none).
    fn slow_micros(&self, node: NodeId) -> u64 {
        self.ops
            .lock()
            .iter()
            .find_map(|op| match op {
                FaultOp::SlowNode { node: n, micros } if *n == node => Some(*micros),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Does an injected fault kill this `(task, attempt)`?
    fn injected_failure(&self, task: usize, attempt: u32) -> bool {
        self.ops.lock().iter().any(
            |op| matches!(op, FaultOp::FailTask { task: t, times } if *t == task && attempt < *times),
        )
    }
}

/// One entry in the run's task ledger: a block to map at a chosen
/// node, optionally restricted to a subset of reduce partitions.
/// Replicated map-out (`map_replication > 1`) splits a block's
/// partitions across its replica holders so each reducer's share is
/// produced by the holder nearest its home on the ring.
struct MapTask {
    /// Index into the job's input list (reduce-side joins tag records).
    source: usize,
    bid: BlockId,
    /// The block's ring key — backup placement routes by it.
    key: HashKey,
    /// Where the attempt runs (and which cache shard it charges).
    node: NodeId,
    /// `Some(mask)`: emit only partitions with `mask[p]`. `None`: all.
    parts: Option<Arc<Vec<bool>>>,
}

/// A live EclipseMR deployment.
pub struct LiveCluster {
    cfg: LiveConfig,
    ring: RwLock<Ring>,
    /// Metadata only; reads (open / block_holders) share the lock.
    fs: RwLock<DhtFs>,
    store: Arc<BlockStore>,
    /// Internally sharded: per-node locks, no cluster-wide mutex.
    cache: Arc<DistributedCache>,
    /// The RPC fabric every inter-node interaction travels.
    net: Arc<dyn Transport>,
    /// The concrete in-memory backend when configured — the chaos API
    /// (partitions, drops, delays) hangs off the concrete type.
    mem_net: Option<Arc<MemTransport>>,
    /// Shuffle/control receiving side, shared by all endpoints.
    router: Arc<ShuffleRouter>,
    sched: Mutex<LiveSched>,
    /// Failure detector fed by a logical clock: crashes advance the
    /// clock past the timeout so the victim misses its beat.
    monitor: Mutex<HeartbeatMonitor>,
    clock: AtomicU64,
    /// Faults scheduled for the next job run (drained at job start).
    faults: Mutex<Vec<FaultOp>>,
    /// Per-node RPC serving delay in micros, consulted by every bound
    /// endpoint. Populated from `SlowNode` faults for the duration of a
    /// job so a straggler also serves block reads and shuffle late.
    slow_serving: Arc<RwLock<HashMap<u32, u64>>>,
    /// DST progress observer (see [`DstObserver`]); cloned into each
    /// run's `RunRt` at job start.
    observer: RwLock<Option<Arc<dyn DstObserver>>>,
    /// Membership bookkeeping (paper §II): every join, leave and crash
    /// is applied as a [`MembershipEvent`], bumping the epoch that lets
    /// placement state (cache ranges, shuffle homes) notice staleness.
    view: Mutex<ClusterView>,
    /// Ledgers of every in-flight run, keyed by jid, so crash/join/
    /// leave recovery can walk *all* live jobs and the public
    /// [`join_node`](Self::join_node) / [`leave_node`](Self::leave_node)
    /// entry points can drain their queues while jobs are running.
    active: Mutex<HashMap<u32, Arc<RunRt>>>,
    /// Monotonic jid source; wraps into [`MAX_JOB_SLOTS`] slots.
    next_jid: AtomicU32,
    /// Serializes recovery (crash, join, leave) cluster-wide: ring and
    /// placement mutations must not interleave across concurrent jobs.
    recovery_gate: Mutex<()>,
    /// Tenant directory: user string → cache-quota tenant id. Ids are
    /// handed out from 1 (0 = untagged/no-quota traffic).
    tenants: Mutex<HashMap<String, u16>>,
}

impl LiveCluster {
    pub fn new(cfg: LiveConfig) -> LiveCluster {
        let ring = Ring::with_servers_evenly_spaced(cfg.nodes, "live");
        let fs = DhtFs::new(
            ring.clone(),
            DhtFsConfig { block_size: cfg.block_size, replicas: cfg.replicas },
        );
        let store = Arc::new(BlockStore::new());
        let cache =
            Arc::new(DistributedCache::with_shards(&ring, cfg.cache_per_node, cfg.cache_shards));
        let router = Arc::new(ShuffleRouter::new());
        let (net, mem_net): (Arc<dyn Transport>, Option<Arc<MemTransport>>) =
            match cfg.transport {
                TransportKind::Memory => {
                    let m = Arc::new(MemTransport::with_policy(cfg.net_policy));
                    (Arc::clone(&m) as Arc<dyn Transport>, Some(m))
                }
                TransportKind::Tcp => {
                    (Arc::new(TcpTransport::with_policy(cfg.net_policy)), None)
                }
            };
        let slow_serving: Arc<RwLock<HashMap<u32, u64>>> = Arc::new(RwLock::new(HashMap::new()));
        for n in ring.node_ids() {
            bind_endpoint(
                &net,
                n,
                Arc::clone(&store),
                Arc::clone(&cache),
                Arc::clone(&router),
                Arc::clone(&slow_serving),
            );
        }
        // The driver endpoint: map attempts report their progress here
        // (promille of input consumed) so the speculation monitor can
        // spot stragglers without a scheduler round-trip.
        let progress_router = Arc::clone(&router);
        net.bind(
            CLIENT,
            Arc::new(move |rpc| {
                if let Rpc::Heartbeat { task, progress, .. } = rpc {
                    if task != u32::MAX {
                        progress_router.note_progress(task, progress);
                    }
                }
                RpcReply::Ack
            }),
        );
        let sched = match &cfg.scheduler {
            SchedulerKind::Laf(c) => LiveSched::Laf(LafScheduler::new(&ring, *c)),
            SchedulerKind::Delay(c) => LiveSched::Delay(DelayScheduler::new(&ring, *c)),
        };
        let mut monitor = HeartbeatMonitor::new(HEARTBEAT_TIMEOUT_SECS as f64);
        for n in ring.node_ids() {
            monitor.heartbeat(n, 0.0);
        }
        let view = ClusterView::new(ring.clone());
        LiveCluster {
            cfg,
            ring: RwLock::new(ring),
            fs: RwLock::new(fs),
            store,
            cache,
            net,
            mem_net,
            router,
            sched: Mutex::new(sched),
            monitor: Mutex::new(monitor),
            clock: AtomicU64::new(0),
            faults: Mutex::new(Vec::new()),
            slow_serving,
            observer: RwLock::new(None),
            view: Mutex::new(view),
            active: Mutex::new(HashMap::new()),
            next_jid: AtomicU32::new(0),
            recovery_gate: Mutex::new(()),
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// Number of jobs currently executing on this cluster.
    pub fn active_jobs(&self) -> usize {
        self.active.lock().len()
    }

    /// Snapshot of the live run ledgers (crash/join/leave walk these).
    fn live_runs(&self) -> Vec<Arc<RunRt>> {
        self.active.lock().values().cloned().collect()
    }

    /// The cache-quota tenant id for `user`, allocating one on first
    /// sight. Id 0 is reserved for untagged traffic.
    pub fn tenant_of(&self, user: &str) -> u16 {
        let mut dir = self.tenants.lock();
        let next = dir.len() as u16 + 1;
        *dir.entry(user.to_string()).or_insert(next)
    }

    /// Cap `user`'s cache footprint at `bytes_per_node` on every node
    /// (applied to joiners too). See `DistributedCache::set_tenant_quota`.
    pub fn set_tenant_quota(&self, user: &str, bytes_per_node: u64) {
        let t = self.tenant_of(user);
        self.cache.set_tenant_quota(t, bytes_per_node);
    }

    /// Bytes currently cached under `user`'s tenant across all nodes.
    pub fn tenant_cache_used(&self, user: &str) -> u64 {
        let t = self.tenant_of(user);
        self.cache.tenant_used(t)
    }

    /// A snapshot of the current ring membership.
    pub fn ring(&self) -> Ring {
        self.ring.read().clone()
    }

    /// The membership epoch: bumped once per join, leave or crash.
    /// Placement consumers compare epochs to detect stale snapshots.
    pub fn epoch(&self) -> u64 {
        self.view.lock().epoch()
    }

    pub fn nodes(&self) -> usize {
        self.cfg.nodes
    }

    /// The live cache hash-key ranges (test/diagnostic access — the
    /// property suite checks they partition the key space exactly after
    /// any elastic membership schedule).
    pub fn cache_ranges(&self) -> Vec<(NodeId, KeyRange)> {
        self.cache.ranges()
    }

    /// The block payload store (test/diagnostic access — e.g. the
    /// property suite pins `recovered_blocks` to a victim's holdings).
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// The transport fabric (reachability probes, cumulative counters).
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.net
    }

    /// The in-memory transport's chaos/fault-injection API, when the
    /// cluster was built with [`TransportKind::Memory`].
    pub fn mem_net(&self) -> Option<&Arc<MemTransport>> {
        self.mem_net.as_ref()
    }

    /// True while any node's send window is saturated: every slot
    /// toward some destination is occupied by an unacknowledged frame.
    /// The job server consults this at admission so a stalled shuffle
    /// plane pushes back on `submit` instead of queueing more work
    /// behind a wall of timed-out sends.
    pub fn shuffle_backpressure(&self) -> bool {
        self.ring.read().node_ids().iter().any(|&n| self.net.window_saturated(n))
    }

    /// Notify the registered DST observer directly (cluster-scope
    /// events that do not belong to one run's ledger, e.g. epoch
    /// barriers of a standing stream).
    pub(crate) fn observe(&self, ev: DstEvent) {
        if let Some(o) = &*self.observer.read() {
            o.on_event(ev);
        }
    }

    /// Schedule faults for the next `run_job*` call. Multiple calls
    /// accumulate; the next job drains the whole schedule.
    pub fn inject_faults(&self, plan: FaultPlan) {
        self.faults.lock().extend(plan.ops);
    }

    /// Register (or clear) the DST progress observer. Unlike
    /// [`inject_faults`](Self::inject_faults) the observer persists
    /// across runs until cleared — the DST harness owns its lifetime.
    pub fn set_observer(&self, obs: Option<Arc<dyn DstObserver>>) {
        *self.observer.write() = obs;
    }

    /// Upload real data: partition into blocks, push every replica's
    /// payload to its holder as a `PutBlock` RPC from the driver.
    pub fn upload(&self, name: &str, owner: &str, data: &[u8]) {
        if let Err(e) = self.try_upload(name, owner, data) {
            panic!("upload {name:?} failed: {e}");
        }
    }

    /// Fallible twin of [`upload`](Self::upload): maps a metadata
    /// rejection through [`JobError::Open`] and a replica placement
    /// that cannot reach any holder to [`JobError::DataLoss`]. The
    /// epoch driver ingests every delta through this path — a fault
    /// burst during ingestion must surface as a typed error on that
    /// epoch, not tear the stream down.
    pub fn try_upload(&self, name: &str, owner: &str, data: &[u8]) -> Result<(), JobError> {
        let mut fs = self.fs.write();
        let meta = fs.upload(name, owner, data.len() as u64).map_err(JobError::from)?.clone();
        for b in &meta.blocks {
            let lo = (b.id.index * meta.block_size) as usize;
            let hi = (lo + b.size as usize).min(data.len());
            let payload = Bytes::copy_from_slice(&data[lo..hi]);
            let mut placed = 0usize;
            for &holder in fs.block_holders(b.id).expect("just uploaded") {
                let put = Rpc::PutBlock { block: b.id, data: payload.clone() };
                if matches!(self.net.call(CLIENT, holder, put), Ok(RpcReply::Ack)) {
                    placed += 1;
                }
            }
            if placed == 0 {
                return Err(JobError::DataLoss(b.id));
            }
        }
        Ok(())
    }

    /// Fetch a block payload as `reader`: local shard first, then fall
    /// back through every registered replica via `GetBlock` RPCs. A
    /// holder that cannot answer (missing copy, closed endpoint,
    /// timeout) just moves the read to the next replica; only when *no*
    /// copy is reachable anywhere does this return
    /// [`JobError::DataLoss`].
    fn fetch_block(&self, id: BlockId, reader: NodeId) -> Result<Bytes, JobError> {
        if let Some(d) = self.store.get(reader, id) {
            return Ok(d);
        }
        let holders = {
            let fs = self.fs.read();
            fs.block_holders(id).map_err(JobError::from)?.to_vec()
        };
        for h in holders {
            if h == reader {
                continue; // the local miss above already covered it
            }
            if let Ok(RpcReply::Block(Some(d))) =
                self.net.call(reader, h, Rpc::GetBlock { block: id })
            {
                return Ok(d);
            }
        }
        Err(JobError::DataLoss(id))
    }

    /// iCache lookup on `owner`'s shard: direct when the reading node
    /// *is* the owner, a `CacheGet` RPC otherwise. Transport failures
    /// read as a miss — the cache is an optimization, never a source of
    /// truth.
    fn cache_lookup(&self, me: NodeId, owner: NodeId, key: &CacheKey) -> Option<Bytes> {
        if me == owner {
            return self.cache.with_node(owner, |c| c.get_payload(key, 0.0));
        }
        match self.net.call(me, owner, Rpc::CacheGet { key: key.clone() }) {
            Ok(RpcReply::CacheValue(v)) => v,
            _ => None,
        }
    }

    /// iCache insert on `owner`'s shard. Cross-node inserts ride the
    /// windowed one-way lane — the worker keeps mapping instead of
    /// waiting out a round-trip for an optimization — and hand back a
    /// ticket the caller must flush (best-effort: failures are dropped
    /// for the same reason as in [`cache_lookup`](Self::cache_lookup)).
    fn cache_insert(
        &self,
        me: NodeId,
        owner: NodeId,
        key: CacheKey,
        data: Bytes,
        tenant: u16,
    ) -> Option<SendTicket> {
        if me == owner {
            self.cache.with_node(owner, |c| c.put_payload_tenant(key, data, 0.0, None, tenant));
            return None;
        }
        self.net
            .send(me, owner, Rpc::CachePut { key, data, ttl: None, tenant, pin: false })
            .ok()
    }

    /// Run a MapReduce job over `input`, returning the reduced output as
    /// sorted (key, value) pairs plus execution stats. Panics on a
    /// terminal [`JobError`]; use [`try_run_job`](Self::try_run_job) to
    /// handle data loss gracefully.
    pub fn run_job(
        &self,
        app: &dyn MapReduce,
        input: &str,
        user: &str,
        reducers: usize,
        reuse: ReusePolicy,
    ) -> (Vec<(String, String)>, LiveStats) {
        self.try_run_job(app, input, user, reducers, reuse)
            .unwrap_or_else(|e| panic!("job failed: {e}"))
    }

    /// Fallible twin of [`run_job`](Self::run_job).
    pub fn try_run_job(
        &self,
        app: &dyn MapReduce,
        input: &str,
        user: &str,
        reducers: usize,
        reuse: ReusePolicy,
    ) -> Result<(Vec<(String, String)>, LiveStats), JobError> {
        let (parts, stats) = self.try_run_job_partitioned(app, input, user, reducers, reuse)?;
        let mut result: Vec<(String, String)> = parts.into_iter().flatten().collect();
        result.sort();
        Ok((result, stats))
    }

    /// Like [`run_job`](Self::run_job), but returns each reduce
    /// partition's output separately (in partition order, each internally
    /// key-sorted). With a range partitioner, concatenating the
    /// partitions yields globally sorted output without a final merge.
    pub fn run_job_partitioned(
        &self,
        app: &dyn MapReduce,
        input: &str,
        user: &str,
        reducers: usize,
        reuse: ReusePolicy,
    ) -> (Vec<Vec<(String, String)>>, LiveStats) {
        self.try_run_job_partitioned(app, input, user, reducers, reuse)
            .unwrap_or_else(|e| panic!("job failed: {e}"))
    }

    /// Fallible twin of [`run_job_partitioned`](Self::run_job_partitioned).
    pub fn try_run_job_partitioned(
        &self,
        app: &dyn MapReduce,
        input: &str,
        user: &str,
        reducers: usize,
        reuse: ReusePolicy,
    ) -> Result<PartitionedOutput, JobError> {
        self.try_run_job_inputs_partitioned(app, &[input], user, reducers, reuse)
    }

    /// Run a job over several input files at once (reduce-side join):
    /// every input's blocks are mapped (with their source index passed to
    /// [`MapReduce::map_tagged`]) into one shared shuffle, and a single
    /// reduce phase sees the co-grouped records of all inputs.
    pub fn run_job_inputs(
        &self,
        app: &dyn MapReduce,
        inputs: &[&str],
        user: &str,
        reducers: usize,
        reuse: ReusePolicy,
    ) -> (Vec<(String, String)>, LiveStats) {
        self.try_run_job_inputs(app, inputs, user, reducers, reuse)
            .unwrap_or_else(|e| panic!("job failed: {e}"))
    }

    /// Fallible twin of [`run_job_inputs`](Self::run_job_inputs).
    pub fn try_run_job_inputs(
        &self,
        app: &dyn MapReduce,
        inputs: &[&str],
        user: &str,
        reducers: usize,
        reuse: ReusePolicy,
    ) -> Result<(Vec<(String, String)>, LiveStats), JobError> {
        let (parts, stats) =
            self.try_run_job_inputs_partitioned(app, inputs, user, reducers, reuse)?;
        let mut result: Vec<(String, String)> = parts.into_iter().flatten().collect();
        result.sort();
        Ok((result, stats))
    }

    /// Multi-input variant of
    /// [`run_job_partitioned`](Self::run_job_partitioned).
    pub fn run_job_inputs_partitioned(
        &self,
        app: &dyn MapReduce,
        inputs: &[&str],
        user: &str,
        reducers: usize,
        reuse: ReusePolicy,
    ) -> (Vec<Vec<(String, String)>>, LiveStats) {
        self.try_run_job_inputs_partitioned(app, inputs, user, reducers, reuse)
            .unwrap_or_else(|e| panic!("job failed: {e}"))
    }

    /// The core executor: fallible, multi-input, partitioned. All other
    /// `run_job*` entry points funnel here.
    pub fn try_run_job_inputs_partitioned(
        &self,
        app: &dyn MapReduce,
        inputs: &[&str],
        user: &str,
        reducers: usize,
        reuse: ReusePolicy,
    ) -> Result<PartitionedOutput, JobError> {
        assert!(reducers > 0);
        assert!(!inputs.is_empty());
        let metas: Vec<_> = {
            let fs = self.fs.read();
            let mut v = Vec::with_capacity(inputs.len());
            for input in inputs {
                v.push(fs.open(input, user).map_err(JobError::from)?.clone());
            }
            v
        };
        let node_count = self.cache.num_nodes();
        let mut stats =
            LiveStats { tasks_per_node: vec![0; node_count], ..Default::default() };
        // Attribute transport traffic to this job by snapshot delta.
        let net_before = self.net.stats();

        // Worker identities and reducer homes are fixed at job start;
        // replicated map-out needs both *before* placement so a block's
        // replica holders can be drawn from the reducer-home nodes.
        let workers: Vec<NodeId> = self.ring.read().node_ids();
        let homes: Vec<NodeId> =
            (0..reducers).map(|p| workers[p % workers.len()]).collect();

        // ---- Placement. With `map_replication == 1`, every block goes
        // through the production scheduler. With r > 1 the scheduler is
        // bypassed: each block is replicated onto r nodes chosen from
        // the reducer-home set (nearest to the block's key on the ring)
        // and mapped at all of them, each placement emitting only the
        // partitions whose home is nearest to it — the shuffle becomes
        // mostly node-local at the cost of r-fold map work.
        let mut inflight = vec![0u64; node_count];
        let mut tasks: Vec<MapTask> = Vec::new();
        let repl = self.cfg.map_replication.clamp(1, workers.len());
        if repl > 1 {
            let ring = self.ring.read().clone();
            let pos = |n: NodeId| ring.key_of(n).map(|k| k.0).unwrap_or(0);
            // Distinct home nodes, first-appearance order.
            let mut home_nodes: Vec<NodeId> = Vec::new();
            for &h in &homes {
                if !home_nodes.contains(&h) {
                    home_nodes.push(h);
                }
            }
            for (source, meta) in metas.iter().enumerate() {
                for b in &meta.blocks {
                    // r placements: reducer-home nodes nearest to the
                    // block key (clockwise), padded from the remaining
                    // workers when homes are fewer than r.
                    let dist = |n: NodeId| b.key.0.wrapping_sub(pos(n));
                    let mut cand = home_nodes.clone();
                    cand.sort_by_key(|&n| (dist(n), n.0));
                    let mut placements: Vec<NodeId> =
                        cand.into_iter().take(repl).collect();
                    if placements.len() < repl {
                        let mut rest: Vec<NodeId> = workers
                            .iter()
                            .copied()
                            .filter(|n| !placements.contains(n))
                            .collect();
                        rest.sort_by_key(|&n| (dist(n), n.0));
                        placements.extend(rest.into_iter().take(repl - placements.len()));
                    }
                    // Nearest-holder rule: each partition is produced by
                    // the placement closest behind its reducer's home on
                    // the ring (distance 0 ⇒ same node ⇒ local shuffle).
                    // The masks partition the reducer set, so each
                    // (block, partition) is emitted by exactly one
                    // placement and the output stays byte-identical.
                    let mut masks: Vec<Vec<bool>> =
                        vec![vec![false; reducers]; placements.len()];
                    for p in 0..reducers {
                        let hk = pos(homes[p]);
                        let pi = placements
                            .iter()
                            .enumerate()
                            .min_by_key(|&(_, &n)| (hk.wrapping_sub(pos(n)), n.0))
                            .map(|(i, _)| i)
                            .unwrap();
                        masks[pi][p] = true;
                    }
                    // Materialize the extra replicas: relay from an
                    // existing holder (`ReplicaSync`), then record the
                    // new holder in FS metadata so reads and future
                    // recovery see it. A failed relay is skipped — the
                    // map attempt falls back to a remote fetch.
                    let holders: Vec<NodeId> = self
                        .fs
                        .read()
                        .block_holders(b.id)
                        .map(|h| h.to_vec())
                        .unwrap_or_default();
                    for &node in &placements {
                        if holders.contains(&node) || self.store.holds(node, b.id) {
                            continue;
                        }
                        let Some(&src) = holders.first() else { break };
                        let sync = Rpc::ReplicaSync { block: b.id, to: node };
                        if let Ok(RpcReply::Synced { .. }) =
                            self.net.call(CLIENT, src, sync)
                        {
                            let _ = self.fs.write().add_replica(b.id, node);
                        }
                    }
                    for (pi, &node) in placements.iter().enumerate() {
                        if !masks[pi].iter().any(|&m| m) {
                            continue; // no partition routed here
                        }
                        tasks.push(MapTask {
                            source,
                            bid: b.id,
                            key: b.key,
                            node,
                            parts: Some(Arc::new(std::mem::take(&mut masks[pi]))),
                        });
                        stats.tasks_per_node[node.index()] += 1;
                        stats.map_tasks += 1;
                    }
                }
            }
        } else {
            let mut sched = self.sched.lock();
            for (source, meta) in metas.iter().enumerate() {
                for b in &meta.blocks {
                    let node = match &mut *sched {
                        LiveSched::Laf(laf) => {
                            laf.assign_balanced(b.key, 0.0, |n| inflight[n.index()] as f64)
                        }
                        LiveSched::Delay(d) => {
                            d.decide(b.key, 0.0, |n| inflight[n.index()] as f64).node()
                        }
                    };
                    inflight[node.index()] += 1;
                    tasks.push(MapTask { source, bid: b.id, key: b.key, node, parts: None });
                    stats.tasks_per_node[node.index()] += 1;
                    stats.map_tasks += 1;
                }
            }
            // Install the (possibly re-partitioned) ranges once per job,
            // not once per block — the map phase addresses shards by node
            // id; ranges only matter for future home_of lookups.
            if let LiveSched::Laf(laf) = &*sched {
                self.cache.set_ranges(laf.ranges().to_vec());
            }
        }
        // Control plane: hand each placement to its node through the
        // windowed one-way lane — the whole assignment stream is in
        // flight at once instead of paying one driver round-trip per
        // task. Per-destination FIFO keeps every node's queue in
        // placement order — the determinism the frozen-queue cursors
        // rely on. An unreachable assignee still gets its queue entry
        // at flush time (the queue is driver state; only the
        // notification travelled).
        // Job slot: wire task ids from concurrent jobs must not
        // collide, so every id this job puts on the wire is the global
        // `(jid << JOB_SHIFT) | tid`.
        assert!(tasks.len() <= TID_MASK as usize, "too many map tasks for one job");
        let jid = self.next_jid.fetch_add(1, Ordering::Relaxed) % MAX_JOB_SLOTS;
        let gtid = move |tid: usize| (jid << JOB_SHIFT) | tid as u32;
        let tenant = self.tenant_of(user);
        let mut assigns: Vec<(SendTicket, NodeId, usize)> = Vec::new();
        for (tid, t) in tasks.iter().enumerate() {
            let (bid, node) = (t.bid, t.node);
            match self.net.send(CLIENT, node, Rpc::TaskAssign { task: gtid(tid), block: bid }) {
                Ok(ticket) => assigns.push((ticket, node, tid)),
                Err(_) => self.router.assign(node, gtid(tid)),
            }
        }
        for (ticket, node, tid) in assigns {
            if self.net.flush(&[ticket]).is_err() {
                self.router.assign(node, gtid(tid));
            }
        }
        let queues = self.router.take_assignments(jid, node_count);
        let tasks = &tasks;
        let queues = &queues;

        // Per-run fault schedule and attempt ledger. Registered in
        // `self.active` under this job's jid so crash/join/leave
        // recovery walks every in-flight ledger; deregistered the
        // moment the run's threads exit.
        let rt_arc = Arc::new(RunRt::new(
            jid,
            tenant,
            tasks.len(),
            node_count,
            std::mem::take(&mut *self.faults.lock()),
            self.observer.read().clone(),
        ));
        self.active.lock().insert(jid, Arc::clone(&rt_arc));
        let rt: &RunRt = &rt_arc;
        rt.notify(DstEvent::JobStart { tasks: tasks.len() });

        // A straggler is slow end to end, not just at map compute: for
        // the duration of this job its RPC *serving* (block reads,
        // shuffle ingest) is delayed too, at a fraction of the map
        // delay so request fan-in doesn't multiply it unboundedly.
        // Entries are scoped to this run (removed at teardown); when
        // concurrent jobs schedule `SlowNode` on the same node, last
        // writer wins for the overlap.
        let slow_nodes: Vec<u32> = {
            let ops = rt.ops.lock();
            let mut slow = self.slow_serving.write();
            let mut mine = Vec::new();
            for op in ops.iter() {
                if let FaultOp::SlowNode { node, micros } = op {
                    slow.insert(node.0, micros / SLOW_SERVE_DIV);
                    mine.push(node.0);
                }
            }
            mine
        };

        // ---- Pipelined map + shuffle + reduce -----------------------
        // Proactive shuffle over real channels (§II-D): every spill is
        // combined map-side, then pushed to its reduce partition while
        // the map phase is still running. Reducer threads group keys as
        // records stream in and fold them once the last mapper hangs up.
        let hits = AtomicU64::new(0);
        let misses = AtomicU64::new(0);
        let remote = AtomicU64::new(0);
        let spill_count = AtomicU64::new(0);
        let steal_count = AtomicU64::new(0);

        let mut senders: Vec<Sender<TaskBatch>> = Vec::with_capacity(reducers);
        let mut receivers = Vec::with_capacity(reducers);
        for _ in 0..reducers {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let outputs: Vec<Mutex<Vec<(String, String)>>> =
            (0..reducers).map(|_| Mutex::new(Vec::new())).collect();

        // Frozen work queues plus one atomic cursor per assigned node:
        // workers claim blocks with fetch_add, so every block's first
        // attempt starts exactly once no matter who executes it; crash
        // re-execution flows through the retry queue instead.
        let cursors: Vec<AtomicUsize> =
            (0..node_count).map(|_| AtomicUsize::new(0)).collect();
        let cursors = &cursors;
        // Worker threads start under the identities of the ring members
        // at job start (`workers`, computed at placement); a thread
        // whose node crashes mid-job re-homes to a survivor (see
        // `rehome`). Thread count follows the machine's parallelism
        // (times `map_slots` when latency hiding is wanted): stealing
        // lets fewer threads drain every node's queue, so threads
        // beyond that would only add context switching (virtual nodes
        // share the same cores).
        let par = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        // `map_slots` oversubscribes past the core count to hide wire
        // round-trips (see [`LiveConfig::map_slots`]); still never more
        // threads than virtual nodes, so identities stay unique.
        let threads = workers.len().min(par * self.cfg.map_slots.max(1));

        // The partition count (and thus the output shape) is always
        // `reducers`; the reducer THREAD count is capped at hardware
        // parallelism like the map side. Each thread drains several
        // partition channels in turn — safe because the channels are
        // unbounded, so mappers never block on a lane the thread has
        // not reached yet.
        let red_threads = reducers
            .min(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        let mut lanes: Vec<Vec<(usize, Receiver<TaskBatch>)>> =
            (0..red_threads).map(|_| Vec::new()).collect();
        for (r, rx) in receivers.into_iter().enumerate() {
            lanes[r % red_threads].push((r, rx));
        }

        // Shuffle plane: partition `p`'s reducer "lives on" a home node
        // (assigned at placement) and batches are addressed there as
        // `ShuffleBatch` RPCs; the receiving handler feeds the
        // partition channel. A partition re-homes when its home becomes
        // unreachable.
        self.router.begin_job(jid, senders.clone(), homes.clone());

        let workers = &workers;
        std::thread::scope(|scope| {
            // Speculation monitor: watches the progress board the map
            // attempts feed over heartbeats, and launches one backup
            // attempt for any task whose age exceeds `slowdown` times
            // the running median of committed attempt durations. The
            // backup is *requested* here (pushed to `rt.spec`); an idle
            // worker executes it, so placement load is real.
            if let Some(spec) = self.cfg.speculation {
                scope.spawn(move || loop {
                    if rt.is_aborted()
                        || rt.committed.load(Ordering::Acquire) == tasks.len()
                    {
                        break;
                    }
                    let median = {
                        let d = rt.durations.lock();
                        if d.len() < spec.min_completed as usize {
                            None
                        } else {
                            let mut v = d.clone();
                            v.sort_unstable();
                            Some(v[v.len() / 2])
                        }
                    };
                    if let Some(median) = median {
                        // A floor keeps µs-scale medians from flagging
                        // scheduling jitter as stragglers.
                        let threshold = Duration::from_nanos(
                            (median as f64 * spec.slowdown) as u64 + 200_000,
                        );
                        for (task, started, _progress) in self.router.progress_entries(jid) {
                            let tid = task as usize;
                            if tid >= tasks.len()
                                || rt.commits[tid].load(Ordering::Acquire) != UNCOMMITTED
                                || started.elapsed() < threshold
                                || rt.spec_launched[tid].swap(true, Ordering::AcqRel)
                            {
                                continue;
                            }
                            // Place the backup on the least-loaded live
                            // node other than the straggling claimant.
                            let avoid = NodeId(rt.claims[tid].load(Ordering::Acquire));
                            let down: Vec<NodeId> = workers
                                .iter()
                                .copied()
                                .filter(|&n| rt.node_down(n))
                                .collect();
                            let load = |n: NodeId| {
                                rt.running
                                    .get(n.index())
                                    .map(|r| r.load(Ordering::Acquire) as u64)
                                    .unwrap_or(u64::MAX)
                            };
                            let choice = match &mut *self.sched.lock() {
                                LiveSched::Laf(laf) => {
                                    laf.backup_for(tasks[tid].key, avoid, &down, load)
                                }
                                LiveSched::Delay(_) => workers
                                    .iter()
                                    .copied()
                                    .filter(|&n| n != avoid && !rt.node_down(n))
                                    .min_by_key(|&n| (load(n), n.0)),
                            };
                            if let Some(node) = choice {
                                rt.spec.lock().push((tid, node.index() as u32));
                            } else {
                                // Nowhere to run it; allow a later retry.
                                rt.spec_launched[tid].store(false, Ordering::Release);
                            }
                        }
                    }
                    std::thread::sleep(Duration::from_micros(spec.poll_micros));
                });
            }

            // Reducer side: consume spills concurrently with the maps,
            // deduplicating by (task, attempt) against the commit board.
            for lane in lanes {
                let outputs = &outputs;
                scope.spawn(move || {
                    for (r, rx) in lane {
                        // Hash-ingest while the stream is live; sort once
                        // at fold time so each partition's output stays
                        // key-sorted (terasort depends on that).
                        let mut grouped: HashMap<String, Vec<String>> = HashMap::new();
                        // Batches from attempts that have not committed
                        // yet; resolved once the channel closes (the
                        // commit board is final by then).
                        let mut pending: Vec<TaskBatch> = Vec::new();
                        let ingest =
                            |grouped: &mut HashMap<String, Vec<String>>, batch: TaskBatch| {
                                for (k, v) in batch.records {
                                    grouped.entry(k).or_default().push(v);
                                }
                            };
                        while let Ok(batch) = rx.recv() {
                            let tid = (batch.task & TID_MASK) as usize;
                            match rt.commits[tid].load(Ordering::Acquire) {
                                a if a == batch.attempt => ingest(&mut grouped, batch),
                                UNCOMMITTED => pending.push(batch),
                                // A losing attempt's output: re-executed
                                // elsewhere, drop to avoid double-count.
                                _ => {}
                            }
                        }
                        for batch in pending {
                            if rt.commits[(batch.task & TID_MASK) as usize]
                                .load(Ordering::Acquire)
                                == batch.attempt
                            {
                                ingest(&mut grouped, batch);
                            }
                        }
                        // Reduce-phase crash: all maps have committed by
                        // now, so recovery re-replicates and heals the
                        // ring but has nothing to re-queue.
                        if rt.armed {
                            while let Some(victim) = rt.due_in_reduce() {
                                self.crash_node_mid_job(victim, rt);
                            }
                        }
                        if rt.is_aborted() {
                            continue;
                        }
                        let mut entries: Vec<(String, Vec<String>)> =
                            grouped.into_iter().collect();
                        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                        let mut out = Vec::new();
                        for (k, vs) in &entries {
                            app.reduce(k, vs, &mut |ok, ov| out.push((ok, ov)));
                        }
                        *outputs[r].lock() = out;
                    }
                });
            }

            // Mapper side: up to one worker thread per live virtual
            // node, bounded by hardware parallelism. The whole worker
            // body lives in `worker_loop` so elastic joiners run it
            // too: latent lanes park until a mid-job join hands them a
            // fresh identity through `rt.joined`.
            let worker_loop = |wi: usize, start: NodeId| {
                        // Threads are execution resources, not nodes:
                        // each starts under one virtual node's identity
                        // but re-homes to a survivor when that node
                        // crashes (with fewer cores than nodes a single
                        // thread already serves many virtual nodes, so
                        // its exit would strand the whole job).
                        let me = Cell::new(start);
                        // One spill buffer and one combine scratch per
                        // worker; the buffer is flushed at the end of
                        // every task so each batch carries exactly one
                        // (task, attempt) tag.
                        let mut buffer: SpillBuffer<(String, String)> =
                            SpillBuffer::new(reducers, self.cfg.shuffle_batch_bytes);
                        let mut scratch: Vec<String> = Vec::new();
                        let spec_on = self.cfg.speculation.is_some();

                        // Per-attempt cancellation token: fires only
                        // once *another* attempt of the same task has
                        // committed — so cancellation can never
                        // suppress a committed attempt's sends.
                        let cancelled_now = |tid: usize, attempt: u32| {
                            let c = rt.commits[tid].load(Ordering::Acquire);
                            c != UNCOMMITTED && c != attempt
                        };
                        // Sleep in slices, checking the token, so a
                        // straggling attempt stops burning its node
                        // soon after losing the commit race. Returns
                        // true when cancelled.
                        let cancellable_sleep = |tid: usize, attempt: u32, micros: u64| {
                            let mut left = micros;
                            while left > 0 {
                                if cancelled_now(tid, attempt) {
                                    return true;
                                }
                                let step = left.min(SLOW_SLICE_MICROS);
                                std::thread::sleep(Duration::from_micros(step));
                                left -= step;
                            }
                            cancelled_now(tid, attempt)
                        };

                        // Execute one attempt: read the block (replica
                        // fallback included), map it, ship every spill.
                        // Windowed sends stay in flight at return — the
                        // caller settles them via [`PendingCommit`].
                        let exec = |tid: usize,
                                    attempt: u32,
                                    buffer: &mut SpillBuffer<(String, String)>,
                                    scratch: &mut Vec<String>|
                         -> Result<AttemptOutcome, JobError> {
                            let t = &tasks[tid];
                            let (source, bid, owner) = (t.source, t.bid, t.node);
                            let parts = t.parts.as_deref();
                            // Announce the attempt to the progress board
                            // BEFORE any injected straggle: the monitor's
                            // first-heard timestamp must cover the whole
                            // slow period, or stragglers look young.
                            if spec_on {
                                let _ = self.net.call(
                                    me.get(),
                                    CLIENT,
                                    Rpc::Heartbeat {
                                        from: me.get(),
                                        clock: 0,
                                        task: gtid(tid),
                                        progress: 0,
                                    },
                                );
                            }
                            if rt.armed {
                                let delay = rt.slow_micros(me.get());
                                if delay > 0 && cancellable_sleep(tid, attempt, delay) {
                                    return Ok((Attempt::Cancelled, Vec::new(), Vec::new()));
                                }
                                if rt.injected_failure(tid, attempt) {
                                    return Ok((Attempt::Faulted, Vec::new(), Vec::new()));
                                }
                            }
                            if owner != me.get() {
                                steal_count.fetch_add(1, Ordering::Relaxed);
                            }
                            // All cache and locality accounting uses the
                            // ASSIGNED node: stats and cache placement
                            // are identical with or without stealing.
                            // When that node is dead its cache shard died
                            // with it, so the read goes straight to the
                            // replica chain.
                            let key = CacheKey::Input(HashKey::of_block(
                                inputs[source],
                                bid.index,
                            ));
                            // Best-effort windowed cache inserts in
                            // flight; flushed at attempt end to release
                            // their window slots (outcome ignored — the
                            // cache is an optimization).
                            let cache_tickets: RefCell<Vec<SendTicket>> =
                                RefCell::new(Vec::new());
                            let payload = if rt.node_down(owner) {
                                misses.fetch_add(1, Ordering::Relaxed);
                                remote.fetch_add(1, Ordering::Relaxed);
                                self.fetch_block(bid, me.get())?
                            } else {
                                // Cross-node cache traffic (a stolen task
                                // probing its assigned node's shard) rides
                                // `CacheGet`/`CachePut`; same-node access
                                // stays direct.
                                let cached = self.cache_lookup(me.get(), owner, &key);
                                match cached {
                                    Some(p) => {
                                        hits.fetch_add(1, Ordering::Relaxed);
                                        p
                                    }
                                    None => {
                                        misses.fetch_add(1, Ordering::Relaxed);
                                        if !self.store.holds(owner, bid) {
                                            remote.fetch_add(1, Ordering::Relaxed);
                                        }
                                        let p = self.fetch_block(bid, owner)?;
                                        if reuse.cache_input && !rt.node_down(owner) {
                                            if let Some(t) = self.cache_insert(
                                                me.get(),
                                                owner,
                                                key,
                                                p.clone(),
                                                rt.tenant,
                                            ) {
                                                cache_tickets.borrow_mut().push(t);
                                            }
                                        }
                                        p
                                    }
                                }
                            };
                            // "A crash loses in-flight messages": once
                            // this worker's node is poisoned, nothing it
                            // ships may reach a reducer — the voided
                            // flag keeps the attempt from committing.
                            let voided = Cell::new(false);
                            // Set when the cancellation token fires at a
                            // spill boundary: another attempt committed,
                            // so the rest of this one is wasted work.
                            let cancelled = Cell::new(false);
                            // Coarse progress estimate for the monitor:
                            // bytes emitted so far over the input size.
                            let emitted = Cell::new(0u64);
                            let total = payload.len().max(1) as u64;
                            // A batch lost by the transport (partition,
                            // exhausted retries) also voids the attempt:
                            // it re-executes and its uncommitted output
                            // is dropped by reducer dedup — retried, not
                            // double-counted.
                            let shipfail = Cell::new(false);
                            // Sequence number within this attempt, for
                            // at-least-once dedup at the receiver.
                            let seq = Cell::new(0u32);
                            // Windowed cross-node batches in flight:
                            // every ticket is flushed before the commit
                            // decision so commit still happens-after
                            // delivery.
                            let shuffle_tickets: RefCell<Vec<(SendTicket, usize)>> =
                                RefCell::new(Vec::new());
                            let mut ship = |spill: Spill<(String, String)>| {
                                if spill.records.is_empty() {
                                    return;
                                }
                                // Spill boundary = cancellation point: a
                                // losing attempt stops shipping as soon
                                // as the winner has committed (its sends
                                // so far are dropped by reducer dedup).
                                if cancelled_now(tid, attempt) {
                                    cancelled.set(true);
                                    return;
                                }
                                if rt.node_down(me.get()) {
                                    voided.set(true);
                                    return;
                                }
                                // A straggler is also slow *sending*: a
                                // fraction of the map delay per batch,
                                // sliced so cancellation still lands.
                                if rt.armed {
                                    let d = rt.slow_micros(me.get());
                                    if d > 0
                                        && cancellable_sleep(tid, attempt, d / SLOW_SEND_DIV)
                                    {
                                        cancelled.set(true);
                                        return;
                                    }
                                }
                                if spec_on {
                                    let promille =
                                        ((emitted.get() * 1000) / total).min(1000) as u32;
                                    let _ = self.net.call(
                                        me.get(),
                                        CLIENT,
                                        Rpc::Heartbeat {
                                            from: me.get(),
                                            clock: 0,
                                            task: gtid(tid),
                                            progress: promille,
                                        },
                                    );
                                }
                                let records = if app.has_combiner() {
                                    combine_sorted_runs(app, spill.records, scratch)
                                } else {
                                    // No combiner: ship records untouched.
                                    spill.records
                                };
                                let s = seq.get();
                                seq.set(s + 1);
                                let home = self.router.home_of(jid, spill.partition);
                                if home != me.get() && !rt.node_down(home) {
                                    // Windowed one-way send: the worker
                                    // keeps mapping while the batch and
                                    // its ack are in flight. Blocks only
                                    // when `home`'s ack window is full.
                                    match self.net.send(
                                        me.get(),
                                        home,
                                        Rpc::ShuffleBatch {
                                            task: gtid(tid),
                                            attempt,
                                            seq: s,
                                            epoch: 0,
                                            partition: spill.partition as u32,
                                            records,
                                        },
                                    ) {
                                        Ok(ticket) => {
                                            shuffle_tickets
                                                .borrow_mut()
                                                .push((ticket, spill.partition));
                                        }
                                        Err(_) => {
                                            // The batch is gone with the
                                            // frame. Re-home the partition
                                            // so the re-execution ships
                                            // locally instead of burning
                                            // its whole attempt budget on
                                            // the same cut link.
                                            self.router
                                                .set_home(jid, spill.partition, me.get());
                                            shipfail.set(true);
                                            return;
                                        }
                                    }
                                } else {
                                    // Local delivery: home is this node
                                    // (or dead, in which case the
                                    // partition re-homes here first).
                                    if home != me.get() {
                                        self.router.set_home(jid, spill.partition, me.get());
                                    }
                                    let n = records.len() as u64;
                                    if !self.router.deliver(
                                        gtid(tid),
                                        attempt,
                                        s,
                                        0,
                                        spill.partition as u32,
                                        records,
                                    ) {
                                        // Job teardown: losing the spill
                                        // is fine then.
                                        return;
                                    }
                                    rt.local_shuffle_records.fetch_add(n, Ordering::Relaxed);
                                }
                                spill_count.fetch_add(1, Ordering::Relaxed);
                                let sent =
                                    rt.spills_sent.fetch_add(1, Ordering::AcqRel) + 1;
                                // Observer first: a transport fault
                                // scheduled at this spill count is
                                // installed before a crash at the same
                                // count starts recovering through it.
                                rt.notify(DstEvent::SpillSent { sent });
                                if rt.armed {
                                    // Drain *every* due crash, not just
                                    // the first: two ops scheduled at
                                    // the same batch count must both
                                    // fire here — the counter passes
                                    // each value exactly once (found by
                                    // DST seed 545).
                                    while let Some(victim) = rt.due_after_spills(sent) {
                                        self.crash_node_mid_job(victim, rt);
                                    }
                                }
                            };
                            // Map + proactive spill. The buffer is empty
                            // at entry and drained before return, so a
                            // batch never mixes tasks or attempts.
                            app.map_tagged(source, &payload, &mut |k, v| {
                                let bytes = (k.len() + v.len()) as u64;
                                emitted.set(emitted.get() + bytes);
                                let p = app
                                    .partition(&k, reducers)
                                    .unwrap_or_else(|| buffer.partition_of(shuffle_hash(&k)));
                                // Replicated map-out: this placement only
                                // produces its mask's partitions; sibling
                                // placements cover the rest.
                                if let Some(mask) = parts {
                                    if !mask[p] {
                                        return;
                                    }
                                }
                                if let Some(spill) = buffer.push_to(p, bytes, Some((k, v))) {
                                    ship(spill);
                                }
                            });
                            for spill in buffer.flush() {
                                ship(spill);
                            }
                            let _ = ship;
                            // Batch boundary: put every coalesced frame
                            // (shuffle + cache) on the wire now, so the
                            // acks travel while the *next* attempt maps
                            // and the deferred settle finds them done.
                            self.net.nudge();
                            let kind = if cancelled.get() {
                                Attempt::Cancelled
                            } else if voided.get() {
                                Attempt::Voided
                            } else if shipfail.get() {
                                // Lost shuffle output: bounded re-execution,
                                // same as an injected task fault.
                                Attempt::Faulted
                            } else {
                                Attempt::Shipped
                            };
                            Ok((kind, shuffle_tickets.into_inner(), cache_tickets.into_inner()))
                        };

                        // Settle a deferred attempt: redeem every window
                        // slot, then decide its commit. An attempt may
                        // only commit once every cross-node batch is
                        // acknowledged, so the send→commit happens-before
                        // edge is the same as with blocking round-trips —
                        // the flush has merely been riding alongside the
                        // *next* attempt's map work. Tickets are flushed
                        // even on the failure paths: each holds a window
                        // slot until redeemed.
                        let settle = |p: PendingCommit| {
                            let mut lost = false;
                            for (ticket, partition) in &p.shuffle {
                                if self.net.flush(std::slice::from_ref(ticket)).is_err() {
                                    // Same recovery as a synchronous
                                    // ship failure: re-home, re-execute,
                                    // dedup drops the losing attempt.
                                    self.router.set_home(jid, *partition, me.get());
                                    lost = true;
                                }
                            }
                            let _ = self.net.flush(&p.cache);
                            // A crash since shipping voids the attempt
                            // (mirrors the mid-ship voided flag); the
                            // re-execution's batches win via dedup. A
                            // lost *backup* is simply dropped — the
                            // primary is still running, and a backup
                            // must never burn the task's retry budget.
                            if lost || rt.node_down(me.get()) {
                                if !p.speculative {
                                    rt.failures[p.tid].fetch_add(1, Ordering::AcqRel);
                                    rt.retry.lock().push(p.tid);
                                }
                                return;
                            }
                            // Commit: all sends of this attempt
                            // happened-before this CAS, so any reducer
                            // that sees the committed attempt will
                            // receive its batches.
                            if rt.commits[p.tid]
                                .compare_exchange(
                                    UNCOMMITTED,
                                    p.attempt,
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                )
                                .is_ok()
                            {
                                rt.committed.fetch_add(1, Ordering::AcqRel);
                                // The race is decided: prune the dedup
                                // trackers of every losing attempt and
                                // ack-drop their late batches from now
                                // on (bounded dedup memory).
                                self.router.settle_task(gtid(p.tid), p.attempt);
                                if spec_on {
                                    rt.durations
                                        .lock()
                                        .push(p.started.elapsed().as_nanos() as u64);
                                }
                                if p.speculative {
                                    rt.speculative_wins.fetch_add(1, Ordering::Relaxed);
                                }
                                let done = rt.maps_done.fetch_add(1, Ordering::AcqRel) + 1;
                                // Observer before crash triggers (see
                                // the spill-side note).
                                rt.notify(DstEvent::MapCommitted { done });
                                if rt.armed {
                                    // Drain every due crash (see the
                                    // spill-side note): a second op at
                                    // the same commit count would
                                    // otherwise never fire when this is
                                    // the last map commit.
                                    while let Some(victim) = rt.due_after_maps(done) {
                                        self.crash_node_mid_job(victim, rt);
                                    }
                                    // Elastic events fire on the same
                                    // logical clock, crashes first so a
                                    // join/leave due at the same commit
                                    // count sees the repaired ring.
                                    while rt.due_join(done) {
                                        let seq = rt.joins.load(Ordering::Relaxed);
                                        self.admit_and_handoff(
                                            &format!("join-{seq}"),
                                            Some(rt),
                                        );
                                    }
                                    while let Some(n) = rt.due_leave(done) {
                                        // A leaver that already crashed
                                        // (or left) is a no-op; only a
                                        // handoff that lost the sole
                                        // replica is terminal.
                                        if let Err(FsError::DataLoss(b)) =
                                            self.graceful_leave(n, Some(rt))
                                        {
                                            rt.abort(JobError::DataLoss(b));
                                        }
                                    }
                                }
                            }
                        };

                        // Claim and execute one attempt of `tid`. A
                        // shipped attempt is parked in `pending` — its
                        // acks ride alongside the next attempt's map
                        // work — and the previously parked attempt is
                        // settled here, after a whole attempt's worth
                        // of overlap.
                        let run_attempt = |tid: usize,
                                           speculative: bool,
                                           buffer: &mut SpillBuffer<(String, String)>,
                                           scratch: &mut Vec<String>,
                                           pending: &mut Option<PendingCommit>| {
                            if rt.commits[tid].load(Ordering::Acquire) != UNCOMMITTED {
                                return; // an earlier attempt already won
                            }
                            if rt.node_down(me.get()) {
                                // Our node crashed between claiming and
                                // executing; hand the task back (the
                                // loop re-homes before the next pop). A
                                // backup is just dropped — its primary
                                // is still in flight.
                                if !speculative {
                                    rt.retry.lock().push(tid);
                                }
                                return;
                            }
                            // Retry budget: only *failed* non-speculative
                            // attempts count. Attempt numbers alone can't
                            // gate any more — a backup inflates them
                            // without a single failure.
                            if !speculative
                                && rt.failures[tid].load(Ordering::Acquire) >= MAX_ATTEMPTS
                            {
                                rt.abort(JobError::TaskFailed {
                                    task: tid,
                                    attempts: rt.next_attempt[tid].load(Ordering::Acquire),
                                });
                                return;
                            }
                            let attempt =
                                rt.next_attempt[tid].fetch_add(1, Ordering::AcqRel);
                            if attempt > 0 && !speculative {
                                rt.retries.fetch_add(1, Ordering::Relaxed);
                                // Exponential backoff before re-execution.
                                std::thread::sleep(Duration::from_micros(
                                    RETRY_BACKOFF_BASE_MICROS << attempt.min(6),
                                ));
                            }
                            rt.attempts.fetch_add(1, Ordering::Relaxed);
                            if speculative {
                                rt.speculative_attempts.fetch_add(1, Ordering::Relaxed);
                            } else {
                                // The claim drives crash re-queueing and
                                // straggler avoidance; a backup must not
                                // overwrite the primary's claim.
                                rt.claims[tid]
                                    .store(me.get().index() as u32, Ordering::Release);
                            }
                            let started = Instant::now();
                            if let Some(r) = rt.running.get(me.get().index()) {
                                r.fetch_add(1, Ordering::AcqRel);
                            }
                            let outcome = std::panic::catch_unwind(
                                std::panic::AssertUnwindSafe(|| {
                                    exec(tid, attempt, buffer, scratch)
                                }),
                            );
                            if let Some(r) = rt.running.get(me.get().index()) {
                                r.fetch_sub(1, Ordering::AcqRel);
                            }
                            match outcome {
                                Ok(Ok((Attempt::Shipped, shuffle, cache))) => {
                                    // Park this attempt; settle the one
                                    // whose acks just had a whole map
                                    // attempt to arrive.
                                    let prev = pending.replace(PendingCommit {
                                        tid,
                                        attempt,
                                        shuffle,
                                        cache,
                                        speculative,
                                        started,
                                    });
                                    if let Some(prev) = prev {
                                        settle(prev);
                                    }
                                }
                                Ok(Ok((Attempt::Cancelled, shuffle, cache))) => {
                                    // Another attempt committed while
                                    // this one mapped: redeem the window
                                    // slots, drop the partial output
                                    // (reducer dedup ignores it), move
                                    // on. No retry, no failure charged.
                                    for (ticket, _) in &shuffle {
                                        let _ = self.net.flush(std::slice::from_ref(ticket));
                                    }
                                    let _ = self.net.flush(&cache);
                                    buffer.reset();
                                    rt.cancelled_attempts.fetch_add(1, Ordering::Relaxed);
                                }
                                Ok(Ok((_voided_or_faulted, shuffle, cache))) => {
                                    // Our own crash voided the attempt,
                                    // or an injected fault / lost batch
                                    // consumed it; survivors re-execute.
                                    // Redeem the window slots first —
                                    // outcomes are irrelevant (reducer
                                    // dedup drops the losing attempt).
                                    for (ticket, _) in &shuffle {
                                        let _ = self.net.flush(std::slice::from_ref(ticket));
                                    }
                                    let _ = self.net.flush(&cache);
                                    buffer.reset();
                                    if !speculative {
                                        rt.failures[tid].fetch_add(1, Ordering::AcqRel);
                                        rt.retry.lock().push(tid);
                                    }
                                }
                                Err(_) => {
                                    // A panic inside map/combine:
                                    // bounded retry. Any in-flight
                                    // tickets died with the unwind;
                                    // their window slots expire.
                                    buffer.reset();
                                    if !speculative {
                                        rt.failures[tid].fetch_add(1, Ordering::AcqRel);
                                        rt.retry.lock().push(tid);
                                    }
                                }
                                Ok(Err(e)) => {
                                    buffer.reset();
                                    // A backup failing to read its block
                                    // is not terminal — the primary (or
                                    // a real retry) still owns the task.
                                    if !speculative {
                                        rt.abort(e);
                                    }
                                }
                            }
                        };

                        // If this thread's node crashed, adopt the
                        // identity of the next surviving node in ring
                        // order. False only when every node is dead.
                        let rehome = || -> bool {
                            if !rt.node_down(me.get()) {
                                return true;
                            }
                            for step in 0..workers.len() {
                                let n = workers[(wi + step) % workers.len()];
                                if !rt.node_down(n) {
                                    me.set(n);
                                    return true;
                                }
                            }
                            false
                        };

                        // The worker's one parked (shipped, unsettled)
                        // attempt; see `run_attempt`.
                        let mut pending: Option<PendingCommit> = None;
                        // Replicated map-out pins sub-tasks to their
                        // placement: stealing one onto another node
                        // would turn its carefully co-located shuffle
                        // remote again. Phase 1 then drains the own
                        // queue only; leftovers (a placement without a
                        // worker thread, or a straggler's backlog) are
                        // picked up by phase 2's grace-gated steal.
                        let pinned = repl > 1;
                        let steal_span = if pinned { 1 } else { workers.len() };
                        // Phase 1 — frozen queues: own queue first
                        // (locality), then steal from the other live
                        // nodes' tails, ring order.
                        'phase1: for step in 0..steal_span {
                            let owner = workers[(wi + step) % workers.len()];
                            loop {
                                if rt.is_aborted() || !rehome() {
                                    break 'phase1;
                                }
                                let i = cursors[owner.index()]
                                    .fetch_add(1, Ordering::Relaxed);
                                let Some(&tid) = queues[owner.index()].get(i) else {
                                    break;
                                };
                                run_attempt(tid, false, &mut buffer, &mut scratch, &mut pending);
                            }
                        }
                        // Phase 2 — drain crash/fault re-executions
                        // until every task has committed.
                        let mut idle_rounds = 0u32;
                        loop {
                            if rt.is_aborted()
                                || rt.committed.load(Ordering::Acquire) == tasks.len()
                                || !rehome()
                            {
                                break;
                            }
                            let next = rt.retry.lock().pop();
                            match next {
                                Some(tid) => {
                                    idle_rounds = 0;
                                    run_attempt(
                                        tid,
                                        false,
                                        &mut buffer,
                                        &mut scratch,
                                        &mut pending,
                                    );
                                }
                                // Out of work: run a requested backup if
                                // the monitor queued one, else settle our
                                // parked attempt before idling — the
                                // all-committed exit above (ours and
                                // every other worker's) waits on it.
                                None => {
                                    if let Some(tid) = rt.pop_spec(me.get().index()) {
                                        idle_rounds = 0;
                                        run_attempt(
                                            tid,
                                            true,
                                            &mut buffer,
                                            &mut scratch,
                                            &mut pending,
                                        );
                                    } else if let Some(p) = pending.take() {
                                        settle(p);
                                    } else {
                                        idle_rounds += 1;
                                        // Pinned mode's work-conserving
                                        // fallback: after a grace period
                                        // of idleness, steal leftover
                                        // pinned sub-tasks (a placement
                                        // with no worker thread, or a
                                        // straggler's backlog) — losing
                                        // their shuffle locality beats
                                        // stalling the job.
                                        let mut stolen = None;
                                        if pinned && idle_rounds > 20 {
                                            for step in 0..workers.len() {
                                                let oix =
                                                    (wi + step) % workers.len();
                                                // A queue whose owner has a
                                                // live thread will drain on
                                                // its own — stealing from it
                                                // trades shuffle locality for
                                                // nothing unless the owner
                                                // has straggled well past the
                                                // grace. Orphaned queues
                                                // (owner index beyond the
                                                // thread count) have no one
                                                // else coming.
                                                let orphan = oix >= threads;
                                                if !orphan && idle_rounds <= 200
                                                {
                                                    continue;
                                                }
                                                let owner = workers[oix];
                                                let i = cursors[owner.index()]
                                                    .fetch_add(1, Ordering::Relaxed);
                                                if let Some(&tid) =
                                                    queues[owner.index()].get(i)
                                                {
                                                    stolen = Some(tid);
                                                    break;
                                                }
                                            }
                                        }
                                        match stolen {
                                            Some(tid) => {
                                                idle_rounds = 0;
                                                run_attempt(
                                                    tid,
                                                    false,
                                                    &mut buffer,
                                                    &mut scratch,
                                                    &mut pending,
                                                );
                                            }
                                            None => std::thread::sleep(
                                                Duration::from_micros(100),
                                            ),
                                        }
                                    }
                                }
                            }
                        }
                        // Abort/rehome exits can leave a parked attempt;
                        // settle it so its window slots are redeemed.
                        if let Some(p) = pending.take() {
                            settle(p);
                        }
            };
            let worker_loop = &worker_loop;
            std::thread::scope(|map_scope| {
                for (wi, &me) in workers.iter().enumerate().take(threads) {
                    map_scope.spawn(move || worker_loop(wi, me));
                }
                // Latent lanes for elastic joiners: one parked thread
                // per planned mid-job join. Each waits for a join to
                // publish its node id, then runs the full worker loop
                // under that identity so in-flight tasks (retries,
                // backups, stolen queue tails) can land on the joiner;
                // if the job finishes or aborts first, the lane exits.
                for _ in 0..rt.planned_joins {
                    map_scope.spawn(move || loop {
                        if rt.is_aborted()
                            || rt.committed.load(Ordering::Acquire) == tasks.len()
                        {
                            return;
                        }
                        // Bind before matching: a guard temporary in the
                        // match scrutinee would stay locked across the
                        // whole worker loop, deadlocking a second join's
                        // `joined.push` on this same mutex.
                        let id = rt.joined.lock().pop();
                        match id {
                            Some(id) => {
                                return worker_loop(id.index() % workers.len(), id);
                            }
                            None => std::thread::sleep(Duration::from_micros(200)),
                        }
                    });
                }
            });
            // Every worker has exited. If tasks are still uncommitted
            // and nothing aborted yet, all workers died mid-job — fail
            // loudly instead of folding partial output.
            if !rt.is_aborted() && rt.committed.load(Ordering::Acquire) != tasks.len() {
                let tid = (0..tasks.len())
                    .find(|&t| rt.commits[t].load(Ordering::Acquire) == UNCOMMITTED)
                    .unwrap_or(0);
                rt.abort(JobError::DataLoss(tasks[tid].bid));
            }
            // All mappers done: tear down the shuffle plane (dropping
            // the router's channel clones) and hang up so the reducers
            // fold and exit. Straggler RPC deliveries after this point
            // are refused rather than leaking into a later job.
            self.router.end_job(jid);
            drop(senders);
        });
        // The run is over: deregister its ledger so external join/leave
        // calls and crash recovery stop walking it.
        self.active.lock().remove(&jid);
        // The straggler's serving delay ends with the job it was
        // injected into (both success and error exits pass here).
        // Remove only this run's entries — concurrent jobs may have
        // their own stragglers in flight.
        if !slow_nodes.is_empty() {
            let mut slow = self.slow_serving.write();
            for n in &slow_nodes {
                slow.remove(n);
            }
        }
        rt.notify(DstEvent::JobEnd);

        if rt.is_aborted() {
            let e = rt
                .error
                .lock()
                .take()
                .unwrap_or(JobError::TaskFailed { task: 0, attempts: 0 });
            return Err(e);
        }

        stats.cache_hits = hits.into_inner();
        stats.cache_misses = misses.into_inner();
        stats.remote_reads = remote.into_inner();
        stats.spills = spill_count.into_inner();
        stats.steals = steal_count.into_inner();
        stats.reduce_tasks = reducers as u64;
        stats.attempts = rt.attempts.load(Ordering::Relaxed);
        stats.retries = rt.retries.load(Ordering::Relaxed);
        stats.failed_nodes = rt.failed_nodes.load(Ordering::Relaxed);
        stats.recovered_blocks = rt.recovered_blocks.load(Ordering::Relaxed);
        stats.stabilize_rounds = rt.stabilize_rounds.load(Ordering::Relaxed);
        stats.recovery_nanos = rt.recovery_nanos.load(Ordering::Relaxed);
        stats.speculative_attempts = rt.speculative_attempts.load(Ordering::Relaxed);
        stats.speculative_wins = rt.speculative_wins.load(Ordering::Relaxed);
        stats.cancelled_attempts = rt.cancelled_attempts.load(Ordering::Relaxed);
        stats.local_shuffle_records = rt.local_shuffle_records.load(Ordering::Relaxed);
        stats.joins = rt.joins.load(Ordering::Relaxed);
        stats.leaves = rt.leaves.load(Ordering::Relaxed);
        stats.handoff_blocks = rt.handoff_blocks.load(Ordering::Relaxed);
        stats.handoff_bytes = rt.handoff_bytes.load(Ordering::Relaxed);
        stats.drained_tasks = rt.drained_tasks.load(Ordering::Relaxed);
        // Mid-job joiners appear as (zero-assignment) columns so the
        // per-node task counts always cover the final membership.
        let final_nodes = self.cache.num_nodes();
        if stats.tasks_per_node.len() < final_nodes {
            stats.tasks_per_node.resize(final_nodes, 0);
        }
        let net = self.net.stats().since(net_before);
        stats.bytes_sent = net.bytes_sent;
        stats.rpcs = net.rpcs;
        stats.rpc_retries = net.rpc_retries;
        stats.timeouts = net.timeouts;

        let parts: Vec<Vec<(String, String)>> =
            outputs.into_iter().map(|m| m.into_inner()).collect();
        Ok((parts, stats))
    }

    /// Crash `victim` while jobs are running: the full detection →
    /// ring-repair → re-replication → re-queue flow, serialized so
    /// concurrent triggers handle one crash at a time. `rt` is the run
    /// whose fault schedule (or membership call) triggered the crash —
    /// recovery counters and the DST event land on it — but the crash
    /// itself hits *every* live run: each is poisoned and has its
    /// victim-claimed tasks re-queued.
    fn crash_node_mid_job(&self, victim: NodeId, rt: &RunRt) {
        let _gate = self.recovery_gate.lock();
        let vi = victim.index();
        // Already crashed (or joined after the job started): no-op.
        if vi >= rt.poisoned.len() || rt.poisoned[vi].swap(true, Ordering::AcqRel) {
            return;
        }
        // Poison the victim on every other live run too: their workers
        // must stop shipping under its identity from this instant.
        let runs = self.live_runs();
        for other in runs.iter().filter(|r| !std::ptr::eq(r.as_ref(), rt)) {
            if let Some(p) = other.poisoned.get(vi) {
                p.store(true, Ordering::Release);
            }
        }
        if !self.ring.read().contains(victim) {
            return;
        }
        // The victim's ring key, captured before repair removes it:
        // after recovery the key's owner is the successor that inherited
        // the range, which is where re-homed shuffle partitions go.
        let vkey = self.ring.read().key_of(victim).ok();
        let t0 = Instant::now();
        // The crash instant: payloads, cache shard and network endpoint
        // die; from here on every send from the victim is suppressed
        // (see `ship`), and every in-flight RPC *to* the victim is
        // woken with a connection error instead of hanging until
        // heartbeat expiry.
        self.store.wipe_node(victim);
        self.cache.invalidate_node(victim);
        self.net.close_endpoint(victim);
        // Detection: advance the logical clock past the heartbeat
        // timeout and ping every member over the transport; live nodes
        // ack and beat, the victim's closed endpoint cannot.
        {
            let mut mon = self.monitor.lock();
            let step = HEARTBEAT_TIMEOUT_SECS + 1;
            let clock = self.clock.fetch_add(step, Ordering::AcqRel) + step;
            let now = clock as f64;
            for n in self.ring.read().node_ids() {
                let beat = !rt
                    .poisoned
                    .get(n.index())
                    .is_some_and(|p| p.load(Ordering::Acquire))
                    && matches!(
                        self.net.call(
                            CLIENT,
                            n,
                            Rpc::Heartbeat { from: CLIENT, clock, task: u32::MAX, progress: 0 },
                        ),
                        Ok(RpcReply::Ack)
                    );
                if beat {
                    mon.heartbeat(n, now);
                }
            }
            let dead = mon.expired(now);
            debug_assert!(dead.contains(&victim), "victim must be detected");
        }
        // Ring repair, mirrored through protocol-level Chord
        // stabilization: successors/predecessors re-converge around the
        // hole exactly as the paper's stabilization procedure would.
        // Every pointer a node follows is first probed over the
        // transport, so the dead endpoint (and any partitioned peer) is
        // routed around rather than adopted.
        {
            let mut chord = ChordNet::converged_from(self.ring.read().members().cloned());
            chord.fail(victim);
            let max = 4 * chord.len() + 8;
            if let Some(rounds) = chord
                .stabilize_until_converged_probed(max, &mut |a, b| self.net.probe(a, b))
            {
                rt.stabilize_rounds.fetch_add(rounds as u64, Ordering::Relaxed);
            }
        }
        // Re-replication from survivors + scheduler/ring rebuild.
        match self.recover_node(victim) {
            Ok(report) => {
                rt.failed_nodes.fetch_add(1, Ordering::Relaxed);
                rt.recovered_blocks.fetch_add(report.recovered_blocks, Ordering::Relaxed);
                // Re-home the victim's shuffle partitions at the ring
                // successor that inherited its range — epoch-aware
                // placement: fetches after this event go to the current
                // nearest holder, not the job-start snapshot.
                if let Some(key) = vkey {
                    if let Ok(heir) = self.ring.read().owner_of(key).map(|s| s.id) {
                        self.router.rehome_from(victim, heir);
                    }
                }
                let _ = self.view.lock().apply(MembershipEvent::Fail(victim));
            }
            Err(e) => {
                rt.recovery_nanos
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                rt.abort(e.into());
                return;
            }
        }
        // Re-queue the victim's claimed-but-uncommitted tasks on every
        // live run; each run's own voided attempts also self-requeue
        // (duplicates are safe: the ledger commits each task once,
        // reducers dedup by attempt).
        let requeue = |run: &RunRt| {
            for tid in 0..run.commits.len() {
                if run.commits[tid].load(Ordering::Acquire) == UNCOMMITTED
                    && run.claims[tid].load(Ordering::Acquire) == vi as u32
                {
                    run.retry.lock().push(tid);
                }
            }
        };
        for run in &runs {
            requeue(run);
        }
        if !runs.iter().any(|r| std::ptr::eq(r.as_ref(), rt)) {
            requeue(rt);
        }
        rt.recovery_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        rt.notify(DstEvent::NodeCrashed { node: victim });
    }

    /// Metadata + payload recovery shared by the mid-job path and the
    /// public [`fail_node`](Self::fail_node): re-replicate the victim's
    /// blocks from survivors and rebuild ring-derived state.
    fn recover_node(&self, node: NodeId) -> Result<RecoveryReport, FsError> {
        let plan = {
            let mut fs = self.fs.write();
            fs.fail_node(node)?
        };
        let mut report = RecoveryReport::default();
        for copy in plan {
            // Drive re-replication over the transport: the surviving
            // holder relays its replica to the new home (`ReplicaSync`
            // → nested `PutBlock`). The transport's bounded retry
            // absorbs dropped frames; `Missing` — or an unreachable
            // source — means the double failure destroyed every copy.
            let sync = Rpc::ReplicaSync { block: copy.block, to: copy.to };
            match self.net.call(CLIENT, copy.from, sync) {
                Ok(RpcReply::Synced { bytes }) => {
                    report.recovered_blocks += 1;
                    report.recovered_bytes += bytes;
                }
                _ => return Err(FsError::DataLoss(copy.block)),
            }
        }
        let new_ring = self.fs.read().ring().clone();
        *self.ring.write() = new_ring.clone();
        self.rebuild_placement(&new_ring);
        // Cache entries on the failed node die with it.
        self.cache.invalidate_node(node);
        Ok(report)
    }

    /// Re-derive every piece of placement state from a changed ring:
    /// scheduler membership (counters survive — the scheduler is the
    /// same, only the membership moved under it) and the distributed
    /// cache's hash-key ranges. Shared by crash recovery, elastic join
    /// and graceful leave.
    fn rebuild_placement(&self, ring: &Ring) {
        let mut sched = self.sched.lock();
        match &mut *sched {
            LiveSched::Laf(laf) => {
                laf.set_nodes(ring);
                self.cache.set_ranges(laf.ranges().to_vec());
            }
            LiveSched::Delay(d) => {
                d.set_nodes(ring);
                self.cache.set_ranges(d.ranges().to_vec());
            }
        }
    }

    /// Store an application-tagged object in oCache (e.g. iteration
    /// output). Placed on the tag's home server under the current cache
    /// ranges; travels as a `CachePut` RPC.
    pub fn ocache_put(&self, app: &str, tag: &str, data: Bytes, ttl: Option<f64>) {
        let otag = OutputTag::new(app, tag);
        let home = self.cache.home_of(otag.hash_key());
        let put = Rpc::CachePut { key: CacheKey::Output(otag), data, ttl, tenant: 0, pin: false };
        let _ = self.net.call(CLIENT, home, put);
    }

    /// [`ocache_put`](Self::ocache_put) for **pinned, tenant-tagged**
    /// state — the epoch driver's materialized results. Pinned entries
    /// are never LRU-evicted (but stay quota-accounted and explicitly
    /// replaceable); returns false when the home rejected the insert
    /// (quota exhausted by other pins) or was unreachable, so the
    /// caller can fall back to its driver-side copy.
    pub fn ocache_put_pinned(
        &self,
        app: &str,
        tag: &str,
        data: Bytes,
        ttl: Option<f64>,
        tenant: u16,
    ) -> bool {
        let otag = OutputTag::new(app, tag);
        let home = self.cache.home_of(otag.hash_key());
        let put = Rpc::CachePut { key: CacheKey::Output(otag), data, ttl, tenant, pin: true };
        matches!(self.net.call(CLIENT, home, put), Ok(RpcReply::Ack))
    }

    /// Release a pinned oCache entry back to normal LRU lifetime
    /// (stream close). Local operation against the tag's current home
    /// shard; a re-homed entry simply ages out wherever it is.
    pub fn ocache_unpin(&self, app: &str, tag: &str) {
        let otag = OutputTag::new(app, tag);
        let home = self.cache.home_of(otag.hash_key());
        self.cache.with_node(home, |c| c.unpin(&CacheKey::Output(otag)));
    }

    /// Fetch a tagged object from oCache (a `CacheGet` RPC to the tag's
    /// home server).
    pub fn ocache_get(&self, app: &str, tag: &str) -> Option<Bytes> {
        let otag = OutputTag::new(app, tag);
        let home = self.cache.home_of(otag.hash_key());
        match self.net.call(CLIENT, home, Rpc::CacheGet { key: CacheKey::Output(otag) }) {
            Ok(RpcReply::CacheValue(v)) => v,
            _ => None,
        }
    }

    /// Global cache hit ratio so far.
    pub fn cache_hit_ratio(&self) -> f64 {
        self.cache.hit_ratio()
    }

    /// Admit a new virtual node: a fresh ring position, cache shard and
    /// (empty) store shard. The joiner walks the Chord stabilize flow,
    /// pulls the block replicas its new range makes it responsible for
    /// from their current holders ([`Rpc::BlockPull`]), and inherits
    /// stranded cache entries ([`Rpc::RangeHandoff`]). Works while a
    /// job is running: in-flight scheduling immediately includes the
    /// joiner. Returns its id.
    pub fn join_node(&self, name: &str) -> NodeId {
        self.admit_and_handoff(name, None)
    }

    /// Retire a node gracefully: drain its queued-but-uncommitted
    /// tasks back to the scheduler, push its cache range and block
    /// replicas to ring successors, then deregister it. The dual of
    /// [`join_node`](Self::join_node); shares crash-recovery machinery
    /// (commit-board CAS, attempt ledger) so committed work on the
    /// leaver stands. Works while a job is running.
    pub fn leave_node(&self, node: NodeId) -> Result<RecoveryReport, FsError> {
        self.graceful_leave(node, None)
    }

    /// The join flow proper, serialized with crash recovery through the
    /// cluster's recovery gate. `trigger` is the run whose fault
    /// schedule requested the join; `None` (the public entry point)
    /// accounts the join to every live run instead, and every live
    /// run's latent joiner lanes get the new identity.
    fn admit_and_handoff(&self, name: &str, trigger: Option<&RunRt>) -> NodeId {
        let _gate = self.recovery_gate.lock();
        let runs = self.live_runs();
        let tally: Vec<&RunRt> = match trigger {
            Some(r) => vec![r],
            None => runs.iter().map(|r| r.as_ref()).collect(),
        };
        let t0 = Instant::now();
        let id = self.cache.add_node(self.cfg.cache_per_node);
        // The joiner opens its endpoint before anything is routed to it.
        bind_endpoint(
            &self.net,
            id,
            Arc::clone(&self.store),
            Arc::clone(&self.cache),
            Arc::clone(&self.router),
            Arc::clone(&self.slow_serving),
        );
        let old_members: Vec<ServerInfo> = self.ring.read().members().cloned().collect();
        let (info, plan, new_ring) = {
            let mut fs = self.fs.write();
            let mut info = ServerInfo::from_name(id, name);
            let mut salt = 0u32;
            while fs.ring().members().any(|s| s.key == info.key) {
                salt += 1;
                info = ServerInfo::from_name(id, format!("{name}+{salt}"));
            }
            fs.join(info.clone()).expect("fresh node id");
            let plan = fs.join_plan(id).expect("joiner is a member");
            (info, plan, fs.ring().clone())
        };
        *self.ring.write() = new_ring.clone();
        // Protocol-level admission: the joiner learns its successor and
        // the ring re-converges around it, every adopted pointer probed
        // over the transport first.
        {
            let mut chord = ChordNet::converged_from(old_members.iter().cloned());
            chord.join(info.clone(), old_members[0].id);
            let max = 4 * chord.len() + 8;
            if let Some(rounds) =
                chord.stabilize_until_converged_probed(max, &mut |a, b| self.net.probe(a, b))
            {
                for r in &tally {
                    r.stabilize_rounds.fetch_add(rounds as u64, Ordering::Relaxed);
                }
            }
        }
        self.monitor.lock().heartbeat(id, self.clock.load(Ordering::Acquire) as f64);
        self.rebuild_placement(&new_ring);
        // Pull the replicas the joiner's range made it responsible for
        // from their current holders. A pull that cannot complete (a
        // partitioned holder, an injected drop burst) is benign: the
        // block keeps its pre-join holders and stays readable.
        for copy in plan {
            let pull = Rpc::BlockPull { block: copy.block, from: copy.from };
            if let Ok(RpcReply::Synced { bytes }) = self.net.call(CLIENT, id, pull) {
                let _ = self.fs.write().add_replica(copy.block, id);
                for r in &tally {
                    r.handoff_blocks.fetch_add(1, Ordering::Relaxed);
                    r.handoff_bytes.fetch_add(bytes, Ordering::Relaxed);
                }
            }
        }
        self.handoff_stranded_cache();
        let _ = self.view.lock().apply(MembershipEvent::Join(info));
        for r in &tally {
            r.joins.fetch_add(1, Ordering::Relaxed);
            r.recovery_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            // Hand the new node to a latent worker thread so in-flight
            // tasks can land on it.
            r.joined.lock().push(id);
            r.notify(DstEvent::NodeJoined { node: id });
        }
        id
    }

    /// The graceful-leave flow proper (see
    /// [`leave_node`](Self::leave_node)). Unlike a crash the leaver
    /// cooperates: its endpoint stays open to serve handoff pulls, its
    /// committed map output stands, and only its *uncommitted* claims
    /// are drained back to the scheduler.
    fn graceful_leave(
        &self,
        leaver: NodeId,
        trigger: Option<&RunRt>,
    ) -> Result<RecoveryReport, FsError> {
        let _gate = self.recovery_gate.lock();
        {
            let ring = self.ring.read();
            if !ring.contains(leaver) {
                return Err(FsError::Ring(RingError::UnknownNode(leaver)));
            }
            if ring.len() <= 1 {
                return Err(FsError::Ring(RingError::EmptyRing));
            }
        }
        let t0 = Instant::now();
        let vi = leaver.index();
        let runs = self.live_runs();
        // The runs this leave is accounted to: the triggering run when
        // it came from a fault schedule, every live run when it came
        // through the public entry point.
        let tally: Vec<&RunRt> = match trigger {
            Some(r) => vec![r],
            None => runs.iter().map(|r| r.as_ref()).collect(),
        };
        for run in &runs {
            // Stop the leaver taking new work on every live run.
            // Already poisoned means a crash got there first — nothing
            // left to leave gracefully.
            if run.poisoned.get(vi).is_none_or(|p| p.swap(true, Ordering::AcqRel)) {
                return Err(FsError::Ring(RingError::UnknownNode(leaver)));
            }
            // Drain its queued-but-uncommitted claims back to the
            // scheduler; the re-executions count as retries in the
            // attempt ledger, deduped by (task, attempt) as usual.
            for tid in 0..run.commits.len() {
                if run.commits[tid].load(Ordering::Acquire) == UNCOMMITTED
                    && run.claims[tid].load(Ordering::Acquire) == vi as u32
                {
                    run.retry.lock().push(tid);
                    run.drained_tasks.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let vkey = self.ring.read().key_of(leaver).ok();
        let old_members: Vec<ServerInfo> = self.ring.read().members().cloned().collect();
        let plan = self.fs.write().leave_node(leaver)?;
        // Push the leaver's blocks to their new homes. The leaver is
        // still online and serves pulls; if its link is disturbed the
        // pull falls back through the block's other registered holders
        // (mirroring `fetch_block`). Only when *no* copy is reachable
        // anywhere has the handoff genuinely lost the block.
        let mut report = RecoveryReport::default();
        for copy in &plan {
            let mut sources = vec![copy.from];
            if let Ok(holders) = self.fs.read().block_holders(copy.block) {
                sources.extend(holders.iter().copied().filter(|&h| h != copy.to));
            }
            let mut bytes = None;
            for src in sources {
                let pull = Rpc::BlockPull { block: copy.block, from: src };
                if let Ok(RpcReply::Synced { bytes: b }) = self.net.call(CLIENT, copy.to, pull)
                {
                    bytes = Some(b);
                    break;
                }
            }
            match bytes {
                Some(b) => {
                    report.recovered_blocks += 1;
                    report.recovered_bytes += b;
                    for r in &tally {
                        r.handoff_blocks.fetch_add(1, Ordering::Relaxed);
                        r.handoff_bytes.fetch_add(b, Ordering::Relaxed);
                    }
                }
                None => return Err(FsError::DataLoss(copy.block)),
            }
        }
        let new_ring = self.fs.read().ring().clone();
        *self.ring.write() = new_ring.clone();
        self.rebuild_placement(&new_ring);
        // Cache range handoff: entries the shrunk range map left
        // stranded migrate to their new homes, then whatever remains on
        // the leaver dies with it.
        self.handoff_stranded_cache();
        self.cache.invalidate_node(leaver);
        self.monitor.lock().forget(leaver);
        // Protocol-level departure: the ring re-converges around the
        // hole, pointers probed over the transport.
        {
            let mut chord = ChordNet::converged_from(old_members.iter().cloned());
            chord.fail(leaver);
            let max = 4 * chord.len() + 8;
            if let Some(rounds) =
                chord.stabilize_until_converged_probed(max, &mut |a, b| self.net.probe(a, b))
            {
                for r in &tally {
                    r.stabilize_rounds.fetch_add(rounds as u64, Ordering::Relaxed);
                }
            }
        }
        // Re-home the leaver's shuffle partitions at its successor so
        // post-leave fetches go to the current nearest holder.
        if let Some(key) = vkey {
            if let Ok(heir) = new_ring.owner_of(key).map(|s| s.id) {
                self.router.rehome_from(leaver, heir);
            }
        }
        // Only now does the leaver actually go away.
        self.store.wipe_node(leaver);
        self.net.close_endpoint(leaver);
        let _ = self.view.lock().apply(MembershipEvent::Leave(leaver));
        for r in &tally {
            r.leaves.fetch_add(1, Ordering::Relaxed);
            r.recovery_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            r.notify(DstEvent::NodeLeft { node: leaver });
        }
        Ok(report)
    }

    /// Migrate cache entries stranded by a range-map change to their
    /// current homes as one-way [`Rpc::RangeHandoff`] sends over the
    /// windowed lane. Best-effort: the cache is an optimization, a
    /// dropped handoff only costs a future miss.
    fn handoff_stranded_cache(&self) {
        let mut tickets: Vec<SendTicket> = Vec::new();
        for i in 0..self.cache.num_nodes() {
            let node = NodeId(i as u32);
            for (key, data, home) in self.cache.drain_for_handoff(node) {
                if let Ok(t) = self.net.send(node, home, Rpc::RangeHandoff { key, data }) {
                    tickets.push(t);
                }
            }
        }
        let _ = self.net.flush(&tickets);
    }

    /// Crash a node between jobs: wipe its payloads, re-replicate from
    /// survivors, and rebuild ring-derived state. Jobs submitted
    /// afterwards run on the surviving nodes and still produce complete
    /// results. Returns what recovery accomplished, or the error when a
    /// second simultaneous failure already destroyed a source replica —
    /// callers decide whether that is fatal.
    pub fn fail_node(&self, node: NodeId) -> Result<RecoveryReport, FsError> {
        self.monitor.lock().forget(node);
        // Poison the endpoint first: a peer blocked on an RPC to the
        // dying node is woken with a connection error now — never left
        // hanging, never answered from a half-wiped store.
        self.net.close_endpoint(node);
        self.store.wipe_node(node);
        self.cache.invalidate_node(node);
        self.recover_node(node)
    }

    /// Crash a node *now*, whether or not jobs are in flight. With live
    /// jobs this runs the full mid-job flow (poison every run, repair
    /// the ring, re-queue the victim's claims on every run — recovery
    /// counters land on an arbitrary live run); between jobs it
    /// degrades to [`fail_node`](Self::fail_node). The entry point for
    /// crash-under-storm tests, where no single job owns the fault.
    pub fn crash_node(&self, victim: NodeId) -> Result<(), FsError> {
        let runs = self.live_runs();
        match runs.first() {
            Some(rt) => {
                self.crash_node_mid_job(victim, rt);
                Ok(())
            }
            None => self.fail_node(victim).map(|_| ()),
        }
    }

    // ---- Persistent worker-pool execution (see `server::JobServer`) --
    //
    // The scoped executor above spawns a full thread complement per
    // job. The pool path amortizes that: `JobServer` spawns workers
    // once, and each admitted job only places its tasks, leases the
    // shared workers, and folds its reduce partitions on its driver.
    // The attempt ledger, commit board, shuffle router and cache are
    // the same machinery — a pool job is a first-class entry in the
    // `active` registry, so crash/join/leave recovery covers it too.

    /// Place one job's map tasks and register its run ledger for pool
    /// execution. The caller (a `JobServer` driver) feeds the returned
    /// job's tasks to the pool workers, waits for
    /// [`PoolJob::done`], then calls
    /// [`finish_pool_job`](Self::finish_pool_job).
    ///
    /// Differences from the scoped executor, by design (§ simplicity
    /// over latency-hiding): no `TaskAssign` control-plane round, no
    /// speculation, no replicated map-out, no windowed send pipelining
    /// — and the cluster's pending fault schedule is left for the next
    /// scoped run.
    pub(crate) fn begin_pool_job(
        &self,
        app: Arc<dyn MapReduce>,
        inputs: &[&str],
        user: &str,
        reducers: usize,
        reuse: ReusePolicy,
    ) -> Result<Arc<PoolJob>, JobError> {
        self.begin_wave(app, inputs, user, reducers, reuse, None)
    }

    /// Lease one **epoch wave** of a standing job to the pool: map only
    /// the epoch's delta blocks, tagged so the shuffle plane can
    /// ack-drop any straggler from a previous wave. The standing `jid`
    /// is reused across epochs (a stream must not burn a job slot per
    /// epoch); per-epoch task ids restart at 0, disambiguated by the
    /// epoch tag plus the per-epoch dedup prune in
    /// [`ShuffleRouter::begin_epoch`].
    pub(crate) fn begin_epoch_wave(
        &self,
        app: Arc<dyn MapReduce>,
        input: &str,
        user: &str,
        reducers: usize,
        jid: u32,
        epoch: u32,
    ) -> Result<Arc<PoolJob>, JobError> {
        self.begin_wave(app, &[input], user, reducers, ReusePolicy::default(), Some((jid, epoch)))
    }

    /// Claim a standing job slot for an epoch stream. The slot is
    /// reserved through the same modulo window batch jobs draw from,
    /// so a stream and a batch job never collide on a jid.
    pub(crate) fn reserve_jid(&self) -> u32 {
        self.next_jid.fetch_add(1, Ordering::Relaxed) % MAX_JOB_SLOTS
    }

    fn begin_wave(
        &self,
        app: Arc<dyn MapReduce>,
        inputs: &[&str],
        user: &str,
        reducers: usize,
        reuse: ReusePolicy,
        standing: Option<(u32, u32)>,
    ) -> Result<Arc<PoolJob>, JobError> {
        assert!(reducers > 0);
        assert!(!inputs.is_empty());
        let metas: Vec<_> = {
            let fs = self.fs.read();
            let mut v = Vec::with_capacity(inputs.len());
            for input in inputs {
                v.push(fs.open(input, user).map_err(JobError::from)?.clone());
            }
            v
        };
        let node_count = self.cache.num_nodes();
        let mut stats =
            LiveStats { tasks_per_node: vec![0; node_count], ..Default::default() };
        let net_before = self.net.stats();
        let workers: Vec<NodeId> = self.ring.read().node_ids();
        let homes: Vec<NodeId> =
            (0..reducers).map(|p| workers[p % workers.len()]).collect();
        let mut inflight = vec![0u64; node_count];
        let mut tasks: Vec<MapTask> = Vec::new();
        {
            let mut sched = self.sched.lock();
            for (source, meta) in metas.iter().enumerate() {
                for b in &meta.blocks {
                    let node = match &mut *sched {
                        LiveSched::Laf(laf) => {
                            laf.assign_balanced(b.key, 0.0, |n| inflight[n.index()] as f64)
                        }
                        LiveSched::Delay(d) => {
                            d.decide(b.key, 0.0, |n| inflight[n.index()] as f64).node()
                        }
                    };
                    inflight[node.index()] += 1;
                    tasks.push(MapTask { source, bid: b.id, key: b.key, node, parts: None });
                    stats.tasks_per_node[node.index()] += 1;
                    stats.map_tasks += 1;
                }
            }
            if let LiveSched::Laf(laf) = &*sched {
                self.cache.set_ranges(laf.ranges().to_vec());
            }
        }
        assert!(tasks.len() <= TID_MASK as usize, "too many map tasks for one job");
        let (jid, epoch) = match standing {
            Some((jid, epoch)) => (jid, epoch),
            None => (self.next_jid.fetch_add(1, Ordering::Relaxed) % MAX_JOB_SLOTS, 0),
        };
        let tenant = self.tenant_of(user);
        let rt = Arc::new(RunRt::new(
            jid,
            tenant,
            tasks.len(),
            node_count,
            Vec::new(),
            self.observer.read().clone(),
        ));
        self.active.lock().insert(jid, Arc::clone(&rt));
        rt.notify(DstEvent::JobStart { tasks: tasks.len() });
        let mut senders = Vec::with_capacity(reducers);
        let mut receivers = Vec::with_capacity(reducers);
        for _ in 0..reducers {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        self.router.begin_epoch(jid, senders, homes, epoch);
        Ok(Arc::new(PoolJob {
            jid,
            epoch,
            rt,
            app,
            tasks,
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            reducers,
            reuse_cache: reuse.cache_input,
            receivers: Mutex::new(receivers),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            remote: AtomicU64::new(0),
            spills: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            stats0: stats,
            net_before,
        }))
    }

    /// Execute one pool task to completion under node identity `me`:
    /// bounded attempts, each reading the block (cache first), mapping,
    /// shipping every partition's combined records as one blocking
    /// `ShuffleBatch` round-trip, then taking the commit CAS. Returns
    /// after the task is committed (by this or any racing attempt) or
    /// the job aborted.
    pub(crate) fn pool_exec_task(&self, job: &PoolJob, tid: usize, me: NodeId) {
        let rt = &*job.rt;
        loop {
            if rt.is_aborted() || rt.commits[tid].load(Ordering::Acquire) != UNCOMMITTED {
                return;
            }
            if rt.failures[tid].load(Ordering::Acquire) >= MAX_ATTEMPTS {
                rt.abort(JobError::TaskFailed {
                    task: tid,
                    attempts: rt.next_attempt[tid].load(Ordering::Acquire),
                });
                return;
            }
            let attempt = rt.next_attempt[tid].fetch_add(1, Ordering::AcqRel);
            if attempt > 0 {
                rt.retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(
                    RETRY_BACKOFF_BASE_MICROS << attempt.min(6),
                ));
            }
            rt.attempts.fetch_add(1, Ordering::Relaxed);
            rt.claims[tid].store(me.index() as u32, Ordering::Release);
            match self.pool_attempt(job, tid, attempt, me) {
                Ok(true) => return,
                Ok(false) => {
                    // Lost shuffle output: burn one failure, retry.
                    rt.failures[tid].fetch_add(1, Ordering::AcqRel);
                }
                Err(e) => {
                    rt.abort(e);
                    return;
                }
            }
        }
    }

    /// One pool map attempt; `Ok(false)` asks the caller to retry.
    fn pool_attempt(
        &self,
        job: &PoolJob,
        tid: usize,
        attempt: u32,
        me: NodeId,
    ) -> Result<bool, JobError> {
        let rt = &*job.rt;
        let app = &*job.app;
        let t = &job.tasks[tid];
        let owner = t.node;
        if owner != me {
            job.steals.fetch_add(1, Ordering::Relaxed);
        }
        let key = CacheKey::Input(HashKey::of_block(&job.inputs[t.source], t.bid.index));
        let payload = if rt.node_down(owner) {
            job.misses.fetch_add(1, Ordering::Relaxed);
            job.remote.fetch_add(1, Ordering::Relaxed);
            self.fetch_block(t.bid, me)?
        } else {
            match self.cache_lookup(me, owner, &key) {
                Some(p) => {
                    job.hits.fetch_add(1, Ordering::Relaxed);
                    p
                }
                None => {
                    job.misses.fetch_add(1, Ordering::Relaxed);
                    if !self.store.holds(owner, t.bid) {
                        job.remote.fetch_add(1, Ordering::Relaxed);
                    }
                    let p = self.fetch_block(t.bid, owner)?;
                    if job.reuse_cache && !rt.node_down(owner) {
                        if let Some(ticket) =
                            self.cache_insert(me, owner, key, p.clone(), rt.tenant)
                        {
                            let _ = self.net.flush(&[ticket]);
                        }
                    }
                    p
                }
            }
        };
        // Map the whole block into per-partition buffers; the pool path
        // ships one batch per partition (no spill threshold — blocking
        // round-trips make small batches pure overhead).
        let parter: SpillBuffer<()> = SpillBuffer::new(job.reducers, u64::MAX);
        let mut parts: Vec<Vec<(String, String)>> = vec![Vec::new(); job.reducers];
        app.map_tagged(t.source, &payload, &mut |k, v| {
            let p = app
                .partition(&k, job.reducers)
                .unwrap_or_else(|| parter.partition_of(shuffle_hash(&k)));
            parts[p].push((k, v));
        });
        let gtid = (job.jid << JOB_SHIFT) | tid as u32;
        let mut scratch: Vec<String> = Vec::new();
        let mut seq = 0u32;
        for (p, records) in parts.into_iter().enumerate() {
            if records.is_empty() {
                continue;
            }
            if rt.is_aborted() {
                return Ok(true);
            }
            let records = if app.has_combiner() {
                combine_sorted_runs(app, records, &mut scratch)
            } else {
                records
            };
            let home = self.router.home_of(job.jid, p);
            if home == me || rt.node_down(home) {
                if home != me {
                    self.router.set_home(job.jid, p, me);
                }
                let n = records.len() as u64;
                if !self.router.deliver(gtid, attempt, seq, job.epoch, p as u32, records) {
                    return Ok(true); // job teardown
                }
                rt.local_shuffle_records.fetch_add(n, Ordering::Relaxed);
            } else {
                let batch = Rpc::ShuffleBatch {
                    task: gtid,
                    attempt,
                    seq,
                    epoch: job.epoch,
                    partition: p as u32,
                    records,
                };
                match self.net.call(me, home, batch) {
                    Ok(RpcReply::Ack) => {}
                    _ => {
                        // Same recovery as the scoped executor's ship
                        // failure: re-home so the retry lands locally.
                        self.router.set_home(job.jid, p, me);
                        return Ok(false);
                    }
                }
            }
            seq += 1;
            job.spills.fetch_add(1, Ordering::Relaxed);
            rt.spills_sent.fetch_add(1, Ordering::AcqRel);
        }
        if rt.node_down(me) {
            // Crashed under us: in-flight output may be lost, let a
            // survivor's retry win (reducer dedup drops this attempt).
            return Ok(false);
        }
        if rt.commits[tid]
            .compare_exchange(UNCOMMITTED, attempt, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            rt.committed.fetch_add(1, Ordering::AcqRel);
            self.router.settle_task(gtid, attempt);
            let done = rt.maps_done.fetch_add(1, Ordering::AcqRel) + 1;
            rt.notify(DstEvent::MapCommitted { done });
        }
        Ok(true)
    }

    /// Tear a pool job down and drain its reduce partitions without
    /// reducing: deregister the run, then collect each partition's
    /// grouped multiset (filtering every batch against the commit
    /// board's winner). Epoch drivers fold this grouped state into
    /// their materialized result; batch jobs hand it straight to
    /// [`LiveCluster::finish_pool_job`]. Call only after
    /// [`PoolJob::done`] reports true.
    pub(crate) fn drain_pool_job(
        &self,
        job: &PoolJob,
    ) -> Result<GroupedOutput, JobError> {
        debug_assert!(job.done(), "drain_pool_job before the job settled");
        // Remove the route first: late racing attempts deliver into the
        // void from here on, so the drain below sees a frozen stream.
        self.router.end_job(job.rt.jid);
        self.active.lock().remove(&job.rt.jid);
        let rt = &*job.rt;
        rt.notify(DstEvent::JobEnd);
        if rt.is_aborted() {
            let e = rt
                .error
                .lock()
                .take()
                .unwrap_or(JobError::TaskFailed { task: 0, attempts: 0 });
            return Err(e);
        }
        let receivers = std::mem::take(&mut *job.receivers.lock());
        let mut parts: Vec<HashMap<String, Vec<String>>> = Vec::with_capacity(job.reducers);
        for rx in receivers {
            let mut grouped: HashMap<String, Vec<String>> = HashMap::new();
            while let Ok(batch) = rx.try_recv() {
                let tid = (batch.task & TID_MASK) as usize;
                if rt.commits[tid].load(Ordering::Acquire) == batch.attempt {
                    for (k, v) in batch.records {
                        grouped.entry(k).or_default().push(v);
                    }
                }
            }
            parts.push(grouped);
        }
        let stats = self.pool_job_stats(job);
        Ok((parts, stats))
    }

    /// Tear a pool job down and fold its output: drain the reduce
    /// partitions via [`LiveCluster::drain_pool_job`], then group,
    /// sort and reduce. Call only after [`PoolJob::done`] reports true.
    pub(crate) fn finish_pool_job(&self, job: &PoolJob) -> Result<PartitionedOutput, JobError> {
        let (parts, stats) = self.drain_pool_job(job)?;
        let app = &*job.app;
        let mut parts_out: Vec<Vec<(String, String)>> = Vec::with_capacity(parts.len());
        for grouped in parts {
            let mut entries: Vec<(String, Vec<String>)> = grouped.into_iter().collect();
            entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            let mut out = Vec::new();
            for (k, vs) in &entries {
                app.reduce(k, vs, &mut |ok, ov| out.push((ok, ov)));
            }
            parts_out.push(out);
        }
        Ok((parts_out, stats))
    }

    /// Assemble the end-of-run statistics for a pool job.
    fn pool_job_stats(&self, job: &PoolJob) -> LiveStats {
        let rt = &*job.rt;
        let mut stats = job.stats0.clone();
        stats.cache_hits = job.hits.load(Ordering::Relaxed);
        stats.cache_misses = job.misses.load(Ordering::Relaxed);
        stats.remote_reads = job.remote.load(Ordering::Relaxed);
        stats.spills = job.spills.load(Ordering::Relaxed);
        stats.steals = job.steals.load(Ordering::Relaxed);
        stats.reduce_tasks = job.reducers as u64;
        stats.attempts = rt.attempts.load(Ordering::Relaxed);
        stats.retries = rt.retries.load(Ordering::Relaxed);
        stats.local_shuffle_records = rt.local_shuffle_records.load(Ordering::Relaxed);
        let final_nodes = self.cache.num_nodes();
        if stats.tasks_per_node.len() < final_nodes {
            stats.tasks_per_node.resize(final_nodes, 0);
        }
        // Note: with concurrent jobs the transport delta overlaps other
        // jobs' traffic — an upper bound, not an exact attribution.
        let net = self.net.stats().since(job.net_before);
        stats.bytes_sent = net.bytes_sent;
        stats.rpcs = net.rpcs;
        stats.rpc_retries = net.rpc_retries;
        stats.timeouts = net.timeouts;
        stats
    }
}

/// One job leased to the persistent worker pool: its placement, run
/// ledger and reduce channels. Shared (`Arc`) between the admitting
/// driver and the pool workers executing its tasks.
pub(crate) struct PoolJob {
    jid: u32,
    /// Shuffle epoch this wave ships under (0 for one-shot batch jobs).
    /// Standing jobs reuse one jid across waves; the tag lets the
    /// router ack-drop late batches from an already-committed epoch.
    epoch: u32,
    rt: Arc<RunRt>,
    app: Arc<dyn MapReduce>,
    tasks: Vec<MapTask>,
    inputs: Vec<String>,
    reducers: usize,
    reuse_cache: bool,
    /// Reduce-partition receivers; taken by `finish_pool_job`.
    receivers: Mutex<Vec<Receiver<TaskBatch>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    remote: AtomicU64,
    spills: AtomicU64,
    steals: AtomicU64,
    /// Placement-time stats (`map_tasks`, `tasks_per_node`).
    stats0: LiveStats,
    net_before: NetSnapshot,
}

impl PoolJob {
    pub(crate) fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// The node a task was placed on (the pool worker affinity hint).
    pub(crate) fn task_node(&self, tid: usize) -> NodeId {
        self.tasks[tid].node
    }

    /// All map tasks committed, or the job aborted.
    pub(crate) fn done(&self) -> bool {
        self.rt.is_aborted()
            || self.rt.committed.load(Ordering::Acquire) == self.tasks.len()
    }
}

/// Partition hash for intermediate keys, executor-internal.
///
/// The ring hash ([`HashKey::of_name`]) is engineered for placement
/// quality and costs far too much to run once per mapped record — it
/// dominated the map phase's profile. Reduce partitions are plain
/// channel indices in the live executor, so all the shuffle needs is a
/// fast, deterministic, well-mixed 64-bit hash: FNV-1a with a murmur3
/// finalizer (the top bits feed `SpillBuffer::partition_of`'s
/// multiply-shift, so they must avalanche).
#[inline]
fn shuffle_hash(key: &str) -> HashKey {
    let mut h = 0xcbf29ce484222325u64;
    for &b in key.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ceb9fe1a85ec53);
    h ^= h >> 33;
    HashKey(h)
}

/// Combine one spill by sorting its records in place and folding each
/// equal-key run through the application's combiner. Replaces the old
/// per-spill `BTreeMap<String, Vec<String>>` — no map nodes, no
/// per-key `Vec`s; `scratch` is the single reusable values buffer.
fn combine_sorted_runs(
    app: &dyn MapReduce,
    mut records: Vec<(String, String)>,
    scratch: &mut Vec<String>,
) -> Vec<(String, String)> {
    records.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::with_capacity(records.len() / 2 + 1);
    let mut iter = records.into_iter().peekable();
    while let Some((key, first)) = iter.next() {
        scratch.clear();
        scratch.push(first);
        while iter.peek().is_some_and(|(k, _)| *k == key) {
            scratch.push(iter.next().expect("peeked").1);
        }
        app.combine(&key, scratch, &mut |ck, cv| out.push((ck, cv)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Word count, the canonical MapReduce.
    struct WordCount;
    impl MapReduce for WordCount {
        fn map(&self, block: &[u8], emit: &mut dyn FnMut(String, String)) {
            for w in String::from_utf8_lossy(block).split_whitespace() {
                emit(w.to_string(), "1".to_string());
            }
        }
        fn reduce(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
            emit(key.to_string(), values.len().to_string());
        }
    }

    fn text_cluster(data: &str) -> LiveCluster {
        let c = LiveCluster::new(LiveConfig::small().with_block_size(256));
        c.upload("input", "tester", data.as_bytes());
        c
    }

    #[test]
    fn word_count_correct() {
        // Build text whose counts we know; keep words on whole-block
        // boundaries irrelevant by separating with newlines only.
        let data = "apple banana apple\ncherry banana apple\n".repeat(64);
        let c = text_cluster(&data);
        let (out, stats) =
            c.run_job(&WordCount, "input", "tester", 4, ReusePolicy::default());
        let get = |w: &str| -> u64 {
            out.iter().find(|(k, _)| k == w).map(|(_, v)| v.parse().unwrap()).unwrap_or(0)
        };
        // Block splitting can cut words at block boundaries; with 256-byte
        // blocks and 38-byte lines, lines may straddle blocks. Totals can
        // therefore deviate slightly — assert the dominant counts.
        assert!(get("apple") >= 180 && get("apple") <= 192, "apple={}", get("apple"));
        assert!(get("banana") >= 120 && get("banana") <= 128);
        assert!(get("cherry") >= 60 && get("cherry") <= 64);
        assert_eq!(stats.map_tasks, (data.len() as u64).div_ceil(256));
        assert_eq!(stats.reduce_tasks, 4);
        assert_eq!(
            stats.tasks_per_node.iter().sum::<u64>(),
            stats.map_tasks,
            "every task placed exactly once"
        );
        assert_eq!(stats.attempts, stats.map_tasks, "fault-free run: one attempt each");
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.failed_nodes, 0);
        // The data plane travelled the transport: at least one RPC per
        // task (TaskAssign), cleanly, with no retries.
        assert!(stats.rpcs >= stats.map_tasks, "rpcs={}", stats.rpcs);
        assert!(stats.bytes_sent > 0);
        assert_eq!(stats.timeouts, 0, "fault-free run must not time out");
        assert_eq!(stats.rpc_retries, 0);
    }

    #[test]
    fn word_count_identical_over_tcp() {
        let data = "apple banana apple\ncherry banana apple\n".repeat(64);
        let mem = text_cluster(&data);
        let tcp = LiveCluster::new(
            LiveConfig::small()
                .with_block_size(256)
                .with_transport(TransportKind::Tcp),
        );
        tcp.upload("input", "tester", data.as_bytes());
        let (out_mem, _) =
            mem.run_job(&WordCount, "input", "tester", 4, ReusePolicy::default());
        let (out_tcp, stats) =
            tcp.run_job(&WordCount, "input", "tester", 4, ReusePolicy::default());
        assert_eq!(out_mem, out_tcp, "TCP transport must not change results");
        assert!(stats.rpcs > 0);
        assert!(stats.bytes_sent > 0, "frames crossed real sockets");
    }

    #[test]
    fn second_run_hits_cache() {
        let data = "x y z\n".repeat(512);
        let c = text_cluster(&data);
        let (_, s1) = c.run_job(&WordCount, "input", "tester", 2, ReusePolicy::default());
        assert_eq!(s1.cache_hits, 0);
        let (_, s2) = c.run_job(&WordCount, "input", "tester", 2, ReusePolicy::default());
        assert!(s2.cache_hits > 0, "second run should hit iCache");
        assert!(s2.cache_hits + s2.cache_misses == s2.map_tasks);
    }

    #[test]
    fn results_identical_across_schedulers() {
        let data = "dog cat bird fish\n".repeat(200);
        let laf = LiveCluster::new(LiveConfig::small().with_block_size(512));
        laf.upload("input", "t", data.as_bytes());
        let delay = LiveCluster::new(
            LiveConfig::small()
                .with_block_size(512)
                .with_scheduler(SchedulerKind::Delay(Default::default())),
        );
        delay.upload("input", "t", data.as_bytes());
        let (out_laf, _) = laf.run_job(&WordCount, "input", "t", 3, ReusePolicy::default());
        let (out_delay, _) = delay.run_job(&WordCount, "input", "t", 3, ReusePolicy::default());
        assert_eq!(out_laf, out_delay, "scheduling must not change results");
    }

    #[test]
    fn node_failure_preserves_results() {
        let data = "alpha beta gamma\n".repeat(300);
        let c = text_cluster(&data);
        let (before, _) = c.run_job(&WordCount, "input", "tester", 2, ReusePolicy::default());
        let victim = c.ring().node_ids()[2];
        let held = c.store().blocks_on(victim).len() as u64;
        let report = c.fail_node(victim).expect("survivors hold every replica");
        assert_eq!(report.recovered_blocks, held, "every held block re-replicated");
        let (after, stats) = c.run_job(&WordCount, "input", "tester", 2, ReusePolicy::default());
        assert_eq!(before, after, "failure must not lose data");
        assert_eq!(stats.tasks_per_node[victim.index()], 0, "dead node got tasks");
    }

    #[test]
    fn crash_during_map_preserves_results() {
        let data = "alpha beta gamma delta\n".repeat(400);
        let c = text_cluster(&data);
        let (baseline, _) = c.run_job(&WordCount, "input", "tester", 3, ReusePolicy::default());
        let victim = c.ring().node_ids()[1];
        c.inject_faults(FaultPlan::new().crash_after_maps(victim, 2));
        let (out, stats) = c
            .try_run_job(&WordCount, "input", "tester", 3, ReusePolicy::default())
            .expect("job survives a single crash");
        assert_eq!(out, baseline, "mid-map crash must not change output");
        assert_eq!(stats.failed_nodes, 1);
        assert!(!c.ring().contains(victim), "victim evicted from the ring");
    }

    #[test]
    fn injected_task_faults_are_retried() {
        let data = "red green blue\n".repeat(200);
        let c = text_cluster(&data);
        let (baseline, _) = c.run_job(&WordCount, "input", "tester", 2, ReusePolicy::default());
        // First two attempts of task 0 die; the third succeeds.
        c.inject_faults(FaultPlan::new().fail_task(0, 2));
        let (out, stats) = c
            .try_run_job(&WordCount, "input", "tester", 2, ReusePolicy::default())
            .expect("retries absorb the injected faults");
        assert_eq!(out, baseline);
        assert!(stats.retries >= 2, "retries={}", stats.retries);
        assert_eq!(stats.attempts, stats.map_tasks + stats.retries);
    }

    #[test]
    fn retry_budget_exhaustion_is_terminal() {
        let data = "solo\n".repeat(64);
        let c = text_cluster(&data);
        // More injected failures than MAX_ATTEMPTS: the task can never
        // succeed and the job must fail cleanly (not hang).
        c.inject_faults(FaultPlan::new().fail_task(0, MAX_ATTEMPTS + 4));
        let err = c
            .try_run_job(&WordCount, "input", "tester", 2, ReusePolicy::default())
            .expect_err("budget exhaustion is terminal");
        assert!(
            matches!(err, JobError::TaskFailed { task: 0, .. }),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn joined_node_participates() {
        let data = "p q r s\n".repeat(400);
        let c = LiveCluster::new(LiveConfig::small().with_nodes(4).with_block_size(256));
        c.upload("before", "t", data.as_bytes());
        let (out1, _) = c.run_job(&WordCount, "before", "t", 2, ReusePolicy::default());
        let newbie = c.join_node("latecomer");
        assert_eq!(c.ring().len(), 5);
        // Old data still fully readable.
        let (out2, _) = c.run_job(&WordCount, "before", "t", 2, ReusePolicy::default());
        assert_eq!(out1, out2);
        // New uploads place blocks on the joiner.
        c.upload("after", "t", data.as_bytes());
        let (out3, stats) = c.run_job(&WordCount, "after", "t", 2, ReusePolicy::default());
        assert_eq!(out3.len(), out1.len());
        assert!(
            stats.tasks_per_node[newbie.index()] > 0,
            "joiner ran nothing: {:?}",
            stats.tasks_per_node
        );
    }

    #[test]
    fn mid_job_join_preserves_results() {
        let data = "up down strange charm top bottom\n".repeat(400);
        let c = text_cluster(&data);
        let (baseline, _) = c.run_job(&WordCount, "input", "tester", 3, ReusePolicy::default());
        let c2 = text_cluster(&data);
        let n0 = c2.ring().len();
        let e0 = c2.epoch();
        c2.inject_faults(FaultPlan::new().join_at_maps(3));
        let (out, stats) = c2
            .try_run_job(&WordCount, "input", "tester", 3, ReusePolicy::default())
            .expect("a join must never fail a job");
        assert_eq!(out, baseline, "mid-job join must not change output");
        assert_eq!(stats.joins, 1);
        assert_eq!(stats.leaves, 0);
        assert_eq!(stats.drained_tasks, 0);
        assert_eq!(c2.ring().len(), n0 + 1, "joiner is a member afterwards");
        assert!(c2.epoch() > e0, "membership epoch advanced");
        assert_eq!(
            stats.tasks_per_node.len(),
            n0 + 1,
            "per-node counts cover the final membership"
        );
        assert!(
            stats.handoff_blocks > 0,
            "joiner pulled the replicas its range made it responsible for"
        );
        assert_eq!(
            stats.attempts,
            stats.map_tasks + stats.retries + stats.speculative_attempts,
            "attempt ledger stays exact across a join"
        );
    }

    #[test]
    fn mid_job_graceful_leave_preserves_results() {
        let data = "one two three four five six\n".repeat(400);
        let c = text_cluster(&data);
        let (baseline, _) = c.run_job(&WordCount, "input", "tester", 3, ReusePolicy::default());
        let c2 = text_cluster(&data);
        let leaver = c2.ring().node_ids()[2];
        let e0 = c2.epoch();
        c2.inject_faults(FaultPlan::new().leave_at_maps(leaver, 2));
        let (out, stats) = c2
            .try_run_job(&WordCount, "input", "tester", 3, ReusePolicy::default())
            .expect("a graceful leave must not fail a healthy job");
        assert_eq!(out, baseline, "graceful leave must not change output");
        assert_eq!(stats.leaves, 1);
        assert_eq!(stats.joins, 0);
        assert_eq!(stats.failed_nodes, 0, "a leave is not a crash");
        assert!(!c2.ring().contains(leaver), "leaver deregistered");
        assert!(c2.epoch() > e0, "membership epoch advanced");
        assert_eq!(
            stats.attempts,
            stats.map_tasks + stats.retries + stats.speculative_attempts,
            "drained re-executions are ordinary retries"
        );
        // The departed node serves nothing in a follow-up run.
        let (again, s2) = c2.run_job(&WordCount, "input", "tester", 3, ReusePolicy::default());
        assert_eq!(again, baseline);
        assert_eq!(s2.tasks_per_node[leaver.index()], 0);
    }

    #[test]
    fn leave_between_jobs_moves_replicas() {
        let data = "alpha beta gamma delta\n".repeat(300);
        let c = text_cluster(&data);
        let (before, _) = c.run_job(&WordCount, "input", "tester", 2, ReusePolicy::default());
        let leaver = c.ring().node_ids()[1];
        c.leave_node(leaver).expect("peers absorb the handoff");
        assert!(!c.ring().contains(leaver));
        let (after, stats) = c.run_job(&WordCount, "input", "tester", 2, ReusePolicy::default());
        assert_eq!(before, after, "leave must not lose data");
        assert_eq!(stats.tasks_per_node[leaver.index()], 0, "departed node got tasks");
    }

    #[test]
    fn leave_guards_reject_unknown_and_last_node() {
        let c = LiveCluster::new(LiveConfig::small().with_nodes(2));
        let ids = c.ring().node_ids();
        assert!(c.leave_node(NodeId(99)).is_err(), "unknown node");
        c.leave_node(ids[0]).expect("one of two can leave");
        assert!(c.leave_node(ids[1]).is_err(), "the last node cannot leave");
        assert_eq!(c.ring().len(), 1);
    }

    #[test]
    fn settle_prunes_dedup_trackers() {
        let router = ShuffleRouter::new();
        let (tx, _rx) = unbounded();
        router.begin_job(0, vec![tx], vec![NodeId(0)]);
        let rec = |s: &str| vec![(s.to_string(), "1".to_string())];
        // Two racing attempts of task 7 deliver batches.
        assert!(router.deliver(7, 0, 0, 0, 0, rec("a")));
        assert!(router.deliver(7, 1, 0, 0, 0, rec("b")));
        assert_eq!(router.seen.lock().len(), 2);
        // Attempt 1 wins: the loser's tracker is pruned immediately...
        router.settle_task(7, 1);
        assert_eq!(router.seen.lock().len(), 1);
        assert!(router.seen.lock().contains_key(&(7, 1)));
        // ...and a late batch from the loser is ack-dropped without
        // growing the tracker map back.
        assert!(router.deliver(7, 0, 1, 0, 0, rec("c")));
        assert_eq!(router.seen.lock().len(), 1);
        // The winner's own retransmits still dedup normally.
        assert!(router.deliver(7, 1, 0, 0, 0, rec("b")));
        router.end_job(0);
    }

    #[test]
    fn speculation_preserves_results_under_straggler() {
        let data = "ant bee cow doe elk fox\n".repeat(400);
        let c = text_cluster(&data);
        let (baseline, _) = c.run_job(&WordCount, "input", "tester", 4, ReusePolicy::default());
        let spec = LiveCluster::new(
            LiveConfig::small()
                .with_block_size(256)
                // One worker thread per node regardless of host cores, so
                // the straggler actually claims (and straggles on) tasks.
                .with_map_slots(8)
                .with_speculation(SpeculationConfig {
                    slowdown: 2.0,
                    min_completed: 3,
                    poll_micros: 200,
                }),
        );
        spec.upload("input", "tester", data.as_bytes());
        // Slow a non-home node hard enough that backups fire.
        let victim = spec.ring().node_ids()[5];
        spec.inject_faults(FaultPlan::new().slow_node(victim, 5_000));
        let (out, stats) = spec
            .try_run_job(&WordCount, "input", "tester", 4, ReusePolicy::default())
            .expect("speculation must not fail a healthy job");
        assert_eq!(out, baseline, "backups must not change output");
        assert!(
            stats.speculative_wins <= stats.speculative_attempts,
            "wins={} attempts={}",
            stats.speculative_wins,
            stats.speculative_attempts
        );
        // Every attempt is the primary, a retry, or a backup.
        assert!(
            stats.speculative_wins + stats.retries <= stats.attempts - stats.map_tasks,
            "wins={} retries={} attempts={} tasks={}",
            stats.speculative_wins,
            stats.retries,
            stats.attempts,
            stats.map_tasks
        );
    }

    #[test]
    fn speculation_noop_without_stragglers() {
        let data = "red green blue\n".repeat(300);
        let c = text_cluster(&data);
        let (baseline, _) = c.run_job(&WordCount, "input", "tester", 3, ReusePolicy::default());
        let spec = LiveCluster::new(
            LiveConfig::small()
                .with_block_size(256)
                .with_map_slots(8)
                .with_speculation(SpeculationConfig::default()),
        );
        spec.upload("input", "tester", data.as_bytes());
        let (out, stats) =
            spec.run_job(&WordCount, "input", "tester", 3, ReusePolicy::default());
        assert_eq!(out, baseline);
        assert_eq!(stats.retries, 0);
        assert!(
            stats.speculative_wins + stats.retries <= stats.attempts - stats.map_tasks,
            "attempt accounting broke: {stats:?}"
        );
    }

    #[test]
    fn replicated_map_out_preserves_results() {
        let data = "kiwi lime mango nectarine\n".repeat(400);
        let c = text_cluster(&data);
        let (baseline, base_stats) =
            c.run_job(&WordCount, "input", "tester", 4, ReusePolicy::default());
        for r in [2usize, 3] {
            let repl = LiveCluster::new(
                LiveConfig::small()
                    .with_block_size(256)
                    .with_map_slots(8)
                    .with_map_replication(r),
            );
            repl.upload("input", "tester", data.as_bytes());
            let (out, stats) =
                repl.run_job(&WordCount, "input", "tester", 4, ReusePolicy::default());
            assert_eq!(out, baseline, "r={r} must not change output");
            assert!(
                stats.map_tasks > base_stats.map_tasks,
                "r={r} should split blocks into sub-tasks: {} vs {}",
                stats.map_tasks,
                base_stats.map_tasks
            );
            assert!(
                stats.local_shuffle_records > 0,
                "r={r} should deliver some shuffle locally"
            );
        }
    }

    #[test]
    fn ocache_roundtrip() {
        let c = LiveCluster::new(LiveConfig::small());
        c.ocache_put("kmeans", "iter0", Bytes::from_static(b"centroids"), None);
        assert_eq!(c.ocache_get("kmeans", "iter0").unwrap(), Bytes::from_static(b"centroids"));
        assert!(c.ocache_get("kmeans", "iter1").is_none());
    }

    #[test]
    fn ocache_ttl_expires() {
        let c = LiveCluster::new(LiveConfig::small());
        c.ocache_put("app", "temp", Bytes::from_static(b"d"), Some(-1.0));
        // TTL in the past: the entry is dead on arrival.
        assert!(c.ocache_get("app", "temp").is_none());
    }

    mod epoch_dedup_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            /// Epoch-tagged shuffle dedup never double-folds a delta:
            /// for every epoch, an arbitrary interleaving of the
            /// epoch's batches, their retransmits, and straggler
            /// batches from earlier (already-committed) epochs must
            /// leave the reducer sink holding exactly one copy of each
            /// current-epoch batch and nothing stale — per-epoch task
            /// ids restart at 0, so a stale batch admitted into the
            /// dedup tracker would silently eat a current one.
            #[test]
            fn epoch_tagged_dedup_never_double_folds_under_retransmit(
                epochs in 1u32..=3,
                tasks in 1u32..=3,
                seqs in 1u32..=3,
                dup_sel in proptest::collection::vec((0u32..3, 0u32..3), 0..24),
                stale_sel in proptest::collection::vec((1u32..=2, 0u32..3, 0u32..3), 0..16),
                shuffle_seed in any::<u64>(),
            ) {
                let router = ShuffleRouter::new();
                for e in 1..=epochs {
                    let (tx, rx) = unbounded();
                    router.begin_epoch(0, vec![tx], vec![NodeId(0)], e);
                    // (epoch, tid, seq): every current pair once, plus
                    // retransmits, plus stale-epoch stragglers.
                    let mut sends: Vec<(u32, u32, u32)> = Vec::new();
                    for tid in 0..tasks {
                        for s in 0..seqs {
                            sends.push((e, tid, s));
                        }
                    }
                    for &(tid, s) in &dup_sel {
                        sends.push((e, tid % tasks, s % seqs));
                    }
                    for &(back, tid, s) in &stale_sel {
                        if e > back {
                            sends.push((e - back, tid % tasks, s % seqs));
                        }
                    }
                    // Fisher–Yates off a proptest-chosen LCG stream.
                    let mut st = shuffle_seed | 1;
                    for i in (1..sends.len()).rev() {
                        st = st
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let j = (st >> 33) as usize % (i + 1);
                        sends.swap(i, j);
                    }
                    for (se, tid, s) in sends {
                        // The record carries its *origin* epoch, so a
                        // stale batch that leaked through would be
                        // visible in the drained values.
                        let rec = vec![(format!("k{tid}-{s}"), se.to_string())];
                        // Everything acks: dup and stale are dropped,
                        // never bounced back for retry.
                        prop_assert!(router.deliver(tid, 0, s, se, 0, rec));
                    }
                    let mut got: Vec<(String, String)> = Vec::new();
                    while let Ok(b) = rx.try_recv() {
                        got.extend(b.records);
                    }
                    prop_assert_eq!(
                        got.len() as u32,
                        tasks * seqs,
                        "epoch {} double-folded or lost a batch",
                        e
                    );
                    prop_assert!(
                        got.iter().all(|(_, v)| *v == e.to_string()),
                        "a stale-epoch record leaked into epoch {}",
                        e
                    );
                    let mut keys: Vec<&String> = got.iter().map(|(k, _)| k).collect();
                    keys.sort();
                    keys.dedup();
                    prop_assert_eq!(keys.len() as u32, tasks * seqs);
                }
                router.end_job(0);
            }
        }
    }
}
