//! The live executor: real MapReduce over real data, in-process.
//!
//! Virtual nodes are threads; the "network" is shared memory; block
//! payloads live in [`eclipse_dhtfs::BlockStore`]. Placement, caching and
//! shuffling run through exactly the same control-plane code as the
//! simulator — this is the executable proof that the EclipseMR design
//! computes correct results, and it powers the examples and the
//! integration tests.
//!
//! # Data-plane concurrency (see DESIGN.md, "Live data plane")
//!
//! The hot path is engineered so node threads almost never contend:
//!
//! - **Sharded cache locks.** [`DistributedCache`] locks per node shard,
//!   so iCache traffic from different nodes proceeds in parallel; the
//!   executor holds no cluster-wide cache lock at all.
//! - **Concurrent reads.** File metadata sits behind a `RwLock` (reads
//!   during a job never block each other) and [`BlockStore`] is already
//!   a reader-parallel payload store.
//! - **Work stealing.** Map assignments are frozen per node at placement
//!   time; workers drain their own queue first, then steal from other
//!   nodes' tails via atomic cursors. Cache and locality accounting
//!   always uses the *assigned* node, so stealing changes wall-clock,
//!   never stats or cache placement.
//! - **Allocation-light shuffle.** One [`SpillBuffer`] per worker serves
//!   all its blocks; spills are combined by sorting the run in place
//!   (no per-spill `BTreeMap`), and only when the application actually
//!   overrides [`MapReduce::combine`] (see
//!   [`MapReduce::has_combiner`]). Reducers ingest into a `HashMap` and
//!   sort once at fold time.

use crate::job::ReusePolicy;
use crate::shuffle::{Spill, SpillBuffer};
use crate::sim_exec::SchedulerKind;
use bytes::Bytes;
use eclipse_cache::{CacheKey, DistributedCache, OutputTag};
use eclipse_dhtfs::{BlockId, BlockStore, DhtFs, DhtFsConfig};
use eclipse_ring::{NodeId, Ring};
use eclipse_sched::{DelayScheduler, LafScheduler};
use eclipse_util::HashKey;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A MapReduce application for the live executor.
pub trait MapReduce: Send + Sync {
    /// Emit intermediate (key, value) pairs for one input block.
    fn map(&self, block: &[u8], emit: &mut dyn FnMut(String, String));
    /// Fold all values of one intermediate key into output pairs.
    fn reduce(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String));
    /// Optional map-side combiner, run on each spill buffer before it is
    /// pushed to the reducer side — shrinks shuffle volume for
    /// associative reductions (word count's classic optimization). The
    /// default is a pass-through.
    fn combine(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
        for v in values {
            emit(key.to_string(), v.clone());
        }
    }

    /// Whether [`combine`](Self::combine) actually reduces data. Apps
    /// that override `combine` must also override this to return `true`;
    /// when `false` (the default) the executor skips spill
    /// sorting/grouping entirely and ships mapped records untouched —
    /// the pass-through default `combine` would only have copied them.
    fn has_combiner(&self) -> bool {
        false
    }

    /// Map one block of a *multi-input* job (reduce-side joins): the
    /// `source` index says which input file the block came from, so the
    /// mapper can tag records by side. The default ignores the source
    /// and delegates to [`map`](Self::map).
    fn map_tagged(&self, _source: usize, block: &[u8], emit: &mut dyn FnMut(String, String)) {
        self.map(block, emit);
    }

    /// Optional custom partitioner. `None` (the default) partitions by
    /// the key's ring hash — EclipseMR's native scheme, which lets
    /// reducers be placed by consistent hashing. Return `Some(p)` with
    /// `p < partitions` to override (e.g. TeraSort's sampled range
    /// partitioning, which makes partition order = global sort order).
    fn partition(&self, _key: &str, _partitions: usize) -> Option<usize> {
        None
    }
}

/// Live cluster configuration.
#[derive(Clone, Debug)]
pub struct LiveConfig {
    pub nodes: usize,
    pub cache_per_node: u64,
    pub replicas: usize,
    pub block_size: u64,
    pub scheduler: SchedulerKind,
}

impl LiveConfig {
    /// Small defaults suited to tests and examples: 8 virtual nodes,
    /// 64 KB blocks, 16 MB cache each, LAF scheduling.
    pub fn small() -> LiveConfig {
        LiveConfig {
            nodes: 8,
            cache_per_node: 16 * 1024 * 1024,
            replicas: 2,
            block_size: 64 * 1024,
            scheduler: SchedulerKind::Laf(Default::default()),
        }
    }

    pub fn with_nodes(mut self, nodes: usize) -> LiveConfig {
        self.nodes = nodes;
        self
    }

    pub fn with_block_size(mut self, bytes: u64) -> LiveConfig {
        self.block_size = bytes;
        self
    }

    pub fn with_scheduler(mut self, s: SchedulerKind) -> LiveConfig {
        self.scheduler = s;
        self
    }
}

enum LiveSched {
    Laf(LafScheduler),
    Delay(DelayScheduler),
}

/// Per-job execution statistics from the live path.
#[derive(Clone, Debug, Default)]
pub struct LiveStats {
    pub map_tasks: u64,
    pub reduce_tasks: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub remote_reads: u64,
    pub spills: u64,
    /// Map tasks executed by a thread other than their assigned node
    /// (work stealing). `tasks_per_node` still counts by assignment.
    pub steals: u64,
    pub tasks_per_node: Vec<u64>,
}

/// A live EclipseMR deployment.
pub struct LiveCluster {
    cfg: LiveConfig,
    ring: RwLock<Ring>,
    /// Metadata only; reads (open / block_holders) share the lock.
    fs: RwLock<DhtFs>,
    store: BlockStore,
    /// Internally sharded: per-node locks, no cluster-wide mutex.
    cache: DistributedCache,
    sched: Mutex<LiveSched>,
}

impl LiveCluster {
    pub fn new(cfg: LiveConfig) -> LiveCluster {
        let ring = Ring::with_servers_evenly_spaced(cfg.nodes, "live");
        let fs = DhtFs::new(
            ring.clone(),
            DhtFsConfig { block_size: cfg.block_size, replicas: cfg.replicas },
        );
        let cache = DistributedCache::new(&ring, cfg.cache_per_node);
        let sched = match &cfg.scheduler {
            SchedulerKind::Laf(c) => LiveSched::Laf(LafScheduler::new(&ring, *c)),
            SchedulerKind::Delay(c) => LiveSched::Delay(DelayScheduler::new(&ring, *c)),
        };
        LiveCluster {
            cfg,
            ring: RwLock::new(ring),
            fs: RwLock::new(fs),
            store: BlockStore::new(),
            cache,
            sched: Mutex::new(sched),
        }
    }

    /// A snapshot of the current ring membership.
    pub fn ring(&self) -> Ring {
        self.ring.read().clone()
    }

    pub fn nodes(&self) -> usize {
        self.cfg.nodes
    }

    /// Upload real data: partition into blocks, write every replica's
    /// payload.
    pub fn upload(&self, name: &str, owner: &str, data: &[u8]) {
        let mut fs = self.fs.write();
        let meta = fs.upload(name, owner, data.len() as u64).expect("upload").clone();
        for b in &meta.blocks {
            let lo = (b.id.index * meta.block_size) as usize;
            let hi = (lo + b.size as usize).min(data.len());
            let payload = Bytes::copy_from_slice(&data[lo..hi]);
            for &holder in fs.block_holders(b.id).expect("just uploaded") {
                self.store.put(holder, b.id, payload.clone());
            }
        }
    }

    /// Fetch a block payload as `reader`: local shard first, then any
    /// surviving replica (tolerates missing copies after a crash).
    fn fetch_block(&self, id: BlockId, reader: NodeId) -> Bytes {
        if let Some(d) = self.store.get(reader, id) {
            return d;
        }
        let holders = {
            let fs = self.fs.read();
            fs.block_holders(id).expect("block registered").to_vec()
        };
        for h in holders {
            if let Some(d) = self.store.get(h, id) {
                return d;
            }
        }
        panic!("all replicas lost for {id:?}");
    }

    /// Run a MapReduce job over `input`, returning the reduced output as
    /// sorted (key, value) pairs plus execution stats.
    pub fn run_job(
        &self,
        app: &dyn MapReduce,
        input: &str,
        user: &str,
        reducers: usize,
        reuse: ReusePolicy,
    ) -> (Vec<(String, String)>, LiveStats) {
        let (parts, stats) = self.run_job_partitioned(app, input, user, reducers, reuse);
        let mut result: Vec<(String, String)> = parts.into_iter().flatten().collect();
        result.sort();
        (result, stats)
    }

    /// Like [`run_job`](Self::run_job), but returns each reduce
    /// partition's output separately (in partition order, each internally
    /// key-sorted). With a range partitioner, concatenating the
    /// partitions yields globally sorted output without a final merge.
    pub fn run_job_partitioned(
        &self,
        app: &dyn MapReduce,
        input: &str,
        user: &str,
        reducers: usize,
        reuse: ReusePolicy,
    ) -> (Vec<Vec<(String, String)>>, LiveStats) {
        self.run_job_inputs_partitioned(app, &[input], user, reducers, reuse)
    }

    /// Run a job over several input files at once (reduce-side join):
    /// every input's blocks are mapped (with their source index passed to
    /// [`MapReduce::map_tagged`]) into one shared shuffle, and a single
    /// reduce phase sees the co-grouped records of all inputs.
    pub fn run_job_inputs(
        &self,
        app: &dyn MapReduce,
        inputs: &[&str],
        user: &str,
        reducers: usize,
        reuse: ReusePolicy,
    ) -> (Vec<(String, String)>, LiveStats) {
        let (parts, stats) =
            self.run_job_inputs_partitioned(app, inputs, user, reducers, reuse);
        let mut result: Vec<(String, String)> = parts.into_iter().flatten().collect();
        result.sort();
        (result, stats)
    }

    /// Multi-input variant of
    /// [`run_job_partitioned`](Self::run_job_partitioned).
    pub fn run_job_inputs_partitioned(
        &self,
        app: &dyn MapReduce,
        inputs: &[&str],
        user: &str,
        reducers: usize,
        reuse: ReusePolicy,
    ) -> (Vec<Vec<(String, String)>>, LiveStats) {
        assert!(reducers > 0);
        assert!(!inputs.is_empty());
        let metas: Vec<_> = {
            let fs = self.fs.read();
            inputs
                .iter()
                .map(|input| fs.open(input, user).expect("open input").clone())
                .collect()
        };
        let node_count = self.cache.num_nodes();
        let mut stats =
            LiveStats { tasks_per_node: vec![0; node_count], ..Default::default() };

        // ---- Placement: every block through the production scheduler.
        let mut inflight = vec![0u64; node_count];
        let mut assignments: Vec<Vec<(usize, BlockId)>> = vec![Vec::new(); node_count];
        {
            let mut sched = self.sched.lock();
            for (source, meta) in metas.iter().enumerate() {
                for b in &meta.blocks {
                    let node = match &mut *sched {
                        LiveSched::Laf(laf) => {
                            laf.assign_balanced(b.key, 0.0, |n| inflight[n.index()] as f64)
                        }
                        LiveSched::Delay(d) => {
                            d.decide(b.key, 0.0, |n| inflight[n.index()] as f64).node()
                        }
                    };
                    inflight[node.index()] += 1;
                    assignments[node.index()].push((source, b.id));
                    stats.tasks_per_node[node.index()] += 1;
                    stats.map_tasks += 1;
                }
            }
            // Install the (possibly re-partitioned) ranges once per job,
            // not once per block — the map phase addresses shards by node
            // id; ranges only matter for future home_of lookups.
            if let LiveSched::Laf(laf) = &*sched {
                self.cache.set_ranges(laf.ranges().to_vec());
            }
        }

        // ---- Pipelined map + shuffle + reduce -----------------------
        // Proactive shuffle over real channels (§II-D): every spill is
        // combined map-side, then pushed to its reduce partition while
        // the map phase is still running. Reducer threads group keys as
        // records stream in and fold them once the last mapper hangs up.
        let hits = AtomicU64::new(0);
        let misses = AtomicU64::new(0);
        let remote = AtomicU64::new(0);
        let spill_count = AtomicU64::new(0);
        let steal_count = AtomicU64::new(0);

        let mut senders: Vec<Sender<Vec<(String, String)>>> = Vec::with_capacity(reducers);
        let mut receivers = Vec::with_capacity(reducers);
        for _ in 0..reducers {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let outputs: Vec<Mutex<Vec<(String, String)>>> =
            (0..reducers).map(|_| Mutex::new(Vec::new())).collect();

        // Frozen work queues plus one atomic cursor per assigned node:
        // workers claim blocks with fetch_add, so every block runs
        // exactly once no matter who executes it.
        let queues = &assignments;
        let cursors: Vec<AtomicUsize> =
            (0..node_count).map(|_| AtomicUsize::new(0)).collect();
        let cursors = &cursors;
        // Workers exist only for current ring members — a failed node's
        // thread must not resurrect and steal work. Thread count is
        // capped at the machine's parallelism: stealing lets fewer
        // threads drain every node's queue, so extra threads would only
        // add context switching (virtual nodes share the same cores).
        let workers: Vec<NodeId> = self.ring.read().node_ids();
        let threads = workers
            .len()
            .min(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));

        // The partition count (and thus the output shape) is always
        // `reducers`; the reducer THREAD count is capped at hardware
        // parallelism like the map side. Each thread drains several
        // partition channels in turn — safe because the channels are
        // unbounded, so mappers never block on a lane the thread has
        // not reached yet.
        let red_threads = reducers
            .min(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        let mut lanes: Vec<Vec<(usize, Receiver<Vec<(String, String)>>)>> =
            (0..red_threads).map(|_| Vec::new()).collect();
        for (r, rx) in receivers.into_iter().enumerate() {
            lanes[r % red_threads].push((r, rx));
        }

        std::thread::scope(|scope| {
            // Reducer side: consume spills concurrently with the maps.
            for lane in lanes {
                let outputs = &outputs;
                scope.spawn(move || {
                    for (r, rx) in lane {
                        // Hash-ingest while the stream is live; sort once
                        // at fold time so each partition's output stays
                        // key-sorted (terasort depends on that).
                        let mut grouped: HashMap<String, Vec<String>> = HashMap::new();
                        while let Ok(batch) = rx.recv() {
                            for (k, v) in batch {
                                grouped.entry(k).or_default().push(v);
                            }
                        }
                        let mut entries: Vec<(String, Vec<String>)> =
                            grouped.into_iter().collect();
                        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                        let mut out = Vec::new();
                        for (k, vs) in &entries {
                            app.reduce(k, vs, &mut |ok, ov| out.push((ok, ov)));
                        }
                        *outputs[r].lock() = out;
                    }
                });
            }

            // Mapper side: up to one worker thread per live virtual
            // node, bounded by hardware parallelism.
            std::thread::scope(|map_scope| {
                for (wi, &me) in workers.iter().enumerate().take(threads) {
                    let senders = senders.clone();
                    let workers = &workers;
                    let hits = &hits;
                    let misses = &misses;
                    let remote = &remote;
                    let spill_count = &spill_count;
                    let steal_count = &steal_count;
                    map_scope.spawn(move || {
                        // One spill buffer and one combine scratch per
                        // worker, reused across every block it maps.
                        let mut buffer: SpillBuffer<(String, String)> =
                            SpillBuffer::new(reducers, 32 * 1024);
                        let mut scratch: Vec<String> = Vec::new();
                        let mut push = |spill: Spill<(String, String)>| {
                            if spill.records.is_empty() {
                                return;
                            }
                            spill_count.fetch_add(1, Ordering::Relaxed);
                            let combined = if app.has_combiner() {
                                combine_sorted_runs(app, spill.records, &mut scratch)
                            } else {
                                // No combiner: ship records untouched.
                                spill.records
                            };
                            // A dropped receiver means the job is being
                            // torn down; losing the spill is fine then.
                            let _ = senders[spill.partition].send(combined);
                        };
                        // Own queue first (locality), then steal from the
                        // other live nodes' tails, ring order.
                        for step in 0..workers.len() {
                            let owner = workers[(wi + step) % workers.len()];
                            loop {
                                let i = cursors[owner.index()].fetch_add(1, Ordering::Relaxed);
                                let Some(&(source, bid)) = queues[owner.index()].get(i) else {
                                    break;
                                };
                                if owner != me {
                                    steal_count.fetch_add(1, Ordering::Relaxed);
                                }
                                // All cache and locality accounting uses
                                // the ASSIGNED node: stats and cache
                                // placement are identical with or
                                // without stealing.
                                let key = CacheKey::Input(HashKey::of_block(
                                    inputs[source],
                                    bid.index,
                                ));
                                let shard = self.cache.shard(owner);
                                let cached = shard.lock().get_payload(&key, 0.0);
                                let payload = match cached {
                                    Some(p) => {
                                        hits.fetch_add(1, Ordering::Relaxed);
                                        p
                                    }
                                    None => {
                                        misses.fetch_add(1, Ordering::Relaxed);
                                        if !self.store.holds(owner, bid) {
                                            remote.fetch_add(1, Ordering::Relaxed);
                                        }
                                        let p = self.fetch_block(bid, owner);
                                        if reuse.cache_input {
                                            shard.lock().put_payload(
                                                key,
                                                p.clone(),
                                                0.0,
                                                None,
                                            );
                                        }
                                        p
                                    }
                                };
                                // Map + proactive spill; the buffer keeps
                                // accumulating across blocks, batching
                                // channel sends.
                                app.map_tagged(source, &payload, &mut |k, v| {
                                    let bytes = (k.len() + v.len()) as u64;
                                    let spill = match app.partition(&k, reducers) {
                                        Some(p) => buffer.push_to(p, bytes, Some((k, v))),
                                        None => {
                                            let hk = shuffle_hash(&k);
                                            buffer.push(hk, bytes, Some((k, v)))
                                        }
                                    };
                                    if let Some(spill) = spill {
                                        push(spill);
                                    }
                                });
                            }
                        }
                        for spill in buffer.flush() {
                            push(spill);
                        }
                    });
                }
            });
            // All mappers done: hang up so the reducers fold and exit.
            drop(senders);
        });
        stats.cache_hits = hits.into_inner();
        stats.cache_misses = misses.into_inner();
        stats.remote_reads = remote.into_inner();
        stats.spills = spill_count.into_inner();
        stats.steals = steal_count.into_inner();
        stats.reduce_tasks = reducers as u64;

        let parts: Vec<Vec<(String, String)>> =
            outputs.into_iter().map(|m| m.into_inner()).collect();
        (parts, stats)
    }

    /// Store an application-tagged object in oCache (e.g. iteration
    /// output). Placed on the tag's home server under the current cache
    /// ranges.
    pub fn ocache_put(&self, app: &str, tag: &str, data: Bytes, ttl: Option<f64>) {
        let otag = OutputTag::new(app, tag);
        let home = self.cache.home_of(otag.hash_key());
        self.cache
            .with_node(home, |c| c.put_payload(CacheKey::Output(otag), data, 0.0, ttl));
    }

    /// Fetch a tagged object from oCache.
    pub fn ocache_get(&self, app: &str, tag: &str) -> Option<Bytes> {
        let otag = OutputTag::new(app, tag);
        let home = self.cache.home_of(otag.hash_key());
        self.cache.with_node(home, |c| c.get_payload(&CacheKey::Output(otag), 0.0))
    }

    /// Global cache hit ratio so far.
    pub fn cache_hit_ratio(&self) -> f64 {
        self.cache.hit_ratio()
    }

    /// Admit a new virtual node: a fresh ring position, cache shard and
    /// (empty) store shard. Existing blocks stay put; new uploads and
    /// scheduling immediately include the joiner. Returns its id.
    pub fn join_node(&self, name: &str) -> NodeId {
        let id = self.cache.add_node(self.cfg.cache_per_node);
        let mut fs = self.fs.write();
        let mut info = eclipse_ring::ServerInfo::from_name(id, name);
        let mut salt = 0u32;
        while fs.ring().members().any(|s| s.key == info.key) {
            salt += 1;
            info = eclipse_ring::ServerInfo::from_name(id, format!("{name}+{salt}"));
        }
        fs.join(info).expect("fresh node id");
        let new_ring = fs.ring().clone();
        drop(fs);
        *self.ring.write() = new_ring.clone();
        let mut sched = self.sched.lock();
        match &mut *sched {
            LiveSched::Laf(laf) => {
                laf.set_nodes(&new_ring);
                self.cache.set_ranges(laf.ranges().to_vec());
            }
            LiveSched::Delay(d) => {
                *d = DelayScheduler::new(
                    &new_ring,
                    match &self.cfg.scheduler {
                        SchedulerKind::Delay(c) => *c,
                        _ => Default::default(),
                    },
                );
                self.cache.set_ranges(d.ranges().to_vec());
            }
        }
        id
    }

    /// Crash a node: wipe its payloads, re-replicate from survivors, and
    /// rebuild ring-derived state. Jobs submitted afterwards run on the
    /// surviving nodes and still produce complete results.
    pub fn fail_node(&self, node: NodeId) {
        self.store.wipe_node(node);
        let plan = {
            let mut fs = self.fs.write();
            fs.fail_node(node).expect("member")
        };
        for copy in plan {
            // The control plane guarantees the source survives.
            assert!(self.store.copy(copy.block, copy.from, copy.to), "lost source replica");
        }
        let new_ring = self.fs.read().ring().clone();
        *self.ring.write() = new_ring.clone();
        let mut sched = self.sched.lock();
        match &mut *sched {
            LiveSched::Laf(laf) => laf.set_nodes(&new_ring),
            LiveSched::Delay(d) => {
                *d = DelayScheduler::new(
                    &new_ring,
                    match &self.cfg.scheduler {
                        SchedulerKind::Delay(c) => *c,
                        _ => Default::default(),
                    },
                );
            }
        }
        // Cache entries on the failed node die with it.
        self.cache.with_node(node, |c| c.clear());
        if let LiveSched::Laf(laf) = &*sched {
            self.cache.set_ranges(laf.ranges().to_vec());
        }
    }
}

/// Partition hash for intermediate keys, executor-internal.
///
/// The ring hash ([`HashKey::of_name`]) is engineered for placement
/// quality and costs far too much to run once per mapped record — it
/// dominated the map phase's profile. Reduce partitions are plain
/// channel indices in the live executor, so all the shuffle needs is a
/// fast, deterministic, well-mixed 64-bit hash: FNV-1a with a murmur3
/// finalizer (the top bits feed `SpillBuffer::partition_of`'s
/// multiply-shift, so they must avalanche).
#[inline]
fn shuffle_hash(key: &str) -> HashKey {
    let mut h = 0xcbf29ce484222325u64;
    for &b in key.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ceb9fe1a85ec53);
    h ^= h >> 33;
    HashKey(h)
}

/// Combine one spill by sorting its records in place and folding each
/// equal-key run through the application's combiner. Replaces the old
/// per-spill `BTreeMap<String, Vec<String>>` — no map nodes, no
/// per-key `Vec`s; `scratch` is the single reusable values buffer.
fn combine_sorted_runs(
    app: &dyn MapReduce,
    mut records: Vec<(String, String)>,
    scratch: &mut Vec<String>,
) -> Vec<(String, String)> {
    records.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::with_capacity(records.len() / 2 + 1);
    let mut iter = records.into_iter().peekable();
    while let Some((key, first)) = iter.next() {
        scratch.clear();
        scratch.push(first);
        while iter.peek().is_some_and(|(k, _)| *k == key) {
            scratch.push(iter.next().expect("peeked").1);
        }
        app.combine(&key, scratch, &mut |ck, cv| out.push((ck, cv)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Word count, the canonical MapReduce.
    struct WordCount;
    impl MapReduce for WordCount {
        fn map(&self, block: &[u8], emit: &mut dyn FnMut(String, String)) {
            for w in String::from_utf8_lossy(block).split_whitespace() {
                emit(w.to_string(), "1".to_string());
            }
        }
        fn reduce(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
            emit(key.to_string(), values.len().to_string());
        }
    }

    fn text_cluster(data: &str) -> LiveCluster {
        let c = LiveCluster::new(LiveConfig::small().with_block_size(256));
        c.upload("input", "tester", data.as_bytes());
        c
    }

    #[test]
    fn word_count_correct() {
        // Build text whose counts we know; keep words on whole-block
        // boundaries irrelevant by separating with newlines only.
        let data = "apple banana apple\ncherry banana apple\n".repeat(64);
        let c = text_cluster(&data);
        let (out, stats) =
            c.run_job(&WordCount, "input", "tester", 4, ReusePolicy::default());
        let get = |w: &str| -> u64 {
            out.iter().find(|(k, _)| k == w).map(|(_, v)| v.parse().unwrap()).unwrap_or(0)
        };
        // Block splitting can cut words at block boundaries; with 256-byte
        // blocks and 38-byte lines, lines may straddle blocks. Totals can
        // therefore deviate slightly — assert the dominant counts.
        assert!(get("apple") >= 180 && get("apple") <= 192, "apple={}", get("apple"));
        assert!(get("banana") >= 120 && get("banana") <= 128);
        assert!(get("cherry") >= 60 && get("cherry") <= 64);
        assert_eq!(stats.map_tasks, (data.len() as u64).div_ceil(256));
        assert_eq!(stats.reduce_tasks, 4);
        assert_eq!(
            stats.tasks_per_node.iter().sum::<u64>(),
            stats.map_tasks,
            "every task placed exactly once"
        );
    }

    #[test]
    fn second_run_hits_cache() {
        let data = "x y z\n".repeat(512);
        let c = text_cluster(&data);
        let (_, s1) = c.run_job(&WordCount, "input", "tester", 2, ReusePolicy::default());
        assert_eq!(s1.cache_hits, 0);
        let (_, s2) = c.run_job(&WordCount, "input", "tester", 2, ReusePolicy::default());
        assert!(s2.cache_hits > 0, "second run should hit iCache");
        assert!(s2.cache_hits + s2.cache_misses == s2.map_tasks);
    }

    #[test]
    fn results_identical_across_schedulers() {
        let data = "dog cat bird fish\n".repeat(200);
        let laf = LiveCluster::new(LiveConfig::small().with_block_size(512));
        laf.upload("input", "t", data.as_bytes());
        let delay = LiveCluster::new(
            LiveConfig::small()
                .with_block_size(512)
                .with_scheduler(SchedulerKind::Delay(Default::default())),
        );
        delay.upload("input", "t", data.as_bytes());
        let (out_laf, _) = laf.run_job(&WordCount, "input", "t", 3, ReusePolicy::default());
        let (out_delay, _) = delay.run_job(&WordCount, "input", "t", 3, ReusePolicy::default());
        assert_eq!(out_laf, out_delay, "scheduling must not change results");
    }

    #[test]
    fn node_failure_preserves_results() {
        let data = "alpha beta gamma\n".repeat(300);
        let c = text_cluster(&data);
        let (before, _) = c.run_job(&WordCount, "input", "tester", 2, ReusePolicy::default());
        let victim = c.ring().node_ids()[2];
        c.fail_node(victim);
        let (after, stats) = c.run_job(&WordCount, "input", "tester", 2, ReusePolicy::default());
        assert_eq!(before, after, "failure must not lose data");
        assert_eq!(stats.tasks_per_node[victim.index()], 0, "dead node got tasks");
    }

    #[test]
    fn joined_node_participates() {
        let data = "p q r s\n".repeat(400);
        let c = LiveCluster::new(LiveConfig::small().with_nodes(4).with_block_size(256));
        c.upload("before", "t", data.as_bytes());
        let (out1, _) = c.run_job(&WordCount, "before", "t", 2, ReusePolicy::default());
        let newbie = c.join_node("latecomer");
        assert_eq!(c.ring().len(), 5);
        // Old data still fully readable.
        let (out2, _) = c.run_job(&WordCount, "before", "t", 2, ReusePolicy::default());
        assert_eq!(out1, out2);
        // New uploads place blocks on the joiner.
        c.upload("after", "t", data.as_bytes());
        let (out3, stats) = c.run_job(&WordCount, "after", "t", 2, ReusePolicy::default());
        assert_eq!(out3.len(), out1.len());
        assert!(
            stats.tasks_per_node[newbie.index()] > 0,
            "joiner ran nothing: {:?}",
            stats.tasks_per_node
        );
    }

    #[test]
    fn ocache_roundtrip() {
        let c = LiveCluster::new(LiveConfig::small());
        c.ocache_put("kmeans", "iter0", Bytes::from_static(b"centroids"), None);
        assert_eq!(c.ocache_get("kmeans", "iter0").unwrap(), Bytes::from_static(b"centroids"));
        assert!(c.ocache_get("kmeans", "iter1").is_none());
    }

    #[test]
    fn ocache_ttl_expires() {
        let c = LiveCluster::new(LiveConfig::small());
        c.ocache_put("app", "temp", Bytes::from_static(b"d"), Some(-1.0));
        // TTL in the past: the entry is dead on arrival.
        assert!(c.ocache_get("app", "temp").is_none());
    }
}
